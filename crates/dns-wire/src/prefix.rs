//! IP address prefixes with the bit-level operations RFC 7871 requires.
//!
//! The ECS option carries a *prefix* of a client address: a source prefix
//! length plus only as many address octets as the prefix needs, with unused
//! trailing bits zeroed. This module centralizes that arithmetic so that the
//! resolver cache, authoritative scope logic, and analysis code all agree on
//! truncation and containment semantics.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

/// Error raised by prefix construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefixError {
    /// The offending prefix length.
    pub len: u8,
    /// The maximum allowed for the family.
    pub max: u8,
}

impl fmt::Display for PrefixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "prefix length {} exceeds family maximum {}",
            self.len, self.max
        )
    }
}

impl std::error::Error for PrefixError {}

/// An IP prefix: an address with all bits beyond `len` forced to zero.
///
/// ```
/// use dns_wire::IpPrefix;
/// use std::net::{IpAddr, Ipv4Addr};
///
/// let p = IpPrefix::new(IpAddr::V4(Ipv4Addr::new(192, 0, 2, 77)), 24).unwrap();
/// assert_eq!(p.to_string(), "192.0.2.0/24");
/// assert!(p.contains(IpAddr::V4(Ipv4Addr::new(192, 0, 2, 1))));
/// assert!(!p.contains(IpAddr::V4(Ipv4Addr::new(192, 0, 3, 1))));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct IpPrefix {
    addr: IpAddr,
    len: u8,
}

impl IpPrefix {
    /// Creates a prefix, zeroing host bits. `len` must not exceed 32 for
    /// IPv4 or 128 for IPv6.
    pub fn new(addr: IpAddr, len: u8) -> Result<Self, PrefixError> {
        let max = match addr {
            IpAddr::V4(_) => 32,
            IpAddr::V6(_) => 128,
        };
        if len > max {
            return Err(PrefixError { len, max });
        }
        Ok(IpPrefix {
            addr: mask_addr(addr, len),
            len,
        })
    }

    /// Convenience constructor for IPv4.
    pub fn v4(addr: Ipv4Addr, len: u8) -> Result<Self, PrefixError> {
        Self::new(IpAddr::V4(addr), len)
    }

    /// Convenience constructor for IPv6.
    pub fn v6(addr: Ipv6Addr, len: u8) -> Result<Self, PrefixError> {
        Self::new(IpAddr::V6(addr), len)
    }

    /// A single-address prefix (/32 or /128).
    pub fn host(addr: IpAddr) -> Self {
        let len = match addr {
            IpAddr::V4(_) => 32,
            IpAddr::V6(_) => 128,
        };
        IpPrefix { addr, len }
    }

    /// The masked network address.
    pub fn addr(&self) -> IpAddr {
        self.addr
    }

    /// The prefix length in bits. (`is_empty` would be meaningless for a
    /// prefix; the zero-length prefix is the default route, see
    /// [`IpPrefix::is_default_route`].)
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> u8 {
        self.len
    }

    /// True only for the zero-length prefix of either family.
    pub fn is_default_route(&self) -> bool {
        self.len == 0
    }

    /// Family maximum (32 or 128).
    pub fn family_bits(&self) -> u8 {
        match self.addr {
            IpAddr::V4(_) => 32,
            IpAddr::V6(_) => 128,
        }
    }

    /// True if this is an IPv4 prefix.
    pub fn is_v4(&self) -> bool {
        matches!(self.addr, IpAddr::V4(_))
    }

    /// Shortens the prefix to at most `len` bits, re-zeroing host bits.
    /// Lengthening is a no-op (returns self unchanged).
    pub fn truncate(&self, len: u8) -> IpPrefix {
        if len >= self.len {
            *self
        } else {
            IpPrefix {
                addr: mask_addr(self.addr, len),
                len,
            }
        }
    }

    /// True if `addr` falls within this prefix. Addresses of the other
    /// family never match.
    pub fn contains(&self, addr: IpAddr) -> bool {
        match (self.addr, addr) {
            (IpAddr::V4(_), IpAddr::V4(_)) | (IpAddr::V6(_), IpAddr::V6(_)) => {
                mask_addr(addr, self.len) == self.addr
            }
            _ => false,
        }
    }

    /// True if `other` is fully inside this prefix (same family, longer or
    /// equal length, matching leading bits).
    pub fn covers(&self, other: &IpPrefix) -> bool {
        other.len >= self.len && self.contains(other.addr)
    }

    /// True if the prefix is from non-routable space: loopback, RFC 1918
    /// private, link-local/self-assigned, or unspecified. These are the
    /// prefixes §8.1 of the paper shows confusing CDN mapping.
    pub fn is_non_routable(&self) -> bool {
        match self.addr {
            IpAddr::V4(a) => {
                let o = a.octets();
                o[0] == 127 // loopback
                    || o[0] == 10 // RFC1918
                    || (o[0] == 172 && (16..=31).contains(&o[1]))
                    || (o[0] == 192 && o[1] == 168)
                    || (o[0] == 169 && o[1] == 254) // link-local
                    || a.is_unspecified()
                    // A /0 ECS prefix is not "non-routable", it is "no info".
                    && self.len > 0
            }
            IpAddr::V6(a) => {
                a.is_loopback()
                    || (a.segments()[0] & 0xFE00) == 0xFC00 // ULA fc00::/7
                    || (a.segments()[0] & 0xFFC0) == 0xFE80 // link-local
                    || (a.is_unspecified() && self.len > 0)
            }
        }
    }

    /// Number of address octets needed on the wire for this prefix length
    /// (RFC 7871: `ceil(len / 8)`).
    pub fn wire_octets(&self) -> usize {
        self.len.div_ceil(8) as usize
    }

    /// The significant address octets, truncated per `wire_octets` with the
    /// final partial octet masked.
    pub fn wire_bytes(&self) -> Vec<u8> {
        let full = match self.addr {
            IpAddr::V4(a) => a.octets().to_vec(),
            IpAddr::V6(a) => a.octets().to_vec(),
        };
        full[..self.wire_octets()].to_vec()
    }
}

impl fmt::Display for IpPrefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr, self.len)
    }
}

/// Zeroes all bits of `addr` beyond the first `len`.
pub fn mask_addr(addr: IpAddr, len: u8) -> IpAddr {
    match addr {
        IpAddr::V4(a) => {
            let bits = u32::from(a);
            let masked = if len == 0 {
                0
            } else {
                bits & (u32::MAX << (32 - len.min(32)))
            };
            IpAddr::V4(Ipv4Addr::from(masked))
        }
        IpAddr::V6(a) => {
            let bits = u128::from(a);
            let masked = if len == 0 {
                0
            } else {
                bits & (u128::MAX << (128 - len.min(128) as u32))
            };
            IpAddr::V6(Ipv6Addr::from(masked))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v4(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }
    fn v6(s: &str) -> Ipv6Addr {
        s.parse().unwrap()
    }

    #[test]
    fn masks_host_bits() {
        let p = IpPrefix::v4(v4("192.0.2.77"), 24).unwrap();
        assert_eq!(p.addr(), IpAddr::V4(v4("192.0.2.0")));
        let p = IpPrefix::v4(v4("10.255.255.255"), 12).unwrap();
        assert_eq!(p.addr(), IpAddr::V4(v4("10.240.0.0")));
        let p = IpPrefix::v4(v4("255.255.255.255"), 0).unwrap();
        assert_eq!(p.addr(), IpAddr::V4(v4("0.0.0.0")));
        let p = IpPrefix::v6(v6("2001:db8::ff"), 32).unwrap();
        assert_eq!(p.addr(), IpAddr::V6(v6("2001:db8::")));
    }

    #[test]
    fn rejects_out_of_range() {
        assert!(IpPrefix::v4(v4("1.2.3.4"), 33).is_err());
        assert!(IpPrefix::v6(v6("::1"), 129).is_err());
        assert!(IpPrefix::v4(v4("1.2.3.4"), 32).is_ok());
        assert!(IpPrefix::v6(v6("::1"), 128).is_ok());
    }

    #[test]
    fn contains_and_covers() {
        let p = IpPrefix::v4(v4("192.0.2.0"), 24).unwrap();
        assert!(p.contains(IpAddr::V4(v4("192.0.2.255"))));
        assert!(!p.contains(IpAddr::V4(v4("192.0.3.0"))));
        assert!(!p.contains(IpAddr::V6(v6("::192.0.2.1"))));
        let sub = IpPrefix::v4(v4("192.0.2.128"), 25).unwrap();
        assert!(p.covers(&sub));
        assert!(!sub.covers(&p));
        assert!(p.covers(&p));
        let zero = IpPrefix::v4(v4("0.0.0.0"), 0).unwrap();
        assert!(zero.covers(&p));
        assert!(zero.is_default_route());
    }

    #[test]
    fn truncate_shortens_only() {
        let p = IpPrefix::v4(v4("192.0.2.77"), 32).unwrap();
        assert_eq!(p.truncate(24).to_string(), "192.0.2.0/24");
        assert_eq!(p.truncate(16).to_string(), "192.0.0.0/16");
        // Lengthening is a no-op.
        assert_eq!(p.truncate(32), p);
        let q = IpPrefix::v4(v4("192.0.2.0"), 24).unwrap();
        assert_eq!(q.truncate(30), q);
    }

    #[test]
    fn non_routable_detection() {
        assert!(IpPrefix::v4(v4("127.0.0.1"), 32).unwrap().is_non_routable());
        assert!(IpPrefix::v4(v4("127.0.0.0"), 24).unwrap().is_non_routable());
        assert!(IpPrefix::v4(v4("169.254.252.0"), 24)
            .unwrap()
            .is_non_routable());
        assert!(IpPrefix::v4(v4("10.1.2.3"), 24).unwrap().is_non_routable());
        assert!(IpPrefix::v4(v4("172.16.0.0"), 16)
            .unwrap()
            .is_non_routable());
        assert!(IpPrefix::v4(v4("192.168.1.0"), 24)
            .unwrap()
            .is_non_routable());
        assert!(!IpPrefix::v4(v4("192.0.2.0"), 24).unwrap().is_non_routable());
        assert!(!IpPrefix::v4(v4("8.8.8.0"), 24).unwrap().is_non_routable());
        assert!(IpPrefix::v6(v6("::1"), 128).unwrap().is_non_routable());
        assert!(IpPrefix::v6(v6("fe80::1"), 64).unwrap().is_non_routable());
        assert!(IpPrefix::v6(v6("fd00::"), 48).unwrap().is_non_routable());
        assert!(!IpPrefix::v6(v6("2001:db8::"), 32)
            .unwrap()
            .is_non_routable());
    }

    #[test]
    fn wire_octets_math() {
        assert_eq!(IpPrefix::v4(v4("1.2.3.4"), 0).unwrap().wire_octets(), 0);
        assert_eq!(IpPrefix::v4(v4("1.2.3.4"), 1).unwrap().wire_octets(), 1);
        assert_eq!(IpPrefix::v4(v4("1.2.3.4"), 8).unwrap().wire_octets(), 1);
        assert_eq!(IpPrefix::v4(v4("1.2.3.4"), 9).unwrap().wire_octets(), 2);
        assert_eq!(IpPrefix::v4(v4("1.2.3.4"), 24).unwrap().wire_octets(), 3);
        assert_eq!(IpPrefix::v4(v4("1.2.3.4"), 25).unwrap().wire_octets(), 4);
        assert_eq!(IpPrefix::v6(v6("::"), 56).unwrap().wire_octets(), 7);
    }

    #[test]
    fn wire_bytes_are_masked() {
        let p = IpPrefix::v4(v4("192.0.2.255"), 25).unwrap();
        assert_eq!(p.wire_bytes(), vec![192, 0, 2, 128]);
        let p = IpPrefix::v4(v4("192.0.2.255"), 24).unwrap();
        assert_eq!(p.wire_bytes(), vec![192, 0, 2]);
    }

    #[test]
    fn display_parse_shapes() {
        let p = IpPrefix::v4(v4("192.0.2.7"), 24).unwrap();
        assert_eq!(p.to_string(), "192.0.2.0/24");
        // /56 keeps only 7 address octets: the low byte of the fourth
        // segment (0x0002) is zeroed.
        let p = IpPrefix::v6(v6("2001:db8:1:2::"), 56).unwrap();
        assert_eq!(p.to_string(), "2001:db8:1::/56");
        let p = IpPrefix::v6(v6("2001:db8:1:200::"), 56).unwrap();
        assert_eq!(p.to_string(), "2001:db8:1:200::/56");
    }

    #[test]
    fn host_prefix() {
        let p = IpPrefix::host(IpAddr::V4(v4("1.2.3.4")));
        assert_eq!(p.len(), 32);
        assert_eq!(p.family_bits(), 32);
        assert!(p.is_v4());
        let p = IpPrefix::host(IpAddr::V6(v6("2001:db8::1")));
        assert_eq!(p.len(), 128);
        assert_eq!(p.family_bits(), 128);
        assert!(!p.is_v4());
    }
}
