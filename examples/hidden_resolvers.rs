//! Discover hidden resolvers from ECS prefixes and quantify their location
//! error — the §8.2 analysis as a reusable tool.
//!
//! Run with: `cargo run --release --example hidden_resolvers`

use analysis::HiddenAnalysis;
use ecs_study::experiments::fig45::combos_from_world;
use topology::{World, WorldConfig};

fn main() {
    let world = World::generate(&WorldConfig {
        forwarders: 2000,
        hidden_resolvers: 100,
        hidden_chain_fraction: 0.8,
        misplaced_hidden_fraction: 0.08,
        ..WorldConfig::default()
    });

    println!(
        "world: {} forwarders, {} hidden resolvers, {} egress resolvers\n",
        world.forwarders.len(),
        world.hidden_resolvers.len(),
        world.egress_resolvers.len()
    );

    for (label, public_only) in [
        ("via major public service", true),
        ("via other resolvers", false),
    ] {
        let combos = combos_from_world(&world, Some(public_only));
        let report = HiddenAnalysis::default().analyze(&combos);
        println!("--- {label} ({} combinations) ---", combos.len());
        println!(
            "  ECS hurts mapping (hidden farther than egress): {:>5.1}%",
            report.harmful_fraction() * 100.0
        );
        println!(
            "  ECS neutral (equidistant within 50 km):         {:>5.1}%",
            report.on_diagonal as f64 / report.total().max(1) as f64 * 100.0
        );
        println!(
            "  ECS helps (hidden closer to the client):        {:>5.1}%",
            report.above_diagonal as f64 / report.total().max(1) as f64 * 100.0
        );
        println!(
            "  forwarder→hidden median {:.0} km, forwarder→egress median {:.0} km",
            report.f_h_cdf.quantile(0.5),
            report.f_r_cdf.quantile(0.5)
        );
        let worst = report
            .points
            .iter()
            .map(|(fh, fr)| fh - fr)
            .fold(f64::MIN, f64::max);
        println!("  worst detour introduced by a hidden resolver: {worst:.0} km\n");
    }

    println!("Reading: when resolvers derive ECS from the immediate query sender,");
    println!("a misplaced intermediary (\"hidden\") resolver poisons the location");
    println!("information — in the paper's data, 8% of observed combinations were");
    println!("actively worse than no ECS at all (§8.2, Figures 4–5).");
}
