//! DNS over TCP (RFC 7766): the fallback path for truncated UDP answers.
//!
//! Framing is a two-octet big-endian length prefix per message. The server
//! handles one query per connection (as classic DNS servers do for
//! fallback traffic); the client connects, sends, reads one response.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use authoritative::AuthServer;
use dns_wire::Message;
use netsim::SimTime;
use parking_lot::Mutex;

/// Reads one length-prefixed DNS message from a stream.
pub fn read_framed(stream: &mut impl Read) -> io::Result<Vec<u8>> {
    let mut len = [0u8; 2];
    stream.read_exact(&mut len)?;
    let n = u16::from_be_bytes(len) as usize;
    let mut buf = vec![0u8; n];
    stream.read_exact(&mut buf)?;
    Ok(buf)
}

/// Writes one length-prefixed DNS message to a stream. Framing comes from
/// [`dns_wire::framing::frame_tcp`] — the same bytes the simulator's
/// stream transports use.
pub fn write_framed(stream: &mut impl Write, msg: &[u8]) -> io::Result<()> {
    let framed = dns_wire::framing::frame_tcp(msg)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
    stream.write_all(&framed)?;
    stream.flush()
}

/// An authoritative DNS server on a TCP listener. TCP responses are never
/// truncated (the 64 KiB frame limit is the only bound), so the handler's
/// messages pass through unmodified.
pub struct TcpAuthServer {
    listener: TcpListener,
    auth: Arc<Mutex<AuthServer>>,
    started: Instant,
    stop: Arc<AtomicBool>,
}

/// Handle to a spawned TCP server thread.
///
/// [`TcpServerHandle::shutdown`] and dropping the handle both stop the
/// accept loop and join its thread exactly once. The loop polls a
/// non-blocking listener with a 10 ms sleep between empty polls, so an idle
/// server shuts down within ~10 ms; a server mid-connection first finishes
/// that exchange, bounded by the 2 s per-connection read timeout.
pub struct TcpServerHandle {
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
    /// Shared access to the server state.
    pub auth: Arc<Mutex<AuthServer>>,
}

impl TcpServerHandle {
    /// Signals the accept loop to stop and joins the thread. Idempotent
    /// with [`Drop`]: whichever runs first does the work.
    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }

    /// Signals the accept loop to stop and joins the thread (see the type
    /// docs for the shutdown-latency bound).
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }
}

impl Drop for TcpServerHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

impl TcpAuthServer {
    /// Binds a listener. Pass the `Arc<Mutex<AuthServer>>` shared with a
    /// [`crate::UdpAuthServer`] to serve the same zone on both transports.
    pub fn bind<A: ToSocketAddrs>(addr: A, auth: Arc<Mutex<AuthServer>>) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(TcpAuthServer {
            listener,
            auth,
            started: Instant::now(),
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accepts and serves one connection if one is pending.
    pub fn serve_once(&self) -> io::Result<bool> {
        let (mut stream, peer) = match self.listener.accept() {
            Ok(c) => c,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
                return Ok(false);
            }
            Err(e) => return Err(e),
        };
        stream.set_read_timeout(Some(Duration::from_secs(2)))?;
        let Ok(raw) = read_framed(&mut stream) else {
            return Ok(false);
        };
        let Ok(query) = Message::from_bytes(&raw) else {
            return Ok(false);
        };
        if query.is_response() {
            return Ok(false);
        }
        let now = SimTime::from_micros(self.started.elapsed().as_micros() as u64);
        let resp = self.auth.lock().handle(&query, peer.ip(), now);
        // TCP carries the untruncated answer: clear any TC the handler set
        // for UDP-size reasons by re-resolving is unnecessary — the handler
        // only truncates based on the advertised UDP size, and over TCP we
        // serve the message as built. (If TC is set it means the answer was
        // stripped; re-handle with a huge advertised size.)
        let resp = if resp.flags.tc {
            let mut big = query.clone();
            big.set_edns(u16::MAX);
            self.auth.lock().handle(&big, peer.ip(), now)
        } else {
            resp
        };
        if let Ok(bytes) = resp.to_bytes() {
            let _ = write_framed(&mut stream, &bytes);
        }
        Ok(true)
    }

    /// Runs the accept loop on a thread.
    pub fn spawn(self) -> TcpServerHandle {
        let stop = self.stop.clone();
        let auth = self.auth.clone();
        let thread = std::thread::spawn(move || {
            while !self.stop.load(Ordering::SeqCst) {
                if let Err(e) = self.serve_once() {
                    eprintln!("ecs-dnsd(tcp): {e}");
                    break;
                }
            }
        });
        TcpServerHandle {
            stop,
            thread: Some(thread),
            auth,
        }
    }
}

/// One TCP exchange: connect, send, read one response.
pub fn tcp_exchange(
    server: SocketAddr,
    query: &Message,
    timeout: Duration,
) -> Result<Message, crate::DigError> {
    let mut stream = TcpStream::connect_timeout(&server, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let bytes = query.to_bytes().map_err(crate::DigError::Malformed)?;
    write_framed(&mut stream, &bytes)?;
    let raw = read_framed(&mut stream)?;
    Message::from_bytes(&raw).map_err(crate::DigError::Malformed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use authoritative::{EcsHandling, ScopePolicy, Zone};
    use dns_wire::{Name, Question, Rdata, Record};
    use std::net::Ipv4Addr;

    fn big_auth(records: u8) -> AuthServer {
        let mut zone = Zone::new(Name::from_ascii("big.example").unwrap());
        for i in 0..records {
            zone.add(Record::new(
                Name::from_ascii("www.big.example").unwrap(),
                60,
                Rdata::A(Ipv4Addr::new(198, 51, 100, i + 1)),
            ))
            .unwrap();
        }
        AuthServer::new(zone, EcsHandling::open(ScopePolicy::MatchSource))
    }

    #[test]
    fn framing_roundtrip() {
        let mut buf = Vec::new();
        write_framed(&mut buf, &[1, 2, 3, 4]).unwrap();
        assert_eq!(buf, vec![0, 4, 1, 2, 3, 4]);
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(read_framed(&mut cursor).unwrap(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn framing_rejects_oversize() {
        let huge = vec![0u8; 70_000];
        let mut out = Vec::new();
        assert!(write_framed(&mut out, &huge).is_err());
    }

    #[test]
    fn tcp_serves_untruncated_answers() {
        let auth = Arc::new(Mutex::new(big_auth(100)));
        let server = TcpAuthServer::bind("127.0.0.1:0", auth).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = server.spawn();

        // Over TCP the 100-record answer (>512 bytes) arrives whole.
        let mut q = Message::query(9, Question::a(Name::from_ascii("www.big.example").unwrap()));
        q.edns = None; // a plain client that would be truncated over UDP
        let resp = tcp_exchange(addr, &q, Duration::from_secs(2)).unwrap();
        assert!(!resp.flags.tc);
        assert_eq!(resp.answers.len(), 100);
        handle.shutdown();
    }
}
