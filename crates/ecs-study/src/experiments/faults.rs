//! Extension experiment: resolution robustness under injected faults.
//!
//! The paper measures resolvers in the wild, where lossy paths, truncated
//! replies, and dead nameservers are facts of life; the §7.1.3 guidance in
//! RFC 7871 exists precisely because ECS queries can *cause* some of those
//! failures. This sweep drives the identical client workload through the
//! engine behind a [`FaultyUpstream`] at increasing loss rates (plus a
//! truncation condition), and reports how the retry/backoff/ECS-withdrawal
//! machinery degrades: answered fraction, retries, withdrawals, TCP
//! recoveries, SERVFAILs. Every cell is seeded and replayable.

use std::net::{IpAddr, Ipv4Addr};

use authoritative::{AuthServer, EcsHandling, ScopePolicy, Zone};
use dns_wire::{Message, Name, Question, Rcode};
use netsim::{LinkFaults, SimTime};
use resolver::{FaultyUpstream, Resolver, ResolverConfig, RetryPolicy};

use crate::report::Report;
use crate::telemetry::Telemetry;

/// Parameters.
#[derive(Debug, Clone)]
pub struct Config {
    /// Client queries per cell.
    pub queries: u64,
    /// Reply-loss rates swept (one cell each).
    pub loss_rates: Vec<f64>,
    /// UDP attempt budget per query.
    pub attempts: u8,
    /// Zone TTL.
    pub ttl: u32,
    /// RNG seed (faults only; the workload is fixed).
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            queries: 400,
            loss_rates: vec![0.0, 0.1, 0.3, 0.6, 0.9],
            attempts: 4,
            ttl: 60,
            seed: 7,
        }
    }
}

/// One sweep cell's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cell {
    /// Queries that ended in an answer.
    pub answered: u64,
    /// Queries that exhausted the budget (SERVFAIL to the client).
    pub servfailed: u64,
    /// Retransmissions sent.
    pub retries: u64,
    /// ECS options withdrawn on retry (RFC 7871 §7.1.3).
    pub ecs_withdrawals: u64,
    /// Truncated exchanges recovered over TCP.
    pub tcp_fallbacks: u64,
}

/// Outcome: one cell per loss rate, plus the all-truncated condition.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// (loss rate, counters) per sweep cell.
    pub by_loss: Vec<(f64, Cell)>,
    /// The truncate-every-reply condition (loss 0).
    pub truncated: Cell,
}

fn drive(
    faults: LinkFaults,
    config: &Config,
    tracer: &obs::Tracer,
) -> (Cell, obs::MetricsSnapshot) {
    let apex = Name::from_ascii("fault.example").expect("valid");
    let mut zone = Zone::new(apex.clone());
    let qname = apex.child("www").expect("valid");
    zone.add_a(qname.clone(), config.ttl, Ipv4Addr::new(198, 51, 100, 1))
        .expect("in zone");
    let mut inner = AuthServer::new(zone, EcsHandling::open(ScopePolicy::MatchSource));
    inner.set_logging(false);
    let mut up = FaultyUpstream::new(inner, faults, config.seed);

    let mut resolver_config = ResolverConfig::rfc_compliant("9.9.9.9".parse().expect("valid"));
    resolver_config.retry = RetryPolicy {
        attempts: config.attempts,
        ..RetryPolicy::default()
    };
    let mut r = Resolver::new(resolver_config);
    r.set_tracer(tracer.clone());

    let mut answered = 0u64;
    for i in 0..config.queries {
        let q = Message::query(i as u16, Question::a(qname.clone()));
        let client = IpAddr::V4(Ipv4Addr::new(10, (i >> 8) as u8, i as u8, 7));
        // Spaced past the TTL and the worst-case backoff run, so every
        // query is a fresh cache miss and exercises the fault path.
        let resp = r.resolve_msg(&q, client, SimTime::from_secs(i * 600), &mut up);
        if resp.rcode == Rcode::NoError && !resp.answers.is_empty() {
            answered += 1;
        }
    }
    let s = r.stats();
    let cell = Cell {
        answered,
        servfailed: s.servfail_responses,
        retries: s.retries,
        ecs_withdrawals: s.ecs_withdrawals,
        tcp_fallbacks: s.tcp_fallbacks,
    };
    (cell, r.metrics_snapshot())
}

/// Runs the experiment.
pub fn run(config: &Config) -> (Outcome, Report) {
    let (outcome, report, _) = run_impl(config, false);
    (outcome, report)
}

/// Runs the experiment with telemetry on: every cell's resolver traces
/// into one shared sink and the per-cell metric registries merge into one
/// snapshot, with p50/p99 latency rows added to the report.
pub fn run_telemetry(config: &Config) -> (Outcome, Report, Telemetry) {
    let (outcome, report, telemetry) = run_impl(config, true);
    (outcome, report, telemetry.expect("telemetry on"))
}

fn run_impl(config: &Config, telemetry: bool) -> (Outcome, Report, Option<Telemetry>) {
    let sink = telemetry.then(|| std::sync::Arc::new(obs::MemorySink::new()));
    let tracer = sink
        .as_ref()
        .map(|s| obs::Tracer::new(s.clone() as std::sync::Arc<dyn obs::TraceSink>))
        .unwrap_or_else(obs::Tracer::disabled);
    let mut merged = obs::MetricsSnapshot::default();

    let by_loss: Vec<(f64, Cell)> = config
        .loss_rates
        .iter()
        .map(|&loss| {
            let (cell, snap) = drive(
                LinkFaults {
                    loss,
                    ..LinkFaults::NONE
                },
                config,
                &tracer,
            );
            merged.merge(&snap);
            (loss, cell)
        })
        .collect();
    let (truncated, snap) = drive(
        LinkFaults {
            truncate_replies: 1.0,
            ..LinkFaults::NONE
        },
        config,
        &tracer,
    );
    merged.merge(&snap);
    let outcome = Outcome { by_loss, truncated };

    let mut report = Report::new(
        "faults",
        "resolution robustness under injected faults (extension)",
    );
    let clean = outcome.by_loss.first().map(|(_, c)| *c);
    for (loss, cell) in &outcome.by_loss {
        let frac = cell.answered as f64 / config.queries as f64;
        report.row(
            format!("answered fraction @ loss {loss:.1}"),
            "retries mask loss until the budget runs out",
            format!(
                "{:.1}% ({} retries, {} SERVFAIL)",
                frac * 100.0,
                cell.retries,
                cell.servfailed
            ),
            cell.answered + cell.servfailed == config.queries,
        );
    }
    if let Some(clean) = clean {
        report.row(
            "fault-free baseline",
            "no retries, no withdrawals, no SERVFAILs",
            format!(
                "{} retries, {} withdrawals, {} SERVFAIL",
                clean.retries, clean.ecs_withdrawals, clean.servfailed
            ),
            clean.retries == 0 && clean.ecs_withdrawals == 0 && clean.servfailed == 0,
        );
    }
    let worst = outcome.by_loss.last().map(|(_, c)| *c).unwrap_or(truncated);
    report.row(
        "ECS withdrawal under loss",
        "withdrawn once, then the server is marked non-ECS (§7.1.3)",
        format!(
            "{} withdrawals at the highest loss rate",
            worst.ecs_withdrawals
        ),
        worst.retries == 0 || worst.ecs_withdrawals >= 1,
    );
    report.row(
        "TCP recovery of truncated replies",
        "every exchange recovers; zero SERVFAILs",
        format!(
            "{}/{} answered over TCP",
            outcome.truncated.tcp_fallbacks, config.queries
        ),
        outcome.truncated.answered == config.queries && outcome.truncated.servfailed == 0,
    );
    let telemetry_out = sink.map(|sink| {
        let lat = merged
            .histogram("resolver_query_latency_us")
            .cloned()
            .unwrap_or_default();
        report.row(
            "query latency p50/p99",
            "p99 grows with loss (backoff runs), p50 stays near the RTT",
            format!(
                "p50 {} us, p99 {} us, max {} us over {} queries",
                lat.quantile(0.5),
                lat.quantile(0.99),
                lat.max,
                lat.count
            ),
            lat.count > 0 && lat.quantile(0.5) <= lat.quantile(0.99),
        );
        Telemetry {
            snapshot: merged,
            trace_jsonl: sink
                .lines()
                .into_iter()
                .map(|l| l + "\n")
                .collect::<String>(),
        }
    });
    report.detail = format!(
        "{} queries per cell, attempt budget {}, seed {}. Loss applies to the\nfull UDP exchange; truncation leaves TCP untouched, so the TC condition\nmeasures pure RFC 7766 fallback.\n",
        config.queries, config.attempts, config.seed
    );
    (outcome, report, telemetry_out)
}

/// Default-parameter entry point.
pub fn run_default() -> Report {
    run(&Config::default()).1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Config {
        Config {
            queries: 80,
            loss_rates: vec![0.0, 0.5, 0.9],
            ..Config::default()
        }
    }

    #[test]
    fn sweep_degrades_monotonically_in_expectation() {
        let (out, report) = run(&small());
        assert!(report.all_hold(), "{report}");
        let fracs: Vec<u64> = out.by_loss.iter().map(|(_, c)| c.answered).collect();
        assert_eq!(fracs[0], 80, "fault-free answers everything");
        assert!(
            fracs[2] <= fracs[1],
            "0.9 loss answers no more than 0.5 loss: {fracs:?}"
        );
        assert_eq!(out.truncated.tcp_fallbacks, 80);
    }

    #[test]
    fn sweep_is_seed_deterministic() {
        let (a, _) = run(&small());
        let (b, _) = run(&small());
        assert_eq!(a.by_loss, b.by_loss);
        assert_eq!(a.truncated, b.truncated);
    }

    #[test]
    fn telemetry_run_matches_and_validates() {
        let (plain, _) = run(&small());
        let (traced, report, telem) = run_telemetry(&small());
        // Telemetry is pure observation: identical outcome.
        assert_eq!(plain.by_loss, traced.by_loss);
        assert_eq!(plain.truncated, traced.truncated);
        assert!(report.all_hold(), "{report}");
        // The trace parses and is non-trivial; the snapshot carries the
        // series the CI validation step requires.
        assert!(obs::validate::validate_trace(&telem.trace_jsonl).unwrap() > 0);
        assert!(obs::validate::validate_metrics_json(
            &telem.snapshot.to_json(),
            &[
                "resolver_client_queries_total",
                "resolver_retries_total",
                "resolver_query_latency_us",
            ],
        )
        .is_ok());
        let (p50, p99, _) = telem
            .latency_quantiles("resolver_query_latency_us")
            .expect("latency recorded");
        assert!(p50 <= p99);
    }
}
