//! Unified telemetry for the ECS study.
//!
//! Every crate in the workspace records into the same three primitives:
//!
//! * **Metrics** ([`MetricsRegistry`]): named counters, gauges, and
//!   log-linear histograms with cheap atomic recording. Registries are
//!   cheap to clone (shared handles), and their [`MetricsSnapshot`]s merge
//!   commutatively and associatively — counters add, gauges take the max,
//!   histograms add bucket-wise — so folding per-shard or per-resolver
//!   snapshots in any order (or from any parallelism) yields the same
//!   result.
//! * **Tracing** ([`Tracer`]): every resolution gets a trace of typed span
//!   events with parent/child causality, emitted as JSON-lines through a
//!   pluggable [`TraceSink`]. A disabled tracer ([`Tracer::disabled`], the
//!   default) costs one branch per would-be event, so the deterministic
//!   engine stays bit-identical when telemetry is off.
//! * **Exporters**: [`MetricsSnapshot::to_prometheus`] (Prometheus text
//!   exposition) and [`MetricsSnapshot::to_json`], plus the `obs-validate`
//!   binary ([`validate`]) that checks exported snapshots and trace files
//!   in CI.
//!
//! The crate is std-only (no dependencies) so every layer — including
//! `netsim` at the bottom of the stack — can record without dependency
//! cycles. Durations are recorded as plain `u64` microseconds, matching
//! the simulator's `SimTime` axis.

pub mod analyze;
pub mod json;
pub mod metrics;
pub mod prof;
pub mod trace;
pub mod validate;

pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricValue, MetricsRegistry, MetricsSnapshot,
    TimerGuard,
};
pub use prof::{LockMonitor, ProfileSnapshot, StackStats, StageProfiler};
pub use trace::{EventKind, MemorySink, NoopRecorder, TraceCtx, TraceSink, Tracer, WriterSink};
