//! Fault injection at the [`Upstream`] seam.
//!
//! [`FaultyUpstream`] wraps any upstream and makes it misbehave the way
//! real authoritative paths do: lost queries and replies (timeouts),
//! truncated UDP replies, and in-band SERVFAIL/FORMERR answers. Faults come
//! from two sources, both deterministic:
//!
//! * a **script** of [`InjectedFault`]s consumed one per UDP attempt, for
//!   tests that need an exact failure sequence ("time out twice, then
//!   answer");
//! * the same probabilistic [`LinkFaults`] knobs the packet-level simulator
//!   uses, driven by a seeded [`SmallRng`], for statistical sweeps.
//!
//! The scripted queue is consulted first; only when it is empty do the
//! probabilistic knobs apply. As in [`netsim::FaultPlan`], a knob with
//! probability zero never draws from the RNG, so a `FaultyUpstream` with
//! [`LinkFaults::NONE`] and an empty script behaves *bit-identically* to
//! the bare inner upstream.
//!
//! TCP ([`Upstream::query_tcp`]) models RFC 7766 semantics: truncation and
//! UDP loss do not apply (the stream either works or the host is
//! unreachable), so only a blackhole affects it.

use std::collections::VecDeque;
use std::net::IpAddr;

use dns_wire::{Message, Rcode};
use netsim::{LinkFaults, SimTime};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::engine::{Upstream, UpstreamError};

/// One scripted fault, applied to a single UDP attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedFault {
    /// The attempt goes unanswered (query or reply lost): the inner
    /// upstream is not consulted at all.
    Timeout,
    /// The reply comes back truncated: TC set, records stripped, surfaced
    /// as [`UpstreamError::Truncated`].
    Truncate,
    /// The server answers SERVFAIL in-band (records stripped).
    ServFail,
    /// The server answers FORMERR in-band, as a pre-EDNS/ECS-intolerant
    /// server would (records and EDNS stripped).
    FormErr,
    /// The attempt succeeds normally (useful to interleave successes in a
    /// script: `[Timeout, Pass, Timeout]`).
    Pass,
}

/// Counters for the faults actually injected by one [`FaultyUpstream`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InjectionStats {
    /// Attempts turned into timeouts (scripted + probabilistic).
    pub timeouts: u64,
    /// Replies truncated.
    pub truncated: u64,
    /// Replies rewritten to SERVFAIL.
    pub servfail: u64,
    /// Replies rewritten to FORMERR.
    pub formerr: u64,
    /// UDP attempts that passed through unharmed.
    pub passed: u64,
    /// TCP exchanges served.
    pub tcp: u64,
}

impl InjectionStats {
    /// Total faults injected.
    pub fn injected(&self) -> u64 {
        self.timeouts + self.truncated + self.servfail + self.formerr
    }
}

/// An [`Upstream`] decorator that injects deterministic faults.
pub struct FaultyUpstream<U> {
    inner: U,
    faults: LinkFaults,
    rng: SmallRng,
    script: VecDeque<InjectedFault>,
    stats: InjectionStats,
}

impl<U: Upstream> FaultyUpstream<U> {
    /// Wraps `inner` with probabilistic faults `faults`, all randomness
    /// seeded from `seed`.
    pub fn new(inner: U, faults: LinkFaults, seed: u64) -> Self {
        FaultyUpstream {
            inner,
            faults,
            rng: SmallRng::seed_from_u64(seed),
            script: VecDeque::new(),
            stats: InjectionStats::default(),
        }
    }

    /// Wraps `inner` with no probabilistic faults; only scripted faults
    /// fire.
    pub fn scripted(inner: U, script: Vec<InjectedFault>) -> Self {
        let mut s = Self::new(inner, LinkFaults::NONE, 0);
        s.script = VecDeque::from(script);
        s
    }

    /// Appends scripted faults (consumed before any probabilistic draw).
    pub fn push_faults(&mut self, faults: impl IntoIterator<Item = InjectedFault>) -> &mut Self {
        self.script.extend(faults);
        self
    }

    /// What has been injected so far.
    pub fn stats(&self) -> InjectionStats {
        self.stats
    }

    /// The wrapped upstream.
    pub fn inner(&self) -> &U {
        &self.inner
    }

    /// Mutable access to the wrapped upstream.
    pub fn inner_mut(&mut self) -> &mut U {
        &mut self.inner
    }

    /// The fault to apply to this attempt: scripted first, then the
    /// probabilistic knobs (zero-probability knobs never touch the RNG).
    fn next_fault(&mut self) -> InjectedFault {
        if let Some(f) = self.script.pop_front() {
            return f;
        }
        let f = &self.faults;
        if f.blackhole {
            return InjectedFault::Timeout;
        }
        if f.loss > 0.0 && self.rng.gen::<f64>() < f.loss {
            return InjectedFault::Timeout;
        }
        if f.truncate_replies > 0.0 && self.rng.gen::<f64>() < f.truncate_replies {
            return InjectedFault::Truncate;
        }
        if f.servfail_replies > 0.0 && self.rng.gen::<f64>() < f.servfail_replies {
            return InjectedFault::ServFail;
        }
        if f.formerr_replies > 0.0 && self.rng.gen::<f64>() < f.formerr_replies {
            return InjectedFault::FormErr;
        }
        InjectedFault::Pass
    }
}

impl<U: Upstream> Upstream for FaultyUpstream<U> {
    fn query(&mut self, q: &Message, from: IpAddr, now: SimTime) -> Result<Message, UpstreamError> {
        match self.next_fault() {
            InjectedFault::Timeout => {
                self.stats.timeouts += 1;
                Err(UpstreamError::Timeout)
            }
            InjectedFault::Truncate => {
                self.stats.truncated += 1;
                let mut resp = self.inner.query(q, from, now)?;
                resp.flags.tc = true;
                resp.answers.clear();
                Err(UpstreamError::Truncated(Box::new(resp)))
            }
            InjectedFault::ServFail => {
                self.stats.servfail += 1;
                let mut resp = Message::response_to(q);
                resp.rcode = Rcode::ServFail;
                Ok(resp)
            }
            InjectedFault::FormErr => {
                self.stats.formerr += 1;
                // A pre-EDNS server echoes no OPT at all.
                let mut resp = Message::response_to(q);
                resp.rcode = Rcode::FormErr;
                resp.clear_ecs();
                Ok(resp)
            }
            InjectedFault::Pass => {
                self.stats.passed += 1;
                self.inner.query(q, from, now)
            }
        }
    }

    fn query_tcp(
        &mut self,
        q: &Message,
        from: IpAddr,
        now: SimTime,
    ) -> Result<Message, UpstreamError> {
        // RFC 7766: the stream is immune to UDP loss and truncation; only a
        // blackholed host stays unreachable.
        if self.faults.blackhole {
            self.stats.timeouts += 1;
            return Err(UpstreamError::Timeout);
        }
        self.stats.tcp += 1;
        self.inner.query_tcp(q, from, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ResolverConfig;
    use crate::engine::Resolver;
    use authoritative::{AuthServer, EcsHandling, ScopePolicy, Zone};
    use dns_wire::{Name, Question};
    use std::net::Ipv4Addr;

    fn name(s: &str) -> Name {
        Name::from_ascii(s).unwrap()
    }

    fn auth() -> AuthServer {
        let mut zone = Zone::new(name("example.com"));
        zone.add_a(name("www.example.com"), 60, Ipv4Addr::new(198, 51, 100, 1))
            .unwrap();
        AuthServer::new(zone, EcsHandling::open(ScopePolicy::MatchSource))
    }

    fn q() -> Message {
        Message::query(7, Question::a(name("www.example.com")))
    }

    const CLIENT: IpAddr = IpAddr::V4(Ipv4Addr::new(192, 0, 2, 77));
    const RES: IpAddr = IpAddr::V4(Ipv4Addr::new(9, 9, 9, 9));

    #[test]
    fn fault_free_wrapper_is_transparent() {
        let mut bare = auth();
        let mut wrapped = FaultyUpstream::new(auth(), LinkFaults::NONE, 42);
        let mut r1 = Resolver::new(ResolverConfig::rfc_compliant(RES));
        let mut r2 = Resolver::new(ResolverConfig::rfc_compliant(RES));
        let a = r1.resolve_msg(&q(), CLIENT, SimTime::ZERO, &mut bare);
        let b = r2.resolve_msg(&q(), CLIENT, SimTime::ZERO, &mut wrapped);
        assert_eq!(a.to_bytes(), b.to_bytes(), "bit-identical answers");
        assert_eq!(r1.stats(), r2.stats());
        assert_eq!(wrapped.stats().injected(), 0);
        assert_eq!(wrapped.stats().passed, 1);
    }

    #[test]
    fn scripted_faults_fire_in_order() {
        let mut up =
            FaultyUpstream::scripted(auth(), vec![InjectedFault::Timeout, InjectedFault::Pass]);
        let mut r = Resolver::new(ResolverConfig::rfc_compliant(RES));
        let resp = r.resolve_msg(&q(), CLIENT, SimTime::ZERO, &mut up);
        assert_eq!(resp.answers.len(), 1);
        assert_eq!(up.stats().timeouts, 1);
        assert_eq!(up.stats().passed, 1);
        assert_eq!(r.stats().retries, 1);
    }

    #[test]
    fn truncation_surfaces_and_tcp_recovers() {
        let mut up = FaultyUpstream::scripted(auth(), vec![InjectedFault::Truncate]);
        let mut r = Resolver::new(ResolverConfig::rfc_compliant(RES));
        let resp = r.resolve_msg(&q(), CLIENT, SimTime::ZERO, &mut up);
        assert_eq!(resp.answers.len(), 1, "TCP fallback recovered the answer");
        assert_eq!(up.stats().truncated, 1);
        assert_eq!(up.stats().tcp, 1);
        assert_eq!(r.stats().tcp_fallbacks, 1);
    }

    #[test]
    fn blackhole_defeats_tcp_too_and_yields_servfail() {
        let mut up = FaultyUpstream::new(
            auth(),
            LinkFaults {
                blackhole: true,
                ..LinkFaults::NONE
            },
            1,
        );
        let mut r = Resolver::new(ResolverConfig::rfc_compliant(RES));
        let resp = r.resolve_msg(&q(), CLIENT, SimTime::ZERO, &mut up);
        assert_eq!(resp.rcode, Rcode::ServFail);
        assert_eq!(r.stats().servfail_responses, 1);
        assert_eq!(up.stats().tcp, 0);
    }

    #[test]
    fn probabilistic_faults_are_seed_deterministic() {
        let run = |seed: u64| {
            let mut up = FaultyUpstream::new(auth(), LinkFaults::lossy(0.4), seed);
            let mut r = Resolver::new(ResolverConfig::rfc_compliant(RES));
            for i in 0..50u64 {
                let mut query = q();
                query.id = i as u16 + 1;
                r.resolve_msg(
                    &query,
                    IpAddr::V4(Ipv4Addr::new(10, (i / 256) as u8, (i % 256) as u8, 1)),
                    SimTime::from_secs(i * 100),
                    &mut up,
                );
            }
            (up.stats(), r.stats())
        };
        assert_eq!(run(9), run(9), "same seed, same faults, same stats");
        assert_ne!(run(9).0, run(10).0, "different seed, different faults");
    }

    #[test]
    fn in_band_servfail_passes_through_to_client() {
        let mut up = FaultyUpstream::scripted(auth(), vec![InjectedFault::ServFail]);
        let mut r = Resolver::new(ResolverConfig::rfc_compliant(RES));
        let resp = r.resolve_msg(&q(), CLIENT, SimTime::ZERO, &mut up);
        // In-band SERVFAIL is a server answer, not a transport failure: no
        // retry, the client sees it directly.
        assert_eq!(resp.rcode, Rcode::ServFail);
        assert_eq!(r.stats().retries, 0);
        assert_eq!(r.stats().servfail_responses, 0);
    }
}
