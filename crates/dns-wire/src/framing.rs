//! Message framing for stream transports.
//!
//! DNS over a stream needs explicit message boundaries. Two framings
//! matter to the study's transport ladder:
//!
//! * **TCP / DoT** — RFC 1035 §4.2.2: each message is preceded by a
//!   two-byte big-endian length. [`frame_tcp`] / [`unframe_tcp`] are the
//!   pure-buffer version (no I/O), shared by the simulator's stream
//!   transports and `dnsd`'s real TCP listener.
//! * **DoH** — RFC 8484 carries the same wire message as an HTTP body.
//!   The simulation needs only the framing shape, not an HTTP stack:
//!   [`frame_doh_request`] / [`frame_doh_response`] emit a minimal,
//!   deterministic HTTP/1.1 POST exchange with a `content-length` body,
//!   and the unframers parse exactly that (tolerating header case and
//!   extra headers).
//!
//! All unframers return `(payload, consumed)` so a caller draining a
//! stream buffer knows where the next frame starts, and they distinguish
//! "need more bytes" ([`WireError::Truncated`]) from "this will never
//! parse" ([`WireError::BadFraming`]).

use crate::error::{WireError, WireResult};

/// Largest message a two-byte length prefix can carry.
pub const MAX_FRAME_LEN: usize = u16::MAX as usize;

/// The well-known DoH endpoint path (RFC 8484 §4.1 convention).
pub const DOH_PATH: &str = "/dns-query";

/// The DoH media type (RFC 8484 §6).
pub const DOH_CONTENT_TYPE: &str = "application/dns-message";

/// Prefixes `msg` with its two-byte big-endian length (RFC 1035 §4.2.2).
pub fn frame_tcp(msg: &[u8]) -> WireResult<Vec<u8>> {
    if msg.len() > MAX_FRAME_LEN {
        return Err(WireError::MessageTooLong(msg.len()));
    }
    let mut out = Vec::with_capacity(2 + msg.len());
    out.extend_from_slice(&(msg.len() as u16).to_be_bytes());
    out.extend_from_slice(msg);
    Ok(out)
}

/// Reads one length-prefixed message from the front of `buf`, returning
/// the payload and the total bytes consumed (`2 + payload.len()`).
/// [`WireError::Truncated`] means the frame is incomplete — read more and
/// retry with the longer buffer.
pub fn unframe_tcp(buf: &[u8]) -> WireResult<(&[u8], usize)> {
    if buf.len() < 2 {
        return Err(WireError::Truncated {
            context: "tcp length prefix",
        });
    }
    let len = u16::from_be_bytes([buf[0], buf[1]]) as usize;
    if buf.len() < 2 + len {
        return Err(WireError::Truncated {
            context: "tcp framed message",
        });
    }
    Ok((&buf[2..2 + len], 2 + len))
}

/// Frames `msg` as a deterministic DoH POST request.
pub fn frame_doh_request(msg: &[u8]) -> Vec<u8> {
    frame_http(&format!("POST {DOH_PATH} HTTP/1.1"), msg)
}

/// Frames `msg` as a deterministic DoH 200 response.
pub fn frame_doh_response(msg: &[u8]) -> Vec<u8> {
    frame_http("HTTP/1.1 200 OK", msg)
}

/// Reads one DoH request from the front of `buf`; returns the DNS body
/// and the total bytes consumed.
pub fn unframe_doh_request(buf: &[u8]) -> WireResult<(&[u8], usize)> {
    unframe_http(buf, |start| {
        start.starts_with("POST ") && start.contains(DOH_PATH)
    })
}

/// Reads one DoH response from the front of `buf`; returns the DNS body
/// and the total bytes consumed.
pub fn unframe_doh_response(buf: &[u8]) -> WireResult<(&[u8], usize)> {
    unframe_http(buf, |start| start.starts_with("HTTP/1.1 200"))
}

fn frame_http(start_line: &str, body: &[u8]) -> Vec<u8> {
    let head = format!(
        "{start_line}\r\ncontent-type: {DOH_CONTENT_TYPE}\r\ncontent-length: {}\r\n\r\n",
        body.len()
    );
    let mut out = Vec::with_capacity(head.len() + body.len());
    out.extend_from_slice(head.as_bytes());
    out.extend_from_slice(body);
    out
}

fn unframe_http(buf: &[u8], start_ok: impl FnOnce(&str) -> bool) -> WireResult<(&[u8], usize)> {
    // Locate the blank line ending the header section.
    let Some(head_end) = buf.windows(4).position(|w| w == b"\r\n\r\n") else {
        return Err(WireError::Truncated {
            context: "doh header",
        });
    };
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| WireError::BadFraming("doh header is not ASCII"))?;
    let mut lines = head.split("\r\n");
    let start = lines.next().unwrap_or("");
    if !start_ok(start) {
        return Err(WireError::BadFraming("unexpected doh start line"));
    }
    let mut content_length: Option<usize> = None;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            return Err(WireError::BadFraming("doh header line without colon"));
        };
        if name.trim().eq_ignore_ascii_case("content-length") {
            content_length = Some(
                value
                    .trim()
                    .parse()
                    .map_err(|_| WireError::BadFraming("bad content-length"))?,
            );
        }
    }
    let Some(len) = content_length else {
        return Err(WireError::BadFraming("missing content-length"));
    };
    let body_start = head_end + 4;
    if buf.len() < body_start + len {
        return Err(WireError::Truncated {
            context: "doh body",
        });
    }
    Ok((&buf[body_start..body_start + len], body_start + len))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tcp_round_trip_with_trailing_bytes() {
        let msg = b"\x12\x34hello dns";
        let mut framed = frame_tcp(msg).unwrap();
        assert_eq!(framed.len(), msg.len() + 2);
        framed.extend_from_slice(b"NEXT FRAME");
        let (payload, consumed) = unframe_tcp(&framed).unwrap();
        assert_eq!(payload, msg);
        assert_eq!(consumed, msg.len() + 2);
    }

    #[test]
    fn tcp_empty_and_max_sizes() {
        let empty = frame_tcp(b"").unwrap();
        let (payload, consumed) = unframe_tcp(&empty).unwrap();
        assert!(payload.is_empty());
        assert_eq!(consumed, 2);
        let big = vec![0xAB; MAX_FRAME_LEN];
        let framed = frame_tcp(&big).unwrap();
        assert_eq!(unframe_tcp(&framed).unwrap().0, &big[..]);
        let over = vec![0u8; MAX_FRAME_LEN + 1];
        assert_eq!(
            frame_tcp(&over),
            Err(WireError::MessageTooLong(MAX_FRAME_LEN + 1))
        );
    }

    #[test]
    fn tcp_incomplete_frames_ask_for_more() {
        assert!(matches!(
            unframe_tcp(&[0x00]),
            Err(WireError::Truncated { .. })
        ));
        // Prefix promises 5 bytes, only 3 arrived.
        assert!(matches!(
            unframe_tcp(&[0x00, 0x05, 1, 2, 3]),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn doh_request_round_trip() {
        let msg = b"dns body \x00\xff";
        let mut framed = frame_doh_request(msg);
        framed.extend_from_slice(b"pipelined");
        let (body, consumed) = unframe_doh_request(&framed).unwrap();
        assert_eq!(body, msg);
        assert_eq!(consumed, framed.len() - b"pipelined".len());
        let text = String::from_utf8_lossy(&framed[..consumed - msg.len()]);
        assert!(text.starts_with("POST /dns-query HTTP/1.1\r\n"));
        assert!(text.contains("content-type: application/dns-message"));
    }

    #[test]
    fn doh_response_round_trip() {
        let msg = vec![7u8; 2000]; // bodies are not size-limited
        let framed = frame_doh_response(&msg);
        let (body, consumed) = unframe_doh_response(&framed).unwrap();
        assert_eq!(body, msg);
        assert_eq!(consumed, framed.len());
    }

    #[test]
    fn doh_rejects_wrong_shape_but_tolerates_extra_headers() {
        // A response is not a request.
        let framed = frame_doh_response(b"x");
        assert!(matches!(
            unframe_doh_request(&framed),
            Err(WireError::BadFraming(_))
        ));
        // Extra headers and mixed case are fine.
        let raw = b"POST /dns-query HTTP/1.1\r\nHost: example\r\nContent-Length: 3\r\n\r\nabcrest";
        let (body, consumed) = unframe_doh_request(raw).unwrap();
        assert_eq!(body, b"abc");
        assert_eq!(consumed, raw.len() - 4);
        // Missing the header terminator: need more bytes.
        assert!(matches!(
            unframe_doh_request(b"POST /dns-query HTTP/1.1\r\n"),
            Err(WireError::Truncated { .. })
        ));
        // Body shorter than content-length: need more bytes.
        assert!(matches!(
            unframe_doh_request(b"POST /dns-query HTTP/1.1\r\ncontent-length: 9\r\n\r\nabc"),
            Err(WireError::Truncated { .. })
        ));
        // Garbage content-length never parses.
        assert!(matches!(
            unframe_doh_request(b"POST /dns-query HTTP/1.1\r\ncontent-length: zz\r\n\r\n"),
            Err(WireError::BadFraming(_))
        ));
    }
}
