//! Whole-world generation from a seeded configuration.

use dns_wire::IpPrefix;
use netsim::geo::{city, GeoPoint, CITIES};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::net::IpAddr;

use crate::addr::AddrAllocator;
use crate::asn::{generate_ases, jitter_position, AsId, AutonomousSystem};
use crate::entities::{
    CdnFootprint, ChainSpec, ClientSpec, EdgeServerSpec, EgressResolverSpec, ForwarderSpec,
    HiddenResolverSpec, PublicServiceSpec,
};

/// Configuration for world generation. Defaults give a laptop-scale world
/// whose *shape* mirrors the paper's populations.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// Seed for all generation randomness.
    pub seed: u64,
    /// Chinese ASes (the paper: 19 among scan egress ASes; includes the
    /// dominant AS as the first).
    pub chinese_ases: usize,
    /// Other ASes.
    pub other_ases: usize,
    /// Number of client /24 subnets, each with one or more clients.
    pub client_subnets: usize,
    /// Clients per subnet (mean; actual count is 1..=2*mean-1).
    pub clients_per_subnet: usize,
    /// Open forwarders.
    pub forwarders: usize,
    /// Hidden resolvers.
    pub hidden_resolvers: usize,
    /// Egress resolvers that are NOT part of the public service.
    pub independent_egress: usize,
    /// Egress resolvers of the major public service.
    pub public_egress: usize,
    /// Fraction of chains that include a hidden hop.
    pub hidden_chain_fraction: f64,
    /// Fraction of chains whose egress belongs to the public service.
    pub public_chain_fraction: f64,
    /// Fraction of hidden hops deliberately placed far from the forwarder
    /// (the §8.2 "Santiago behind Italy" pathology; paper observes ~8% of
    /// combinations with hidden farther than egress).
    pub misplaced_hidden_fraction: f64,
    /// Cities with CDN edges (empty = all cities in the table).
    pub cdn_cities: Vec<&'static str>,
    /// Edge servers per CDN city.
    pub edges_per_city: usize,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            seed: 0,
            chinese_ases: 19,
            other_ases: 64,
            client_subnets: 200,
            clients_per_subnet: 3,
            forwarders: 300,
            hidden_resolvers: 60,
            independent_egress: 40,
            public_egress: 24,
            hidden_chain_fraction: 0.5,
            public_chain_fraction: 0.6,
            misplaced_hidden_fraction: 0.10,
            cdn_cities: Vec::new(),
            edges_per_city: 4,
        }
    }
}

/// A fully generated world: every entity the experiments instantiate.
#[derive(Debug, Clone)]
pub struct World {
    /// The AS population (index 0 is the dominant Chinese AS).
    pub ases: Vec<AutonomousSystem>,
    /// Client subnets (one /24 per entry).
    pub client_subnets: Vec<IpPrefix>,
    /// All clients.
    pub clients: Vec<ClientSpec>,
    /// Open forwarders.
    pub forwarders: Vec<ForwarderSpec>,
    /// Hidden resolvers.
    pub hidden_resolvers: Vec<HiddenResolverSpec>,
    /// All egress resolvers (public-service ones flagged).
    pub egress_resolvers: Vec<EgressResolverSpec>,
    /// Resolution chains referenced by forwarders.
    pub chains: Vec<ChainSpec>,
    /// The major public resolution service.
    pub public_service: PublicServiceSpec,
    /// The CDN footprint.
    pub cdn: CdnFootprint,
}

impl World {
    /// Generates a world from the config. Same config (incl. seed) ⇒ same
    /// world.
    pub fn generate(cfg: &WorldConfig) -> World {
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let mut alloc = AddrAllocator::new();
        let ases = generate_ases(cfg.chinese_ases, cfg.other_ases, &mut rng);

        // Clients: each subnet homes in a random AS's territory.
        let mut client_subnets = Vec::with_capacity(cfg.client_subnets);
        let mut clients = Vec::new();
        for _ in 0..cfg.client_subnets {
            let asn = &ases[rng.gen_range(0..ases.len())];
            let block = alloc.alloc_v4_block();
            let base_pos = asn.pick_position(&mut rng);
            client_subnets.push(block);
            let n = if cfg.clients_per_subnet <= 1 {
                1
            } else {
                rng.gen_range(1..cfg.clients_per_subnet * 2)
            };
            for i in 0..n {
                clients.push(ClientSpec {
                    addr: AddrAllocator::host_in(&block, 1 + i as u32),
                    subnet: block,
                    pos: jitter_position(base_pos, 10.0, &mut rng),
                    asn: asn.id,
                });
            }
        }

        // Egress resolvers: public service first, then independents.
        let mut egress_resolvers = Vec::new();
        let mut public_indices = Vec::new();
        // The public service concentrates egresses in a handful of regions —
        // this is what makes public resolvers poor location proxies.
        let service_regions: Vec<&'static str> = {
            let mut names: Vec<&'static str> = vec![
                "Mountain View",
                "Dallas",
                "Frankfurt",
                "Singapore",
                "Sao Paulo",
                "Tokyo",
            ];
            names.shuffle(&mut rng);
            names
        };
        for i in 0..cfg.public_egress {
            let region = city(service_regions[i % service_regions.len()]).expect("known city");
            let block = alloc.alloc_v4_block();
            public_indices.push(egress_resolvers.len());
            egress_resolvers.push(EgressResolverSpec {
                addr: AddrAllocator::host_in(&block, 1),
                pos: jitter_position(region.pos, 30.0, &mut rng),
                asn: AsId(15169), // the service's own AS
                public_service: true,
            });
        }
        for _ in 0..cfg.independent_egress {
            let asn = &ases[rng.gen_range(0..ases.len())];
            let block = alloc.alloc_v4_block();
            egress_resolvers.push(EgressResolverSpec {
                addr: AddrAllocator::host_in(&block, 1),
                pos: asn.pick_position(&mut rng),
                asn: asn.id,
                public_service: false,
            });
        }

        // Public service front-ends: one per region.
        let frontends = service_regions
            .iter()
            .map(|name| {
                let c = city(name).expect("known city");
                let block = alloc.alloc_v4_block();
                (
                    AddrAllocator::host_in(&block, 1),
                    jitter_position(c.pos, 20.0, &mut rng),
                )
            })
            .collect();

        // Hidden resolvers, scattered like independent infrastructure.
        let mut hidden_resolvers = Vec::with_capacity(cfg.hidden_resolvers);
        for _ in 0..cfg.hidden_resolvers {
            let asn = &ases[rng.gen_range(0..ases.len())];
            let block = alloc.alloc_v4_block();
            hidden_resolvers.push(HiddenResolverSpec {
                addr: AddrAllocator::host_in(&block, 1),
                pos: asn.pick_position(&mut rng),
                asn: asn.id,
            });
        }

        // Forwarders and their chains.
        let mut chains = Vec::with_capacity(cfg.forwarders);
        let mut forwarders = Vec::with_capacity(cfg.forwarders);
        for _ in 0..cfg.forwarders {
            let asn = &ases[rng.gen_range(0..ases.len())];
            let block = alloc.alloc_v4_block();
            let pos = asn.pick_position(&mut rng);

            let use_public = rng.gen_bool(cfg.public_chain_fraction.clamp(0.0, 1.0));
            let egress = if use_public && !public_indices.is_empty() {
                public_indices[rng.gen_range(0..public_indices.len())]
            } else if egress_resolvers.len() > public_indices.len() {
                rng.gen_range(public_indices.len()..egress_resolvers.len())
            } else {
                0
            };

            let hidden = if !hidden_resolvers.is_empty()
                && rng.gen_bool(cfg.hidden_chain_fraction.clamp(0.0, 1.0))
            {
                if rng.gen_bool(cfg.misplaced_hidden_fraction.clamp(0.0, 1.0)) {
                    // Pick the hidden resolver farthest from the forwarder:
                    // the pathological configuration.
                    hidden_resolvers
                        .iter()
                        .enumerate()
                        .max_by(|(_, a), (_, b)| {
                            a.pos
                                .distance_km(&pos)
                                .partial_cmp(&b.pos.distance_km(&pos))
                                .expect("finite")
                        })
                        .map(|(i, _)| i)
                } else {
                    // Pick the nearest hidden resolver: in the wild these
                    // are typically ISP-internal machines close to the
                    // forwarder population they serve.
                    hidden_resolvers
                        .iter()
                        .enumerate()
                        .min_by(|(_, a), (_, b)| {
                            a.pos
                                .distance_km(&pos)
                                .partial_cmp(&b.pos.distance_km(&pos))
                                .expect("finite")
                        })
                        .map(|(i, _)| i)
                }
            } else {
                None
            };

            let chain_idx = chains.len();
            chains.push(ChainSpec { hidden, egress });
            forwarders.push(ForwarderSpec {
                addr: AddrAllocator::host_in(&block, 1),
                pos,
                asn: asn.id,
                chain: chain_idx,
            });
        }

        // CDN footprint.
        let cdn_cities: Vec<&'static str> = if cfg.cdn_cities.is_empty() {
            CITIES.iter().map(|c| c.name).collect()
        } else {
            cfg.cdn_cities.clone()
        };
        let mut edges = Vec::new();
        for name in &cdn_cities {
            let c = city(name).expect("city in table");
            for _ in 0..cfg.edges_per_city {
                let block = alloc.alloc_v4_block();
                edges.push(EdgeServerSpec {
                    addr: AddrAllocator::host_in(&block, 1),
                    pos: jitter_position(c.pos, 15.0, &mut rng),
                    city: c.name.to_string(),
                });
            }
        }

        World {
            ases,
            client_subnets,
            clients,
            forwarders,
            hidden_resolvers,
            egress_resolvers,
            chains,
            public_service: PublicServiceSpec {
                frontends,
                egress_indices: public_indices,
            },
            cdn: CdnFootprint { edges },
        }
    }

    /// The public-service front-end nearest to `pos` (anycast routing
    /// approximation).
    pub fn nearest_frontend(&self, pos: &GeoPoint) -> Option<(IpAddr, GeoPoint)> {
        self.public_service
            .frontends
            .iter()
            .min_by(|(_, a), (_, b)| {
                a.distance_km(pos)
                    .partial_cmp(&b.distance_km(pos))
                    .expect("finite")
            })
            .copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn default_world_generates_consistently() {
        let w1 = World::generate(&WorldConfig::default());
        let w2 = World::generate(&WorldConfig::default());
        assert_eq!(w1.clients.len(), w2.clients.len());
        assert_eq!(w1.forwarders.len(), w2.forwarders.len());
        assert_eq!(
            w1.clients.first().map(|c| c.addr),
            w2.clients.first().map(|c| c.addr)
        );
    }

    #[test]
    fn counts_match_config() {
        let cfg = WorldConfig {
            client_subnets: 50,
            forwarders: 70,
            hidden_resolvers: 10,
            independent_egress: 12,
            public_egress: 6,
            ..WorldConfig::default()
        };
        let w = World::generate(&cfg);
        assert_eq!(w.client_subnets.len(), 50);
        assert_eq!(w.forwarders.len(), 70);
        assert_eq!(w.chains.len(), 70);
        assert_eq!(w.hidden_resolvers.len(), 10);
        assert_eq!(w.egress_resolvers.len(), 18);
        assert_eq!(w.public_service.egress_indices.len(), 6);
        assert!(w.clients.len() >= 50);
    }

    #[test]
    fn all_addresses_unique() {
        let w = World::generate(&WorldConfig::default());
        let mut addrs = HashSet::new();
        for a in w
            .clients
            .iter()
            .map(|c| c.addr)
            .chain(w.forwarders.iter().map(|f| f.addr))
            .chain(w.hidden_resolvers.iter().map(|h| h.addr))
            .chain(w.egress_resolvers.iter().map(|e| e.addr))
            .chain(w.cdn.edges.iter().map(|e| e.addr))
        {
            assert!(addrs.insert(a), "duplicate address {a}");
        }
    }

    #[test]
    fn chains_reference_valid_entities() {
        let w = World::generate(&WorldConfig::default());
        for f in &w.forwarders {
            let chain = &w.chains[f.chain];
            assert!(chain.egress < w.egress_resolvers.len());
            if let Some(h) = chain.hidden {
                assert!(h < w.hidden_resolvers.len());
            }
        }
    }

    #[test]
    fn public_fraction_roughly_respected() {
        let cfg = WorldConfig {
            forwarders: 1000,
            public_chain_fraction: 0.6,
            ..WorldConfig::default()
        };
        let w = World::generate(&cfg);
        let public = w
            .chains
            .iter()
            .filter(|c| w.egress_resolvers[c.egress].public_service)
            .count();
        assert!((450..750).contains(&public), "{public}");
    }

    #[test]
    fn hidden_fraction_roughly_respected() {
        let cfg = WorldConfig {
            forwarders: 1000,
            hidden_chain_fraction: 0.5,
            ..WorldConfig::default()
        };
        let w = World::generate(&cfg);
        let hidden = w.chains.iter().filter(|c| c.hidden.is_some()).count();
        assert!((380..620).contains(&hidden), "{hidden}");
    }

    #[test]
    fn client_positions_near_subnet_peers() {
        // Clients of the same /24 should be geographically close (they share
        // a base position with ≤10 km jitter each).
        let w = World::generate(&WorldConfig::default());
        use std::collections::HashMap;
        let mut by_subnet: HashMap<_, Vec<&ClientSpec>> = HashMap::new();
        for c in &w.clients {
            by_subnet.entry(c.subnet).or_default().push(c);
        }
        for (_, group) in by_subnet {
            for pair in group.windows(2) {
                assert!(pair[0].pos.distance_km(&pair[1].pos) < 50.0);
            }
        }
    }

    #[test]
    fn nearest_frontend_returns_closest() {
        let w = World::generate(&WorldConfig::default());
        let probe = netsim::geo::city("Frankfurt").unwrap().pos;
        let (_, pos) = w.nearest_frontend(&probe).unwrap();
        for (_, other) in &w.public_service.frontends {
            assert!(pos.distance_km(&probe) <= other.distance_km(&probe) + 1e-9);
        }
    }

    #[test]
    fn cdn_edges_cover_requested_cities() {
        let cfg = WorldConfig {
            cdn_cities: vec!["Chicago", "Tokyo"],
            edges_per_city: 2,
            ..WorldConfig::default()
        };
        let w = World::generate(&cfg);
        assert_eq!(w.cdn.edges.len(), 4);
        let cities: HashSet<_> = w.cdn.edges.iter().map(|e| e.city.as_str()).collect();
        assert_eq!(cities, HashSet::from(["Chicago", "Tokyo"]));
    }
}
