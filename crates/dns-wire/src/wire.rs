//! Low-level byte reader/writer with DNS name compression support.
//!
//! [`WireReader`] is a cursor over an immutable byte slice that knows how to
//! follow compression pointers. [`WireWriter`] appends to a growable buffer
//! and remembers the offsets of names it has written so later names can be
//! compressed against them.

use bytes::{BufMut, BytesMut};
use std::collections::HashMap;

use crate::error::{WireError, WireResult};

/// Maximum number of compression pointers we will chase for a single name.
/// A legitimate name has at most 127 labels, so 128 jumps is generous.
pub const MAX_POINTER_CHASES: usize = 128;

/// Cursor over a DNS message being parsed.
///
/// The reader always retains a view of the *entire* message so that
/// compression pointers (which are absolute offsets from the start of the
/// message) can be resolved from anywhere.
#[derive(Debug, Clone)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Creates a reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Current absolute offset from the start of the message.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Number of unread bytes.
    pub fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    /// True when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// The whole underlying message (used by name decompression).
    pub fn full_message(&self) -> &'a [u8] {
        self.buf
    }

    /// Moves the cursor to an absolute offset. Only used internally for
    /// pointer chasing; offsets are validated by the caller.
    pub(crate) fn seek(&mut self, pos: usize) {
        self.pos = pos;
    }

    /// Reads a single octet.
    pub fn read_u8(&mut self, context: &'static str) -> WireResult<u8> {
        if self.remaining() < 1 {
            return Err(WireError::Truncated { context });
        }
        let b = self.buf[self.pos];
        self.pos += 1;
        Ok(b)
    }

    /// Reads a big-endian `u16`.
    pub fn read_u16(&mut self, context: &'static str) -> WireResult<u16> {
        if self.remaining() < 2 {
            return Err(WireError::Truncated { context });
        }
        let v = u16::from_be_bytes([self.buf[self.pos], self.buf[self.pos + 1]]);
        self.pos += 2;
        Ok(v)
    }

    /// Reads a big-endian `u32`.
    pub fn read_u32(&mut self, context: &'static str) -> WireResult<u32> {
        if self.remaining() < 4 {
            return Err(WireError::Truncated { context });
        }
        let mut be = [0u8; 4];
        be.copy_from_slice(&self.buf[self.pos..self.pos + 4]);
        self.pos += 4;
        Ok(u32::from_be_bytes(be))
    }

    /// Reads exactly `n` bytes, returning a slice borrowed from the message.
    pub fn read_bytes(&mut self, n: usize, context: &'static str) -> WireResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(WireError::Truncated { context });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Upper-bounds a section's `Vec` preallocation from a header count.
    ///
    /// A hostile header can claim 65 535 records while the message holds
    /// only a handful of bytes; allocating `count` slots up front would let
    /// a 12-byte datagram reserve megabytes. Clamp to the number of
    /// entries the unread bytes could possibly encode, at `min_wire` bytes
    /// each (the smallest legal encoding — for a record, a 1-byte root
    /// owner + type + class + TTL + RDLENGTH = 11 bytes). Parsing still
    /// attempts `count` entries and fails with the usual truncation/count
    /// errors; only the speculative allocation is bounded.
    pub fn capacity_for(&self, count: u16, min_wire: usize) -> usize {
        (count as usize).min(self.remaining() / min_wire.max(1))
    }

    /// Returns a sub-reader limited to the next `n` bytes and advances this
    /// reader past them. The sub-reader still sees the full message for
    /// compression-pointer resolution but its cursor starts at the sub-slice.
    pub fn sub_reader(&mut self, n: usize, context: &'static str) -> WireResult<WireReader<'a>> {
        if self.remaining() < n {
            return Err(WireError::Truncated { context });
        }
        let start = self.pos;
        self.pos += n;
        Ok(WireReader {
            buf: &self.buf[..start + n],
            pos: start,
        })
    }
}

/// Append-only writer with name compression bookkeeping.
#[derive(Debug)]
pub struct WireWriter {
    buf: BytesMut,
    /// Maps a fully-qualified lowercase name suffix (e.g. `www.example.com.`)
    /// to the message offset where it was first written. Offsets above
    /// 0x3FFF cannot be expressed as pointers and are not recorded.
    name_offsets: HashMap<String, u16>,
    /// When false, name compression is disabled (useful for testing and for
    /// contexts like RDATA of unknown types where compression is forbidden).
    compress: bool,
}

impl WireWriter {
    /// Creates an empty writer with compression enabled.
    pub fn new() -> Self {
        WireWriter {
            buf: BytesMut::with_capacity(512),
            name_offsets: HashMap::new(),
            compress: true,
        }
    }

    /// Creates a writer with name compression disabled.
    pub fn without_compression() -> Self {
        let mut w = Self::new();
        w.compress = false;
        w
    }

    /// Whether name compression is enabled.
    pub fn compression_enabled(&self) -> bool {
        self.compress
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one octet.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    /// Appends a big-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.put_u16(v);
    }

    /// Appends a big-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.put_u32(v);
    }

    /// Appends raw bytes.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.buf.put_slice(v);
    }

    /// Overwrites a big-endian `u16` at an absolute offset (used to patch
    /// RDLENGTH and header counts after the fact).
    pub fn patch_u16(&mut self, offset: usize, v: u16) {
        let be = v.to_be_bytes();
        self.buf[offset] = be[0];
        self.buf[offset + 1] = be[1];
    }

    /// Looks up a previously written name suffix; returns its offset if it
    /// can be the target of a compression pointer.
    pub(crate) fn lookup_name(&self, key: &str) -> Option<u16> {
        if !self.compress {
            return None;
        }
        self.name_offsets.get(key).copied()
    }

    /// Records that a name suffix was written starting at `offset`.
    pub(crate) fn record_name(&mut self, key: String, offset: usize) {
        // Pointers only address the low 14 bits.
        if offset <= 0x3FFF {
            self.name_offsets.entry(key).or_insert(offset as u16);
        }
    }

    /// Finalizes the writer, validating the DNS message size limit.
    pub fn finish(self) -> WireResult<Vec<u8>> {
        if self.buf.len() > u16::MAX as usize {
            return Err(WireError::MessageTooLong(self.buf.len()));
        }
        Ok(self.buf.to_vec())
    }

    /// Finalizes without the 64 KiB check (for non-message byte strings).
    pub fn finish_unchecked(self) -> Vec<u8> {
        self.buf.to_vec()
    }
}

impl Default for WireWriter {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reader_scalars_roundtrip() {
        let data = [0xAB, 0x12, 0x34, 0xDE, 0xAD, 0xBE, 0xEF, 0x01];
        let mut r = WireReader::new(&data);
        assert_eq!(r.read_u8("t").unwrap(), 0xAB);
        assert_eq!(r.read_u16("t").unwrap(), 0x1234);
        assert_eq!(r.read_u32("t").unwrap(), 0xDEADBEEF);
        assert_eq!(r.read_u8("t").unwrap(), 0x01);
        assert!(r.is_empty());
    }

    #[test]
    fn reader_truncation_reports_context() {
        let mut r = WireReader::new(&[0x00]);
        let err = r.read_u16("header id").unwrap_err();
        assert_eq!(
            err,
            WireError::Truncated {
                context: "header id"
            }
        );
    }

    #[test]
    fn reader_read_bytes_borrows() {
        let data = [1, 2, 3, 4, 5];
        let mut r = WireReader::new(&data);
        let s = r.read_bytes(3, "t").unwrap();
        assert_eq!(s, &[1, 2, 3]);
        assert_eq!(r.position(), 3);
        assert_eq!(r.remaining(), 2);
    }

    #[test]
    fn sub_reader_is_bounded_but_sees_prefix() {
        let data = [9, 9, 1, 2, 3, 7, 7];
        let mut r = WireReader::new(&data);
        r.read_u16("skip").unwrap();
        let mut sub = r.sub_reader(3, "rdata").unwrap();
        assert_eq!(sub.read_bytes(3, "t").unwrap(), &[1, 2, 3]);
        assert!(sub.is_empty());
        // Parent reader advanced past the sub-slice.
        assert_eq!(r.read_u16("t").unwrap(), 0x0707);
    }

    #[test]
    fn sub_reader_truncation() {
        let data = [1, 2];
        let mut r = WireReader::new(&data);
        assert!(r.sub_reader(3, "rdata").is_err());
    }

    #[test]
    fn capacity_for_clamps_hostile_counts() {
        let data = [0u8; 40];
        let mut r = WireReader::new(&data);
        r.read_u16("skip").unwrap();
        // 38 bytes remain: at most 3 eleven-byte records could fit, however
        // large the claimed count.
        assert_eq!(r.capacity_for(u16::MAX, 11), 3);
        // An honest count below the ceiling passes through unchanged.
        assert_eq!(r.capacity_for(2, 11), 2);
        // A zero min_wire must not divide by zero.
        assert_eq!(r.capacity_for(10, 0), 10);
    }

    #[test]
    fn writer_scalars() {
        let mut w = WireWriter::new();
        w.put_u8(0xAB);
        w.put_u16(0x1234);
        w.put_u32(0xDEADBEEF);
        w.put_bytes(&[1, 2]);
        assert_eq!(
            w.finish().unwrap(),
            vec![0xAB, 0x12, 0x34, 0xDE, 0xAD, 0xBE, 0xEF, 1, 2]
        );
    }

    #[test]
    fn writer_patch_u16() {
        let mut w = WireWriter::new();
        w.put_u16(0);
        w.put_u8(0xFF);
        w.patch_u16(0, 0xBEEF);
        assert_eq!(w.finish().unwrap(), vec![0xBE, 0xEF, 0xFF]);
    }

    #[test]
    fn writer_rejects_oversize_message() {
        let mut w = WireWriter::new();
        w.put_bytes(&vec![0u8; 70_000]);
        assert!(matches!(w.finish(), Err(WireError::MessageTooLong(70_000))));
    }

    #[test]
    fn name_offset_not_recorded_beyond_pointer_range() {
        let mut w = WireWriter::new();
        w.put_bytes(&vec![0u8; 0x4000]);
        w.record_name("example.com.".into(), 0x4000);
        assert_eq!(w.lookup_name("example.com."), None);
        w.record_name("example.org.".into(), 12);
        assert_eq!(w.lookup_name("example.org."), Some(12));
    }

    #[test]
    fn compression_disabled_lookup_is_none() {
        let mut w = WireWriter::without_compression();
        w.record_name("a.example.".into(), 0);
        assert_eq!(w.lookup_name("a.example."), None);
    }
}
