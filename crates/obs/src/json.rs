//! A minimal JSON parser and string escaper.
//!
//! The workspace's vendored `serde` stub is annotation-only (no codegen),
//! so every exporter hand-rolls its JSON and this module closes the loop:
//! [`escape`] for emission, [`parse`] for the `obs-validate` checks that
//! read the exports back. The parser accepts standard JSON; it exists for
//! validation, not performance.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (stored as `f64`; exact for the integer ranges the
    /// exporters emit in practice).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The object map, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Escapes `s` for embedding in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Parses `text` as one JSON document.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain bytes in one go.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid UTF-8 in string".to_string())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        other => {
                            return Err(format!("invalid escape \\{}", other as char));
                        }
                    }
                }
                _ => return Err("unterminated string".to_string()),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| "truncated \\u escape".to_string())?;
        let s = std::str::from_utf8(slice).map_err(|_| "invalid \\u escape".to_string())?;
        let v = u32::from_str_radix(s, 16).map_err(|_| "invalid \\u escape".to_string())?;
        self.pos = end;
        Ok(v)
    }

    fn unicode_escape(&mut self) -> Result<char, String> {
        let hi = self.hex4()?;
        let code = if (0xD800..0xDC00).contains(&hi) {
            // Surrogate pair: expect "\uXXXX" for the low half.
            if self.bytes.get(self.pos..self.pos + 2) == Some(b"\\u") {
                self.pos += 2;
                let lo = self.hex4()?;
                0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00) & 0x3FF)
            } else {
                return Err("lone high surrogate".to_string());
            }
        } else {
            hi
        };
        char::from_u32(code).ok_or_else(|| "invalid code point".to_string())
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits");
        s.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("invalid number {s:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("42").unwrap(), Value::Num(42.0));
        assert_eq!(parse("-1.5e2").unwrap(), Value::Num(-150.0));
        assert_eq!(parse("\"hi\"").unwrap(), Value::Str("hi".to_string()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": "c"}], "d": null}"#).unwrap();
        let obj = v.as_object().unwrap();
        assert_eq!(obj.len(), 2);
        match &obj["a"] {
            Value::Arr(items) => {
                assert_eq!(items[0], Value::Num(1.0));
                assert_eq!(items[1].as_object().unwrap()["b"].as_str(), Some("c"));
            }
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn escape_roundtrips_through_parse() {
        let hairy = "a\"b\\c\nd\te\u{1}f";
        let doc = format!("\"{}\"", escape(hairy));
        assert_eq!(parse(&doc).unwrap().as_str(), Some(hairy));
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(parse("\"\\u0041\"").unwrap().as_str(), Some("A"));
        // Astral plane via a surrogate pair.
        assert_eq!(parse("\"\\ud83d\\ude00\"").unwrap().as_str(), Some("😀"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"unterminated").is_err());
    }
}
