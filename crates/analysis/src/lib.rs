#![warn(missing_docs)]

//! The paper's analyses, re-implemented over simulated data.
//!
//! Each module corresponds to a section of the paper:
//!
//! * [`probing`] — §6.1: classify resolvers' ECS probing strategies from an
//!   authoritative query log;
//! * [`prefix_lengths`] — §6.2 / Table 1: tabulate ECS source prefix
//!   lengths and detect "jammed" last bytes;
//! * [`cache_compliance`] — §6.3: classify scope handling from paired-probe
//!   observations;
//! * [`cache_sim`] — §7: trace-driven cache simulation with and without
//!   ECS — cache blow-up factor (Figures 1–2) and hit rate (Figure 3);
//! * [`hidden`] — §8.2: hidden-resolver detection from ECS prefixes and
//!   forwarder–hidden vs forwarder–recursive distance analysis
//!   (Figures 4–5);
//! * [`mapping`] — §8.1/§8.3: user-to-edge mapping quality (Table 2,
//!   Figures 6–7);
//! * [`discovery`] — §5: passive-vs-active resolver discovery overlap;
//! * [`stats`] — shared CDF/percentile/binning utilities.
//!
//! ```
//! use analysis::{CacheSimConfig, CacheSimulator};
//! use workload::PublicCdnTraceGen;
//!
//! // Replay a small Public-Resolver/CDN trace with and without ECS.
//! let trace = PublicCdnTraceGen {
//!     resolvers: 4,
//!     subnets_per_resolver: 10,
//!     hostnames: 20,
//!     queries: 5_000,
//!     ..PublicCdnTraceGen::default()
//! }
//! .generate();
//! let result = CacheSimulator::new(CacheSimConfig::default()).run(&trace);
//! for r in &result.per_resolver {
//!     // ECS fragments this workload's cache (same names, many subnets).
//!     assert!(r.blowup_factor() >= 1.0);
//! }
//! ```

pub mod cache_compliance;
pub mod cache_sim;
pub mod discovery;
pub mod hidden;
pub mod mapping;
pub mod prefix_lengths;
pub mod probing;
pub mod stats;

pub use cache_compliance::{classify_compliance, ComplianceObservation, ComplianceVerdict};
pub use cache_sim::{
    default_parallelism, CacheSimConfig, CacheSimResult, CacheSimulator, ResolverCacheResult,
};
pub use discovery::DiscoveryOverlap;
pub use hidden::{DistanceCombo, HiddenAnalysis, HiddenResolverReport};
pub use mapping::{ConnectTimeSample, MappingQuality};
pub use prefix_lengths::{PrefixLengthTable, ResolverPrefixProfile};
pub use probing::{classify_probing, ProbingVerdict};
pub use stats::{Cdf, Percentiles};
