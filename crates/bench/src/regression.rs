//! Bench-history regression gate.
//!
//! The harness binaries (`bench_dnsd`, `bench_cache_sim`) write structured
//! JSON reports and append one JSONL history line per measured row. This
//! module closes the loop: a pinned baseline file (`ci/bench_baseline.json`)
//! names the numbers that matter, and [`run_gate`] re-reads the fresh
//! reports and fails when a number drifts past its tolerance band.
//!
//! A baseline is a list of checks:
//!
//! ```json
//! {
//!   "pinned_from": "BENCH_dnsd.json @ 0c96bab",
//!   "checks": [
//!     {"id": "dnsd_qps_w1", "file": "BENCH_dnsd.json", "path": "rows[0].qps",
//!      "kind": "min", "baseline": 121916, "tolerance_pct": 30},
//!     {"id": "dnsd_no_loss_w1", "file": "BENCH_dnsd.json", "path": "rows[0].lost",
//!      "kind": "max_abs", "bound": 0},
//!     {"id": "cache_sim_monotone", "file": "BENCH_cache_sim.json",
//!      "path": "results_identical_across_engines_and_threads", "kind": "bool_true"}
//!   ]
//! }
//! ```
//!
//! Check kinds:
//!
//! - `min` — higher is better; fails when
//!   `actual < baseline * (1 - tolerance_pct/100)`.
//! - `max` — lower is better; fails when
//!   `actual > baseline * (1 + tolerance_pct/100)`.
//! - `min_abs` / `max_abs` — absolute `bound`, no baseline scaling.
//! - `bool_true` — the pointed-at value must be JSON `true`.
//!
//! Paths are dotted with `[N]` array indexing (`rows[2].qps`,
//! `telemetry.overhead_at_parallelism_8`). A missing file, unparseable
//! report, or dangling path is a **failing** check, never a panic: a gate
//! that errors out green is no gate.

use obs::json::{self, Value};

/// How a check's bound is interpreted.
#[derive(Clone, Debug, PartialEq)]
pub enum CheckKind {
    /// Higher is better: `actual >= baseline * (1 - tol/100)`.
    Min { baseline: f64, tolerance_pct: f64 },
    /// Lower is better: `actual <= baseline * (1 + tol/100)`.
    Max { baseline: f64, tolerance_pct: f64 },
    /// Absolute floor: `actual >= bound`.
    MinAbs { bound: f64 },
    /// Absolute ceiling: `actual <= bound`.
    MaxAbs { bound: f64 },
    /// The value must be the JSON literal `true`.
    BoolTrue,
}

/// One pinned expectation against one report field.
#[derive(Clone, Debug)]
pub struct Check {
    /// Stable identifier, shown in the gate output.
    pub id: String,
    /// Report file the value lives in (relative to the report dir).
    pub file: String,
    /// Dotted path into the report (`rows[0].qps`).
    pub path: String,
    /// Bound semantics.
    pub kind: CheckKind,
}

/// Outcome of evaluating one [`Check`].
#[derive(Clone, Debug)]
pub struct CheckResult {
    /// The check's id.
    pub id: String,
    /// Whether the bound held.
    pub pass: bool,
    /// Human-readable `actual vs bound` line.
    pub detail: String,
}

/// All check outcomes from one gate run.
#[derive(Clone, Debug, Default)]
pub struct GateReport {
    /// One entry per baseline check, in baseline order.
    pub results: Vec<CheckResult>,
}

impl GateReport {
    /// True when every check held.
    pub fn pass(&self) -> bool {
        self.results.iter().all(|r| r.pass)
    }

    /// Count of failing checks.
    pub fn failures(&self) -> usize {
        self.results.iter().filter(|r| !r.pass).count()
    }

    /// The report as a PASS/FAIL table, one line per check.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for r in &self.results {
            out.push_str(if r.pass { "PASS " } else { "FAIL " });
            out.push_str(&r.id);
            out.push_str(": ");
            out.push_str(&r.detail);
            out.push('\n');
        }
        out.push_str(&format!(
            "{}/{} checks passed\n",
            self.results.len() - self.failures(),
            self.results.len()
        ));
        out
    }
}

/// Walks `path` into `v`: dot-separated object keys, each optionally
/// followed by `[N]` array indices (`rows[0].qps`, `a.b[2][0].c`).
pub fn lookup<'a>(v: &'a Value, path: &str) -> Option<&'a Value> {
    let mut cur = v;
    for seg in path.split('.') {
        let (key, rest) = match seg.find('[') {
            Some(i) => (&seg[..i], &seg[i..]),
            None => (seg, ""),
        };
        if !key.is_empty() {
            cur = cur.as_object()?.get(key)?;
        }
        let mut rest = rest;
        while let Some(stripped) = rest.strip_prefix('[') {
            let close = stripped.find(']')?;
            let idx: usize = stripped[..close].parse().ok()?;
            cur = match cur {
                Value::Arr(items) => items.get(idx)?,
                _ => return None,
            };
            rest = &stripped[close + 1..];
        }
        if !rest.is_empty() {
            return None;
        }
    }
    Some(cur)
}

fn num_field(obj: &std::collections::BTreeMap<String, Value>, key: &str) -> Result<f64, String> {
    obj.get(key)
        .and_then(Value::as_num)
        .ok_or_else(|| format!("check missing numeric {key:?}"))
}

fn str_field(obj: &std::collections::BTreeMap<String, Value>, key: &str) -> Result<String, String> {
    obj.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("check missing string {key:?}"))
}

/// Parses a baseline document into its checks. Errors name the offending
/// field; an empty check list is an error (a vacuous gate is a bug).
pub fn parse_baseline(text: &str) -> Result<Vec<Check>, String> {
    let doc = json::parse(text)?;
    let checks = doc
        .as_object()
        .and_then(|o| o.get("checks"))
        .ok_or("baseline has no \"checks\" array")?;
    let items = match checks {
        Value::Arr(items) => items,
        _ => return Err("\"checks\" is not an array".into()),
    };
    if items.is_empty() {
        return Err("baseline \"checks\" is empty".into());
    }
    let mut out = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let obj = item
            .as_object()
            .ok_or_else(|| format!("checks[{i}] is not an object"))?;
        let id = str_field(obj, "id").map_err(|e| format!("checks[{i}]: {e}"))?;
        let kind_name = str_field(obj, "kind").map_err(|e| format!("checks[{i}] ({id}): {e}"))?;
        let kind = match kind_name.as_str() {
            "min" => CheckKind::Min {
                baseline: num_field(obj, "baseline").map_err(|e| format!("{id}: {e}"))?,
                tolerance_pct: num_field(obj, "tolerance_pct").map_err(|e| format!("{id}: {e}"))?,
            },
            "max" => CheckKind::Max {
                baseline: num_field(obj, "baseline").map_err(|e| format!("{id}: {e}"))?,
                tolerance_pct: num_field(obj, "tolerance_pct").map_err(|e| format!("{id}: {e}"))?,
            },
            "min_abs" => CheckKind::MinAbs {
                bound: num_field(obj, "bound").map_err(|e| format!("{id}: {e}"))?,
            },
            "max_abs" => CheckKind::MaxAbs {
                bound: num_field(obj, "bound").map_err(|e| format!("{id}: {e}"))?,
            },
            "bool_true" => CheckKind::BoolTrue,
            other => return Err(format!("{id}: unknown check kind {other:?}")),
        };
        let file = str_field(obj, "file").map_err(|e| format!("{id}: {e}"))?;
        let path = str_field(obj, "path").map_err(|e| format!("{id}: {e}"))?;
        out.push(Check {
            id,
            file,
            path,
            kind,
        });
    }
    Ok(out)
}

/// Evaluates one check against the already-parsed report it points into.
pub fn evaluate(check: &Check, report: &Value) -> CheckResult {
    let at = format!("{}:{}", check.file, check.path);
    let Some(value) = lookup(report, &check.path) else {
        return CheckResult {
            id: check.id.clone(),
            pass: false,
            detail: format!("{at} not found in report"),
        };
    };
    let (pass, detail) = match &check.kind {
        CheckKind::BoolTrue => match value {
            Value::Bool(b) => (*b, format!("{at} = {b} (want true)")),
            other => (false, format!("{at} = {other:?} (want true)")),
        },
        kind => {
            let Some(actual) = value.as_num() else {
                return CheckResult {
                    id: check.id.clone(),
                    pass: false,
                    detail: format!("{at} is not a number"),
                };
            };
            match kind {
                CheckKind::Min {
                    baseline,
                    tolerance_pct,
                } => {
                    let floor = baseline * (1.0 - tolerance_pct / 100.0);
                    (
                        actual >= floor,
                        format!(
                            "{at} = {actual:.2} (floor {floor:.2} = {baseline:.2} - {tolerance_pct}%)"
                        ),
                    )
                }
                CheckKind::Max {
                    baseline,
                    tolerance_pct,
                } => {
                    let ceil = baseline * (1.0 + tolerance_pct / 100.0);
                    (
                        actual <= ceil,
                        format!(
                            "{at} = {actual:.2} (ceiling {ceil:.2} = {baseline:.2} + {tolerance_pct}%)"
                        ),
                    )
                }
                CheckKind::MinAbs { bound } => (
                    actual >= *bound,
                    format!("{at} = {actual:.2} (min {bound})"),
                ),
                CheckKind::MaxAbs { bound } => (
                    actual <= *bound,
                    format!("{at} = {actual:.2} (max {bound})"),
                ),
                CheckKind::BoolTrue => unreachable!("handled above"),
            }
        }
    };
    CheckResult {
        id: check.id.clone(),
        pass,
        detail,
    }
}

/// Runs every baseline check, loading each referenced report through
/// `load` (path → file contents). Reports are parsed once and cached;
/// load/parse errors fail every check pointing at that file.
pub fn run_gate(
    baseline_text: &str,
    mut load: impl FnMut(&str) -> Result<String, String>,
) -> Result<GateReport, String> {
    let checks = parse_baseline(baseline_text)?;
    let mut cache: std::collections::BTreeMap<String, Result<Value, String>> = Default::default();
    let mut report = GateReport::default();
    for check in &checks {
        let parsed = cache
            .entry(check.file.clone())
            .or_insert_with(|| load(&check.file).and_then(|text| json::parse(&text)));
        report.results.push(match parsed {
            Ok(doc) => evaluate(check, doc),
            Err(e) => CheckResult {
                id: check.id.clone(),
                pass: false,
                detail: format!("{}: {e}", check.file),
            },
        });
    }
    Ok(report)
}

/// One bench-history JSONL line: run metadata (unix seconds, host
/// parallelism) plus the caller's fields, in order. Values are emitted
/// verbatim, so pass pre-formatted JSON scalars (`"42"`, `"1.5"`,
/// `"\"sharded\""`, `"true"`).
pub fn history_line(benchmark: &str, fields: &[(&str, String)]) -> String {
    let unix_ts = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let nproc = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let mut line = format!(
        "{{\"benchmark\":\"{}\",\"unix_ts\":{unix_ts},\"nproc\":{nproc}",
        json::escape(benchmark)
    );
    for (key, value) in fields {
        line.push_str(&format!(",\"{}\":{value}", json::escape(key)));
    }
    line.push('}');
    line
}

/// Appends one JSONL line to `path`, creating the file if needed.
pub fn append_history(path: &str, line: &str) -> std::io::Result<()> {
    use std::io::Write;
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    writeln!(f, "{line}")
}

#[cfg(test)]
mod tests {
    use super::*;

    const REPORT: &str = r#"{
        "rows": [
            {"workers": 1, "qps": 121916, "lost": 0},
            {"workers": 2, "qps": 134360, "lost": 0}
        ],
        "monotone_or_flat_1_to_4": true,
        "telemetry": {"overhead_at_parallelism_8": 0.0228}
    }"#;

    const BASELINE: &str = r#"{
        "pinned_from": "test",
        "checks": [
            {"id": "qps_w1", "file": "r.json", "path": "rows[0].qps",
             "kind": "min", "baseline": 121916, "tolerance_pct": 30},
            {"id": "no_loss", "file": "r.json", "path": "rows[1].lost",
             "kind": "max_abs", "bound": 0},
            {"id": "overhead", "file": "r.json", "path": "telemetry.overhead_at_parallelism_8",
             "kind": "max_abs", "bound": 0.05},
            {"id": "monotone", "file": "r.json", "path": "monotone_or_flat_1_to_4",
             "kind": "bool_true"}
        ]
    }"#;

    #[test]
    fn lookup_walks_objects_and_array_indices() {
        let doc = json::parse(REPORT).unwrap();
        assert_eq!(
            lookup(&doc, "rows[1].qps").and_then(Value::as_num),
            Some(134360.0)
        );
        assert_eq!(
            lookup(&doc, "telemetry.overhead_at_parallelism_8").and_then(Value::as_num),
            Some(0.0228)
        );
        assert_eq!(
            lookup(&doc, "rows[0].workers").and_then(Value::as_num),
            Some(1.0)
        );
        assert!(lookup(&doc, "rows[9].qps").is_none());
        assert!(lookup(&doc, "rows[0].nope").is_none());
        assert!(lookup(&doc, "rows[x].qps").is_none());
    }

    #[test]
    fn gate_passes_on_the_pinned_numbers() {
        let report = run_gate(BASELINE, |_| Ok(REPORT.to_string())).unwrap();
        assert!(report.pass(), "{}", report.to_text());
        assert_eq!(report.results.len(), 4);
        assert!(report.to_text().contains("4/4 checks passed"));
    }

    #[test]
    fn gate_fails_on_an_injected_slowdown() {
        // The acceptance demo: halve workers=1 qps (well past the 30%
        // band) and the gate must go red on exactly that check.
        let slowed = REPORT.replace("\"qps\": 121916", "\"qps\": 60958");
        let report = run_gate(BASELINE, |_| Ok(slowed.clone())).unwrap();
        assert!(!report.pass());
        assert_eq!(report.failures(), 1);
        let failing = report.results.iter().find(|r| !r.pass).unwrap();
        assert_eq!(failing.id, "qps_w1");
        assert!(failing.detail.contains("60958"), "{}", failing.detail);
    }

    #[test]
    fn gate_fails_on_regressed_bool_and_ceiling() {
        let worse = REPORT
            .replace("\"lost\": 0}", "\"lost\": 17}")
            .replace("true", "false");
        let report = run_gate(BASELINE, |_| Ok(worse.clone())).unwrap();
        assert!(!report.pass());
        let failed: Vec<&str> = report
            .results
            .iter()
            .filter(|r| !r.pass)
            .map(|r| r.id.as_str())
            .collect();
        assert_eq!(failed, ["no_loss", "monotone"]);
    }

    #[test]
    fn missing_file_or_path_fails_without_panicking() {
        let report = run_gate(BASELINE, |_| Err("no such file".into())).unwrap();
        assert!(!report.pass());
        assert_eq!(report.failures(), 4, "every check on the file fails");

        let baseline_bad_path = BASELINE.replace("rows[0].qps", "rows[0].zps");
        let report = run_gate(&baseline_bad_path, |_| Ok(REPORT.to_string())).unwrap();
        assert!(!report.pass());
        assert!(report.to_text().contains("not found in report"));
    }

    #[test]
    fn baseline_parse_errors_are_loud() {
        assert!(parse_baseline("{}").is_err());
        assert!(parse_baseline(r#"{"checks": []}"#).is_err());
        assert!(parse_baseline(r#"{"checks": [{"id": "x"}]}"#)
            .unwrap_err()
            .contains("kind"));
        let unknown = r#"{"checks": [{"id": "x", "kind": "median", "file": "f", "path": "p"}]}"#;
        assert!(parse_baseline(unknown).unwrap_err().contains("median"));
    }

    #[test]
    fn history_line_is_valid_json_with_metadata() {
        let line = history_line(
            "bench_dnsd",
            &[("workers", "4".into()), ("qps", "112151.0".into())],
        );
        let doc = json::parse(&line).expect("history line parses");
        let obj = doc.as_object().unwrap();
        assert_eq!(
            obj.get("benchmark").and_then(Value::as_str),
            Some("bench_dnsd")
        );
        assert!(obj.get("unix_ts").and_then(Value::as_num).unwrap() > 0.0);
        assert!(obj.get("nproc").and_then(Value::as_num).unwrap() >= 1.0);
        assert_eq!(obj.get("qps").and_then(Value::as_num), Some(112151.0));
    }
}
