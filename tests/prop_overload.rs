//! Overload-behaviour properties spanning the resolver cache, the sync
//! engine, and the §7 cache simulator:
//!
//! * a bounded [`EcsCache`] never exceeds its configured entry bound, for
//!   any insert/lookup sequence;
//! * the bounded [`CacheSimulator`] produces identical results (including
//!   eviction counts) at any `parallelism`, for any trace and capacity;
//! * the default [`OverloadConfig`] — every knob off — is bit-identical to
//!   running with the bound set to infinity, pinning the graceful-degradation
//!   machinery to zero behavioural cost when disabled.

use std::net::{IpAddr, Ipv4Addr};

use analysis::{CacheSimConfig, CacheSimulator};
use authoritative::{AuthServer, EcsHandling, ScopePolicy, Zone};
use dns_wire::{EcsOption, Message, Name, Question, Rdata, Record, RecordType};
use netsim::SimTime;
use proptest::prelude::*;
use resolver::{CacheCompliance, CacheLimits, EcsCache, Resolver, ResolverConfig};
use workload::{TraceRecord, TraceSet};

fn name(s: &str) -> Name {
    Name::from_ascii(s).unwrap()
}

const RES: IpAddr = IpAddr::V4(Ipv4Addr::new(9, 9, 9, 9));

/// One generated trace step: which resolver queried which name when, with
/// what ECS subnet, advertised scope, and TTL.
type TraceStep = (u8, u8, u32, u8, u8, u32);

fn build_trace(steps: &[TraceStep]) -> TraceSet {
    let records = steps
        .iter()
        .map(|&(res, nm, at_secs, subnet, scope, ttl)| {
            let client = Ipv4Addr::new(10, 4, subnet, 1);
            TraceRecord {
                at_micros: u64::from(at_secs) * 1_000_000,
                resolver: IpAddr::V4(Ipv4Addr::new(9, 9, 9, res + 1)),
                qname: name(&format!("h{nm}.overload.example")),
                qtype: RecordType::A,
                ecs_source: Some(EcsOption::from_v4(client, 24).source_prefix()),
                response_scope: Some(scope),
                ttl,
                client: Some(IpAddr::V4(client)),
            }
        })
        .collect();
    let mut t = TraceSet::new("prop-overload");
    t.records = records;
    t.sort_by_time();
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Whatever mixture of names, clients, scopes, and TTLs flows through a
    /// bounded cache, the live-entry count never exceeds `max_entries`, and
    /// once more inserts than the bound have happened the eviction counter
    /// reflects the overflow.
    #[test]
    fn bounded_cache_never_exceeds_entry_bound(
        ops in proptest::collection::vec(
            (0u8..6, any::<u32>(), 0u8..=32, 1u32..90),
            1..80,
        ),
        max_entries in 1usize..6,
    ) {
        let mut cache = EcsCache::with_limits(
            CacheCompliance::Honor,
            CacheLimits {
                max_entries: Some(max_entries),
                ..CacheLimits::default()
            },
        );
        for (i, &(nm, client, scope, ttl)) in ops.iter().enumerate() {
            let now = SimTime::from_secs(i as u64 * 7);
            let qname = name(&format!("h{nm}.bound.example"));
            let addr = IpAddr::V4(Ipv4Addr::from(client));
            if cache.lookup(&qname, RecordType::A, addr, now).is_none() {
                let ecs = EcsOption::from_v4(Ipv4Addr::from(client), 24).with_scope(scope);
                let rec = Record::new(qname.clone(), ttl, Rdata::A(Ipv4Addr::new(198, 51, 100, 7)));
                cache.insert(qname, RecordType::A, vec![rec], Some(ecs), ttl, now);
            }
            prop_assert!(
                cache.len(now) <= max_entries,
                "step {}: {} live entries exceeds bound {}",
                i,
                cache.len(now),
                max_entries
            );
        }
        let stats = cache.stats();
        prop_assert!(stats.max_size <= max_entries);
        // Evictions only ever happen because the bound bit; conversely, if
        // every insert survived, the totals must fit the final picture.
        prop_assert!(stats.evictions <= stats.inserts);
    }

    /// Same trace + same capacity ⇒ identical per-resolver results — max
    /// sizes, hits, AND eviction counts — at any shard parallelism. This is
    /// the determinism contract that lets the §7 experiments run bounded
    /// sweeps on however many cores the host happens to have.
    #[test]
    fn simulator_eviction_is_deterministic_at_any_parallelism(
        steps in proptest::collection::vec(
            (0u8..4, 0u8..8, 0u32..600, 0u8..20, 0u8..=32, 1u32..120),
            1..150,
        ),
        capacity in 1usize..5,
    ) {
        let trace = build_trace(&steps);
        let config = CacheSimConfig {
            capacity: Some(capacity),
            ..CacheSimConfig::default()
        };
        let sequential = CacheSimulator::new(config.clone()).run(&trace);
        for r in &sequential.per_resolver {
            prop_assert!(r.max_size_ecs <= capacity, "ECS side over bound");
            prop_assert!(r.max_size_no_ecs <= capacity, "plain side over bound");
        }
        for parallelism in [2usize, 3, 8] {
            let sharded = CacheSimulator::new(CacheSimConfig {
                parallelism,
                ..config.clone()
            })
            .run(&trace);
            prop_assert_eq!(
                &sequential.per_resolver,
                &sharded.per_resolver,
                "parallelism={} diverged",
                parallelism
            );
        }
    }

    /// The default overload knobs cost nothing: a resolver with the stock
    /// `rfc_compliant` config and one whose cache bound is set to infinity
    /// return byte-identical responses and identical counters for any query
    /// schedule — there is no "bounded mode" tax when the bound cannot bite.
    #[test]
    fn default_knobs_are_bit_identical_to_infinite_bound(
        queries in proptest::collection::vec(
            (0u8..4, any::<u32>(), 0u64..300),
            1..50,
        ),
    ) {
        let mut zone = Zone::new(name("deg.example"));
        for nm in 0..4u8 {
            zone.add_a(
                name(&format!("h{nm}.deg.example")),
                60,
                Ipv4Addr::new(198, 51, 100, nm + 1),
            )
            .unwrap();
        }
        let mut server_a = AuthServer::new(zone.clone(), EcsHandling::open(ScopePolicy::MatchSource));
        let mut server_b = AuthServer::new(zone, EcsHandling::open(ScopePolicy::MatchSource));

        let default_cfg = ResolverConfig::rfc_compliant(RES);
        let mut bounded_cfg = ResolverConfig::rfc_compliant(RES);
        bounded_cfg.overload.max_cache_entries = Some(usize::MAX);
        bounded_cfg.overload.max_in_flight = Some(usize::MAX);
        let mut plain = Resolver::new(default_cfg);
        let mut bounded = Resolver::new(bounded_cfg);

        let mut now = 0u64;
        for &(nm, client, gap) in &queries {
            now += gap;
            let q = Message::query(1, Question::a(name(&format!("h{nm}.deg.example"))));
            let addr = IpAddr::V4(Ipv4Addr::from(client));
            let t = SimTime::from_secs(now);
            let ra = plain.resolve_msg(&q, addr, t, &mut server_a);
            let rb = bounded.resolve_msg(&q, addr, t, &mut server_b);
            prop_assert_eq!(&ra, &rb, "responses diverged at t={}", now);
        }
        prop_assert_eq!(plain.stats(), bounded.stats());
        prop_assert_eq!(plain.cache_stats(), bounded.cache_stats());
        prop_assert_eq!(server_a.log().len(), server_b.log().len());
    }
}
