//! A counting global allocator for bounded-memory regression gates.
//!
//! [`CountingAlloc`] wraps the system allocator and tracks live bytes and
//! the high-water mark in relaxed atomics (one `fetch_add` + `fetch_max`
//! per allocation — cheap enough to leave on for a whole bench run).
//! Install it in a harness binary:
//!
//! ```text
//! #[global_allocator]
//! static ALLOC: bench::alloc::CountingAlloc = bench::alloc::CountingAlloc;
//! ```
//!
//! then bracket the measured phase with [`reset_peak`] / [`peak_bytes`].
//! The streaming cache-replay gate pins `peak_bytes` under a budget in
//! `ci/bench_baseline_stream.json`: a 10M-record streaming run must not
//! materialize the trace, and the allocator is the witness.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static CURRENT: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

/// System allocator plus live/peak byte counters.
pub struct CountingAlloc;

fn on_alloc(size: usize) {
    let live = CURRENT.fetch_add(size, Ordering::Relaxed) + size;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

fn on_dealloc(size: usize) {
    CURRENT.fetch_sub(size, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() {
            on_alloc(layout.size());
        }
        ptr
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc_zeroed(layout);
        if !ptr.is_null() {
            on_alloc(layout.size());
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        on_dealloc(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = System.realloc(ptr, layout, new_size);
        if !new_ptr.is_null() {
            if new_size >= layout.size() {
                on_alloc(new_size - layout.size());
            } else {
                on_dealloc(layout.size() - new_size);
            }
        }
        new_ptr
    }
}

/// Live heap bytes right now (as seen by this allocator).
pub fn current_bytes() -> usize {
    CURRENT.load(Ordering::Relaxed)
}

/// High-water mark since the last [`reset_peak`].
pub fn peak_bytes() -> usize {
    PEAK.load(Ordering::Relaxed)
}

/// Restarts the high-water mark from the current live total. Call at the
/// start of the phase whose peak you want to pin.
pub fn reset_peak() {
    PEAK.store(CURRENT.load(Ordering::Relaxed), Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    // The test binary does not install the global allocator, so drive the
    // trait methods directly: the counters are shared statics either way.
    #[test]
    fn tracks_live_and_peak_bytes() {
        let layout = Layout::from_size_align(4096, 8).unwrap();
        reset_peak();
        let before_live = current_bytes();
        let before_peak = peak_bytes();
        unsafe {
            let p = CountingAlloc.alloc(layout);
            assert!(!p.is_null());
            assert!(current_bytes() >= before_live + 4096);
            assert!(peak_bytes() >= before_peak + 4096);
            let grown = CountingAlloc.realloc(p, layout, 8192);
            assert!(!grown.is_null());
            assert!(current_bytes() >= before_live + 8192);
            let grown_layout = Layout::from_size_align(8192, 8).unwrap();
            CountingAlloc.dealloc(grown, grown_layout);
        }
        assert!(current_bytes() <= before_live + 4096, "dealloc not counted");
        // The peak survives the dealloc until the next reset.
        assert!(peak_bytes() >= before_peak + 4096);
        reset_peak();
        assert!(peak_bytes() <= current_bytes() + 4096);
    }
}
