//! Experiment drivers for the ECS study.
//!
//! Each module under [`experiments`] reproduces one table or figure of
//! *A Look at the ECS Behavior of DNS Resolvers* (IMC 2019) end to end:
//! it builds a world or workload, runs the protocol machinery from the
//! `resolver`/`authoritative` crates, applies the corresponding analysis,
//! and returns a typed report whose `Display` prints the paper's number
//! next to the measured one.
//!
//! Run them all with the `ecs-study` binary:
//!
//! ```text
//! ecs-study all            # every experiment, summary per experiment
//! ecs-study fig1           # one experiment in detail
//! ecs-study list           # experiment index
//! ```

pub mod behavior;
pub mod experiments;
pub mod report;
pub mod telemetry;

pub use behavior::resolver_config_for;

/// Parses a `u64` scale knob from the environment, ignoring unset or
/// malformed values. Shared by the streaming experiments
/// (`ECS_STREAM_QUERIES`, `ECS_STREAM_CLIENTS`, `ECS_HIDDEN_FORWARDERS`,
/// `ECS_MINPREFIX_PROBES`) so CI smoke jobs and large acceptance runs can
/// rescale without recompiling.
pub fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}
