//! Smoke tests: every experiment runs at reduced scale and its qualitative
//! claims hold. (Full-scale runs are exercised by the `ecs-study` binary
//! and the benches.)

use ecs_study::experiments::*;

#[test]
fn probing_scaled() {
    let (out, report) = probing::run(&probing::Config {
        scale: 80,
        queries_per_resolver: 220,
        ..probing::Config::default()
    });
    assert!(out.accuracy >= 0.75, "{report}");
}

#[test]
fn table1_scaled() {
    let (_, report) = table1::run(&table1::Config {
        scale: 30,
        ..table1::Config::default()
    });
    assert!(report.all_hold(), "{report}");
}

#[test]
fn cache_behavior_scaled() {
    let (out, report) = cache_behavior::run(&cache_behavior::Config { scale: 4 });
    assert!(out.accuracy >= 0.99, "{report}");
}

#[test]
fn fig1_scaled() {
    let (out, _) = fig1::run(&fig1::Config {
        stream: workload::CdnStreamGen {
            resolvers: 12,
            subnets_per_resolver: 40,
            hostnames: 100,
            queries: 150_000,
            duration: netsim::SimDuration::from_secs(600),
            ..workload::CdnStreamGen::default()
        },
        ttls: vec![20, 60],
        parallelism: 4,
        crosscheck_records: 40_000,
    });
    assert!(out.series[0].cdf.quantile(0.5) > 1.3);
    assert!(out.series[1].cdf.max() >= out.series[0].cdf.max());
    assert!(out.crosscheck_ok, "streaming must match materialized");
}

#[test]
fn fig2_and_fig3_scaled() {
    let stream = workload::AllNamesStreamGen {
        v4_subnets: 250,
        v6_subnets: 50,
        slds: 250,
        queries: 150_000,
        ..workload::AllNamesStreamGen::default()
    };
    let (out2, _) = fig2::run(&fig2::Config {
        stream: stream.clone(),
        fractions: vec![20, 100],
        samples: 2,
        parallelism: 2,
    });
    assert!(out2.points[1].1 > out2.points[0].1, "blow-up grows");
    let (out3, _) = fig3::run(&fig3::Config {
        stream,
        fractions: vec![100],
        samples: 2,
        parallelism: 2,
    });
    let (_, no_ecs, with_ecs) = out3.points[0];
    assert!(with_ecs < no_ecs * 0.7, "{no_ecs} vs {with_ecs}");
}

#[test]
fn hidden_scaled() {
    let mut config = hidden::Config::default();
    config.world.forwarders = 600;
    let (out, report) = hidden::run(&config);
    assert_eq!(out.populations.len(), 2);
    for pop in &out.populations {
        assert!(pop.report.total() > 0, "{}\n{report}", pop.label);
    }
}

#[test]
fn minprefix_scaled() {
    let (out, report) = minprefix::run(&minprefix::Config {
        probes: 150,
        ..minprefix::Config::default()
    });
    assert_eq!(out.cdns[0].min_usable, 24, "{report}");
    assert_eq!(out.cdns[1].min_usable, 21, "{report}");
}

#[test]
fn table2_runs() {
    let (_, report) = table2::run(&table2::Config::default());
    assert!(report.all_hold(), "{report}");
}

#[test]
fn fig45_scaled() {
    let mut config = fig45::Config::fig4();
    config.world.forwarders = 600;
    let (_, report) = fig45::run(&config);
    assert!(report.all_hold(), "{report}");
}

#[test]
fn fig67_scaled() {
    let (out6, _) = fig67::run(&fig67::Config {
        probes: 150,
        ..fig67::Config::fig6()
    });
    assert!(out6.by_length[&23].median_ms > out6.by_length[&24].median_ms * 2.0);
    let (out7, _) = fig67::run(&fig67::Config {
        probes: 150,
        ..fig67::Config::fig7()
    });
    assert!(out7.by_length[&20].median_ms > out7.by_length[&21].median_ms * 2.0);
}

#[test]
fn fig8_runs() {
    let (out, report) = fig8::run(&fig8::Config::default());
    assert!(out.apex_total_ms > out.www_handshake_ms * 3.0, "{report}");
}

#[test]
fn discovery_runs() {
    let (out, report) = discovery::run(&discovery::Config {
        scale: 10,
        ..discovery::Config::default()
    });
    assert!(
        out.overlap.passive_total() > out.overlap.active_total(),
        "{report}"
    );
}

#[test]
fn registry_ids_are_unique_and_complete() {
    let reg = registry();
    let mut ids: Vec<&str> = reg.iter().map(|(id, _, _)| *id).collect();
    ids.sort();
    let mut deduped = ids.clone();
    deduped.dedup();
    assert_eq!(ids, deduped);
    for required in [
        "probing",
        "table1",
        "cache-behavior",
        "fig1",
        "fig2",
        "fig3",
        "table2",
        "fig4",
        "fig5",
        "fig6",
        "fig7",
        "fig8",
        "hidden",
        "minprefix",
        "discovery",
    ] {
        assert!(ids.contains(&required), "missing {required}");
    }
}

#[test]
fn design_doc_indexes_every_experiment() {
    // DESIGN.md's per-experiment index must mention every registered
    // experiment id, so the documentation cannot silently drift.
    let design = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/../../DESIGN.md"))
        .expect("DESIGN.md at workspace root");
    for (id, _, _) in registry() {
        assert!(
            design.contains(&format!("`{id}`")),
            "DESIGN.md does not index experiment '{id}'"
        );
    }
}

#[test]
fn experiments_doc_exists_with_core_sections() {
    let text =
        std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/../../EXPERIMENTS.md"))
            .expect("EXPERIMENTS.md at workspace root");
    for needle in [
        "Table 1",
        "Table 2",
        "Figure 1",
        "Figure 3",
        "Figures 4–5",
        "Figures 6–7",
        "Figure 8",
        "Extension experiments",
    ] {
        assert!(text.contains(needle), "EXPERIMENTS.md missing '{needle}'");
    }
}
