//! Figure 3 (§7.2): cache hit rate with and without ECS, vs client
//! population fraction, over the All-Names trace.
//!
//! Paper: at the full population the hit rate drops from ~76% without ECS
//! to ~30% with it — less than half — and the with-ECS curve grows much
//! more slowly with population, the two population effects (sharing vs
//! subnet fragmentation) largely cancelling.
//!
//! Streams from the same [`AllNamesStreamGen`] model as Figure 2 (never
//! materialized) and honors the same `ECS_STREAM_QUERIES` /
//! `ECS_STREAM_CLIENTS` scale knobs.

use analysis::{CacheSimConfig, CacheSimulator};
use workload::AllNamesStreamGen;

use crate::report::Report;

/// Parameters.
#[derive(Debug, Clone)]
pub struct Config {
    /// Streaming trace model.
    pub stream: AllNamesStreamGen,
    /// Client fractions to sweep (percent).
    pub fractions: Vec<u8>,
    /// Random samples per fraction.
    pub samples: usize,
    /// Worker threads for the replay engine (results are identical for
    /// every value; a single-resolver trace replays on one).
    pub parallelism: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            stream: AllNamesStreamGen::default(),
            fractions: vec![10, 20, 30, 40, 50, 60, 70, 80, 90, 100],
            samples: 3,
            parallelism: analysis::default_parallelism(),
        }
    }
}

/// Result: per fraction, mean hit rates (no-ECS, with-ECS).
#[derive(Debug, Clone)]
pub struct Outcome {
    /// (fraction %, hit rate without ECS, hit rate with ECS).
    pub points: Vec<(u8, f64, f64)>,
}

/// Runs the experiment.
pub fn run(config: &Config) -> (Outcome, Report) {
    let mut config = config.clone();
    super::fig2::apply_env_knobs(
        &mut config.stream,
        &mut config.fractions,
        &mut config.samples,
    );
    let source = config.stream.source();
    let mut points = Vec::new();
    for &pct in &config.fractions {
        let (mut no_ecs, mut ecs) = (0.0, 0.0);
        for seed in 0..config.samples {
            let sim = CacheSimulator::new(CacheSimConfig {
                sample_pct: pct,
                sample_seed: seed as u64,
                parallelism: config.parallelism,
                ..CacheSimConfig::default()
            });
            let result = sim.run_streaming(&source);
            no_ecs += result.overall_hit_rate_no_ecs();
            ecs += result.overall_hit_rate_ecs();
        }
        points.push((
            pct,
            no_ecs / config.samples as f64,
            ecs / config.samples as f64,
        ));
    }

    let mut report = Report::new("fig3", "hit rate with/without ECS vs population");
    let (_, full_no, full_ecs) = *points.last().expect("non-empty sweep");
    report.row(
        "hit rate without ECS (full)",
        "~76%",
        format!("{:.1}%", full_no * 100.0),
        full_no > 0.5,
    );
    report.row(
        "hit rate with ECS (full)",
        "~30%",
        format!("{:.1}%", full_ecs * 100.0),
        full_ecs < full_no,
    );
    report.row(
        "ECS cuts hit rate by more than half",
        "76% → 30%",
        format!("{:.1}% → {:.1}%", full_no * 100.0, full_ecs * 100.0),
        full_ecs < full_no * 0.55,
    );
    if config.fractions.len() > 1 {
        let (_, first_no, first_ecs) = points[0];
        report.row(
            "no-ECS curve grows faster with population",
            "steeper",
            format!(
                "Δno-ECS {:.1}pp vs ΔECS {:.1}pp",
                (full_no - first_no) * 100.0,
                (full_ecs - first_ecs) * 100.0
            ),
            (full_no - first_no) > (full_ecs - first_ecs),
        );
    }
    let mut detail = String::from("pct  no-ECS  with-ECS\n");
    for (pct, n, e) in &points {
        detail.push_str(&format!(
            "{pct:>3}  {:.1}%   {:.1}%\n",
            n * 100.0,
            e * 100.0
        ));
    }
    detail.push_str(&format!(
        "streamed {} records over {} v4 + {} v6 client subnets\n",
        config.stream.queries, config.stream.v4_subnets, config.stream.v6_subnets
    ));
    report.detail = detail;
    (Outcome { points }, report)
}

/// Default-parameter entry point.
pub fn run_default() -> Report {
    run(&Config::default()).1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ecs_depresses_hit_rate() {
        let config = Config {
            stream: AllNamesStreamGen {
                v4_subnets: 300,
                v6_subnets: 60,
                slds: 300,
                queries: 120_000,
                ..AllNamesStreamGen::default()
            },
            fractions: vec![20, 100],
            samples: 2,
            parallelism: 2,
        };
        let (out, _) = run(&config);
        let (_, no_ecs, with_ecs) = *out.points.last().unwrap();
        assert!(no_ecs > with_ecs, "{no_ecs} vs {with_ecs}");
        assert!(with_ecs < no_ecs * 0.8, "substantial drop expected");
        // Without ECS, more clients → higher hit rate.
        assert!(out.points[1].1 >= out.points[0].1);
    }
}
