//! A minimal metrics HTTP endpoint: Prometheus text and JSON snapshots.
//!
//! Serves two routes from a shared [`obs::MetricsRegistry`]:
//!
//! * `GET /metrics` — Prometheus text exposition format;
//! * `GET /metrics.json` — the same snapshot as a JSON object.
//!
//! Snapshots are taken per request, so a scraper always sees the live
//! counters the serve loop writes. Implemented on a plain
//! `std::net::TcpListener` with HTTP/1.0 close-per-request semantics —
//! enough for `curl` and any Prometheus scraper, with no HTTP dependency.

use std::io::{self, Read, Write};
use std::net::{TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use obs::MetricsRegistry;

/// Handle to a spawned metrics endpoint thread. Dropping it (or calling
/// [`MetricsHandle::shutdown`]) stops the accept loop; the non-blocking
/// listener polls its stop flag every 50 ms, bounding shutdown latency.
pub struct MetricsHandle {
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
    addr: std::net::SocketAddr,
}

impl MetricsHandle {
    /// The bound address of the endpoint.
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }

    /// Stops the accept loop and joins the thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }
}

impl Drop for MetricsHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Binds `addr` and serves the registry's snapshots until shutdown.
pub fn spawn_metrics_endpoint<A: ToSocketAddrs>(
    addr: A,
    registry: MetricsRegistry,
) -> io::Result<MetricsHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = stop.clone();
    let thread = std::thread::spawn(move || {
        while !stop2.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _)) => {
                    let _ = serve_request(stream, &registry);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(50));
                }
                Err(_) => break,
            }
        }
    });
    Ok(MetricsHandle {
        stop,
        thread: Some(thread),
        addr,
    })
}

fn serve_request(mut stream: std::net::TcpStream, registry: &MetricsRegistry) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    // Read just enough to see the request line; clients send the whole
    // header block at once, and we only route on the first line.
    let mut buf = [0u8; 1024];
    let n = stream.read(&mut buf)?;
    let request = String::from_utf8_lossy(&buf[..n]);
    let path = request
        .lines()
        .next()
        .and_then(|line| line.split_whitespace().nth(1))
        .unwrap_or("/");
    let (status, content_type, body) = match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4",
            registry.snapshot().to_prometheus(),
        ),
        "/metrics.json" => ("200 OK", "application/json", registry.snapshot().to_json()),
        _ => ("404 Not Found", "text/plain", "not found\n".to_string()),
    };
    write!(
        stream,
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpStream;

    fn get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
        let mut s = TcpStream::connect(addr).unwrap();
        write!(s, "GET {path} HTTP/1.0\r\n\r\n").unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        let (head, body) = out.split_once("\r\n\r\n").unwrap();
        (head.to_string(), body.to_string())
    }

    #[test]
    fn serves_prometheus_and_json_snapshots() {
        let registry = MetricsRegistry::new();
        registry.counter("dnsd_queries_total").add(3);
        registry.histogram("dnsd_handle_latency_us").record(120);
        let handle = spawn_metrics_endpoint("127.0.0.1:0", registry.clone()).unwrap();
        let addr = handle.local_addr();

        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.0 200"), "{head}");
        assert!(body.contains("dnsd_queries_total 3"), "{body}");

        // The endpoint snapshots per request: bump and re-scrape.
        registry.counter("dnsd_queries_total").inc();
        let (_, body) = get(addr, "/metrics.json");
        assert!(body.contains("\"dnsd_queries_total\""), "{body}");
        assert!(obs::validate::validate_metrics_json(&body, &["dnsd_queries_total"]).is_ok());

        let (head, _) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.0 404"), "{head}");
        handle.shutdown();
    }
}
