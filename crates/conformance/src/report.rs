//! Machine-readable conformance report.
//!
//! Hand-rolled JSON (the vendored serde stub carries no codegen), matching
//! the style of `ResolverStats::to_json` and the obs exporters.

/// One (subject-config, scenario) cell of the conformance matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellResult {
    /// Which paper table the cell belongs to: `"6.1-probing"`,
    /// `"6.2-prefix"`, `"6.3-compliance"`.
    pub section: &'static str,
    /// Cell identifier, e.g. `"always"`, `"jammed-32"`, `"cap22"`.
    pub cell: String,
    /// Subject resolver configuration driven through the scenario.
    pub config: String,
    /// Authoritative scenario name.
    pub scenario: String,
    /// The class the subject is built to land in.
    pub expected: String,
    /// The class the oracle actually assigned.
    pub observed: String,
}

impl CellResult {
    /// True when the oracle agreed with the ground truth.
    pub fn pass(&self) -> bool {
        self.expected == self.observed
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"section\":{},\"cell\":{},\"config\":{},\"scenario\":{},\"expected\":{},\"observed\":{},\"pass\":{}}}",
            json_str(self.section),
            json_str(&self.cell),
            json_str(&self.config),
            json_str(&self.scenario),
            json_str(&self.expected),
            json_str(&self.observed),
            self.pass()
        )
    }
}

/// One metric series whose value differed between the in-process engine and
/// the socket-backed run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricDelta {
    /// Series name, e.g. `resolver_retries_total`.
    pub series: String,
    /// Rendered value on the in-process side.
    pub engine: String,
    /// Rendered value on the socket side.
    pub socket: String,
    /// True when the series is on the transport-timing whitelist.
    pub whitelisted: bool,
}

impl MetricDelta {
    fn to_json(&self) -> String {
        format!(
            "{{\"series\":{},\"engine\":{},\"socket\":{},\"whitelisted\":{}}}",
            json_str(&self.series),
            json_str(&self.engine),
            json_str(&self.socket),
            self.whitelisted
        )
    }
}

/// Outcome of the engine-vs-dnsd differential run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DifferentialReport {
    /// Queries driven through both subjects.
    pub queries: usize,
    /// Client-facing responses that were not byte-identical.
    pub mismatched_answers: usize,
    /// Legacy `ResolverStats` snapshots were equal.
    pub stats_equal: bool,
    /// `CacheStats` snapshots were equal.
    pub cache_equal: bool,
    /// Real-socket timeouts the socket side absorbed (0 in a healthy run;
    /// when non-zero the whitelisted transport series legitimately drift).
    pub socket_timeouts: u64,
    /// Series allowed to differ between the two transports, fixed up front.
    pub whitelist: Vec<&'static str>,
    /// Every observed metric difference, whitelisted or not.
    pub deltas: Vec<MetricDelta>,
}

impl DifferentialReport {
    /// Metric differences outside the whitelist — must be empty to pass.
    pub fn unexpected_deltas(&self) -> impl Iterator<Item = &MetricDelta> {
        self.deltas.iter().filter(|d| !d.whitelisted)
    }

    /// Identical answers and no off-whitelist metric drift.
    pub fn pass(&self) -> bool {
        self.mismatched_answers == 0 && self.unexpected_deltas().count() == 0
    }

    fn to_json(&self) -> String {
        let whitelist = self
            .whitelist
            .iter()
            .map(|s| json_str(s))
            .collect::<Vec<_>>()
            .join(",");
        let deltas = self
            .deltas
            .iter()
            .map(MetricDelta::to_json)
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"queries\":{},\"mismatched_answers\":{},\"stats_equal\":{},\"cache_equal\":{},\"socket_timeouts\":{},\"whitelist\":[{}],\"deltas\":[{}],\"pass\":{}}}",
            self.queries,
            self.mismatched_answers,
            self.stats_equal,
            self.cache_equal,
            self.socket_timeouts,
            whitelist,
            deltas,
            self.pass()
        )
    }
}

/// The full harness output: every matrix cell plus the optional
/// differential section (absent when the environment offers no loopback
/// sockets and the caller tolerates that).
#[derive(Debug, Clone, Default)]
pub struct ConformanceReport {
    /// Oracle-vs-ground-truth matrix cells.
    pub cells: Vec<CellResult>,
    /// Engine-vs-dnsd differential outcome, when sockets were available.
    pub differential: Option<DifferentialReport>,
    /// Human-readable notes (e.g. why the differential section is absent).
    pub notes: Vec<String>,
}

impl ConformanceReport {
    /// True when every cell and the differential (if present) passed.
    pub fn passed(&self) -> bool {
        self.cells.iter().all(CellResult::pass)
            && self.differential.as_ref().map(|d| d.pass()).unwrap_or(true)
    }

    /// Failing cell identifiers, for error messages.
    pub fn failures(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .cells
            .iter()
            .filter(|c| !c.pass())
            .map(|c| {
                format!(
                    "{}/{}: expected {}, observed {}",
                    c.section, c.cell, c.expected, c.observed
                )
            })
            .collect();
        if let Some(d) = &self.differential {
            if !d.pass() {
                out.push(format!(
                    "differential: {} mismatched answers, {} unexpected metric deltas",
                    d.mismatched_answers,
                    d.unexpected_deltas().count()
                ));
            }
        }
        out
    }

    /// Renders the whole report as a JSON document.
    pub fn to_json(&self) -> String {
        let cells = self
            .cells
            .iter()
            .map(CellResult::to_json)
            .collect::<Vec<_>>()
            .join(",");
        let differential = match &self.differential {
            Some(d) => d.to_json(),
            None => "null".to_string(),
        };
        let notes = self
            .notes
            .iter()
            .map(|n| json_str(n))
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"cells\":[{}],\"differential\":{},\"notes\":[{}],\"passed\":{}}}",
            cells,
            differential,
            notes,
            self.passed()
        )
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(pass: bool) -> CellResult {
        CellResult {
            section: "6.1-probing",
            cell: "always".into(),
            config: "rfc_compliant".into(),
            scenario: "honors-scope".into(),
            expected: "Always".into(),
            observed: if pass { "Always" } else { "Mixed" }.into(),
        }
    }

    #[test]
    fn report_pass_aggregates_cells_and_differential() {
        let mut r = ConformanceReport {
            cells: vec![cell(true)],
            differential: None,
            notes: vec![],
        };
        assert!(r.passed());
        r.cells.push(cell(false));
        assert!(!r.passed());
        assert_eq!(r.failures().len(), 1);
    }

    #[test]
    fn differential_pass_requires_empty_unexpected() {
        let mut d = DifferentialReport {
            queries: 10,
            mismatched_answers: 0,
            stats_equal: true,
            cache_equal: true,
            socket_timeouts: 0,
            whitelist: vec!["resolver_retries_total"],
            deltas: vec![MetricDelta {
                series: "resolver_retries_total".into(),
                engine: "0".into(),
                socket: "2".into(),
                whitelisted: true,
            }],
        };
        assert!(d.pass());
        d.deltas.push(MetricDelta {
            series: "resolver_client_queries_total".into(),
            engine: "10".into(),
            socket: "9".into(),
            whitelisted: false,
        });
        assert!(!d.pass());
        assert_eq!(d.unexpected_deltas().count(), 1);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let r = ConformanceReport {
            cells: vec![cell(true)],
            differential: Some(DifferentialReport {
                queries: 1,
                mismatched_answers: 0,
                stats_equal: true,
                cache_equal: true,
                socket_timeouts: 0,
                whitelist: vec![],
                deltas: vec![],
            }),
            notes: vec!["a \"quoted\" note".into()],
        };
        let j = r.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\\\"quoted\\\""));
        assert!(j.contains("\"passed\":true"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }
}
