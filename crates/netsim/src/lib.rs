#![warn(missing_docs)]

//! Deterministic discrete-event network simulator.
//!
//! The ECS study needs a network in which DNS actors (clients, forwarders,
//! hidden resolvers, egress resolvers, authoritative nameservers) exchange
//! packets with realistic, geography-derived latencies, fully reproducibly.
//! This crate provides that substrate:
//!
//! * [`SimTime`] / [`SimDuration`] — a virtual clock with microsecond
//!   resolution;
//! * [`GeoPoint`] — positions on the globe with haversine distances;
//! * [`LatencyModel`] — distance → one-way delay, with deterministic jitter;
//! * [`FaultPlan`] — deterministic fault injection (loss, blackholes, extra
//!   jitter, DNS reply truncation and RCODE rewriting) on the send path;
//! * [`TransportModel`] / [`TransportPlan`] — per-link DNS transport models
//!   (UDP/TCP/DoT/DoH): handshake RTT accounting with connection reuse and
//!   TLS resumption, plus EDNS-buffer/path-MTU datagram fate;
//! * [`Simulation`] — the event loop: nodes implement [`Node`], receive
//!   packets and timers, and emit actions through a [`Ctx`].
//!
//! Determinism: events are ordered by `(time, sequence)` where the sequence
//! number is assigned at scheduling time, and all randomness flows from a
//! single seeded RNG. Two runs with the same seed produce byte-identical
//! traces. (This is also why wall-clock time never appears anywhere.)
//!
//! ```
//! use netsim::{Simulation, Node, Ctx, Packet, GeoPoint, SimDuration};
//!
//! struct Echo;
//! impl Node for Echo {
//!     fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx) {
//!         ctx.send(pkt.src, pkt.payload); // bounce it back
//!     }
//! }
//!
//! struct Counter(u32);
//! impl Node for Counter {
//!     fn on_packet(&mut self, _pkt: Packet, _ctx: &mut Ctx) { self.0 += 1; }
//! }
//!
//! let mut sim = Simulation::new(42);
//! let echo = sim.add_node(Echo, GeoPoint::new(52.37, 4.90));      // Amsterdam
//! let counter = sim.add_node(Counter(0), GeoPoint::new(40.4, -74.0)); // NYC
//! sim.inject(counter, echo, vec![1, 2, 3], SimDuration::ZERO);
//! sim.run();
//! assert!(sim.now().as_micros() > 0);
//! ```

pub mod addrbook;
pub mod event;
pub mod fault;
pub mod geo;
pub mod latency;
pub mod sim;
pub mod time;
pub mod transport;

pub use addrbook::AddressBook;
pub use event::{EventQueue, ScheduledEvent};
pub use fault::{FaultPlan, FaultStats, LinkFaults};
pub use geo::{GeoPoint, EARTH_RADIUS_KM};
pub use latency::LatencyModel;
pub use sim::{Ctx, Node, NodeId, Packet, Simulation};
pub use time::{SimDuration, SimTime};
pub use transport::{
    DatagramFate, HandshakeCosts, PathProfile, Transport, TransportModel, TransportPlan,
    TransportStats,
};
