//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * **scope granularity** — how the authoritative's scope policy changes
//!   resolver cache cost (coarser scopes = fewer entries, worse tailoring);
//! * **probing strategy** — upstream query volume under each §6.1 strategy
//!   (the Chen et al. "8× query volume" effect, by strategy);
//! * **edge-selection policy** — proximity vs coarse-set vs resolver-based
//!   cost per query at the CDN.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::HashMap;
use std::net::{IpAddr, Ipv4Addr};

use analysis::{CacheSimConfig, CacheSimulator};
use authoritative::{CdnBehavior, GeoDb};
use dns_wire::{EcsOption, IpPrefix};
use netsim::geo::CITIES;
use topology::{CdnFootprint, EdgeServerSpec};
use workload::PublicCdnTraceGen;

/// Ablation 1: replay the same trace with the response scope forced to
/// various granularities and compare peak ECS cache size.
fn ablation_scope_granularity(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/scope_granularity");
    g.sample_size(10);
    let base = PublicCdnTraceGen {
        resolvers: 10,
        subnets_per_resolver: 40,
        hostnames: 100,
        queries: 100_000,
        duration: netsim::SimDuration::from_secs(600),
        ..PublicCdnTraceGen::default()
    }
    .generate();
    let mut printed: HashMap<u8, usize> = HashMap::new();
    for scope in [24u8, 16, 8] {
        let mut trace = base.clone();
        for r in &mut trace.records {
            r.response_scope = Some(scope);
        }
        let sim = CacheSimulator::new(CacheSimConfig::default());
        let peak: usize = sim
            .run(&trace)
            .per_resolver
            .iter()
            .map(|r| r.max_size_ecs)
            .sum();
        printed.insert(scope, peak);
        g.bench_with_input(BenchmarkId::new("replay", scope), &scope, |b, _| {
            b.iter(|| sim.run(black_box(&trace)).per_resolver.len())
        });
    }
    let mut scopes: Vec<_> = printed.into_iter().collect();
    scopes.sort();
    println!("\nablation: total peak ECS cache entries by forced scope:");
    for (scope, peak) in scopes {
        println!("  scope /{scope:<2} → {peak}");
    }
    g.finish();
}

/// Ablation 2: edge-selection policy cost per query.
fn ablation_edge_selection(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/edge_selection");
    let footprint = CdnFootprint {
        edges: CITIES
            .iter()
            .enumerate()
            .flat_map(|(i, city)| {
                (0..8u8).map(move |k| EdgeServerSpec {
                    addr: IpAddr::V4(Ipv4Addr::new(203, (i / 30) as u8, (i % 30) as u8, k + 1)),
                    pos: city.pos,
                    city: city.name.to_string(),
                })
            })
            .collect(),
    };
    let mut geodb = GeoDb::new();
    geodb.insert(
        IpPrefix::v4(Ipv4Addr::new(100, 70, 1, 0), 24).unwrap(),
        CITIES[0].pos,
    );
    geodb.insert(
        IpPrefix::v4(Ipv4Addr::new(9, 9, 9, 0), 24).unwrap(),
        CITIES[1].pos,
    );
    let resolver: IpAddr = "9.9.9.9".parse().unwrap();
    let long_ecs = EcsOption::from_v4(Ipv4Addr::new(100, 70, 1, 0), 24);
    let short_ecs = EcsOption::from_v4(Ipv4Addr::new(100, 64, 0, 0), 16);

    let cdn1 = CdnBehavior::cdn1(footprint.clone());
    g.bench_function("proximity_scan", |b| {
        b.iter(|| cdn1.select(Some(black_box(&long_ecs)), resolver, &geodb))
    });
    g.bench_function("coarse_set_fallback", |b| {
        b.iter(|| cdn1.select(Some(black_box(&short_ecs)), resolver, &geodb))
    });
    let cdn2 = CdnBehavior::cdn2(footprint);
    g.bench_function("resolver_based_fallback", |b| {
        b.iter(|| cdn2.select(Some(black_box(&short_ecs)), resolver, &geodb))
    });
    g.finish();
}

/// Ablation 3: upstream query volume by probing strategy. Counts (not
/// times) the 8×-style amplification; the bench times the resolution loop.
fn ablation_probing_volume(c: &mut Criterion) {
    use authoritative::{AuthServer, EcsHandling, ScopePolicy, Zone};
    use dns_wire::{Message, Name, Question};
    use netsim::SimTime;
    use resolver::{ProbingStrategy, Resolver, ResolverConfig};

    let mut g = c.benchmark_group("ablation/probing_volume");
    g.sample_size(10);

    let apex = Name::from_ascii("cdn.example").unwrap();
    let hostname = apex.child("www").unwrap();
    let make_auth = || {
        let mut zone = Zone::new(apex.clone());
        zone.add_a(hostname.clone(), 20, Ipv4Addr::new(198, 51, 100, 1))
            .unwrap();
        AuthServer::new(zone, EcsHandling::open(ScopePolicy::MatchSource))
    };
    let strategies: Vec<(&str, ProbingStrategy)> = vec![
        ("always", ProbingStrategy::Always),
        (
            "hostname_probe_bypass",
            ProbingStrategy::HostnameProbe {
                hostnames: std::collections::HashSet::from([hostname.clone()]),
            },
        ),
        ("every_3rd", ProbingStrategy::EveryKth { k: 3 }),
    ];
    let mut volumes = Vec::new();
    for (label, strategy) in strategies {
        let mut auth = make_auth();
        let mut r = Resolver::new(ResolverConfig {
            probing: strategy.clone(),
            ..ResolverConfig::rfc_compliant("9.9.9.9".parse().unwrap())
        });
        // 1000 queries from 20 subnets over 100 virtual seconds.
        let mut served = 0u64;
        for i in 0..1000u64 {
            let client = IpAddr::V4(Ipv4Addr::from(0x0A00_0000 | (((i % 20) as u32) << 8) | 7));
            let q = Message::query(1, Question::a(hostname.clone()));
            r.resolve_msg(&q, client, SimTime::from_micros(i * 100_000), &mut auth);
            served += 1;
        }
        volumes.push((label, r.stats().upstream_queries, served));
        g.bench_function(label, |b| {
            let mut auth = make_auth();
            let mut r = Resolver::new(ResolverConfig {
                probing: strategy.clone(),
                ..ResolverConfig::rfc_compliant("9.9.9.9".parse().unwrap())
            });
            auth.set_logging(false);
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                let client = IpAddr::V4(Ipv4Addr::from(0x0A00_0000 | (((i % 20) as u32) << 8) | 7));
                let q = Message::query(1, Question::a(hostname.clone()));
                r.resolve_msg(&q, client, SimTime::from_micros(i * 100_000), &mut auth)
            })
        });
    }
    println!("\nablation: upstream amplification by probing strategy (1000 client queries):");
    for (label, upstream, served) in volumes {
        println!(
            "  {label:<24} {upstream:>5} upstream queries ({:.1}% of client volume)",
            upstream as f64 / served as f64 * 100.0
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    ablation_scope_granularity,
    ablation_edge_selection,
    ablation_probing_volume
);
criterion_main!(benches);
