//! Experiment runner:
//! `ecs-study [--telemetry [dir]] <experiment-id>|all|list|export-traces <dir>`.
//!
//! `--telemetry` turns on metrics + structured tracing for the experiments
//! that support it (currently `faults` and `overload`): the run writes
//! `<id>_metrics.prom`, `<id>_metrics.json`, and `<id>_trace.jsonl` under
//! the given directory (default `telemetry/`) and the report gains
//! p50/p99 latency rows. Other experiments run unchanged.

use ecs_study::experiments::registry;
use ecs_study::report::Report;
use ecs_study::telemetry::Telemetry;

fn export_traces(dir: &std::path::Path) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let traces = [
        (
            "public_resolver_cdn.tsv",
            workload::PublicCdnTraceGen {
                resolvers: 40,
                subnets_per_resolver: 40,
                hostnames: 150,
                queries: 200_000,
                ..workload::PublicCdnTraceGen::default()
            }
            .generate(),
        ),
        (
            "all_names.tsv",
            workload::AllNamesTraceGen {
                queries: 200_000,
                ..workload::AllNamesTraceGen::default()
            }
            .generate(),
        ),
    ];
    for (file, trace) in traces {
        let path = dir.join(file);
        let out = std::io::BufWriter::new(std::fs::File::create(&path)?);
        workload::write_trace(&trace, out).map_err(|e| std::io::Error::other(e.to_string()))?;
        println!("wrote {} records to {}", trace.len(), path.display());
    }
    Ok(())
}

/// Telemetry-capable runners, by experiment id.
fn telemetry_runner(id: &str) -> Option<fn() -> (Report, Telemetry)> {
    match id {
        "fig1" => Some(|| {
            let (_, report, telemetry) =
                ecs_study::experiments::fig1::run_telemetry(&Default::default());
            (report, telemetry)
        }),
        "faults" => Some(|| {
            let (_, report, telemetry) =
                ecs_study::experiments::faults::run_telemetry(&Default::default());
            (report, telemetry)
        }),
        "overload" => Some(|| {
            let (_, report, telemetry) =
                ecs_study::experiments::overload::run_telemetry(&Default::default());
            (report, telemetry)
        }),
        "scan" => Some(|| {
            let (_, report, telemetry) =
                ecs_study::experiments::scan::run_telemetry(&Default::default());
            (report, telemetry)
        }),
        _ => None,
    }
}

/// Runs experiment `id`, capturing telemetry into `dir` when requested and
/// supported. Returns the report to print.
fn run_one(
    id: &str,
    runner: &dyn Fn() -> Report,
    telemetry_dir: Option<&std::path::Path>,
) -> Report {
    if let (Some(dir), Some(instrumented)) = (telemetry_dir, telemetry_runner(id)) {
        let (report, telemetry) = instrumented();
        match telemetry.write(dir, id) {
            Ok(paths) => {
                for p in &paths {
                    eprintln!("  telemetry: wrote {}", p.display());
                }
                if let Some((p50, p99, max)) =
                    telemetry.latency_quantiles("resolver_query_latency_us")
                {
                    eprintln!(
                        "  telemetry: query latency p50 {p50} us, p99 {p99} us, max {max} us"
                    );
                }
            }
            Err(e) => {
                eprintln!("  telemetry: write failed: {e}");
                std::process::exit(1);
            }
        }
        report
    } else {
        runner()
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let experiments = registry();
    let mut telemetry_dir: Option<std::path::PathBuf> = None;
    if let Some(pos) = args.iter().position(|a| a == "--telemetry") {
        args.remove(pos);
        // Optional directory operand (must not collide with a command or
        // experiment id); defaults to ./telemetry.
        let is_command = |a: &str| {
            a == "all"
                || a == "list"
                || a == "export-traces"
                || experiments.iter().any(|(id, _, _)| *id == a)
        };
        if pos < args.len() && !args[pos].starts_with("--") && !is_command(&args[pos]) {
            telemetry_dir = Some(std::path::PathBuf::from(args.remove(pos)));
        } else {
            telemetry_dir = Some(std::path::PathBuf::from("telemetry"));
        }
    }
    let arg = args.first().cloned().unwrap_or_else(|| "all".to_string());
    match arg.as_str() {
        "list" => {
            println!("available experiments:");
            for (id, title, _) in &experiments {
                let tag = if telemetry_runner(id).is_some() {
                    "  [telemetry]"
                } else {
                    ""
                };
                println!("  {id:<16} {title}{tag}");
            }
        }
        "export-traces" => {
            let dir = args.get(1).cloned().unwrap_or_else(|| "traces".to_string());
            if let Err(e) = export_traces(std::path::Path::new(&dir)) {
                eprintln!("export failed: {e}");
                std::process::exit(1);
            }
        }
        "all" => {
            let mut failed = 0;
            for (id, _, runner) in &experiments {
                eprintln!("running {id} ...");
                let report = run_one(id, runner, telemetry_dir.as_deref());
                println!("{report}");
                if !report.all_hold() {
                    failed += 1;
                }
            }
            if failed > 0 {
                eprintln!("{failed} experiment(s) had rows that did not hold");
                std::process::exit(1);
            }
        }
        id => match experiments.iter().find(|(eid, _, _)| *eid == id) {
            Some((_, _, runner)) => {
                let report = run_one(id, runner, telemetry_dir.as_deref());
                println!("{report}");
                if !report.all_hold() {
                    std::process::exit(1);
                }
            }
            None => {
                eprintln!("unknown experiment '{id}'; try 'ecs-study list'");
                std::process::exit(2);
            }
        },
    }
}
