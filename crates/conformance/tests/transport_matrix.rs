//! Transport-invariance of the §6 oracle matrix.
//!
//! ECS probing/prefix/compliance behaviour is resolver *policy*; the
//! transport carrying the upstream queries (UDP, TCP, DoT, DoH) must not
//! change a single verdict. Each cell row is rendered canonically and the
//! whole table is compared byte-for-byte against the UDP baseline.

use conformance::{run_matrix, run_matrix_over, CellResult};
use resolver::Transport;

fn render(cells: &[CellResult]) -> String {
    cells
        .iter()
        .map(|c| {
            format!(
                "{}|{}|{}|{}|{}|{}",
                c.section, c.cell, c.config, c.scenario, c.expected, c.observed
            )
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn verdict_table_is_byte_identical_across_transports() {
    let baseline_cells = run_matrix_over(Transport::Udp).cells;
    for c in &baseline_cells {
        assert!(c.pass(), "UDP baseline cell failed: {c:?}");
    }
    let baseline = render(&baseline_cells);
    assert!(!baseline.is_empty());
    for t in [Transport::Tcp, Transport::Dot, Transport::Doh] {
        let cells = run_matrix_over(t).cells;
        for c in &cells {
            assert!(c.pass(), "cell failed over {t}: {c:?}");
        }
        assert_eq!(
            render(&cells),
            baseline,
            "§6 verdict table diverged over {t}"
        );
    }
}

#[test]
fn legacy_matrix_is_the_udp_column() {
    assert_eq!(
        render(&run_matrix().cells),
        render(&run_matrix_over(Transport::Udp).cells)
    );
}
