//! Property test: the GeoDb's longest-prefix match agrees with a naive
//! reference implementation.

use authoritative::GeoDb;
use dns_wire::IpPrefix;
use netsim::GeoPoint;
use proptest::prelude::*;
use std::net::{IpAddr, Ipv4Addr};

fn naive_lookup(entries: &[(IpPrefix, GeoPoint)], addr: IpAddr) -> Option<GeoPoint> {
    entries
        .iter()
        .filter(|(p, _)| p.contains(addr))
        .max_by_key(|(p, _)| p.len())
        .map(|(_, pos)| *pos)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn lpm_matches_naive(
        raw_entries in proptest::collection::vec((any::<u32>(), 0u8..=32, -80.0f64..80.0, -179.0f64..179.0), 0..40),
        probes in proptest::collection::vec(any::<u32>(), 1..20),
    ) {
        let mut db = GeoDb::new();
        let mut entries: Vec<(IpPrefix, GeoPoint)> = Vec::new();
        for (addr, len, lat, lon) in raw_entries {
            let p = IpPrefix::v4(Ipv4Addr::from(addr), len).unwrap();
            let pos = GeoPoint::new(lat, lon);
            // Later duplicates replace earlier ones in both implementations.
            entries.retain(|(q, _)| *q != p);
            entries.push((p, pos));
            db.insert(p, pos);
        }
        for probe in probes {
            let addr = IpAddr::V4(Ipv4Addr::from(probe));
            let got = db.locate(addr);
            let want = naive_lookup(&entries, addr);
            // Positions compare exactly: both sides stored identical f64s.
            prop_assert_eq!(
                got.map(|g| (g.lat, g.lon)),
                want.map(|w| (w.lat, w.lon)),
                "probe {}", addr
            );
        }
    }

    #[test]
    fn locate_prefix_never_uses_shorter_entries_of_other_networks(
        base in any::<u32>(),
        len in 9u8..=24,
    ) {
        // An entry at `base/len`; querying the sibling network at the same
        // length must not match it.
        let mut db = GeoDb::new();
        let p = IpPrefix::v4(Ipv4Addr::from(base), len).unwrap();
        db.insert(p, GeoPoint::new(1.0, 2.0));
        let sibling_addr = u32::from_be_bytes(match p.addr() {
            IpAddr::V4(a) => a.octets(),
            _ => unreachable!(),
        }) ^ (1u32 << (32 - len));
        let sibling = IpPrefix::v4(Ipv4Addr::from(sibling_addr), len).unwrap();
        prop_assert_eq!(db.locate_prefix(&sibling), None);
        prop_assert!(db.locate_prefix(&p).is_some());
    }
}
