//! The live counterpart of the simulated pipeline: the same bounded
//! window, retry budget, and circuit breaker driven over a real
//! `UdpSocket` against a running `dnsd` instance — the
//! adversarial-concurrency soak rig for the multi-worker serving path.
//!
//! Timeouts come from the same [`RetryBudget`] (SimDuration microseconds
//! mapped onto the wall clock), and the accounting identity is the same
//! four doors plus one live-only door: a mid-window shutdown accounts
//! every abandoned in-flight probe as `aborted` instead of dropping it
//! silently.

use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::time::{Duration, Instant};

use dns_wire::{Message, Name, Question, Rcode};
use netsim::{SimDuration, SimTime};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::breaker::CircuitBreaker;
use crate::budget::RetryBudget;
use crate::pipeline::ScanStats;
use crate::slots::{SlotRef, SlotTable};

/// Live pipeline knobs (a target-less subset of
/// [`crate::pipeline::ScanConfig`] — one target, no AS grid).
#[derive(Debug, Clone)]
pub struct LiveScanConfig {
    /// In-flight window.
    pub window: usize,
    /// Retry/timeout budget per probe.
    pub budget: RetryBudget,
    /// Consecutive failures that open the target's breaker.
    pub breaker_threshold: u32,
    /// Open-breaker cooldown.
    pub breaker_cooldown: SimDuration,
    /// Jitter seed.
    pub seed: u64,
}

impl Default for LiveScanConfig {
    fn default() -> Self {
        LiveScanConfig {
            window: 32,
            budget: RetryBudget {
                attempts: 2,
                initial_timeout: SimDuration::from_millis(250),
                backoff_mult: 2,
                jitter_pm: 100,
            },
            breaker_threshold: 5,
            breaker_cooldown: SimDuration::from_millis(500),
            seed: 1,
        }
    }
}

struct LiveSlot {
    qname: Name,
    attempt: u32,
    deadline: Instant,
}

/// A bounded-window prober over a real UDP socket, aimed at one target.
pub struct LiveScanner {
    socket: UdpSocket,
    target: SocketAddr,
    cfg: LiveScanConfig,
    breaker: CircuitBreaker,
    rng: SmallRng,
    stats: ScanStats,
    started: Instant,
}

impl LiveScanner {
    /// Binds a loopback socket aimed at `target`.
    pub fn new(target: SocketAddr, cfg: LiveScanConfig) -> io::Result<Self> {
        let socket = UdpSocket::bind("127.0.0.1:0")?;
        socket.set_read_timeout(Some(Duration::from_millis(5)))?;
        Ok(LiveScanner {
            socket,
            target,
            breaker: CircuitBreaker::new(cfg.breaker_threshold, cfg.breaker_cooldown),
            rng: SmallRng::seed_from_u64(cfg.seed),
            cfg,
            stats: ScanStats::default(),
            started: Instant::now(),
        })
    }

    /// Counters so far.
    pub fn stats(&self) -> ScanStats {
        self.stats
    }

    /// Wall-clock elapsed mapped onto the SimTime axis (what the breaker
    /// and budget reason in).
    fn now(&self) -> SimTime {
        SimTime::from_micros(self.started.elapsed().as_micros() as u64)
    }

    fn send(&mut self, r: SlotRef, slots: &mut SlotTable<LiveSlot>) {
        let Some(slot) = slots.get(r) else { return };
        let timeout = self
            .cfg
            .budget
            .timeout_with_jitter(slot.attempt, &mut self.rng);
        let q = Message::query(r.index, Question::a(slot.qname.clone()));
        self.stats.attempts += 1;
        if let Ok(bytes) = q.to_bytes() {
            let _ = self.socket.send_to(&bytes, self.target);
        }
        let slot = slots.get_mut(r).expect("live slot");
        slot.deadline = Instant::now() + Duration::from_micros(timeout.as_micros());
    }

    /// Drives `qnames` through the window until the feed drains or
    /// `wall_budget` elapses; on the deadline, every still-in-flight probe
    /// is accounted as `aborted` (never silently dropped). Returns the
    /// final stats; `stats().reconciles()` holds on return.
    pub fn run(
        &mut self,
        mut qnames: impl Iterator<Item = Name>,
        wall_budget: Duration,
    ) -> ScanStats {
        let deadline = Instant::now() + wall_budget;
        let mut slots: SlotTable<LiveSlot> = SlotTable::new(self.cfg.window.max(1));
        let mut feed_done = false;
        let mut buf = [0u8; 4096];
        loop {
            // Fill the window.
            while !slots.is_full() && !feed_done && Instant::now() < deadline {
                let Some(qname) = qnames.next() else {
                    feed_done = true;
                    break;
                };
                self.stats.probes += 1;
                let now = self.now();
                if !self.breaker.allow(now) {
                    self.stats.shed_breaker += 1;
                    continue;
                }
                let r = slots
                    .insert(LiveSlot {
                        qname,
                        attempt: 0,
                        deadline: Instant::now(),
                    })
                    .expect("checked not full");
                self.stats.max_in_flight = self.stats.max_in_flight.max(slots.live() as u64);
                self.send(r, &mut slots);
            }
            if feed_done && slots.live() == 0 {
                break;
            }
            if Instant::now() >= deadline {
                // Mid-window shutdown: account everything still out.
                let live: Vec<SlotRef> = slots.iter().map(|(r, _)| r).collect();
                for r in live {
                    slots.remove(r);
                    self.stats.aborted += 1;
                }
                break;
            }

            // Receive.
            if let Ok((n, from)) = self.socket.recv_from(&mut buf) {
                if from == self.target {
                    if let Ok(msg) = Message::from_bytes(&buf[..n]) {
                        if msg.is_response() {
                            let hit = slots.get_index(msg.id).and_then(|(r, slot)| {
                                (msg.questions.first().map(|q| &q.name) == Some(&slot.qname))
                                    .then_some(r)
                            });
                            if let Some(r) = hit {
                                slots.remove(r);
                                self.stats.answered += 1;
                                let now = self.now();
                                if msg.rcode == Rcode::Refused {
                                    self.stats.refused += 1;
                                    self.breaker.record_failure(now);
                                    if self.breaker.opens > self.stats.breaker_opens {
                                        self.stats.breaker_opens = self.breaker.opens;
                                    }
                                } else {
                                    if msg.rcode == Rcode::ServFail {
                                        self.stats.servfail += 1;
                                    }
                                    self.breaker.record_success();
                                }
                            }
                        }
                    }
                }
            }

            // Expire timeouts.
            let now_wall = Instant::now();
            let expired: Vec<SlotRef> = slots
                .iter()
                .filter(|(_, s)| s.deadline <= now_wall)
                .map(|(r, _)| r)
                .collect();
            for r in expired {
                let attempt = slots.get(r).map(|s| s.attempt + 1).unwrap_or(u32::MAX);
                if self.cfg.budget.allows(attempt) {
                    if let Some(slot) = slots.get_mut(r) {
                        slot.attempt = attempt;
                    }
                    self.stats.retries += 1;
                    self.send(r, &mut slots);
                } else {
                    slots.remove(r);
                    self.stats.retry_exhausted += 1;
                    let now = self.now();
                    self.breaker.record_failure(now);
                    if self.breaker.opens > self.stats.breaker_opens {
                        self.stats.breaker_opens = self.breaker.opens;
                    }
                }
            }
        }
        debug_assert!(self.stats.reconciles(), "{:?}", self.stats);
        self.stats
    }
}
