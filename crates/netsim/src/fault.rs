//! Deterministic fault injection for the simulated network.
//!
//! A [`FaultPlan`] describes, per directed link (with a plan-wide default),
//! which failures packets experience: probabilistic loss, extra latency
//! jitter, a silent blackhole, and — for DNS-shaped reply payloads —
//! truncation (TC bit) and RCODE rewriting (SERVFAIL/FORMERR/REFUSED). The
//! plan is
//! consulted on [`crate::Simulation`]'s send path, draws all randomness
//! from the simulation's single seeded RNG, and counts every injected
//! fault in [`FaultStats`], so two runs with the same seed inject exactly
//! the same faults.
//!
//! Crucially, a link with [`LinkFaults::NONE`] never touches the RNG, so a
//! simulation carrying an all-zero plan is *bit-identical* to one carrying
//! no plan at all.
//!
//! The payload manglers assume the DNS wire format this project puts in
//! [`crate::Packet::payload`] (the simulator itself stays byte-oriented:
//! a packet that is not a well-formed DNS reply is left untouched by the
//! message-level faults).

use std::collections::HashMap;

use rand::Rng;

use crate::sim::NodeId;

/// Faults applied on one directed link (or plan-wide, as the default).
#[derive(Debug, Clone, PartialEq)]
pub struct LinkFaults {
    /// Probability each packet is dropped, on top of the latency model's
    /// own loss.
    pub loss: f64,
    /// Maximum extra uniform jitter per packet, in milliseconds.
    pub extra_jitter_ms: f64,
    /// Silently drop every packet (a routing blackhole). Unlike `loss =
    /// 1.0` this consumes no randomness.
    pub blackhole: bool,
    /// Probability a DNS *reply* is truncated: TC set, answer/authority/
    /// additional sections stripped.
    pub truncate_replies: f64,
    /// Probability a DNS reply's RCODE is rewritten to SERVFAIL (records
    /// stripped).
    pub servfail_replies: f64,
    /// Probability a DNS reply's RCODE is rewritten to FORMERR (records
    /// stripped, as a pre-EDNS server would answer).
    pub formerr_replies: f64,
    /// Probability a DNS reply's RCODE is rewritten to REFUSED (records
    /// stripped, as a policy-refusing forwarder answers) — the signal the
    /// scanner's circuit breakers trip on.
    pub refused_replies: f64,
}

impl LinkFaults {
    /// A fault-free link.
    pub const NONE: LinkFaults = LinkFaults {
        loss: 0.0,
        extra_jitter_ms: 0.0,
        blackhole: false,
        truncate_replies: 0.0,
        servfail_replies: 0.0,
        formerr_replies: 0.0,
        refused_replies: 0.0,
    };

    /// Pure packet loss at probability `p`.
    pub fn lossy(p: f64) -> Self {
        LinkFaults {
            loss: p,
            ..LinkFaults::NONE
        }
    }

    /// Whether every fault is disabled.
    pub fn is_none(&self) -> bool {
        *self == LinkFaults::NONE
    }
}

impl Default for LinkFaults {
    fn default() -> Self {
        LinkFaults::NONE
    }
}

/// Counters for the faults a plan actually injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Packets dropped by probabilistic loss.
    pub dropped_loss: u64,
    /// Packets swallowed by a blackholed link.
    pub dropped_blackhole: u64,
    /// Replies truncated (TC set, sections stripped).
    pub truncated: u64,
    /// Replies whose RCODE was rewritten (SERVFAIL or FORMERR).
    pub rcode_injected: u64,
    /// Packets that received extra jitter.
    pub delayed: u64,
}

impl FaultStats {
    /// Total packets the plan removed from the network.
    pub fn dropped(&self) -> u64 {
        self.dropped_loss + self.dropped_blackhole
    }
}

/// A seeded, deterministic description of which links fail and how.
///
/// Randomness is *not* stored here: the plan is pure data, and every draw
/// comes from the RNG the caller passes to [`FaultPlan::apply`] (the
/// simulation's own seeded RNG), which is what makes runs reproducible.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    default: LinkFaults,
    links: HashMap<(NodeId, NodeId), LinkFaults>,
}

impl FaultPlan {
    /// A plan injecting no faults anywhere.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A plan applying `faults` to every link.
    pub fn uniform(faults: LinkFaults) -> Self {
        FaultPlan {
            default: faults,
            links: HashMap::new(),
        }
    }

    /// Sets the plan-wide default faults.
    pub fn set_default(&mut self, faults: LinkFaults) -> &mut Self {
        self.default = faults;
        self
    }

    /// Sets the faults for the directed link `src → dst` (overrides the
    /// default for that link only).
    pub fn set_link(&mut self, src: NodeId, dst: NodeId, faults: LinkFaults) -> &mut Self {
        self.links.insert((src, dst), faults);
        self
    }

    /// The faults in effect on `src → dst`.
    pub fn faults_for(&self, src: NodeId, dst: NodeId) -> &LinkFaults {
        self.links.get(&(src, dst)).unwrap_or(&self.default)
    }

    /// Whether the plan injects nothing at all.
    pub fn is_none(&self) -> bool {
        self.default.is_none() && self.links.values().all(LinkFaults::is_none)
    }

    /// Applies the plan to one packet about to traverse `src → dst`,
    /// possibly mangling `payload` in place and counting what happened in
    /// `stats`. Returns `None` when the packet is dropped, otherwise the
    /// extra delay to add on top of the latency model's.
    ///
    /// A fault-free link returns immediately without drawing from `rng`.
    pub fn apply<R: Rng>(
        &self,
        src: NodeId,
        dst: NodeId,
        payload: &mut Vec<u8>,
        rng: &mut R,
        stats: &mut FaultStats,
    ) -> Option<crate::SimDuration> {
        let f = self.faults_for(src, dst);
        if f.is_none() {
            return Some(crate::SimDuration::ZERO);
        }
        if f.blackhole {
            stats.dropped_blackhole += 1;
            return None;
        }
        if f.loss > 0.0 && rng.gen::<f64>() < f.loss {
            stats.dropped_loss += 1;
            return None;
        }
        if dns_is_reply(payload) {
            if f.truncate_replies > 0.0 && rng.gen::<f64>() < f.truncate_replies {
                dns_truncate(payload);
                stats.truncated += 1;
            } else if f.servfail_replies > 0.0 && rng.gen::<f64>() < f.servfail_replies {
                dns_set_rcode(payload, 2); // SERVFAIL
                stats.rcode_injected += 1;
            } else if f.formerr_replies > 0.0 && rng.gen::<f64>() < f.formerr_replies {
                dns_set_rcode(payload, 1); // FORMERR
                stats.rcode_injected += 1;
            } else if f.refused_replies > 0.0 && rng.gen::<f64>() < f.refused_replies {
                dns_set_rcode(payload, 5); // REFUSED
                stats.rcode_injected += 1;
            }
        }
        let extra = if f.extra_jitter_ms > 0.0 {
            stats.delayed += 1;
            crate::SimDuration::from_millis_f64(rng.gen::<f64>() * f.extra_jitter_ms)
        } else {
            crate::SimDuration::ZERO
        };
        Some(extra)
    }
}

/// Whether `payload` looks like a DNS response (QR bit set).
fn dns_is_reply(payload: &[u8]) -> bool {
    payload.len() >= 12 && payload[2] & 0x80 != 0
}

/// End of the question section, if the payload parses far enough: walks
/// the first QNAME's labels and skips QTYPE/QCLASS.
fn dns_question_end(payload: &[u8]) -> Option<usize> {
    let qdcount = u16::from_be_bytes([payload[4], payload[5]]) as usize;
    let mut i = 12;
    for _ in 0..qdcount {
        loop {
            let len = *payload.get(i)? as usize;
            if len == 0 {
                i += 1;
                break;
            }
            if len & 0xC0 != 0 {
                i += 2; // compression pointer terminates the name
                break;
            }
            i += 1 + len;
        }
        i += 4; // QTYPE + QCLASS
        if i > payload.len() {
            return None;
        }
    }
    Some(i)
}

/// Truncates a reply in place: sets TC, zeroes the record counts, and
/// chops everything after the question section (as a size-limited UDP
/// server does). If the question section does not parse, only TC is set.
fn dns_truncate(payload: &mut Vec<u8>) {
    payload[2] |= 0x02; // TC
    if let Some(end) = dns_question_end(payload) {
        for b in &mut payload[6..12] {
            *b = 0; // ANCOUNT, NSCOUNT, ARCOUNT
        }
        payload.truncate(end);
    }
}

/// Rewrites a reply's RCODE in place (stripping records like a failing
/// server that never assembled an answer). `rcode` is the 4-bit header
/// value.
fn dns_set_rcode(payload: &mut Vec<u8>, rcode: u8) {
    payload[3] = (payload[3] & 0xF0) | (rcode & 0x0F);
    if let Some(end) = dns_question_end(payload) {
        for b in &mut payload[6..12] {
            *b = 0;
        }
        payload.truncate(end);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn node(i: usize) -> NodeId {
        NodeId(i)
    }

    /// A minimal DNS reply: header with QR set, one question `a.` A/IN,
    /// ANCOUNT advertising one (absent) record.
    fn reply_bytes() -> Vec<u8> {
        let mut b = vec![
            0x12, 0x34, // id
            0x80, 0x00, // QR=1
            0x00, 0x01, // QDCOUNT=1
            0x00, 0x01, // ANCOUNT=1
            0x00, 0x00, 0x00, 0x00,
        ];
        b.extend_from_slice(&[1, b'a', 0]); // qname "a."
        b.extend_from_slice(&[0x00, 0x01, 0x00, 0x01]); // A IN
        b.extend_from_slice(&[0xDE, 0xAD, 0xBE, 0xEF]); // fake record bytes
        b
    }

    #[test]
    fn fault_free_plan_draws_no_randomness() {
        let plan = FaultPlan::none();
        let mut rng1 = SmallRng::seed_from_u64(1);
        let mut rng2 = SmallRng::seed_from_u64(1);
        let mut stats = FaultStats::default();
        let mut payload = reply_bytes();
        let d = plan.apply(node(0), node(1), &mut payload, &mut rng1, &mut stats);
        assert_eq!(d, Some(crate::SimDuration::ZERO));
        assert_eq!(stats, FaultStats::default());
        assert_eq!(payload, reply_bytes(), "payload untouched");
        // The RNG stream was not consumed.
        assert_eq!(rng1.gen::<u64>(), rng2.gen::<u64>());
    }

    #[test]
    fn blackhole_swallows_everything_deterministically() {
        let plan = FaultPlan::uniform(LinkFaults {
            blackhole: true,
            ..LinkFaults::NONE
        });
        let mut rng = SmallRng::seed_from_u64(1);
        let mut stats = FaultStats::default();
        for _ in 0..10 {
            let mut p = reply_bytes();
            assert!(plan
                .apply(node(0), node(1), &mut p, &mut rng, &mut stats)
                .is_none());
        }
        assert_eq!(stats.dropped_blackhole, 10);
    }

    #[test]
    fn loss_is_seed_deterministic() {
        let run = |seed| {
            let plan = FaultPlan::uniform(LinkFaults::lossy(0.5));
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut stats = FaultStats::default();
            for _ in 0..100 {
                let mut p = reply_bytes();
                plan.apply(node(0), node(1), &mut p, &mut rng, &mut stats);
            }
            stats
        };
        assert_eq!(run(7), run(7));
        assert!(run(7).dropped_loss > 20);
        assert!(run(7).dropped_loss < 80);
    }

    #[test]
    fn truncation_sets_tc_and_strips_records() {
        let plan = FaultPlan::uniform(LinkFaults {
            truncate_replies: 1.0,
            ..LinkFaults::NONE
        });
        let mut rng = SmallRng::seed_from_u64(3);
        let mut stats = FaultStats::default();
        let mut p = reply_bytes();
        plan.apply(node(0), node(1), &mut p, &mut rng, &mut stats)
            .unwrap();
        assert_eq!(stats.truncated, 1);
        assert!(p[2] & 0x02 != 0, "TC set");
        assert_eq!(&p[6..12], &[0; 6], "record counts zeroed");
        assert_eq!(p.len(), 12 + 3 + 4, "chopped after the question");
    }

    #[test]
    fn rcode_injection_rewrites_servfail_and_formerr() {
        for (spec, want) in [
            (
                LinkFaults {
                    servfail_replies: 1.0,
                    ..LinkFaults::NONE
                },
                2,
            ),
            (
                LinkFaults {
                    formerr_replies: 1.0,
                    ..LinkFaults::NONE
                },
                1,
            ),
            (
                LinkFaults {
                    refused_replies: 1.0,
                    ..LinkFaults::NONE
                },
                5,
            ),
        ] {
            let plan = FaultPlan::uniform(spec);
            let mut rng = SmallRng::seed_from_u64(3);
            let mut stats = FaultStats::default();
            let mut p = reply_bytes();
            plan.apply(node(0), node(1), &mut p, &mut rng, &mut stats)
                .unwrap();
            assert_eq!(p[3] & 0x0F, want);
            assert_eq!(stats.rcode_injected, 1);
        }
    }

    #[test]
    fn queries_are_not_mangled() {
        let plan = FaultPlan::uniform(LinkFaults {
            truncate_replies: 1.0,
            servfail_replies: 1.0,
            ..LinkFaults::NONE
        });
        let mut rng = SmallRng::seed_from_u64(3);
        let mut stats = FaultStats::default();
        let mut q = reply_bytes();
        q[2] &= !0x80; // clear QR: a query
        let before = q.clone();
        plan.apply(node(0), node(1), &mut q, &mut rng, &mut stats)
            .unwrap();
        assert_eq!(q, before);
        assert_eq!(stats.truncated + stats.rcode_injected, 0);
    }

    #[test]
    fn per_link_overrides_beat_the_default() {
        let mut plan = FaultPlan::uniform(LinkFaults::lossy(1.0));
        plan.set_link(node(0), node(1), LinkFaults::NONE);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut stats = FaultStats::default();
        let mut p = reply_bytes();
        // The overridden link delivers...
        assert!(plan
            .apply(node(0), node(1), &mut p, &mut rng, &mut stats)
            .is_some());
        // ...the reverse direction uses the lossy default.
        assert!(plan
            .apply(node(1), node(0), &mut p, &mut rng, &mut stats)
            .is_none());
        assert!(!plan.is_none());
        assert!(FaultPlan::none().is_none());
    }

    #[test]
    fn extra_jitter_is_bounded_and_counted() {
        let plan = FaultPlan::uniform(LinkFaults {
            extra_jitter_ms: 10.0,
            ..LinkFaults::NONE
        });
        let mut rng = SmallRng::seed_from_u64(3);
        let mut stats = FaultStats::default();
        for _ in 0..50 {
            let mut p = reply_bytes();
            let d = plan
                .apply(node(0), node(1), &mut p, &mut rng, &mut stats)
                .unwrap();
            assert!(d.as_millis_f64() <= 10.0);
        }
        assert_eq!(stats.delayed, 50);
    }
}
