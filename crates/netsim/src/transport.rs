//! Per-link transport models: UDP, TCP, DoT, DoH.
//!
//! The ECS study's simulated resolvers exchange [`dns_wire`]-level messages
//! directly, so "transport" here is not sockets or crypto — it is the two
//! things a transport choice changes about a DNS exchange:
//!
//! 1. **Cost.** Stream transports pay handshake round-trips before the
//!    first byte of DNS flows: TCP pays one RTT (SYN/SYN-ACK), TLS adds
//!    another (1-RTT TLS 1.3 handshake), and a resumed TLS session gets a
//!    configurable discount. Warm connections inside an idle window pay
//!    nothing. [`TransportModel::exchange_cost`] does this accounting on
//!    the [`SimTime`] axis.
//! 2. **Datagram fate.** UDP answers larger than the advertised EDNS
//!    buffer come back truncated (TC), and answers larger than the path
//!    MTU fragment — with a configurable probability that the fragments
//!    never arrive (middleboxes dropping fragments are the fallback
//!    paper's central villain). [`TransportModel::datagram_fate`] decides
//!    deliver/truncate/drop for one answer. Stream transports carry any
//!    size and never consult it.
//!
//! Determinism follows the `fault` module's discipline: fate endpoints
//! (`frag_loss` of `0.0` or `1.0`) never draw from the RNG, so a lossless
//! profile is bit-identical to no transport model at all, and a
//! deterministic test can force every fragment lost without perturbing
//! any other random stream.

use crate::time::{SimDuration, SimTime};
use std::collections::HashMap;
use std::fmt;

/// A DNS transport, ordered roughly by the classic fallback ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Transport {
    /// Plain UDP datagrams (RFC 1035 §4.2.1).
    Udp,
    /// DNS over TCP with two-byte length framing (RFC 1035 §4.2.2 /
    /// RFC 7766).
    Tcp,
    /// DNS over TLS (RFC 7858): TCP framing inside a TLS session.
    Dot,
    /// DNS over HTTPS (RFC 8484): framed HTTP exchanges inside TLS.
    Doh,
}

impl Transport {
    /// Every transport, in ladder order.
    pub const ALL: [Transport; 4] = [
        Transport::Udp,
        Transport::Tcp,
        Transport::Dot,
        Transport::Doh,
    ];

    /// True for connection-oriented transports (everything but UDP).
    /// Streams carry messages of any size: no truncation, no fragments.
    pub const fn is_stream(self) -> bool {
        !matches!(self, Transport::Udp)
    }

    /// True when the transport runs inside TLS.
    pub const fn is_encrypted(self) -> bool {
        matches!(self, Transport::Dot | Transport::Doh)
    }

    /// Stable lowercase label for metrics, traces and reports.
    pub const fn label(self) -> &'static str {
        match self {
            Transport::Udp => "udp",
            Transport::Tcp => "tcp",
            Transport::Dot => "dot",
            Transport::Doh => "doh",
        }
    }
}

impl fmt::Display for Transport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Handshake round-trips each stream transport pays on a cold start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HandshakeCosts {
    /// RTTs for the TCP three-way handshake (the SYN round-trip; the
    /// request can ride the ACK). Default 1.
    pub tcp_rtts: u32,
    /// Additional RTTs for a full TLS handshake on top of TCP (TLS 1.3
    /// is 1-RTT). Default 1.
    pub tls_rtts: u32,
    /// Additional RTTs for a *resumed* TLS handshake — the resumption
    /// discount. Default 0 (session tickets make resumption free beyond
    /// the TCP handshake, as in TLS 1.3 0-RTT).
    pub resumed_tls_rtts: u32,
}

impl Default for HandshakeCosts {
    fn default() -> Self {
        HandshakeCosts {
            tcp_rtts: 1,
            tls_rtts: 1,
            resumed_tls_rtts: 0,
        }
    }
}

impl HandshakeCosts {
    /// Round-trips a cold connect on `transport` costs, given whether a
    /// TLS session is available for resumption. UDP connects for free.
    pub fn rtts(&self, transport: Transport, resumed: bool) -> u32 {
        match transport {
            Transport::Udp => 0,
            Transport::Tcp => self.tcp_rtts,
            Transport::Dot | Transport::Doh => {
                self.tcp_rtts
                    + if resumed {
                        self.resumed_tls_rtts
                    } else {
                        self.tls_rtts
                    }
            }
        }
    }
}

/// Path properties that decide the fate of UDP answers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathProfile {
    /// Path MTU in bytes: UDP answers above this fragment. Default 1500.
    pub mtu: usize,
    /// Probability that a fragmented answer is lost in transit (dropped
    /// fragments look like a timeout to the querier). `0.0` and `1.0`
    /// are deterministic and draw no randomness.
    pub frag_loss: f64,
}

impl Default for PathProfile {
    fn default() -> Self {
        PathProfile {
            mtu: 1500,
            frag_loss: 0.0,
        }
    }
}

/// What happened to one UDP answer on its way back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatagramFate {
    /// Arrived whole.
    Deliver,
    /// Exceeded the advertised EDNS buffer: the sender must truncate
    /// (TC=1) and the querier re-asks over a stream.
    Truncate,
    /// Exceeded the path MTU and the fragments were lost: the querier
    /// sees silence (a timeout).
    FragmentDrop,
}

/// Counters a [`TransportModel`] keeps while accounting exchanges.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Exchanges attempted per transport, in [`Transport::ALL`] order.
    pub exchanges: [u64; 4],
    /// Cold connects that paid a full or resumed handshake.
    pub handshakes: u64,
    /// Cold connects that found a cached TLS session (resumed subset of
    /// `handshakes`).
    pub resumed_handshakes: u64,
    /// Exchanges that rode an existing warm connection for free.
    pub reused_connections: u64,
    /// Total round-trips spent on handshakes (the cost-model ledger).
    pub handshake_rtts: u64,
    /// UDP answers truncated against the advertised EDNS buffer.
    pub truncated: u64,
    /// UDP answers lost to dropped fragments.
    pub fragments_dropped: u64,
}

impl TransportStats {
    /// Exchanges attempted over `transport`.
    pub fn exchanges_over(&self, transport: Transport) -> u64 {
        self.exchanges[transport as usize]
    }
}

/// Stateful per-link transport model: connection/session memory, cost
/// accounting, and datagram fate.
#[derive(Debug, Clone)]
pub struct TransportModel {
    /// Handshake prices.
    pub costs: HandshakeCosts,
    /// Path MTU / fragment-loss knobs.
    pub profile: PathProfile,
    /// How long an idle connection stays warm before the next exchange
    /// pays a fresh handshake. Default 10 s (RFC 7766 recommends
    /// idle-timeout on the order of seconds).
    pub idle_timeout: SimDuration,
    /// Last instant each stream transport's connection carried traffic.
    last_used: HashMap<Transport, SimTime>,
    /// Transports that have completed a TLS handshake at least once and
    /// therefore hold a resumable session ticket.
    sessions: Vec<Transport>,
    stats: TransportStats,
}

impl Default for TransportModel {
    fn default() -> Self {
        TransportModel {
            costs: HandshakeCosts::default(),
            profile: PathProfile::default(),
            idle_timeout: SimDuration::from_secs(10),
            last_used: HashMap::new(),
            sessions: Vec::new(),
            stats: TransportStats::default(),
        }
    }
}

impl TransportModel {
    /// A model with explicit knobs.
    pub fn new(costs: HandshakeCosts, profile: PathProfile) -> Self {
        TransportModel {
            costs,
            profile,
            ..TransportModel::default()
        }
    }

    /// A model whose path delivers everything: effectively infinite MTU,
    /// no fragment loss, default handshake costs. Useful as a transparent
    /// decorator when only transport *selection*, not degradation, is
    /// under test.
    pub fn ideal() -> Self {
        TransportModel::new(
            HandshakeCosts::default(),
            PathProfile {
                mtu: usize::MAX,
                frag_loss: 0.0,
            },
        )
    }

    /// Accounts one exchange over `transport` at `now` and returns the
    /// setup delay it pays before the query can be sent: zero on UDP or a
    /// warm connection, otherwise `rtt × handshake-round-trips`.
    pub fn exchange_cost(
        &mut self,
        transport: Transport,
        rtt: SimDuration,
        now: SimTime,
    ) -> SimDuration {
        self.stats.exchanges[transport as usize] += 1;
        if !transport.is_stream() {
            return SimDuration::ZERO;
        }
        if let Some(&last) = self.last_used.get(&transport) {
            if now.since(last) <= self.idle_timeout {
                self.last_used.insert(transport, now);
                self.stats.reused_connections += 1;
                return SimDuration::ZERO;
            }
        }
        let resumed = transport.is_encrypted() && self.sessions.contains(&transport);
        let rtts = self.costs.rtts(transport, resumed);
        self.stats.handshakes += 1;
        if resumed {
            self.stats.resumed_handshakes += 1;
        }
        self.stats.handshake_rtts += u64::from(rtts);
        if transport.is_encrypted() && !self.sessions.contains(&transport) {
            self.sessions.push(transport);
        }
        let cost = rtt.mul(u64::from(rtts));
        self.last_used.insert(transport, now + cost);
        cost
    }

    /// Decides the fate of one UDP answer of `wire_len` bytes against the
    /// querier's `advertised` EDNS buffer and this path's MTU. `roll` is
    /// only invoked when the outcome is genuinely probabilistic
    /// (`0 < frag_loss < 1` *and* the answer fragments), preserving the
    /// crate's zero-probability-draws-no-RNG discipline.
    pub fn datagram_fate(
        &mut self,
        wire_len: usize,
        advertised: usize,
        roll: impl FnOnce() -> f64,
    ) -> DatagramFate {
        if wire_len > advertised {
            self.stats.truncated += 1;
            return DatagramFate::Truncate;
        }
        if wire_len > self.profile.mtu {
            let lost = if self.profile.frag_loss <= 0.0 {
                false
            } else if self.profile.frag_loss >= 1.0 {
                true
            } else {
                roll() < self.profile.frag_loss
            };
            if lost {
                self.stats.fragments_dropped += 1;
                return DatagramFate::FragmentDrop;
            }
        }
        DatagramFate::Deliver
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> TransportStats {
        self.stats
    }
}

/// Per-link transport assignments over the simulator's node graph, in the
/// mold of [`crate::FaultPlan`]: a default model plus `(src, dst)`
/// overrides. Each link gets its own stateful [`TransportModel`] clone, so
/// connection warmth never leaks between links.
#[derive(Debug, Clone, Default)]
pub struct TransportPlan {
    default: TransportModel,
    links: HashMap<(usize, usize), TransportModel>,
}

impl TransportPlan {
    /// A plan applying `default` to every link.
    pub fn new(default: TransportModel) -> Self {
        TransportPlan {
            default,
            links: HashMap::new(),
        }
    }

    /// Overrides the model on the directed link `src → dst`.
    pub fn set_link(&mut self, src: usize, dst: usize, model: TransportModel) -> &mut Self {
        self.links.insert((src, dst), model);
        self
    }

    /// A fresh stateful model for the directed link `src → dst`.
    pub fn model_for(&self, src: usize, dst: usize) -> TransportModel {
        self.links.get(&(src, dst)).unwrap_or(&self.default).clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const RTT: SimDuration = SimDuration::from_millis(40);

    #[test]
    fn ladder_order_and_labels() {
        assert_eq!(
            Transport::ALL.map(Transport::label),
            ["udp", "tcp", "dot", "doh"]
        );
        assert!(!Transport::Udp.is_stream());
        assert!(Transport::Tcp.is_stream() && !Transport::Tcp.is_encrypted());
        assert!(Transport::Dot.is_encrypted() && Transport::Doh.is_encrypted());
        assert_eq!(Transport::Dot.to_string(), "dot");
    }

    #[test]
    fn udp_costs_nothing_and_keeps_no_state() {
        let mut m = TransportModel::default();
        for i in 0..3 {
            let cost = m.exchange_cost(Transport::Udp, RTT, SimTime::from_secs(i));
            assert_eq!(cost, SimDuration::ZERO);
        }
        assert_eq!(m.stats().exchanges_over(Transport::Udp), 3);
        assert_eq!(m.stats().handshakes, 0);
        assert_eq!(m.stats().reused_connections, 0);
    }

    #[test]
    fn tcp_pays_one_rtt_cold_then_reuses_within_idle_window() {
        let mut m = TransportModel::default();
        let t0 = SimTime::from_secs(100);
        assert_eq!(m.exchange_cost(Transport::Tcp, RTT, t0), RTT);
        // 5 s later: inside the 10 s idle window, free.
        let t1 = t0 + SimDuration::from_secs(5);
        assert_eq!(m.exchange_cost(Transport::Tcp, RTT, t1), SimDuration::ZERO);
        // 11 s after that: idle expired, pay the handshake again.
        let t2 = t1 + SimDuration::from_secs(11);
        assert_eq!(m.exchange_cost(Transport::Tcp, RTT, t2), RTT);
        let s = m.stats();
        assert_eq!(s.handshakes, 2);
        assert_eq!(s.reused_connections, 1);
        assert_eq!(s.resumed_handshakes, 0);
        assert_eq!(s.handshake_rtts, 2);
    }

    #[test]
    fn tls_costs_two_rtts_cold_and_discounts_resumption() {
        let mut m = TransportModel::default();
        let t0 = SimTime::from_secs(0);
        // Cold DoT: TCP (1) + full TLS (1) = 2 RTTs.
        assert_eq!(m.exchange_cost(Transport::Dot, RTT, t0), RTT.mul(2));
        // Reconnect long after idle expiry: TCP (1) + resumed TLS (0).
        let t1 = t0 + SimDuration::from_secs(1_000);
        assert_eq!(m.exchange_cost(Transport::Dot, RTT, t1), RTT);
        let s = m.stats();
        assert_eq!(s.handshakes, 2);
        assert_eq!(s.resumed_handshakes, 1);
        assert_eq!(s.handshake_rtts, 3);
        // DoH keeps its own session memory: still a full handshake.
        let mut m2 = m.clone();
        assert_eq!(m2.exchange_cost(Transport::Doh, RTT, t1), RTT.mul(2));
    }

    #[test]
    fn custom_resumption_discount_is_honored() {
        let costs = HandshakeCosts {
            tcp_rtts: 1,
            tls_rtts: 2,
            resumed_tls_rtts: 1,
        };
        assert_eq!(costs.rtts(Transport::Doh, false), 3);
        assert_eq!(costs.rtts(Transport::Doh, true), 2);
        assert_eq!(costs.rtts(Transport::Tcp, true), 1);
        assert_eq!(costs.rtts(Transport::Udp, false), 0);
    }

    #[test]
    fn datagram_fate_orders_truncation_before_fragmentation() {
        let mut m = TransportModel::new(
            HandshakeCosts::default(),
            PathProfile {
                mtu: 1500,
                frag_loss: 1.0,
            },
        );
        let no_roll = || panic!("deterministic endpoint must not draw RNG");
        // Over the advertised buffer: truncate, even though it also
        // exceeds the MTU (the sender truncates before the path sees it).
        assert_eq!(m.datagram_fate(3000, 1200, no_roll), DatagramFate::Truncate);
        // Fits the buffer but fragments, and every fragment is lost.
        assert_eq!(
            m.datagram_fate(1600, 4096, no_roll),
            DatagramFate::FragmentDrop
        );
        // Small answers sail through.
        assert_eq!(m.datagram_fate(100, 512, no_roll), DatagramFate::Deliver);
        let s = m.stats();
        assert_eq!((s.truncated, s.fragments_dropped), (1, 1));
    }

    #[test]
    fn deterministic_endpoints_draw_no_rng_and_midpoint_rolls() {
        let mut lossless = TransportModel::default(); // frag_loss 0.0
        assert_eq!(
            lossless.datagram_fate(1600, 4096, || panic!("rolled at 0.0")),
            DatagramFate::Deliver
        );
        let mut coin = TransportModel::new(
            HandshakeCosts::default(),
            PathProfile {
                mtu: 1500,
                frag_loss: 0.5,
            },
        );
        assert_eq!(
            coin.datagram_fate(1600, 4096, || 0.25),
            DatagramFate::FragmentDrop
        );
        assert_eq!(
            coin.datagram_fate(1600, 4096, || 0.75),
            DatagramFate::Deliver
        );
    }

    #[test]
    fn ideal_model_delivers_everything() {
        let mut m = TransportModel::ideal();
        assert_eq!(
            m.datagram_fate(1 << 20, usize::MAX, || unreachable!()),
            DatagramFate::Deliver
        );
    }

    #[test]
    fn plan_overrides_per_link_and_models_are_independent() {
        let mut plan = TransportPlan::new(TransportModel::default());
        plan.set_link(
            1,
            2,
            TransportModel::new(
                HandshakeCosts::default(),
                PathProfile {
                    mtu: 512,
                    frag_loss: 1.0,
                },
            ),
        );
        let mut narrow = plan.model_for(1, 2);
        let mut wide = plan.model_for(2, 1);
        let no_roll = || panic!("deterministic endpoint must not draw RNG");
        assert_eq!(
            narrow.datagram_fate(600, 4096, no_roll),
            DatagramFate::FragmentDrop
        );
        assert_eq!(
            wide.datagram_fate(600, 4096, no_roll),
            DatagramFate::Deliver
        );
        // Stateful warmth stays per-model: warming `narrow` leaves a
        // second checkout of the same link cold.
        let t0 = SimTime::ZERO;
        assert_eq!(narrow.exchange_cost(Transport::Tcp, RTT, t0), RTT);
        let mut narrow2 = plan.model_for(1, 2);
        assert_eq!(narrow2.exchange_cost(Transport::Tcp, RTT, t0), RTT);
    }
}
