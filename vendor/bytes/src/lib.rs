//! Minimal, API-compatible stand-in for the `bytes` crate.
//!
//! Backs [`BytesMut`] with a plain `Vec<u8>` and provides the [`BufMut`]
//! write methods `dns-wire`'s wire writer uses. Zero-copy splitting and
//! refcounted buffers are deliberately absent — nothing here needs them.

#![warn(missing_docs)]

use core::ops::{Deref, DerefMut};

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut { inner: Vec::new() }
    }

    /// Creates an empty buffer with at least the given capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(capacity),
        }
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when no bytes have been written.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }

    /// Reserves capacity for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.inner.reserve(additional);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Vec<u8> {
        b.inner
    }
}

/// Append-style writing, big-endian for multi-byte integers.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);
    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16);
    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32);
    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64);
    /// Appends a byte slice.
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.inner.push(v);
    }

    fn put_u16(&mut self, v: u16) {
        self.inner.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.inner.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.inner.extend_from_slice(&v.to_be_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_are_big_endian_and_appended() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u8(0xAB);
        b.put_u16(0x1234);
        b.put_u32(0xDEAD_BEEF);
        b.put_slice(&[1, 2]);
        assert_eq!(
            b.to_vec(),
            vec![0xAB, 0x12, 0x34, 0xDE, 0xAD, 0xBE, 0xEF, 1, 2]
        );
        assert_eq!(b.len(), 9);
        // Indexing through Deref/DerefMut.
        b[0] = 0xFF;
        assert_eq!(b[0], 0xFF);
    }
}
