//! `obs-validate` — check and analyze exported telemetry artifacts.
//!
//! ```text
//! obs-validate metrics <snapshot.json> [--require name1,name2,...] [--require-scanner] [--require-prof] [--require-stream]
//! obs-validate trace <trace.jsonl>
//! obs-validate analyze <trace.jsonl> [--top N] [--json]
//! ```
//!
//! `--require-scanner` appends the scanner profile
//! ([`obs::validate::SCANNER_REQUIRED_SERIES`]): every `scanner_*`
//! probe-outcome counter, the in-flight gauge, and the latency histogram.
//! `--require-prof` appends the profiling profile
//! ([`obs::validate::PROF_REQUIRED_SERIES`]): the stage-profiler roll-ups
//! and the `lock_*` contention series. `--require-stream` appends the
//! streaming cache-replay profile
//! ([`obs::validate::STREAM_REQUIRED_SERIES`]): the `cache_sim_*` fold
//! from the shard-parallel streaming replay engine.
//!
//! `analyze` extracts each query's critical path from a JSON-lines trace
//! (attributing every microsecond between consecutive events to the phase
//! the earlier event opened), prints a per-stage aggregate table and the
//! top-N slowest query timelines. `--json` emits the machine-readable
//! report instead.
//!
//! Exits 0 when the artifact is well-formed (and, for metrics, carries
//! every required series), 1 on validation/analysis failure, 2 on
//! usage/IO errors.

use obs::validate::{
    validate_metrics_json, validate_trace, PROF_REQUIRED_SERIES, SCANNER_REQUIRED_SERIES,
    STREAM_REQUIRED_SERIES,
};

fn usage() -> ! {
    eprintln!("usage: obs-validate metrics <snapshot.json> [--require a,b,c] [--require-scanner] [--require-prof] [--require-stream]");
    eprintln!("       obs-validate trace <trace.jsonl>");
    eprintln!("       obs-validate analyze <trace.jsonl> [--top N] [--json]");
    std::process::exit(2);
}

fn read(path: &str) -> String {
    match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("obs-validate: cannot read {path}: {e}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("metrics") => {
            let Some(path) = args.get(1) else { usage() };
            let mut required: Vec<String> = Vec::new();
            let mut rest = args[2..].iter();
            while let Some(arg) = rest.next() {
                match arg.as_str() {
                    "--require" => match rest.next() {
                        Some(list) => {
                            required.extend(list.split(',').map(|s| s.trim().to_string()))
                        }
                        None => usage(),
                    },
                    "--require-scanner" => {
                        required.extend(SCANNER_REQUIRED_SERIES.iter().map(|s| s.to_string()))
                    }
                    "--require-prof" => {
                        required.extend(PROF_REQUIRED_SERIES.iter().map(|s| s.to_string()))
                    }
                    "--require-stream" => {
                        required.extend(STREAM_REQUIRED_SERIES.iter().map(|s| s.to_string()))
                    }
                    _ => usage(),
                }
            }
            let required_refs: Vec<&str> = required.iter().map(String::as_str).collect();
            match validate_metrics_json(&read(path), &required_refs) {
                Ok(()) => println!(
                    "obs-validate: {path} OK ({} required series present)",
                    required_refs.len()
                ),
                Err(e) => {
                    eprintln!("obs-validate: {path}: {e}");
                    std::process::exit(1);
                }
            }
        }
        Some("trace") => {
            let Some(path) = args.get(1) else { usage() };
            if args.len() > 2 {
                usage();
            }
            match validate_trace(&read(path)) {
                Ok(n) => println!("obs-validate: {path} OK ({n} events)"),
                Err(e) => {
                    eprintln!("obs-validate: {path}: {e}");
                    std::process::exit(1);
                }
            }
        }
        Some("analyze") => {
            let Some(path) = args.get(1) else { usage() };
            let mut top = 5usize;
            let mut json = false;
            let mut rest = args[2..].iter();
            while let Some(arg) = rest.next() {
                match arg.as_str() {
                    "--top" => match rest.next().and_then(|v| v.parse().ok()) {
                        Some(n) => top = n,
                        None => usage(),
                    },
                    "--json" => json = true,
                    _ => usage(),
                }
            }
            match obs::analyze::analyze(&read(path), top) {
                Ok(report) => {
                    if json {
                        print!("{}", report.to_json());
                    } else {
                        print!("{}", report.to_text());
                    }
                }
                Err(e) => {
                    eprintln!("obs-validate: {path}: {e}");
                    std::process::exit(1);
                }
            }
        }
        _ => usage(),
    }
}
