//! §5: passive vs active discovery of ECS-enabled resolvers.
//!
//! A shared population of ECS resolvers is observed two ways:
//!
//! * **passively** — a busy CDN authoritative logs which resolvers sent at
//!   least one ECS query during the window (resolvers whose clients never
//!   touched the CDN's zone are missed);
//! * **actively** — a scan through open forwarders reaches only resolvers
//!   that (a) serve at least one open forwarder and (b) send ECS to an
//!   unknown experimental domain (per-zone whitelisting resolvers don't).
//!
//! Paper: the scan found 278 non-Google egress resolvers vs 4147 in the
//! CDN logs, with 234 of the 278 also present passively.

use std::collections::HashSet;
use std::net::IpAddr;

use analysis::DiscoveryOverlap;
use authoritative::{AuthServer, EcsHandling, ScopePolicy, Zone};
use dns_wire::{Message, Name, Question};
use netsim::SimTime;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use resolver::{ProbingStrategy, Resolver};
use topology::AddrAllocator;
use workload::CdnDatasetGen;

use crate::behavior::resolver_config_for;
use crate::report::Report;

/// Parameters.
#[derive(Debug, Clone)]
pub struct Config {
    /// Divisor on the paper's CDN population.
    pub scale: usize,
    /// Probability a resolver is reachable through at least one open
    /// forwarder (drives the active method's reach; the paper's ratio is
    /// 278/4147 ≈ 6.7% for non-Google resolvers).
    pub open_forwarder_reach: f64,
    /// Probability a reachable resolver zone-whitelists ECS domains and
    /// thus won't send ECS to our unknown experimental zone.
    pub zone_whitelist_fraction: f64,
    /// Probability a resolver's clients touch the CDN zone during the
    /// passive window (busy CDN ⇒ near 1).
    pub passive_activity: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            scale: 4,
            open_forwarder_reach: 0.08,
            zone_whitelist_fraction: 0.15,
            passive_activity: 0.97,
            seed: 0,
        }
    }
}

/// Outcome.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// The overlap summary.
    pub overlap: DiscoveryOverlap,
}

/// Runs the experiment.
pub fn run(config: &Config) -> (Outcome, Report) {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let population = CdnDatasetGen::scaled(config.scale, config.seed).generate();

    // Passive observation: the CDN authoritative (non-whitelisting, so it
    // sees the ECS options even though it ignores them).
    let cdn_apex = Name::from_ascii("cdn.example").expect("valid");
    let mut cdn_zone = Zone::new(cdn_apex.clone());
    let cdn_name = cdn_apex.child("www").expect("valid");
    cdn_zone
        .add_a(
            cdn_name.clone(),
            60,
            std::net::Ipv4Addr::new(198, 51, 100, 1),
        )
        .expect("in zone");
    let mut cdn = AuthServer::new(
        cdn_zone,
        EcsHandling::whitelisted(ScopePolicy::MatchSource, Default::default()),
    );

    // Active scan: our experimental authoritative.
    let scan_apex = Name::from_ascii("probe.example").expect("valid");
    let mut scan_zone = Zone::new(scan_apex.clone());
    let scan_name = scan_apex.child("x1").expect("valid");
    scan_zone
        .add_a(
            scan_name.clone(),
            60,
            std::net::Ipv4Addr::new(198, 51, 100, 2),
        )
        .expect("in zone");
    let mut scan = AuthServer::new(scan_zone, EcsHandling::open(ScopePolicy::SourceMinusK(4)));

    let mut alloc = AddrAllocator::new();
    for spec in &population {
        let mut cfg = resolver_config_for(spec, std::slice::from_ref(&cdn_name));
        let zone_whitelists = rng.gen_bool(config.zone_whitelist_fraction);
        if zone_whitelists {
            // OpenDNS-style: ECS only for known CDN zones, never for our
            // experimental domain.
            cfg.probing = ProbingStrategy::ZoneWhitelist {
                zones: vec![cdn_apex.clone()],
            };
        }
        let mut resolver = Resolver::new(cfg);
        let client = AddrAllocator::host_in(&alloc.alloc_v4_block(), 9);

        // Passive window: clients query the CDN name (maybe).
        if rng.gen_bool(config.passive_activity) {
            let q = Message::query(1, Question::a(cdn_name.clone()));
            resolver.resolve_msg(&q, client, SimTime::from_secs(1), &mut cdn);
        }
        // Active scan: reaches the resolver only via an open forwarder.
        if rng.gen_bool(config.open_forwarder_reach) {
            let q = Message::query(2, Question::a(scan_name.clone()));
            resolver.resolve_msg(&q, client, SimTime::from_secs(2), &mut scan);
        }
    }

    let passive: HashSet<IpAddr> = cdn
        .log()
        .iter()
        .filter(|e| e.ecs.is_some())
        .map(|e| e.resolver)
        .collect();
    let active: HashSet<IpAddr> = scan
        .log()
        .iter()
        .filter(|e| e.ecs.is_some())
        .map(|e| e.resolver)
        .collect();
    let overlap = DiscoveryOverlap::compute(&passive, &active);

    let mut report = Report::new("discovery", "§5 passive vs active discovery");
    report.row(
        "passive discoveries",
        format!("4147 (scaled pop: {})", population.len()),
        overlap.passive_total(),
        overlap.passive_total() > overlap.active_total(),
    );
    report.row(
        "active discoveries",
        "278 non-Google",
        overlap.active_total(),
        overlap.active_total() < overlap.passive_total() / 2,
    );
    report.row(
        "actively found also seen passively",
        "234/278 ≈ 84%",
        format!(
            "{}/{} = {:.0}%",
            overlap.both,
            overlap.active_total(),
            overlap.active_coverage_by_passive() * 100.0
        ),
        overlap.active_coverage_by_passive() > 0.6,
    );
    (Outcome { overlap }, report)
}

/// Default-parameter entry point.
pub fn run_default() -> Report {
    run(&Config::default()).1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passive_dominates_active() {
        let (out, report) = run(&Config::default());
        assert!(
            out.overlap.passive_total() > out.overlap.active_total() * 3,
            "{report}"
        );
        assert!(out.overlap.active_coverage_by_passive() > 0.5, "{report}");
        assert!(report.all_hold(), "{report}");
    }
}
