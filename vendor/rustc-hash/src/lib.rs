//! Minimal, API-compatible stand-in for `rustc-hash`.
//!
//! Implements the Fx hash — the word-at-a-time multiply-xor hash rustc
//! itself uses — plus the [`FxHashMap`]/[`FxHashSet`] aliases. Fx is not
//! DoS-resistant, which is exactly why it is fast: the cache-simulation
//! hot path hashes billions of small interned keys where SipHash's keyed
//! rounds are pure overhead.

#![warn(missing_docs)]

use core::hash::{BuildHasherDefault, Hasher};
use std::collections::{HashMap, HashSet};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The Fx hasher: one rotate-xor-multiply per word of input.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(&bytes[..8]);
            self.add_to_hash(u64::from_ne_bytes(buf));
            bytes = &bytes[8..];
        }
        if !bytes.is_empty() {
            let mut buf = [0u8; 8];
            buf[..bytes.len()].copy_from_slice(bytes);
            self.add_to_hash(u64::from_ne_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with the Fx hash.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with the Fx hash.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<(u32, u32), u64> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert((i, i.wrapping_mul(7)), i as u64);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&(41, 287)], 41);

        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(3));
        assert!(!s.insert(3));
    }

    #[test]
    fn hash_is_deterministic_and_spreads() {
        use core::hash::BuildHasher;
        let b = FxBuildHasher::default();
        let h = |v: u64| b.hash_one(v);
        assert_eq!(h(12345), h(12345));
        let distinct: std::collections::HashSet<u64> = (0..10_000).map(h).collect();
        assert_eq!(distinct.len(), 10_000);
    }
}
