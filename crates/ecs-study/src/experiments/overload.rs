//! Extension experiment: graceful degradation under overload.
//!
//! The §7 simulations show ECS inflating resolver caches by orders of
//! magnitude; a production resolver survives that inflation with a bounded
//! cache, query coalescing, load shedding, and RFC 8767 serve-stale. This
//! sweep measures each mechanism on the engine itself:
//!
//! * **cache size × client population** — a bounded [`EcsCache`] under an
//!   ECS workload whose working set exceeds the bound: hit rate degrades
//!   and evictions climb, but the entry count never passes the cap;
//! * **fault rate × serve-stale** — the same warmed cache re-queried while
//!   the upstream drops queries: with stale retention on, expired entries
//!   answer within the RFC 8767 budget instead of SERVFAIL;
//! * **packet-level burst cells** — duplicate concurrent queries coalesce
//!   into one upstream flight, and an in-flight cap sheds the excess with
//!   SERVFAIL rather than queueing without bound.

use std::net::{IpAddr, Ipv4Addr};
use std::sync::Arc;

use authoritative::{AuthServer, EcsHandling, ScopePolicy, Zone};
use dns_wire::{Message, Name, Question, Rcode};
use netsim::geo::city;
use netsim::{AddressBook, LinkFaults, SimDuration, SimTime, Simulation};
use parking_lot::RwLock;
use resolver::actors::{AuthActor, ClientActor, EgressActor, SharedBook};
use resolver::{FaultyUpstream, Resolver, ResolverConfig};

use crate::report::Report;
use crate::telemetry::Telemetry;

/// Parameters.
#[derive(Debug, Clone)]
pub struct Config {
    /// Client queries per cache-sweep cell.
    pub queries: u64,
    /// Cache entry bounds swept (`None` = unbounded).
    pub capacities: Vec<Option<usize>>,
    /// Client /24 populations swept.
    pub populations: Vec<usize>,
    /// Upstream query-loss rates swept in the serve-stale phase.
    pub loss_rates: Vec<f64>,
    /// Distinct hostnames in the zone.
    pub hostnames: usize,
    /// Zone TTL (short, so the stale phase can expire it).
    pub ttl: u32,
    /// RNG seed for the probabilistic fault cells.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            queries: 400,
            capacities: vec![None, Some(16), Some(4)],
            populations: vec![2, 6],
            loss_rates: vec![0.0, 0.5, 1.0],
            hostnames: 8,
            ttl: 30,
            seed: 11,
        }
    }
}

/// One bounded-cache sweep cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheCell {
    /// Entry bound in force (`None` = unbounded).
    pub capacity: Option<usize>,
    /// Client /24s in the workload.
    pub population: usize,
    /// Cache hit rate over the cell's queries.
    pub hit_rate: f64,
    /// Entries evicted to hold the bound.
    pub evictions: u64,
    /// Peak live entry count observed.
    pub max_size: usize,
}

/// One serve-stale sweep cell (the re-query phase against a faulty path).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StaleCell {
    /// Upstream loss rate.
    pub loss: f64,
    /// Whether stale retention was on.
    pub serve_stale: bool,
    /// Re-queries that ended in a usable answer (fresh or stale).
    pub answered: u64,
    /// Answers served from expired entries (RFC 8767).
    pub stale_answers: u64,
    /// Re-queries that fell through to SERVFAIL.
    pub servfails: u64,
}

/// One packet-level burst cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BurstCell {
    /// Queries the authoritative actually saw.
    pub upstream_flights: usize,
    /// Client queries answered by joining an existing flight.
    pub coalesced: u64,
    /// Client queries shed at the admission gate.
    pub shed: u64,
    /// Clients that received any response at all.
    pub responded: u64,
}

/// Outcome of the full sweep.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Capacity × population grid.
    pub cache_cells: Vec<CacheCell>,
    /// Loss sweep with serve-stale on, plus the off condition at full loss.
    pub stale_cells: Vec<StaleCell>,
    /// Duplicate burst with coalescing on.
    pub coalesced_burst: BurstCell,
    /// Oversized burst against an in-flight cap.
    pub shed_burst: BurstCell,
}

fn zone(config: &Config) -> Zone {
    let apex = Name::from_ascii("load.example").expect("valid");
    let mut zone = Zone::new(apex.clone());
    for h in 0..config.hostnames {
        zone.add_a(
            apex.child(&format!("h{h}")).expect("valid"),
            config.ttl,
            Ipv4Addr::new(198, 51, 100, (h % 250) as u8 + 1),
        )
        .expect("in zone");
    }
    zone
}

fn qname(config: &Config, i: u64) -> Name {
    Name::from_ascii(&format!("h{}.load.example", i % config.hostnames as u64)).expect("valid")
}

/// Cycles every (hostname, /24) pair before repeating, so the working set
/// is exactly `hostnames × population` entries under MatchSource scoping.
fn client_for(config: &Config, population: usize, i: u64) -> IpAddr {
    let subnet = (i / config.hostnames as u64) % population as u64;
    IpAddr::V4(Ipv4Addr::new(10, (subnet >> 8) as u8, subnet as u8, 9))
}

fn drive_cache(
    capacity: Option<usize>,
    population: usize,
    config: &Config,
    tracer: &obs::Tracer,
) -> (CacheCell, obs::MetricsSnapshot) {
    let mut server = AuthServer::new(zone(config), EcsHandling::open(ScopePolicy::MatchSource));
    server.set_logging(false);
    let mut rc = ResolverConfig::rfc_compliant("9.9.9.9".parse().expect("valid"));
    rc.overload.max_cache_entries = capacity;
    let mut r = Resolver::new(rc);
    r.set_tracer(tracer.clone());
    for i in 0..config.queries {
        let q = Message::query(i as u16, Question::a(qname(config, i)));
        // Two queries per second: the widest working set (8 hostnames ×
        // 6 /24s = 48 pairs) cycles in 24 s, inside the 30 s TTL, so the
        // unbounded cache hits on every revisit while the swept bounds
        // (16, 4) must evict live entries to admit new ones.
        r.resolve_msg(
            &q,
            client_for(config, population, i),
            SimTime::from_micros(i * 500_000),
            &mut server,
        );
    }
    let cs = r.cache_stats();
    let cell = CacheCell {
        capacity,
        population,
        hit_rate: cs.hit_rate(),
        evictions: cs.evictions,
        max_size: cs.max_size,
    };
    (cell, r.metrics_snapshot())
}

fn drive_stale(
    loss: f64,
    serve_stale: bool,
    config: &Config,
    tracer: &obs::Tracer,
) -> (StaleCell, obs::MetricsSnapshot) {
    let mut server = AuthServer::new(zone(config), EcsHandling::open(ScopePolicy::MatchSource));
    server.set_logging(false);
    let mut rc = ResolverConfig::rfc_compliant("9.9.9.9".parse().expect("valid"));
    rc.retry.attempts = 2;
    if serve_stale {
        rc.overload.serve_stale_ttl = SimDuration::from_secs(3600);
    }
    let mut r = Resolver::new(rc);
    r.set_tracer(tracer.clone());
    let client: IpAddr = "10.0.0.9".parse().expect("valid");

    // Warm phase: fault-free, one query per hostname fills the cache.
    for i in 0..config.hostnames as u64 {
        let q = Message::query(i as u16, Question::a(qname(config, i)));
        r.resolve_msg(&q, client, SimTime::from_secs(i), &mut server);
    }
    let warm_servfails = r.stats().servfail_responses;
    debug_assert_eq!(warm_servfails, 0);

    // Stale phase: every entry has expired (but sits inside the 1 h stale
    // budget) and the upstream path now loses queries.
    let mut faulty = FaultyUpstream::new(
        server,
        LinkFaults {
            loss,
            ..LinkFaults::NONE
        },
        config.seed,
    );
    let t0 = config.hostnames as u64 + config.ttl as u64 + 10;
    let mut answered = 0u64;
    for i in 0..config.hostnames as u64 {
        let q = Message::query(i as u16, Question::a(qname(config, i)));
        let resp = r.resolve_msg(&q, client, SimTime::from_secs(t0 + i * 60), &mut faulty);
        if resp.rcode == Rcode::NoError && !resp.answers.is_empty() {
            answered += 1;
        }
    }
    let s = r.stats();
    let cell = StaleCell {
        loss,
        serve_stale,
        answered,
        stale_answers: s.stale_answers,
        servfails: s.servfail_responses - warm_servfails,
    };
    (cell, r.metrics_snapshot())
}

/// A packet-level world: one authoritative, one egress running `rc`, and
/// `clients` co-located nodes all asking the same name at t = 0.
fn drive_burst(
    rc: ResolverConfig,
    clients: usize,
    tracer: &obs::Tracer,
) -> (BurstCell, obs::MetricsSnapshot) {
    let book: SharedBook = Arc::new(RwLock::new(AddressBook::new()));
    let mut sim = Simulation::new(5);
    if tracer.is_enabled() {
        sim.enable_metrics();
    }
    let auth_addr: IpAddr = "198.51.100.53".parse().expect("valid");
    let egress_addr: IpAddr = "9.9.9.9".parse().expect("valid");

    let apex = Name::from_ascii("burst.example").expect("valid");
    let mut z = Zone::new(apex.clone());
    z.add_a(
        apex.child("www").expect("valid"),
        60,
        Ipv4Addr::new(198, 51, 100, 1),
    )
    .expect("in zone");
    let auth_node = sim.add_node(
        AuthActor::new(
            AuthServer::new(z, EcsHandling::open(ScopePolicy::MatchSource)),
            book.clone(),
        ),
        city("Chicago").expect("known").pos,
    );
    let egress_node = sim.add_node(
        EgressActor::new(
            {
                let mut r = Resolver::new(rc);
                r.set_tracer(tracer.clone());
                r
            },
            vec![(apex.clone(), auth_addr)],
            book.clone(),
        ),
        city("Toronto").expect("known").pos,
    );
    let mut client_nodes = Vec::new();
    for i in 0..clients {
        let q = Message::query(i as u16 + 1, Question::a(apex.child("www").expect("valid")));
        let node = sim.add_node(
            ClientActor::new(egress_node, vec![(SimTime::ZERO, q)]),
            city("Toronto").expect("known").pos,
        );
        book.write()
            .bind(format!("100.70.1.{}", i + 1).parse().expect("valid"), node);
        client_nodes.push(node);
    }
    {
        let mut b = book.write();
        b.bind(auth_addr, auth_node);
        b.bind(egress_addr, egress_node);
    }
    for &c in &client_nodes {
        ClientActor::arm(&mut sim, c);
    }
    sim.run();

    let upstream_flights = sim
        .node_mut::<AuthActor>(auth_node)
        .expect("auth node")
        .server()
        .log()
        .len();
    let mut snapshot = sim.metrics_snapshot().unwrap_or_default();
    let egress = sim
        .node_mut::<EgressActor>(egress_node)
        .expect("egress node");
    snapshot.merge(&egress.resolver().metrics_snapshot());
    let stats = egress.resolver().stats();
    let responded = client_nodes
        .iter()
        .filter(|&&c| {
            !sim.node_mut::<ClientActor>(c)
                .expect("client node")
                .responses
                .is_empty()
        })
        .count() as u64;
    let cell = BurstCell {
        upstream_flights,
        coalesced: stats.coalesced_queries,
        shed: stats.shed_queries,
        responded,
    };
    (cell, snapshot)
}

/// Runs the experiment.
pub fn run(config: &Config) -> (Outcome, Report) {
    let (outcome, report, _) = run_impl(config, false);
    (outcome, report)
}

/// Runs the experiment with telemetry on: the engine-level cells and the
/// packet-level bursts (resolver + netsim registries) merge into one
/// snapshot, every resolution traces into one shared sink, and the report
/// gains p50/p99 latency rows.
pub fn run_telemetry(config: &Config) -> (Outcome, Report, Telemetry) {
    let (outcome, report, telemetry) = run_impl(config, true);
    (outcome, report, telemetry.expect("telemetry on"))
}

fn run_impl(config: &Config, telemetry: bool) -> (Outcome, Report, Option<Telemetry>) {
    let sink = telemetry.then(|| std::sync::Arc::new(obs::MemorySink::new()));
    let tracer = sink
        .as_ref()
        .map(|s| obs::Tracer::new(s.clone() as std::sync::Arc<dyn obs::TraceSink>))
        .unwrap_or_else(obs::Tracer::disabled);
    let mut merged = obs::MetricsSnapshot::default();
    fn fold<C>(merged: &mut obs::MetricsSnapshot, (cell, snap): (C, obs::MetricsSnapshot)) -> C {
        merged.merge(&snap);
        cell
    }

    let cache_cells: Vec<CacheCell> = config
        .capacities
        .iter()
        .flat_map(|&cap| config.populations.iter().map(move |&pop| (cap, pop)))
        .map(|(cap, pop)| fold(&mut merged, drive_cache(cap, pop, config, &tracer)))
        .collect();

    let mut stale_cells: Vec<StaleCell> = config
        .loss_rates
        .iter()
        .map(|&loss| fold(&mut merged, drive_stale(loss, true, config, &tracer)))
        .collect();
    stale_cells.push(fold(&mut merged, drive_stale(1.0, false, config, &tracer)));

    let mut coalesce_cfg = ResolverConfig::rfc_compliant("9.9.9.9".parse().expect("valid"));
    coalesce_cfg.overload.coalesce = true;
    let coalesced_burst = fold(&mut merged, drive_burst(coalesce_cfg, 6, &tracer));

    let mut shed_cfg = ResolverConfig::rfc_compliant("9.9.9.9".parse().expect("valid"));
    shed_cfg.overload.max_in_flight = Some(2);
    let shed_burst = fold(&mut merged, drive_burst(shed_cfg, 6, &tracer));

    let outcome = Outcome {
        cache_cells,
        stale_cells,
        coalesced_burst,
        shed_burst,
    };

    let mut report = Report::new(
        "overload",
        "graceful degradation under overload (extension)",
    );

    let widest_pop = config.populations.iter().copied().max().unwrap_or(1);
    for cell in outcome
        .cache_cells
        .iter()
        .filter(|c| c.population == widest_pop)
    {
        let cap_label = cell
            .capacity
            .map_or("unbounded".to_string(), |c| c.to_string());
        report.row(
            format!("cache @ cap {cap_label}, {widest_pop} /24s"),
            "peak size respects the bound; evictions only when it bites",
            format!(
                "hit {:.1}%, peak {}, {} evictions",
                cell.hit_rate * 100.0,
                cell.max_size,
                cell.evictions
            ),
            cell.capacity.is_none_or(|cap| cell.max_size <= cap)
                && (cell.capacity.is_some() || cell.evictions == 0),
        );
    }
    let unbounded_hit = outcome
        .cache_cells
        .iter()
        .find(|c| c.capacity.is_none() && c.population == widest_pop)
        .map(|c| c.hit_rate)
        .unwrap_or(0.0);
    let tightest_hit = outcome
        .cache_cells
        .iter()
        .filter(|c| c.population == widest_pop)
        .filter_map(|c| c.capacity.map(|cap| (cap, c.hit_rate)))
        .min_by_key(|&(cap, _)| cap)
        .map(|(_, h)| h)
        .unwrap_or(0.0);
    report.row(
        "bound tightens, hit rate falls",
        "the tightest cap hits no more often than unbounded",
        format!(
            "{:.1}% -> {:.1}%",
            unbounded_hit * 100.0,
            tightest_hit * 100.0
        ),
        tightest_hit <= unbounded_hit,
    );

    for cell in &outcome.stale_cells {
        let mode = if cell.serve_stale {
            "stale on"
        } else {
            "stale off"
        };
        report.row(
            format!("re-query @ loss {:.1}, {mode}", cell.loss),
            "serve-stale converts would-be SERVFAILs into stale answers",
            format!(
                "{} answered, {} stale, {} SERVFAIL",
                cell.answered, cell.stale_answers, cell.servfails
            ),
            if cell.serve_stale {
                cell.servfails == 0 && (cell.loss == 0.0) == (cell.stale_answers == 0)
            } else {
                cell.stale_answers == 0 && cell.servfails > 0
            },
        );
    }

    report.row(
        "duplicate burst coalesces",
        "six identical concurrent queries, one upstream flight",
        format!(
            "{} flights, {} joined, {}/6 responded",
            outcome.coalesced_burst.upstream_flights,
            outcome.coalesced_burst.coalesced,
            outcome.coalesced_burst.responded
        ),
        outcome.coalesced_burst.upstream_flights == 1
            && outcome.coalesced_burst.coalesced == 5
            && outcome.coalesced_burst.responded == 6,
    );
    report.row(
        "in-flight cap sheds",
        "excess queries SERVFAIL promptly instead of queueing",
        format!(
            "{} flights, {} shed, {}/6 responded",
            outcome.shed_burst.upstream_flights,
            outcome.shed_burst.shed,
            outcome.shed_burst.responded
        ),
        outcome.shed_burst.upstream_flights == 2
            && outcome.shed_burst.shed == 4
            && outcome.shed_burst.responded == 6,
    );

    let telemetry_out = sink.map(|sink| {
        let lat = merged
            .histogram("resolver_query_latency_us")
            .cloned()
            .unwrap_or_default();
        report.row(
            "query latency p50/p99",
            "cache hits keep p50 at zero sim-time; upstream trips set p99",
            format!(
                "p50 {} us, p99 {} us, max {} us over {} queries",
                lat.quantile(0.5),
                lat.quantile(0.99),
                lat.max,
                lat.count
            ),
            lat.count > 0 && lat.quantile(0.5) <= lat.quantile(0.99),
        );
        Telemetry {
            snapshot: merged,
            trace_jsonl: sink
                .lines()
                .into_iter()
                .map(|l| l + "\n")
                .collect::<String>(),
        }
    });
    report.detail = format!(
        "{} queries per cache cell over {} hostnames, TTL {} s; capacities\n{:?} x populations {:?}. Stale phase re-queries a warmed cache past\nexpiry against loss rates {:?} (seed {}). Burst cells run the packet-level\nactors: 6 co-located clients, one authoritative.\n",
        config.queries,
        config.hostnames,
        config.ttl,
        config.capacities,
        config.populations,
        config.loss_rates,
        config.seed
    );
    (outcome, report, telemetry_out)
}

/// Default-parameter entry point.
pub fn run_default() -> Report {
    run(&Config::default()).1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Config {
        Config {
            queries: 160,
            capacities: vec![None, Some(4)],
            populations: vec![2, 4],
            loss_rates: vec![0.0, 1.0],
            ..Config::default()
        }
    }

    #[test]
    fn all_mechanisms_hold() {
        let (out, report) = run(&small());
        assert!(report.all_hold(), "{report}");
        // Duplicate concurrent queries produced exactly one upstream flight.
        assert_eq!(out.coalesced_burst.upstream_flights, 1);
        // The admission gate actually shed load.
        assert!(out.shed_burst.shed > 0);
        // The bound bit somewhere in the grid.
        assert!(out
            .cache_cells
            .iter()
            .any(|c| c.capacity.is_some() && c.evictions > 0));
        // Full loss with stale retention answered everything stale.
        let dark = out
            .stale_cells
            .iter()
            .find(|c| c.serve_stale && c.loss == 1.0)
            .unwrap();
        assert_eq!(dark.stale_answers, dark.answered);
        assert!(dark.answered > 0);
    }

    #[test]
    fn sweep_is_seed_deterministic() {
        let (a, _) = run(&small());
        let (b, _) = run(&small());
        assert_eq!(a.cache_cells, b.cache_cells);
        assert_eq!(a.stale_cells, b.stale_cells);
        assert_eq!(a.coalesced_burst, b.coalesced_burst);
        assert_eq!(a.shed_burst, b.shed_burst);
    }

    #[test]
    fn telemetry_run_matches_and_validates() {
        let (plain, _) = run(&small());
        let (traced, report, telem) = run_telemetry(&small());
        assert_eq!(plain.cache_cells, traced.cache_cells);
        assert_eq!(plain.coalesced_burst, traced.coalesced_burst);
        assert!(report.all_hold(), "{report}");
        assert!(obs::validate::validate_trace(&telem.trace_jsonl).unwrap() > 0);
        // Engine cells contribute resolver/cache series; the burst cells
        // run the packet simulator with its metrics on too.
        assert!(obs::validate::validate_metrics_json(
            &telem.snapshot.to_json(),
            &[
                "resolver_client_queries_total",
                "resolver_coalesced_queries_total",
                "resolver_shed_queries_total",
                "cache_evictions_total",
                "netsim_delivered_total",
            ],
        )
        .is_ok());
        // The coalesced burst traced its joiners.
        assert!(telem.trace_jsonl.contains("\"event\":\"coalesced_join\""));
        assert!(telem.trace_jsonl.contains("\"event\":\"shed\""));
        assert!(telem.trace_jsonl.contains("\"event\":\"stale_serve\""));
    }
}
