//! Trace records: the common currency between workload generation and the
//! §7 cache analyses.
//!
//! One [`TraceRecord`] is one logged DNS interaction as the paper's traces
//! record it: time, egress resolver, question, the ECS source prefix of the
//! query, the scope of the response, the TTL — and, uniquely in the
//! All-Names dataset, the real client address.

use dns_wire::{IpPrefix, Name, RecordType};
use serde::{Deserialize, Serialize};
use std::net::IpAddr;

use crate::intern::TraceIndex;

/// One logged query/response pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Microseconds since trace start.
    pub at_micros: u64,
    /// Egress resolver that sent the query.
    pub resolver: IpAddr,
    /// Question name.
    pub qname: Name,
    /// Question type (A or AAAA in these traces).
    pub qtype: RecordType,
    /// ECS source prefix in the query, if any.
    pub ecs_source: Option<IpPrefix>,
    /// Scope prefix length in the response, if the response carried ECS.
    pub response_scope: Option<u8>,
    /// Response TTL in seconds.
    pub ttl: u32,
    /// The real client address (All-Names dataset only).
    pub client: Option<IpAddr>,
}

/// A whole trace plus its metadata.
///
/// A trace may carry a cached [`TraceIndex`] (built by the generators, or
/// on demand via [`TraceSet::build_index`]) mapping every record to dense
/// `(resolver id, name id)` pairs so replay never hashes or clones a
/// [`Name`]. The cache is positional: it is dropped by
/// [`TraceSet::sort_by_time`] and ignored when the record count no longer
/// matches; rewriting `records` in place at the same length requires
/// calling [`TraceSet::build_index`] again.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TraceSet {
    /// Trace records in non-decreasing time order.
    pub records: Vec<TraceRecord>,
    /// Label for reports.
    pub label: String,
    /// Cached interned view of `records`.
    index: Option<TraceIndex>,
}

impl TraceSet {
    /// Creates an empty trace.
    pub fn new(label: impl Into<String>) -> Self {
        TraceSet {
            records: Vec::new(),
            label: label.into(),
            index: None,
        }
    }

    /// The cached interned view, if present and still covering every
    /// record. Returns `None` (rather than building one) so read-only
    /// consumers can fall back to a local build without `&mut self`.
    pub fn index(&self) -> Option<&TraceIndex> {
        let idx = self.index.as_ref()?;
        if idx.len() != self.records.len() {
            return None;
        }
        // Spot-check alignment: catches most in-place rewrites that kept
        // the record count unchanged.
        if let Some(last) = self.records.last() {
            let i = self.records.len() - 1;
            debug_assert_eq!(
                idx.resolvers()[idx.resolver_id(i) as usize],
                last.resolver,
                "stale TraceIndex: records were rewritten in place"
            );
        }
        Some(idx)
    }

    /// Builds (or rebuilds) and caches the interned view.
    pub fn build_index(&mut self) -> &TraceIndex {
        if self.index().is_none() {
            self.index = Some(TraceIndex::build(&self.records));
        }
        self.index.as_ref().expect("just built")
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Distinct egress resolver addresses.
    pub fn resolvers(&self) -> Vec<IpAddr> {
        let mut v: Vec<IpAddr> = self.records.iter().map(|r| r.resolver).collect();
        v.sort();
        v.dedup();
        v
    }

    /// Distinct client addresses (records that carry one).
    pub fn clients(&self) -> Vec<IpAddr> {
        let mut v: Vec<IpAddr> = self.records.iter().filter_map(|r| r.client).collect();
        v.sort();
        v.dedup();
        v
    }

    /// Distinct question names.
    pub fn unique_names(&self) -> usize {
        let mut v: Vec<&Name> = self.records.iter().map(|r| &r.qname).collect();
        v.sort();
        v.dedup();
        v.len()
    }

    /// Fraction of records carrying an ECS source prefix.
    pub fn ecs_fraction(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records
            .iter()
            .filter(|r| r.ecs_source.is_some())
            .count() as f64
            / self.records.len() as f64
    }

    /// Asserts (in debug builds) and repairs time ordering. Drops any
    /// cached index: it is positional and sorting reorders records.
    pub fn sort_by_time(&mut self) {
        self.records.sort_by_key(|r| r.at_micros);
        self.index = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn rec(at: u64, resolver: u8, name: &str) -> TraceRecord {
        TraceRecord {
            at_micros: at,
            resolver: IpAddr::V4(Ipv4Addr::new(10, 0, 0, resolver)),
            qname: Name::from_ascii(name).unwrap(),
            qtype: RecordType::A,
            ecs_source: Some(IpPrefix::v4(Ipv4Addr::new(192, 0, 2, 0), 24).unwrap()),
            response_scope: Some(24),
            ttl: 20,
            client: Some(IpAddr::V4(Ipv4Addr::new(192, 0, 2, 7))),
        }
    }

    #[test]
    fn aggregates() {
        let mut t = TraceSet::new("test");
        t.records.push(rec(5, 1, "a.example.com"));
        t.records.push(rec(1, 2, "b.example.com"));
        t.records.push(rec(3, 1, "a.example.com"));
        assert_eq!(t.len(), 3);
        assert_eq!(t.resolvers().len(), 2);
        assert_eq!(t.unique_names(), 2);
        assert_eq!(t.clients().len(), 1);
        assert!((t.ecs_fraction() - 1.0).abs() < 1e-9);
        t.sort_by_time();
        assert_eq!(t.records[0].at_micros, 1);
        assert_eq!(t.records[2].at_micros, 5);
    }

    #[test]
    fn index_caches_and_invalidates() {
        let mut t = TraceSet::new("test");
        t.records.push(rec(5, 1, "a.example.com"));
        t.records.push(rec(1, 2, "b.example.com"));
        assert!(t.index().is_none(), "no index until built");
        t.build_index();
        let idx = t.index().expect("built");
        assert_eq!(idx.num_resolvers(), 2);
        assert_eq!(idx.num_names(), 2);
        // Sorting reorders records, so the positional cache is dropped.
        t.sort_by_time();
        assert!(t.index().is_none());
        t.build_index();
        let idx = t.index().expect("rebuilt");
        assert_eq!(
            idx.resolvers()[idx.resolver_id(0) as usize],
            t.records[0].resolver
        );
        // Growing the trace makes the cache stale by length.
        t.records.push(rec(9, 3, "c.example.com"));
        assert!(t.index().is_none());
        assert_eq!(t.build_index().num_resolvers(), 3);
        // A clone shares the Arc-backed index.
        let c = t.clone();
        assert!(c.index().is_some());
    }

    #[test]
    fn empty_trace() {
        let t = TraceSet::new("empty");
        assert!(t.is_empty());
        assert_eq!(t.ecs_fraction(), 0.0);
        assert_eq!(t.unique_names(), 0);
    }
}
