//! Static zone data: record sets keyed by (name, type).

use dns_wire::{Name, Rdata, Record, RecordType};
use std::collections::HashMap;
use std::fmt;

/// Errors from zone construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ZoneError {
    /// The record's owner is outside the zone apex.
    OutOfZone {
        /// Offending owner name.
        name: Name,
        /// Zone apex.
        apex: Name,
    },
    /// A CNAME cannot coexist with other data at the same name (RFC 2181) —
    /// the very restriction that motivates CNAME flattening (§8.4).
    CnameConflict(Name),
}

impl fmt::Display for ZoneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ZoneError::OutOfZone { name, apex } => {
                write!(f, "record {name} outside zone {apex}")
            }
            ZoneError::CnameConflict(name) => {
                write!(f, "CNAME at {name} conflicts with existing data")
            }
        }
    }
}

impl std::error::Error for ZoneError {}

/// A DNS zone: an apex and its records.
#[derive(Debug, Clone, Default)]
pub struct Zone {
    apex: Name,
    records: HashMap<(Name, RecordType), Vec<Record>>,
    synth_a: Option<(u32, std::net::Ipv4Addr)>,
}

impl Zone {
    /// Creates an empty zone rooted at `apex`.
    pub fn new(apex: Name) -> Self {
        Zone {
            apex,
            records: HashMap::new(),
            synth_a: None,
        }
    }

    /// Synthesizes an A record (with this TTL and address) for any in-zone
    /// name that has no static data — a wildcard-style catch-all, so a scan
    /// authoritative can answer millions of unique probe names without
    /// holding per-name state. Off by default.
    pub fn set_synth_a(&mut self, ttl: u32, addr: std::net::Ipv4Addr) -> &mut Self {
        self.synth_a = Some((ttl, addr));
        self
    }

    /// Zone apex.
    pub fn apex(&self) -> &Name {
        &self.apex
    }

    /// Adds a record, enforcing in-zone ownership and CNAME exclusivity.
    pub fn add(&mut self, record: Record) -> Result<(), ZoneError> {
        if !record.name.is_subdomain_of(&self.apex) {
            return Err(ZoneError::OutOfZone {
                name: record.name,
                apex: self.apex.clone(),
            });
        }
        let rtype = record.rtype();
        if rtype == RecordType::Cname {
            // A CNAME may not coexist with any other data at the name.
            let conflict = self
                .records
                .keys()
                .any(|(n, t)| *n == record.name && *t != RecordType::Cname);
            if conflict {
                return Err(ZoneError::CnameConflict(record.name));
            }
        } else {
            let conflict = self
                .records
                .contains_key(&(record.name.clone(), RecordType::Cname));
            if conflict {
                return Err(ZoneError::CnameConflict(record.name));
            }
        }
        self.records
            .entry((record.name.clone(), rtype))
            .or_default()
            .push(record);
        Ok(())
    }

    /// Convenience: add an A record.
    pub fn add_a(
        &mut self,
        name: Name,
        ttl: u32,
        addr: std::net::Ipv4Addr,
    ) -> Result<(), ZoneError> {
        self.add(Record::new(name, ttl, Rdata::A(addr)))
    }

    /// Convenience: add a CNAME record.
    pub fn add_cname(&mut self, name: Name, ttl: u32, target: Name) -> Result<(), ZoneError> {
        self.add(Record::new(name, ttl, Rdata::Cname(target)))
    }

    /// Looks up records, following CNAMEs inside the zone. Returns the chain
    /// of records to put in the answer section (CNAMEs first), or an empty
    /// vector if the name has no data of the requested type.
    ///
    /// `exists` distinguishes NXDOMAIN (no data of any type at the name)
    /// from NODATA.
    pub fn lookup(&self, name: &Name, rtype: RecordType) -> Vec<Record> {
        let mut out = Vec::new();
        let mut cur = name.clone();
        // Bound CNAME chains defensively.
        for _ in 0..8 {
            if let Some(rs) = self.records.get(&(cur.clone(), rtype)) {
                out.extend(rs.iter().cloned());
                return out;
            }
            if rtype != RecordType::Cname {
                if let Some(cnames) = self.records.get(&(cur.clone(), RecordType::Cname)) {
                    if let Some(first) = cnames.first() {
                        out.push(first.clone());
                        if let Some(target) = first.rdata.as_cname() {
                            cur = target.clone();
                            continue;
                        }
                    }
                }
            }
            break;
        }
        if out.is_empty() && rtype == RecordType::A {
            if let Some((ttl, addr)) = self.synth_a {
                if name.is_subdomain_of(&self.apex) {
                    out.push(Record::new(name.clone(), ttl, Rdata::A(addr)));
                }
            }
        }
        out
    }

    /// True when the name owns any record (of any type). With
    /// [`Zone::set_synth_a`] enabled every in-zone name exists.
    pub fn name_exists(&self, name: &Name) -> bool {
        (self.synth_a.is_some() && name.is_subdomain_of(&self.apex))
            || self.records.keys().any(|(n, _)| n == name)
    }

    /// Number of record sets.
    pub fn rrset_count(&self) -> usize {
        self.records.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn name(s: &str) -> Name {
        Name::from_ascii(s).unwrap()
    }

    fn zone() -> Zone {
        let mut z = Zone::new(name("example.com"));
        z.add_a(name("www.example.com"), 300, Ipv4Addr::new(192, 0, 2, 1))
            .unwrap();
        z.add_a(name("www.example.com"), 300, Ipv4Addr::new(192, 0, 2, 2))
            .unwrap();
        z.add_cname(name("alias.example.com"), 300, name("www.example.com"))
            .unwrap();
        z
    }

    #[test]
    fn direct_lookup() {
        let z = zone();
        let rs = z.lookup(&name("www.example.com"), RecordType::A);
        assert_eq!(rs.len(), 2);
        assert!(rs.iter().all(|r| r.rtype() == RecordType::A));
    }

    #[test]
    fn cname_chase() {
        let z = zone();
        let rs = z.lookup(&name("alias.example.com"), RecordType::A);
        assert_eq!(rs.len(), 3);
        assert_eq!(rs[0].rtype(), RecordType::Cname);
        assert_eq!(rs[1].rtype(), RecordType::A);
    }

    #[test]
    fn cname_query_returns_cname_only() {
        let z = zone();
        let rs = z.lookup(&name("alias.example.com"), RecordType::Cname);
        assert_eq!(rs.len(), 1);
        assert_eq!(rs[0].rtype(), RecordType::Cname);
    }

    #[test]
    fn missing_name_empty() {
        let z = zone();
        assert!(z
            .lookup(&name("nope.example.com"), RecordType::A)
            .is_empty());
        assert!(!z.name_exists(&name("nope.example.com")));
        assert!(z.name_exists(&name("www.example.com")));
    }

    #[test]
    fn out_of_zone_rejected() {
        let mut z = zone();
        assert!(matches!(
            z.add_a(name("www.other.org"), 60, Ipv4Addr::new(1, 1, 1, 1)),
            Err(ZoneError::OutOfZone { .. })
        ));
    }

    #[test]
    fn cname_exclusivity() {
        let mut z = zone();
        // CNAME added where A exists.
        assert!(matches!(
            z.add_cname(name("www.example.com"), 60, name("x.example.com")),
            Err(ZoneError::CnameConflict(_))
        ));
        // A added where CNAME exists.
        assert!(matches!(
            z.add_a(name("alias.example.com"), 60, Ipv4Addr::new(1, 1, 1, 1)),
            Err(ZoneError::CnameConflict(_))
        ));
    }

    #[test]
    fn dangling_cname_returns_partial_chain() {
        let mut z = Zone::new(name("example.com"));
        z.add_cname(name("a.example.com"), 60, name("missing.example.com"))
            .unwrap();
        let rs = z.lookup(&name("a.example.com"), RecordType::A);
        assert_eq!(rs.len(), 1);
        assert_eq!(rs[0].rtype(), RecordType::Cname);
    }

    #[test]
    fn synth_a_answers_any_in_zone_name() {
        let mut z = zone();
        z.set_synth_a(60, Ipv4Addr::new(203, 0, 113, 9));
        // A previously-missing name now synthesizes one A record…
        let rs = z.lookup(&name("p123.x1-2-3-4.example.com"), RecordType::A);
        assert_eq!(rs.len(), 1);
        assert_eq!(rs[0].ttl, 60);
        assert!(z.name_exists(&name("p123.x1-2-3-4.example.com")));
        // …static data still wins…
        let rs = z.lookup(&name("www.example.com"), RecordType::A);
        assert_eq!(rs.len(), 2);
        // …and out-of-zone names stay absent.
        assert!(z.lookup(&name("www.other.org"), RecordType::A).is_empty());
        assert!(!z.name_exists(&name("www.other.org")));
        // Non-A types are not synthesized.
        assert!(z
            .lookup(&name("p123.x1-2-3-4.example.com"), RecordType::Txt)
            .is_empty());
    }

    #[test]
    fn cname_loop_terminates() {
        let mut z = Zone::new(name("example.com"));
        z.add_cname(name("a.example.com"), 60, name("b.example.com"))
            .unwrap();
        z.add_cname(name("b.example.com"), 60, name("a.example.com"))
            .unwrap();
        let rs = z.lookup(&name("a.example.com"), RecordType::A);
        assert!(rs.len() <= 16, "loop must terminate");
    }
}
