//! The [`Strategy`] trait and core combinators.

use core::fmt::Debug;
use core::marker::PhantomData;
use core::ops::{Range, RangeInclusive};

use rand::Rng;

use crate::test_runner::TestRng;

/// A generator of random values. Object-safe; combinators require `Sized`.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy for heterogeneous composition
    /// (e.g. [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    pub(crate) inner: S,
    pub(crate) f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among same-valued strategies ([`crate::prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T: Debug> Union<T> {
    /// Builds a union over the given options (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

/// Types with a canonical "any value" strategy ([`any`]).
pub trait Arbitrary: Sized + Debug {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen::<$t>()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize, bool, f64);

/// Strategy for [`Arbitrary`] types.
#[derive(Debug, Clone)]
pub struct AnyStrategy<T> {
    _marker: PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full range of values of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: PhantomData,
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
