//! Trace-driven cache simulation (§7).
//!
//! Replays a [`TraceSet`] in two modes at once — ignoring ECS (any cached
//! answer serves any client, as a pre-ECS resolver would) and obeying the
//! source/scope prefixes from the trace — and reports, per resolver, the
//! peak cache size in each mode (the *blow-up factor* is their ratio,
//! Figure 1/2) and the hit rates (Figure 3).
//!
//! The simulation follows the paper's assumptions: resolvers honor
//! authoritative TTLs exactly and never evict early.
//!
//! # Engine
//!
//! Replay is sharded by resolver: resolver `rid` belongs to worker
//! `rid % parallelism`. A single partition pass walks the full trace once,
//! resolving sampling, TTL overrides, and interned ids up front, and
//! splits it into per-shard *packed* replay streams; each worker on the
//! [`std::thread::scope`] pool then replays only its own stream in trace
//! order. (An earlier engine had every worker rescan the whole trace with
//! a `rid % shards` filter — memory traffic grew linearly with the worker
//! count and throughput *fell* as threads were added.) Resolver caches are
//! independent — no record touches another resolver's entries, and a
//! resolver's peak is only sampled at its own insert times, after expiring
//! everything dead at that instant — so the merged result is *bit-identical*
//! for every `parallelism` value (`crates/analysis/tests/`
//! `equivalence_cache_sim.rs` checks this).
//!
//! Within a shard, both modes share a single flat slot arena: one hash
//! lookup of the interned `(local resolver index, name id, qtype)` key
//! (ids from the trace's [`workload::TraceIndex`]) finds the slot holding
//! the plain-mode and ECS-mode entries for that cache line, and compact
//! expiry heaps of `(expiry, slot)` pairs drive TTL eviction.
//!
//! # Streaming
//!
//! [`CacheSimulator::run_streaming`] replays a
//! [`workload::TraceStreamSource`] instead of a materialized trace: each
//! shard worker pulls its own deterministic substream
//! (`source.open_shard(w, n)`) and feeds generated chunks straight into
//! the same `ShardReplayer` engine, so a 100M-record run holds the model
//! tables plus one chunk buffer per worker — never the trace. Results are
//! bit-identical to materialize-then-`run` at every `parallelism`.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::net::IpAddr;

use dns_wire::{IpPrefix, RecordType};
use netsim::{SimDuration, SimTime};
use rustc_hash::FxHashMap;
use workload::stream::{StreamRecord, TraceStreamSource, WorkloadModel};
use workload::{TraceIndex, TraceRecord, TraceSet};

/// Configuration for one simulation run.
#[derive(Debug, Clone)]
pub struct CacheSimConfig {
    /// Override every record's TTL (Figure 1 sweeps 20/40/60 s). `None`
    /// keeps trace TTLs.
    pub ttl_override: Option<u32>,
    /// Keep only records whose client passes this percentage-based sample
    /// (hash of client address + `sample_seed`, kept if `< sample_pct`).
    /// 100 keeps everything. Records without a client are always kept.
    pub sample_pct: u8,
    /// Seed for the client sample hash.
    pub sample_seed: u64,
    /// Worker threads to shard resolvers across. `0` and `1` both mean
    /// sequential; results are identical for every value.
    pub parallelism: usize,
    /// Per-resolver, per-mode cap on live entries. Exceeding it evicts the
    /// least-recently-used entry (touch = hit or insert), modelling a
    /// memory-bounded resolver; eviction order is deterministic at any
    /// `parallelism` because each resolver's records replay in trace order
    /// within its shard. `None` never evicts early (the paper's assumption).
    pub capacity: Option<usize>,
}

impl Default for CacheSimConfig {
    fn default() -> Self {
        CacheSimConfig {
            ttl_override: None,
            sample_pct: 100,
            sample_seed: 0,
            parallelism: 1,
            capacity: None,
        }
    }
}

/// A reasonable `parallelism` for experiment configs: the machine's
/// available parallelism, capped at 8 (replay is memory-bound well before
/// that on wide machines).
pub fn default_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

/// Per-resolver outcome.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct ResolverCacheResult {
    /// The resolver.
    pub resolver: IpAddr,
    /// Peak live entries obeying ECS.
    pub max_size_ecs: usize,
    /// Peak live entries ignoring ECS.
    pub max_size_no_ecs: usize,
    /// Hits/lookups obeying ECS.
    pub hits_ecs: u64,
    /// Hits/lookups ignoring ECS.
    pub hits_no_ecs: u64,
    /// Total lookups (same in both modes).
    pub lookups: u64,
    /// LRU evictions forced by [`CacheSimConfig::capacity`], ECS mode.
    pub evictions_ecs: u64,
    /// LRU evictions forced by [`CacheSimConfig::capacity`], plain mode.
    pub evictions_no_ecs: u64,
}

impl ResolverCacheResult {
    /// `max_size_ecs / max_size_no_ecs` (the Figure-1 metric). 1.0 when the
    /// denominator is zero.
    pub fn blowup_factor(&self) -> f64 {
        if self.max_size_no_ecs == 0 {
            1.0
        } else {
            self.max_size_ecs as f64 / self.max_size_no_ecs as f64
        }
    }

    /// Hit rate obeying ECS.
    pub fn hit_rate_ecs(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits_ecs as f64 / self.lookups as f64
        }
    }

    /// Hit rate ignoring ECS.
    pub fn hit_rate_no_ecs(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits_no_ecs as f64 / self.lookups as f64
        }
    }
}

/// Whole-trace outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheSimResult {
    /// Per-resolver results, in resolver-address order.
    pub per_resolver: Vec<ResolverCacheResult>,
}

impl CacheSimResult {
    /// All blow-up factors.
    pub fn blowup_factors(&self) -> Vec<f64> {
        self.per_resolver
            .iter()
            .map(|r| r.blowup_factor())
            .collect()
    }

    /// Aggregate hit rate obeying ECS.
    pub fn overall_hit_rate_ecs(&self) -> f64 {
        let (h, l) = self
            .per_resolver
            .iter()
            .fold((0u64, 0u64), |(h, l), r| (h + r.hits_ecs, l + r.lookups));
        if l == 0 {
            0.0
        } else {
            h as f64 / l as f64
        }
    }

    /// Aggregate hit rate ignoring ECS.
    pub fn overall_hit_rate_no_ecs(&self) -> f64 {
        let (h, l) = self
            .per_resolver
            .iter()
            .fold((0u64, 0u64), |(h, l), r| (h + r.hits_no_ecs, l + r.lookups));
        if l == 0 {
            0.0
        } else {
            h as f64 / l as f64
        }
    }
}

/// Interned cache key: (shard-local resolver index, name id, qtype).
type Key = (u32, u32, RecordType);

/// One entry of a shard's packed replay stream.
///
/// Partitioning resolves everything that does not depend on cache state —
/// client sampling, TTL override, timestamp→expiry arithmetic, interned
/// name ids, the shard-local resolver index — so the replay loop streams
/// a compact array containing only the bytes it will actually touch.
struct PackedRecord {
    /// Record timestamp on the SimTime axis.
    now: SimTime,
    /// `now + ttl`, with [`CacheSimConfig::ttl_override`] already applied.
    expiry: SimTime,
    /// Shard-local resolver index.
    local: u32,
    /// Interned qname id from the [`TraceIndex`].
    name_id: u32,
    /// Query type.
    qtype: RecordType,
    /// ECS source prefix sent upstream, if any.
    ecs_source: Option<IpPrefix>,
    /// Scope prefix length from the response, if any.
    response_scope: Option<u8>,
}

/// Splits the trace into per-shard packed replay streams in one pass.
///
/// Records keep trace order within their shard, which is all bit-identical
/// replay needs: resolver caches are independent and `rid % num_shards`
/// pins every resolver to exactly one shard, so cross-shard interleaving
/// can never be observed. This pass is the only place the full
/// [`TraceRecord`] array is scanned — workers see just their own stream.
fn partition_records(
    records: &[TraceRecord],
    index: &TraceIndex,
    config: &CacheSimConfig,
    num_shards: usize,
) -> Vec<Vec<PackedRecord>> {
    let mut shards: Vec<Vec<PackedRecord>> = (0..num_shards)
        .map(|_| Vec::with_capacity(records.len() / num_shards + 1))
        .collect();
    let resolver_ids = index.resolver_ids();
    for (i, rec) in records.iter().enumerate() {
        if !keep_client(config, rec.client) {
            continue;
        }
        let rid = resolver_ids[i];
        let now = SimTime::from_micros(rec.at_micros);
        let ttl = config.ttl_override.unwrap_or(rec.ttl);
        shards[rid as usize % num_shards].push(PackedRecord {
            now,
            expiry: now + SimDuration::from_secs(ttl as u64),
            local: (rid as usize / num_shards) as u32,
            name_id: index.name_id(i),
            qtype: rec.qtype,
            ecs_source: rec.ecs_source,
            response_scope: rec.response_scope,
        });
    }
    shards
}

/// One cached line — both modes' live entries for a key, in one arena slot
/// found by a single hash lookup per record.
///
/// Every entry carries the per-resolver recency tick of its last touch
/// (insert or hit) so a capacity bound can evict deterministic LRU order.
struct Slot {
    /// Shard-local resolver index.
    resolver: u32,
    /// Plain-mode entries: (expiry, last-touch tick).
    plain: Vec<(SimTime, u64)>,
    /// ECS-mode entries: scope prefix (`None` serves everyone), expiry,
    /// last-touch tick.
    ecs: Vec<(Option<IpPrefix>, SimTime, u64)>,
}

/// Per-resolver accumulators for one shard, indexed by shard-local
/// resolver index.
struct ShardStats {
    live_plain: Vec<usize>,
    max_plain: Vec<usize>,
    live_ecs: Vec<usize>,
    max_ecs: Vec<usize>,
    hits_plain: Vec<u64>,
    hits_ecs: Vec<u64>,
    lookups: Vec<u64>,
    evictions_plain: Vec<u64>,
    evictions_ecs: Vec<u64>,
}

impl ShardStats {
    fn new(locals: usize) -> Self {
        ShardStats {
            live_plain: vec![0; locals],
            max_plain: vec![0; locals],
            live_ecs: vec![0; locals],
            max_ecs: vec![0; locals],
            hits_plain: vec![0; locals],
            hits_ecs: vec![0; locals],
            lookups: vec![0; locals],
            evictions_plain: vec![0; locals],
            evictions_ecs: vec![0; locals],
        }
    }
}

/// Number of resolver ids mapped to `shard` out of `num_resolvers` under
/// `rid % num_shards` assignment.
fn shard_width(num_resolvers: usize, shard: usize, num_shards: usize) -> usize {
    (num_resolvers + num_shards - 1 - shard) / num_shards
}

/// Drops every entry expiring at or before `now` from one mode's listing.
///
/// `slot_entries` projects the mode's entry list out of a slot;
/// `live` is that mode's per-resolver live counter.
fn purge<E>(
    heap: &mut BinaryHeap<Reverse<(SimTime, u32)>>,
    slots: &mut [Slot],
    live: &mut [usize],
    now: SimTime,
    slot_entries: impl Fn(&mut Slot) -> &mut Vec<E>,
    expiry_of: impl Fn(&E) -> SimTime,
) {
    while let Some(&Reverse((exp, slot_idx))) = heap.peek() {
        if exp > now {
            break;
        }
        heap.pop();
        let slot = &mut slots[slot_idx as usize];
        let entries = slot_entries(slot);
        let before = entries.len();
        entries.retain(|e| expiry_of(e) > now);
        let removed = before - entries.len();
        if removed > 0 {
            live[slot.resolver as usize] -= removed;
        }
    }
}

/// Removes one resolver's least-recently-touched entry in one mode.
///
/// `slot_list` is the resolver's own slots, so the O(entries) scan is
/// bounded by the capacity it enforces. Ticks are unique per (resolver,
/// mode) — each replayed record touches at most one entry per mode — so
/// the minimum is unique and eviction order is deterministic.
fn evict_lru<E>(
    slots: &mut [Slot],
    slot_list: &[u32],
    entries_of: impl Fn(&mut Slot) -> &mut Vec<E>,
    tick_of: impl Fn(&E) -> u64,
) -> bool {
    let mut best: Option<(u64, u32, usize)> = None;
    for &si in slot_list {
        for (ei, e) in entries_of(&mut slots[si as usize]).iter().enumerate() {
            let t = tick_of(e);
            if best.is_none_or(|(bt, _, _)| t < bt) {
                best = Some((t, si, ei));
            }
        }
    }
    match best {
        Some((_, si, ei)) => {
            entries_of(&mut slots[si as usize]).remove(ei);
            true
        }
        None => false,
    }
}

/// Replays one shard's packed stream, both modes in a single pass.
fn simulate_shard(packed: &[PackedRecord], locals: usize, config: &CacheSimConfig) -> ShardStats {
    let mut replayer = ShardReplayer::new(locals, config);
    replayer.feed(packed);
    replayer.into_stats()
}

/// The stateful single-shard replay engine: all cache state for one
/// shard's resolvers, fed packed records in trace order.
///
/// Both the materialized path ([`simulate_shard`] feeds the whole
/// partitioned stream at once) and the streaming path (each worker feeds
/// one generated chunk at a time) drive this same engine, so the two paths
/// share the cache logic *by construction* — chunk boundaries are
/// invisible to it.
struct ShardReplayer {
    stats: ShardStats,
    slots: Vec<Slot>,
    slot_ids: FxHashMap<Key, u32>,
    heap_plain: BinaryHeap<Reverse<(SimTime, u32)>>,
    heap_ecs: BinaryHeap<Reverse<(SimTime, u32)>>,
    /// Per-resolver recency clock and slot registry (for LRU scans under a
    /// capacity bound).
    ticks: Vec<u64>,
    resolver_slots: Vec<Vec<u32>>,
    capacity: Option<usize>,
}

impl ShardReplayer {
    fn new(locals: usize, config: &CacheSimConfig) -> Self {
        ShardReplayer {
            stats: ShardStats::new(locals),
            slots: Vec::new(),
            slot_ids: FxHashMap::default(),
            heap_plain: BinaryHeap::new(),
            heap_ecs: BinaryHeap::new(),
            ticks: vec![0; locals],
            resolver_slots: vec![Vec::new(); locals],
            // A zero capacity would evict the entry just inserted forever;
            // clamp to one entry, the smallest cache that can function.
            capacity: config.capacity.map(|c| c.max(1)),
        }
    }

    fn feed(&mut self, packed: &[PackedRecord]) {
        for rec in packed {
            self.step(rec);
        }
    }

    fn into_stats(self) -> ShardStats {
        self.stats
    }

    fn step(&mut self, rec: &PackedRecord) {
        let ShardReplayer {
            stats,
            slots,
            slot_ids,
            heap_plain,
            heap_ecs,
            ticks,
            resolver_slots,
            capacity,
        } = self;
        let capacity = *capacity;

        let local = rec.local;
        let now = rec.now;
        let expiry = rec.expiry;

        stats.lookups[local as usize] += 1;
        ticks[local as usize] += 1;
        let tick = ticks[local as usize];

        let slot_idx = *slot_ids
            .entry((local, rec.name_id, rec.qtype))
            .or_insert_with(|| {
                slots.push(Slot {
                    resolver: local,
                    plain: Vec::new(),
                    ecs: Vec::new(),
                });
                resolver_slots[local as usize].push((slots.len() - 1) as u32);
                (slots.len() - 1) as u32
            });

        purge(
            heap_plain,
            slots,
            &mut stats.live_plain,
            now,
            |s| &mut s.plain,
            |&(e, _)| e,
        );
        purge(
            heap_ecs,
            slots,
            &mut stats.live_ecs,
            now,
            |s| &mut s.ecs,
            |e| e.1,
        );

        let slot = &mut slots[slot_idx as usize];

        // Plain mode: ECS ignored entirely, any live entry serves.
        if let Some(e) = slot.plain.iter_mut().find(|(exp, _)| *exp > now) {
            e.1 = tick;
            stats.hits_plain[local as usize] += 1;
        } else {
            slot.plain.push((expiry, tick));
            heap_plain.push(Reverse((expiry, slot_idx)));
            stats.live_plain[local as usize] += 1;
            if let Some(cap) = capacity {
                while stats.live_plain[local as usize] > cap
                    && evict_lru(
                        slots,
                        &resolver_slots[local as usize],
                        |s| &mut s.plain,
                        |&(_, t)| t,
                    )
                {
                    stats.live_plain[local as usize] -= 1;
                    stats.evictions_plain[local as usize] += 1;
                }
            }
            let lv = stats.live_plain[local as usize];
            let mx = &mut stats.max_plain[local as usize];
            *mx = (*mx).max(lv);
        }

        // ECS mode: obey source/scope from the trace.
        let source = rec.ecs_source;
        let slot = &mut slots[slot_idx as usize];
        let hit = slot.ecs.iter_mut().find(|(scope, exp, _)| {
            *exp > now
                && match (scope, source.as_ref()) {
                    (None, _) => true, // non-ECS entry serves all
                    (Some(p), Some(s)) => p.is_default_route() || p.covers(s),
                    (Some(p), None) => p.is_default_route(),
                }
        });
        if let Some(e) = hit {
            e.2 = tick;
            stats.hits_ecs[local as usize] += 1;
        } else {
            let entry_prefix = match (source, rec.response_scope) {
                (Some(src), Some(scope)) => Some(src.truncate(scope.min(src.len()))),
                // Query carried ECS, response did not: cacheable for
                // everyone per RFC 7871 §7.3.
                (Some(_), None) => None,
                (None, _) => None,
            };
            slot.ecs.push((entry_prefix, expiry, tick));
            heap_ecs.push(Reverse((expiry, slot_idx)));
            stats.live_ecs[local as usize] += 1;
            if let Some(cap) = capacity {
                while stats.live_ecs[local as usize] > cap
                    && evict_lru(
                        slots,
                        &resolver_slots[local as usize],
                        |s| &mut s.ecs,
                        |e| e.2,
                    )
                {
                    stats.live_ecs[local as usize] -= 1;
                    stats.evictions_ecs[local as usize] += 1;
                }
            }
            let lv = stats.live_ecs[local as usize];
            let mx = &mut stats.max_ecs[local as usize];
            *mx = (*mx).max(lv);
        }
    }
}

/// Folds one shard's accumulators into a fresh registry. Counters are
/// per-resolver sums and each replayed resolver contributes exactly one
/// observation per peak histogram, so merging the per-shard snapshots
/// yields the same series totals at every `parallelism` (each resolver
/// lives in exactly one shard).
fn fold_shard_metrics(reg: &obs::MetricsRegistry, stats: &ShardStats) {
    let sum = |v: &[u64]| v.iter().sum::<u64>();
    reg.counter("cache_sim_lookups_total")
        .add(sum(&stats.lookups));
    reg.counter("cache_sim_hits_ecs_total")
        .add(sum(&stats.hits_ecs));
    reg.counter("cache_sim_hits_plain_total")
        .add(sum(&stats.hits_plain));
    reg.counter("cache_sim_evictions_ecs_total")
        .add(sum(&stats.evictions_ecs));
    reg.counter("cache_sim_evictions_plain_total")
        .add(sum(&stats.evictions_plain));
    let peaks_ecs = reg.histogram("cache_sim_peak_ecs_entries");
    let peaks_plain = reg.histogram("cache_sim_peak_plain_entries");
    let high_water = reg.gauge("cache_sim_peak_live_ecs");
    for local in 0..stats.lookups.len() {
        if stats.lookups[local] == 0 {
            continue; // sampled out: not part of the public result either
        }
        peaks_ecs.record(stats.max_ecs[local] as u64);
        peaks_plain.record(stats.max_plain[local] as u64);
        high_water.set_max(stats.max_ecs[local] as u64);
    }
}

fn keep_client(config: &CacheSimConfig, client: Option<IpAddr>) -> bool {
    if config.sample_pct >= 100 {
        return true;
    }
    match client {
        None => true,
        Some(client) => {
            use std::hash::{Hash, Hasher};
            let mut h = std::collections::hash_map::DefaultHasher::new();
            client.hash(&mut h);
            config.sample_seed.hash(&mut h);
            (h.finish() % 100) < config.sample_pct as u64
        }
    }
}

/// The simulator.
pub struct CacheSimulator {
    config: CacheSimConfig,
}

impl CacheSimulator {
    /// Creates a simulator.
    pub fn new(config: CacheSimConfig) -> Self {
        CacheSimulator { config }
    }

    /// Runs both modes over the trace, sharded across
    /// `config.parallelism` workers.
    pub fn run(&self, trace: &TraceSet) -> CacheSimResult {
        self.run_impl(trace, false, false).0
    }

    /// Like [`CacheSimulator::run`], additionally returning a telemetry
    /// snapshot (lookup/hit/eviction counters and per-resolver peak-size
    /// histograms) merged from per-shard registries. The snapshot is
    /// identical at every `parallelism`, like the result itself.
    pub fn run_instrumented(&self, trace: &TraceSet) -> (CacheSimResult, obs::MetricsSnapshot) {
        let (result, snap, _) = self.run_impl(trace, true, false);
        (result, snap.expect("instrumented run builds a snapshot"))
    }

    /// Like [`CacheSimulator::run_instrumented`], additionally returning
    /// the stage profile of the run: index build, partition pass, and
    /// per-shard replay spans (one [`obs::StageProfiler`] per shard
    /// worker, folded after the join). The *result* stays
    /// parallelism-invariant; the profile's shape reflects the actual
    /// sharding (replay self time splits across workers).
    pub fn run_profiled(
        &self,
        trace: &TraceSet,
    ) -> (CacheSimResult, obs::MetricsSnapshot, obs::ProfileSnapshot) {
        let (result, snap, prof) = self.run_impl(trace, true, true);
        (
            result,
            snap.expect("instrumented run builds a snapshot"),
            prof.expect("profiled run builds a profile"),
        )
    }

    /// Runs both modes over a streamed workload: each shard worker pulls
    /// its own deterministic substream from `source` and replays it
    /// chunk-by-chunk, so peak memory is the model tables plus one chunk
    /// buffer per worker — never the full trace.
    ///
    /// The result is bit-identical to materializing the same source and
    /// calling [`CacheSimulator::run`], at every `parallelism`
    /// (`crates/analysis/tests/stream_equivalence.rs` pins this): shard
    /// assignment uses the model's resolver ids instead of the trace
    /// index's first-appearance ids, but resolver caches are independent,
    /// each resolver's records replay in stream order inside exactly one
    /// shard, and the merge sorts by resolver address in both paths.
    pub fn run_streaming<M: WorkloadModel>(&self, source: &TraceStreamSource<M>) -> CacheSimResult {
        self.run_streaming_impl(source, false, false).0
    }

    /// Like [`CacheSimulator::run_streaming`], additionally returning the
    /// merged telemetry snapshot — identical to the one
    /// [`CacheSimulator::run_instrumented`] produces for the materialized
    /// equivalent of `source`.
    pub fn run_streaming_instrumented<M: WorkloadModel>(
        &self,
        source: &TraceStreamSource<M>,
    ) -> (CacheSimResult, obs::MetricsSnapshot) {
        let (result, snap, _) = self.run_streaming_impl(source, true, false);
        (result, snap.expect("instrumented run builds a snapshot"))
    }

    /// Like [`CacheSimulator::run_streaming_instrumented`], additionally
    /// returning the stage profile: per-shard `stream_shard` spans with
    /// `generate` (chunk synthesis) and `replay` (cache replay) children,
    /// so a flamegraph shows where streaming wall-time goes.
    pub fn run_streaming_profiled<M: WorkloadModel>(
        &self,
        source: &TraceStreamSource<M>,
    ) -> (CacheSimResult, obs::MetricsSnapshot, obs::ProfileSnapshot) {
        let (result, snap, prof) = self.run_streaming_impl(source, true, true);
        (
            result,
            snap.expect("instrumented run builds a snapshot"),
            prof.expect("profiled run builds a profile"),
        )
    }

    fn run_streaming_impl<M: WorkloadModel>(
        &self,
        source: &TraceStreamSource<M>,
        instrument: bool,
        profile: bool,
    ) -> (
        CacheSimResult,
        Option<obs::MetricsSnapshot>,
        Option<obs::ProfileSnapshot>,
    ) {
        let model = source.model();
        let num_resolvers = model.resolver_addrs().len();
        let num_shards = self.config.parallelism.clamp(1, num_resolvers.max(1));
        let mut prof = profile.then(obs::StageProfiler::new);
        if let Some(p) = prof.as_mut() {
            p.enter("cache_sim");
        }

        let config = &self.config;
        let worker = |w: usize| -> (ShardStats, Option<obs::ProfileSnapshot>) {
            let mut wp = profile.then(obs::StageProfiler::new);
            if let Some(p) = wp.as_mut() {
                p.enter("cache_sim");
                p.enter("stream_shard");
            }
            let locals = shard_width(num_resolvers, w, num_shards);
            let mut replayer = ShardReplayer::new(locals, config);
            let mut stream = source.open_shard(w, num_shards);
            // One chunk buffer and one packed buffer per worker, reused
            // across the whole substream: the entire per-worker footprint.
            let mut chunk: Vec<StreamRecord> = Vec::with_capacity(source.chunk_size());
            let mut packed: Vec<PackedRecord> = Vec::with_capacity(source.chunk_size());
            loop {
                if let Some(p) = wp.as_mut() {
                    p.enter("generate");
                }
                let more = stream.next_chunk_into(&mut chunk);
                if let Some(p) = wp.as_mut() {
                    p.exit();
                }
                if !more {
                    break;
                }
                packed.clear();
                for r in &chunk {
                    if !keep_client(config, r.client) {
                        continue;
                    }
                    let now = SimTime::from_micros(r.at_micros);
                    let ttl = config.ttl_override.unwrap_or(r.ttl);
                    packed.push(PackedRecord {
                        now,
                        expiry: now + SimDuration::from_secs(ttl as u64),
                        local: (r.resolver_id as usize / num_shards) as u32,
                        name_id: r.name_id,
                        qtype: r.qtype,
                        ecs_source: r.ecs_source,
                        response_scope: r.response_scope,
                    });
                }
                if let Some(p) = wp.as_mut() {
                    p.enter("replay");
                }
                replayer.feed(&packed);
                if let Some(p) = wp.as_mut() {
                    p.exit();
                }
            }
            if let Some(p) = wp.as_mut() {
                p.exit(); // stream_shard
                p.exit(); // cache_sim
            }
            (replayer.into_stats(), wp.map(|p| p.snapshot()))
        };

        let mut shard_profiles: Vec<obs::ProfileSnapshot> = Vec::new();
        let shards: Vec<ShardStats> = if num_shards == 1 {
            let (stats, wp) = worker(0);
            if let Some(wp) = wp {
                shard_profiles.push(wp);
            }
            vec![stats]
        } else {
            let results: Vec<(ShardStats, Option<obs::ProfileSnapshot>)> =
                std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..num_shards)
                        .map(|w| scope.spawn(move || worker(w)))
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("cache-sim stream worker panicked"))
                        .collect()
                });
            let mut stats = Vec::with_capacity(results.len());
            for (s, wp) in results {
                stats.push(s);
                if let Some(wp) = wp {
                    shard_profiles.push(wp);
                }
            }
            stats
        };

        let snapshot = instrument.then(|| {
            let mut merged = obs::MetricsSnapshot::default();
            for stats in &shards {
                let reg = obs::MetricsRegistry::new();
                fold_shard_metrics(&reg, stats);
                merged.merge(&reg.snapshot());
            }
            merged
        });

        let mut per_resolver: Vec<ResolverCacheResult> = Vec::with_capacity(num_resolvers);
        for (rid, &addr) in model.resolver_addrs().iter().enumerate() {
            let stats = &shards[rid % num_shards];
            let local = rid / num_shards;
            let lookups = stats.lookups[local];
            if lookups == 0 {
                // Never queried (Zipf tail) or fully sampled out — absent
                // from the materialized path's output too.
                continue;
            }
            per_resolver.push(ResolverCacheResult {
                resolver: addr,
                max_size_ecs: stats.max_ecs[local],
                max_size_no_ecs: stats.max_plain[local],
                hits_ecs: stats.hits_ecs[local],
                hits_no_ecs: stats.hits_plain[local],
                lookups,
                evictions_ecs: stats.evictions_ecs[local],
                evictions_no_ecs: stats.evictions_plain[local],
            });
        }
        per_resolver.sort_by_key(|r| r.resolver);
        let profile = prof.map(|mut p| {
            p.exit(); // cache_sim (merge tail in self time)
            let mut folded = p.snapshot();
            for wp in &shard_profiles {
                folded.merge(wp);
            }
            folded
        });
        (CacheSimResult { per_resolver }, snapshot, profile)
    }

    fn run_impl(
        &self,
        trace: &TraceSet,
        instrument: bool,
        profile: bool,
    ) -> (
        CacheSimResult,
        Option<obs::MetricsSnapshot>,
        Option<obs::ProfileSnapshot>,
    ) {
        let mut prof = profile.then(obs::StageProfiler::new);
        if let Some(p) = prof.as_mut() {
            p.enter("cache_sim");
            p.enter("index");
        }
        let built;
        let index = match trace.index() {
            Some(idx) => idx,
            None => {
                built = TraceIndex::build(&trace.records);
                &built
            }
        };
        let num_resolvers = index.num_resolvers();
        let num_shards = self.config.parallelism.clamp(1, num_resolvers.max(1));
        if let Some(p) = prof.as_mut() {
            p.exit(); // index
            p.enter("partition");
        }
        let packed = partition_records(&trace.records, index, &self.config, num_shards);
        if let Some(p) = prof.as_mut() {
            p.exit(); // partition
        }
        let mut shard_profiles: Vec<obs::ProfileSnapshot> = Vec::new();
        let shards: Vec<ShardStats> = if num_shards == 1 {
            if let Some(p) = prof.as_mut() {
                p.enter("replay_shard");
            }
            let stats = simulate_shard(&packed[0], num_resolvers, &self.config);
            if let Some(p) = prof.as_mut() {
                p.exit();
            }
            vec![stats]
        } else {
            let config = &self.config;
            let results: Vec<(ShardStats, Option<obs::ProfileSnapshot>)> =
                std::thread::scope(|scope| {
                    let handles: Vec<_> = packed
                        .iter()
                        .enumerate()
                        .map(|(w, stream)| {
                            let locals = shard_width(num_resolvers, w, num_shards);
                            scope.spawn(move || {
                                let mut wp = profile.then(obs::StageProfiler::new);
                                if let Some(p) = wp.as_mut() {
                                    p.enter("cache_sim");
                                    p.enter("replay_shard");
                                }
                                let stats = simulate_shard(stream, locals, config);
                                if let Some(p) = wp.as_mut() {
                                    p.exit();
                                    p.exit();
                                }
                                (stats, wp.map(|p| p.snapshot()))
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("cache-sim shard worker panicked"))
                        .collect()
                });
            let mut stats = Vec::with_capacity(results.len());
            for (s, wp) in results {
                stats.push(s);
                if let Some(wp) = wp {
                    shard_profiles.push(wp);
                }
            }
            stats
        };

        let snapshot = instrument.then(|| {
            let mut merged = obs::MetricsSnapshot::default();
            for stats in &shards {
                let reg = obs::MetricsRegistry::new();
                fold_shard_metrics(&reg, stats);
                merged.merge(&reg.snapshot());
            }
            merged
        });

        // Deterministic merge: walk resolvers in id order, then sort by
        // address as the public contract requires.
        let mut per_resolver: Vec<ResolverCacheResult> = Vec::with_capacity(num_resolvers);
        for (rid, &addr) in index.resolvers().iter().enumerate() {
            let stats = &shards[rid % num_shards];
            let local = rid / num_shards;
            let lookups = stats.lookups[local];
            if lookups == 0 {
                // Every record sampled out: the resolver never replayed,
                // matching the sequential engine's output shape.
                continue;
            }
            per_resolver.push(ResolverCacheResult {
                resolver: addr,
                max_size_ecs: stats.max_ecs[local],
                max_size_no_ecs: stats.max_plain[local],
                hits_ecs: stats.hits_ecs[local],
                hits_no_ecs: stats.hits_plain[local],
                lookups,
                evictions_ecs: stats.evictions_ecs[local],
                evictions_no_ecs: stats.evictions_plain[local],
            });
        }
        per_resolver.sort_by_key(|r| r.resolver);
        let profile = prof.map(|mut p| {
            p.exit(); // cache_sim (the merge tail rides in its self time)
            let mut folded = p.snapshot();
            for wp in &shard_profiles {
                folded.merge(wp);
            }
            folded
        });
        (CacheSimResult { per_resolver }, snapshot, profile)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_wire::Name;
    use std::net::Ipv4Addr;

    fn name(s: &str) -> Name {
        Name::from_ascii(s).unwrap()
    }

    fn prefix(s: &str, len: u8) -> IpPrefix {
        IpPrefix::v4(s.parse().unwrap(), len).unwrap()
    }

    fn rec(at_secs: u64, name_s: &str, subnet: &str, scope: u8, ttl: u32) -> TraceRecord {
        TraceRecord {
            at_micros: at_secs * 1_000_000,
            resolver: IpAddr::V4(Ipv4Addr::new(9, 9, 9, 9)),
            qname: name(name_s),
            qtype: RecordType::A,
            ecs_source: Some(prefix(subnet, 24)),
            response_scope: Some(scope),
            ttl,
            client: Some(IpAddr::V4(subnet.parse().unwrap())),
        }
    }

    fn run(records: Vec<TraceRecord>) -> CacheSimResult {
        let mut t = TraceSet::new("t");
        t.records = records;
        t.sort_by_time();
        CacheSimulator::new(CacheSimConfig::default()).run(&t)
    }

    #[test]
    fn ecs_splits_cache_by_subnet() {
        // Three subnets query the same name within one TTL window.
        let r = run(vec![
            rec(0, "a.example.com", "10.1.1.0", 24, 60),
            rec(1, "a.example.com", "10.1.2.0", 24, 60),
            rec(2, "a.example.com", "10.1.3.0", 24, 60),
        ]);
        let res = &r.per_resolver[0];
        assert_eq!(res.max_size_no_ecs, 1);
        assert_eq!(res.max_size_ecs, 3);
        assert!((res.blowup_factor() - 3.0).abs() < 1e-9);
        // Plain mode: 2 hits; ECS mode: 0 hits.
        assert_eq!(res.hits_no_ecs, 2);
        assert_eq!(res.hits_ecs, 0);
        assert_eq!(res.lookups, 3);
    }

    #[test]
    fn coarse_scope_shares_across_subnets() {
        // Scope 16: both /24s in the same /16 share the entry.
        let r = run(vec![
            rec(0, "a.example.com", "10.1.1.0", 16, 60),
            rec(1, "a.example.com", "10.1.2.0", 16, 60),
        ]);
        let res = &r.per_resolver[0];
        assert_eq!(res.max_size_ecs, 1);
        assert_eq!(res.hits_ecs, 1);
    }

    #[test]
    fn entries_expire_and_shrink_peak() {
        // Second query arrives after the first expired: no concurrency.
        let r = run(vec![
            rec(0, "a.example.com", "10.1.1.0", 24, 20),
            rec(30, "a.example.com", "10.1.2.0", 24, 20),
        ]);
        let res = &r.per_resolver[0];
        assert_eq!(res.max_size_ecs, 1);
        assert_eq!(res.max_size_no_ecs, 1);
        assert_eq!(res.hits_ecs, 0);
        assert_eq!(res.hits_no_ecs, 0);
    }

    #[test]
    fn ttl_override_changes_concurrency() {
        let records = vec![
            rec(0, "a.example.com", "10.1.1.0", 24, 20),
            rec(30, "a.example.com", "10.1.2.0", 24, 20),
        ];
        let mut t = TraceSet::new("t");
        t.records = records;
        let r = CacheSimulator::new(CacheSimConfig {
            ttl_override: Some(60),
            ..CacheSimConfig::default()
        })
        .run(&t);
        // With 60s TTL the two entries now overlap.
        assert_eq!(r.per_resolver[0].max_size_ecs, 2);
    }

    #[test]
    fn same_subnet_hits_in_both_modes() {
        let r = run(vec![
            rec(0, "a.example.com", "10.1.1.0", 24, 60),
            rec(5, "a.example.com", "10.1.1.0", 24, 60),
        ]);
        let res = &r.per_resolver[0];
        assert_eq!(res.hits_ecs, 1);
        assert_eq!(res.hits_no_ecs, 1);
        assert_eq!(res.max_size_ecs, 1);
    }

    #[test]
    fn distinct_names_never_share() {
        let r = run(vec![
            rec(0, "a.example.com", "10.1.1.0", 24, 60),
            rec(1, "b.example.com", "10.1.1.0", 24, 60),
        ]);
        let res = &r.per_resolver[0];
        assert_eq!(res.max_size_ecs, 2);
        assert_eq!(res.max_size_no_ecs, 2);
    }

    #[test]
    fn non_ecs_records_shared_in_ecs_mode() {
        let mut a = rec(0, "a.example.com", "10.1.1.0", 24, 60);
        a.ecs_source = None;
        a.response_scope = None;
        let mut b = rec(1, "a.example.com", "10.1.2.0", 24, 60);
        b.ecs_source = None;
        b.response_scope = None;
        let r = run(vec![a, b]);
        let res = &r.per_resolver[0];
        assert_eq!(res.max_size_ecs, 1);
        assert_eq!(res.hits_ecs, 1);
    }

    #[test]
    fn client_sampling_filters() {
        let records: Vec<TraceRecord> = (0..100)
            .map(|i| rec(i, "a.example.com", &format!("10.1.{}.0", i % 250), 24, 60))
            .collect();
        let mut t = TraceSet::new("t");
        t.records = records;
        let full = CacheSimulator::new(CacheSimConfig::default()).run(&t);
        let half = CacheSimulator::new(CacheSimConfig {
            sample_pct: 50,
            ..CacheSimConfig::default()
        })
        .run(&t);
        let full_lookups = full.per_resolver[0].lookups;
        let half_lookups = half.per_resolver[0].lookups;
        assert_eq!(full_lookups, 100);
        assert!(half_lookups < 75 && half_lookups > 25, "{half_lookups}");
    }

    #[test]
    fn multiple_resolvers_tracked_separately() {
        let mut a = rec(0, "a.example.com", "10.1.1.0", 24, 60);
        let mut b = rec(1, "a.example.com", "10.1.2.0", 24, 60);
        a.resolver = IpAddr::V4(Ipv4Addr::new(1, 1, 1, 1));
        b.resolver = IpAddr::V4(Ipv4Addr::new(2, 2, 2, 2));
        let r = run(vec![a, b]);
        assert_eq!(r.per_resolver.len(), 2);
        assert!(r.per_resolver.iter().all(|res| res.max_size_ecs == 1));
    }

    #[test]
    fn parallelism_does_not_change_results() {
        let records: Vec<TraceRecord> = (0..400)
            .map(|i| {
                let mut r = rec(
                    i / 7,
                    &format!("h{}.example.com", i % 13),
                    &format!("10.2.{}.0", i % 31),
                    if i % 3 == 0 { 16 } else { 24 },
                    20 + (i as u32 % 4) * 20,
                );
                r.resolver = IpAddr::V4(Ipv4Addr::new(9, 9, 9, (i % 5) as u8 + 1));
                r
            })
            .collect();
        let mut t = TraceSet::new("t");
        t.records = records;
        t.sort_by_time();
        let sequential = CacheSimulator::new(CacheSimConfig::default()).run(&t);
        for parallelism in [2, 3, 8, 64] {
            let sharded = CacheSimulator::new(CacheSimConfig {
                parallelism,
                ..CacheSimConfig::default()
            })
            .run(&t);
            assert_eq!(
                sequential.per_resolver, sharded.per_resolver,
                "parallelism={parallelism}"
            );
        }
    }

    #[test]
    fn capacity_bounds_peak_and_counts_evictions() {
        // Three concurrent subnet entries for one name, capacity 2: the
        // third ECS insert evicts the LRU first entry.
        let records = vec![
            rec(0, "a.example.com", "10.1.1.0", 24, 600),
            rec(1, "a.example.com", "10.1.2.0", 24, 600),
            rec(2, "a.example.com", "10.1.3.0", 24, 600),
        ];
        let mut t = TraceSet::new("t");
        t.records = records;
        t.sort_by_time();
        let r = CacheSimulator::new(CacheSimConfig {
            capacity: Some(2),
            ..CacheSimConfig::default()
        })
        .run(&t);
        let res = &r.per_resolver[0];
        assert_eq!(res.max_size_ecs, 2, "bound never exceeded");
        assert_eq!(res.evictions_ecs, 1);
        // Plain mode never held more than one entry: no pressure.
        assert_eq!(res.max_size_no_ecs, 1);
        assert_eq!(res.evictions_no_ecs, 0);
    }

    #[test]
    fn eviction_is_lru_with_hits_refreshing_recency() {
        // Warm 10.1.1.0 and 10.1.2.0, re-touch 10.1.1.0, then insert a
        // third subnet under capacity 2: the LRU victim is 10.1.2.0, so a
        // final 10.1.1.0 query still hits.
        let records = vec![
            rec(0, "a.example.com", "10.1.1.0", 24, 600),
            rec(1, "a.example.com", "10.1.2.0", 24, 600),
            rec(2, "a.example.com", "10.1.1.0", 24, 600), // hit: refresh
            rec(3, "a.example.com", "10.1.3.0", 24, 600), // evicts 10.1.2.0
            rec(4, "a.example.com", "10.1.1.0", 24, 600), // still cached
            rec(5, "a.example.com", "10.1.2.0", 24, 600), // evicted: miss
        ];
        let mut t = TraceSet::new("t");
        t.records = records;
        t.sort_by_time();
        let r = CacheSimulator::new(CacheSimConfig {
            capacity: Some(2),
            ..CacheSimConfig::default()
        })
        .run(&t);
        let res = &r.per_resolver[0];
        assert_eq!(res.hits_ecs, 2, "t=2 and t=4 hit");
        assert_eq!(res.evictions_ecs, 2, "t=3 evicts .2, t=5 evicts LRU again");
        assert_eq!(res.max_size_ecs, 2);
    }

    #[test]
    fn unbounded_capacity_matches_default_exactly() {
        let records: Vec<TraceRecord> = (0..200)
            .map(|i| {
                rec(
                    i / 5,
                    &format!("h{}.example.com", i % 7),
                    &format!("10.3.{}.0", i % 23),
                    24,
                    40,
                )
            })
            .collect();
        let mut t = TraceSet::new("t");
        t.records = records;
        t.sort_by_time();
        let plain = CacheSimulator::new(CacheSimConfig::default()).run(&t);
        let huge = CacheSimulator::new(CacheSimConfig {
            capacity: Some(usize::MAX),
            ..CacheSimConfig::default()
        })
        .run(&t);
        assert_eq!(plain.per_resolver, huge.per_resolver);
        assert!(plain.per_resolver.iter().all(|r| r.evictions_ecs == 0));
    }

    #[test]
    fn capacity_is_deterministic_at_any_parallelism() {
        let records: Vec<TraceRecord> = (0..400)
            .map(|i| {
                let mut r = rec(
                    i / 7,
                    &format!("h{}.example.com", i % 13),
                    &format!("10.2.{}.0", i % 31),
                    if i % 3 == 0 { 16 } else { 24 },
                    20 + (i as u32 % 4) * 20,
                );
                r.resolver = IpAddr::V4(Ipv4Addr::new(9, 9, 9, (i % 5) as u8 + 1));
                r
            })
            .collect();
        let mut t = TraceSet::new("t");
        t.records = records;
        t.sort_by_time();
        let config = CacheSimConfig {
            capacity: Some(3),
            ..CacheSimConfig::default()
        };
        let sequential = CacheSimulator::new(config.clone()).run(&t);
        assert!(
            sequential.per_resolver.iter().any(|r| r.evictions_ecs > 0),
            "the bound must actually bite for this to test anything"
        );
        assert!(sequential
            .per_resolver
            .iter()
            .all(|r| r.max_size_ecs <= 3 && r.max_size_no_ecs <= 3));
        for parallelism in [2, 3, 8, 64] {
            let sharded = CacheSimulator::new(CacheSimConfig {
                parallelism,
                ..config.clone()
            })
            .run(&t);
            assert_eq!(
                sequential.per_resolver, sharded.per_resolver,
                "parallelism={parallelism}"
            );
        }
    }

    #[test]
    fn instrumented_snapshot_matches_results_at_any_parallelism() {
        let records: Vec<TraceRecord> = (0..400)
            .map(|i| {
                let mut r = rec(
                    i / 7,
                    &format!("h{}.example.com", i % 13),
                    &format!("10.2.{}.0", i % 31),
                    if i % 3 == 0 { 16 } else { 24 },
                    20 + (i as u32 % 4) * 20,
                );
                r.resolver = IpAddr::V4(Ipv4Addr::new(9, 9, 9, (i % 5) as u8 + 1));
                r
            })
            .collect();
        let mut t = TraceSet::new("t");
        t.records = records;
        t.sort_by_time();
        let (result, sequential) =
            CacheSimulator::new(CacheSimConfig::default()).run_instrumented(&t);
        // The snapshot agrees with the public result.
        let lookups: u64 = result.per_resolver.iter().map(|r| r.lookups).sum();
        let hits_ecs: u64 = result.per_resolver.iter().map(|r| r.hits_ecs).sum();
        assert_eq!(sequential.counter("cache_sim_lookups_total"), Some(lookups));
        assert_eq!(
            sequential.counter("cache_sim_hits_ecs_total"),
            Some(hits_ecs)
        );
        let peaks = sequential.histogram("cache_sim_peak_ecs_entries").unwrap();
        assert_eq!(peaks.count, result.per_resolver.len() as u64);
        assert_eq!(
            peaks.max,
            result
                .per_resolver
                .iter()
                .map(|r| r.max_size_ecs as u64)
                .max()
                .unwrap()
        );
        // Sharding never changes the merged snapshot.
        for parallelism in [2, 3, 8, 64] {
            let (_, sharded) = CacheSimulator::new(CacheSimConfig {
                parallelism,
                ..CacheSimConfig::default()
            })
            .run_instrumented(&t);
            assert_eq!(sharded, sequential, "parallelism={parallelism}");
        }
    }

    #[test]
    fn profiled_run_matches_plain_result_and_captures_shard_spans() {
        let records: Vec<TraceRecord> = (0..120u64)
            .map(|i| {
                let mut r = rec(
                    i / 5,
                    &format!("p{}.example.com", i % 11),
                    &format!("10.3.{}.0", i % 17),
                    24,
                    60,
                );
                r.resolver = IpAddr::V4(Ipv4Addr::new(9, 9, 9, (i % 4) as u8 + 1));
                r
            })
            .collect();
        let mut t = TraceSet::new("t");
        t.records = records;
        t.sort_by_time();

        let plain = CacheSimulator::new(CacheSimConfig::default()).run(&t);
        for parallelism in [1, 4] {
            let sim = CacheSimulator::new(CacheSimConfig {
                parallelism,
                ..CacheSimConfig::default()
            });
            let (result, snap, profile) = sim.run_profiled(&t);
            assert_eq!(result, plain, "profiling must not change the result");
            assert!(snap.counter("cache_sim_lookups_total").is_some());
            assert!(!profile.is_empty());
            let folded = profile.to_folded();
            assert!(folded.contains("cache_sim;partition"), "{folded}");
            assert!(folded.contains("cache_sim;replay_shard"), "{folded}");
            // One replay span per shard worker (4 resolvers → 4 shards max).
            let replay_calls = profile
                .stacks
                .get("cache_sim;replay_shard")
                .map(|s| s.calls)
                .unwrap_or(0);
            assert_eq!(replay_calls, parallelism.min(4) as u64);
        }
    }

    #[test]
    fn streaming_matches_materialized_bit_identically() {
        let source = workload::CdnStreamGen {
            resolvers: 9,
            subnets_per_resolver: 6,
            hostnames: 60,
            queries: 20_000,
            duration: netsim::SimDuration::from_secs(600),
            ttl: 20,
            seed: 11,
        }
        .source();
        let trace = source.materialize();
        for parallelism in [1, 2, 4, 8] {
            let sim = CacheSimulator::new(CacheSimConfig {
                parallelism,
                ..CacheSimConfig::default()
            });
            let streamed = sim.run_streaming(&source);
            let materialized = sim.run(&trace);
            assert_eq!(
                streamed.per_resolver, materialized.per_resolver,
                "parallelism={parallelism}"
            );
        }
    }

    #[test]
    fn streaming_snapshot_and_options_match_materialized() {
        let source = workload::AllNamesStreamGen {
            v4_subnets: 40,
            v6_subnets: 10,
            clients_per_subnet: 3,
            slds: 50,
            hostnames_per_sld: 3,
            queries: 15_000,
            ..workload::AllNamesStreamGen::default()
        }
        .source();
        let trace = source.materialize();
        for config in [
            CacheSimConfig {
                parallelism: 4,
                ..CacheSimConfig::default()
            },
            CacheSimConfig {
                ttl_override: Some(60),
                sample_pct: 40,
                sample_seed: 7,
                ..CacheSimConfig::default()
            },
            CacheSimConfig {
                capacity: Some(50),
                ..CacheSimConfig::default()
            },
        ] {
            let sim = CacheSimulator::new(config.clone());
            let (streamed, stream_snap) = sim.run_streaming_instrumented(&source);
            let (materialized, mat_snap) = sim.run_instrumented(&trace);
            assert_eq!(
                streamed.per_resolver, materialized.per_resolver,
                "{config:?}"
            );
            assert_eq!(stream_snap, mat_snap, "{config:?}");
        }
    }

    #[test]
    fn streaming_profile_captures_stream_spans() {
        let source = workload::CdnStreamGen {
            resolvers: 4,
            subnets_per_resolver: 4,
            hostnames: 40,
            queries: 5_000,
            duration: netsim::SimDuration::from_secs(300),
            ttl: 20,
            seed: 2,
        }
        .source()
        .with_chunk_size(512);
        let plain = CacheSimulator::new(CacheSimConfig::default()).run_streaming(&source);
        for parallelism in [1, 4] {
            let sim = CacheSimulator::new(CacheSimConfig {
                parallelism,
                ..CacheSimConfig::default()
            });
            let (result, snap, profile) = sim.run_streaming_profiled(&source);
            assert_eq!(result, plain, "profiling must not change the result");
            assert!(snap.counter("cache_sim_lookups_total").is_some());
            let folded = profile.to_folded();
            assert!(
                folded.contains("cache_sim;stream_shard;generate"),
                "{folded}"
            );
            assert!(folded.contains("cache_sim;stream_shard;replay"), "{folded}");
            let shard_calls = profile
                .stacks
                .get("cache_sim;stream_shard")
                .map(|s| s.calls)
                .unwrap_or(0);
            assert_eq!(shard_calls, parallelism.min(4) as u64);
        }
    }

    #[test]
    fn shard_widths_cover_all_resolvers() {
        for resolvers in 0..20 {
            for shards in 1..8 {
                let total: usize = (0..shards).map(|w| shard_width(resolvers, w, shards)).sum();
                assert_eq!(total, resolvers, "R={resolvers} n={shards}");
            }
        }
    }

    #[test]
    fn blowup_factor_of_empty_resolver_is_one() {
        let res = ResolverCacheResult {
            resolver: IpAddr::V4(Ipv4Addr::new(1, 1, 1, 1)),
            max_size_ecs: 0,
            max_size_no_ecs: 0,
            hits_ecs: 0,
            hits_no_ecs: 0,
            lookups: 0,
            evictions_ecs: 0,
            evictions_no_ecs: 0,
        };
        assert_eq!(res.blowup_factor(), 1.0);
        assert_eq!(res.hit_rate_ecs(), 0.0);
    }
}
