//! Bounded capture of scanner-induced authoritative traffic, grouped the
//! way the §6 classifiers want it: one stream per egress resolver.
//!
//! The driver drains the authoritative query log every simulation slice
//! (so the log never grows with probe count) and feeds it here. The
//! capture keeps a *bounded sample* per resolver — enough for
//! [`analysis::probing::classify_probing`] to run — plus exact aggregate
//! counters, so a 10^6-probe scan classifies in O(resolvers × cap)
//! memory while still accounting every entry.

use std::collections::BTreeMap;
use std::net::IpAddr;

use analysis::probing::{classify_probing, ProbingVerdict};
use authoritative::QueryLogEntry;

/// Stable wire name for a [`ProbingVerdict`] (report/JSON keys).
pub fn verdict_name(v: ProbingVerdict) -> &'static str {
    match v {
        ProbingVerdict::Always => "always",
        ProbingVerdict::HostnameProbe => "hostname_probe",
        ProbingVerdict::IntervalLoopback => "interval_loopback",
        ProbingVerdict::OnMiss => "on_miss",
        ProbingVerdict::Mixed => "mixed",
        ProbingVerdict::NoEcs => "no_ecs",
    }
}

/// Per-resolver bounded samples plus exact aggregate counters.
#[derive(Debug)]
pub struct ScanCapture {
    sample_cap: usize,
    per_resolver: BTreeMap<IpAddr, Vec<QueryLogEntry>>,
    /// Entries absorbed (exact, unaffected by sampling).
    pub total: u64,
    /// Entries kept as samples.
    pub sampled: u64,
    /// Entries dropped by the per-resolver cap (counted, never silent).
    pub cap_dropped: u64,
    /// Entries that carried an ECS option (exact).
    pub ecs_total: u64,
}

impl ScanCapture {
    /// A capture keeping at most `sample_cap` entries per resolver
    /// (≥ 1). The cap bounds memory; all counters stay exact.
    pub fn new(sample_cap: usize) -> Self {
        ScanCapture {
            sample_cap: sample_cap.max(1),
            per_resolver: BTreeMap::new(),
            total: 0,
            sampled: 0,
            cap_dropped: 0,
            ecs_total: 0,
        }
    }

    /// Folds one drained batch of authoritative log entries in.
    pub fn absorb(&mut self, entries: Vec<QueryLogEntry>) {
        for e in entries {
            self.total += 1;
            if e.ecs.is_some() {
                self.ecs_total += 1;
            }
            let stream = self.per_resolver.entry(e.resolver).or_default();
            if stream.len() < self.sample_cap {
                stream.push(e);
                self.sampled += 1;
            } else {
                self.cap_dropped += 1;
            }
        }
    }

    /// Distinct egress resolvers seen.
    pub fn resolvers(&self) -> usize {
        self.per_resolver.len()
    }

    /// The sampled stream for one resolver.
    pub fn entries_for(&self, resolver: IpAddr) -> &[QueryLogEntry] {
        self.per_resolver
            .get(&resolver)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Runs the §6.1 classifier over every resolver's sampled stream.
    /// Deterministic: `BTreeMap` keyed by resolver address.
    pub fn classify(&self, short_window_secs: u64) -> BTreeMap<IpAddr, ProbingVerdict> {
        self.per_resolver
            .iter()
            .map(|(addr, entries)| (*addr, classify_probing(entries, short_window_secs)))
            .collect()
    }

    /// Verdict histogram over [`ScanCapture::classify`].
    pub fn verdict_counts(&self, short_window_secs: u64) -> BTreeMap<&'static str, u64> {
        let mut counts = BTreeMap::new();
        for (_, v) in self.classify(short_window_secs) {
            *counts.entry(verdict_name(v)).or_insert(0) += 1;
        }
        counts
    }

    /// Deterministic JSON: aggregate counters plus per-resolver verdicts,
    /// keys in address order. Byte-identical across identical-seed runs.
    pub fn to_json(&self, short_window_secs: u64) -> String {
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"total\":{},\"sampled\":{},\"cap_dropped\":{},\"ecs_total\":{},\"resolvers\":{{",
            self.total, self.sampled, self.cap_dropped, self.ecs_total
        ));
        let mut first = true;
        for (addr, verdict) in self.classify(short_window_secs) {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\"{addr}\":\"{}\"", verdict_name(verdict)));
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_wire::{EcsOption, Name, RecordType};
    use netsim::SimTime;

    fn entry(resolver: &str, qname: &str, at_s: u64, ecs: bool) -> QueryLogEntry {
        QueryLogEntry {
            at: SimTime::from_secs(at_s),
            resolver: resolver.parse().unwrap(),
            qname: Name::from_ascii(qname).unwrap(),
            qtype: RecordType::A,
            ecs: ecs.then(|| EcsOption::new("192.0.2.0".parse().unwrap(), 24)),
            response_scope: None,
            answers: Vec::new(),
        }
    }

    #[test]
    fn caps_samples_but_counts_everything() {
        let mut c = ScanCapture::new(2);
        c.absorb(vec![
            entry("9.9.9.9", "a.scan.example", 0, true),
            entry("9.9.9.9", "b.scan.example", 1, true),
            entry("9.9.9.9", "c.scan.example", 2, false),
            entry("9.9.9.10", "d.scan.example", 3, false),
        ]);
        assert_eq!(c.total, 4);
        assert_eq!(c.sampled, 3, "third 9.9.9.9 entry hit the cap");
        assert_eq!(c.cap_dropped, 1);
        assert_eq!(c.ecs_total, 2);
        assert_eq!(c.resolvers(), 2);
        assert_eq!(c.entries_for("9.9.9.9".parse().unwrap()).len(), 2);
    }

    #[test]
    fn classifies_per_resolver_streams() {
        let mut c = ScanCapture::new(64);
        // 9.9.9.9: ECS on every address query → Always.
        // 9.9.9.10: no ECS at all → NoEcs.
        c.absorb(vec![
            entry("9.9.9.9", "a.scan.example", 0, true),
            entry("9.9.9.9", "b.scan.example", 30, true),
            entry("9.9.9.10", "c.scan.example", 0, false),
        ]);
        let verdicts = c.classify(60);
        assert_eq!(
            verdicts[&"9.9.9.9".parse::<IpAddr>().unwrap()],
            ProbingVerdict::Always
        );
        assert_eq!(
            verdicts[&"9.9.9.10".parse::<IpAddr>().unwrap()],
            ProbingVerdict::NoEcs
        );
        assert_eq!(c.verdict_counts(60)[&"always"], 1);
    }

    #[test]
    fn json_is_deterministic_and_ordered() {
        let build = || {
            let mut c = ScanCapture::new(8);
            c.absorb(vec![
                entry("9.9.9.10", "a.scan.example", 0, false),
                entry("9.9.9.9", "b.scan.example", 0, true),
            ]);
            c.to_json(60)
        };
        let j = build();
        assert_eq!(j, build(), "byte-identical");
        assert!(
            j.find("9.9.9.10").unwrap() > j.find("\"9.9.9.9\"").unwrap(),
            "address order: {j}"
        );
        assert!(j.contains("\"total\":2"));
    }
}
