//! The hostname universe: second-level domains and hostnames under them.
//!
//! The All-Names dataset covers 134,925 unique hostnames in 19,014 SLDs
//! (§4) — about 7 hostnames per SLD, heavy-tailed. [`NameUniverse`]
//! generates a scaled version with the same shape, plus per-name TTL
//! assignment spanning the mix seen in the wild (CDN names at 20 s up to
//! static records at an hour).

use dns_wire::Name;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::zipf::Zipf;

/// A generated universe of names with popularity and TTLs.
#[derive(Debug, Clone)]
pub struct NameUniverse {
    names: Vec<Name>,
    ttls: Vec<u32>,
    popularity: Zipf,
    slds: usize,
}

/// TTL buckets mirroring common operational choices. Weights sum to 100.
const TTL_BUCKETS: &[(u32, u32)] = &[
    (20, 35), // CDN-style rapid re-mapping
    (60, 25),
    (300, 25),
    (3600, 15),
];

impl NameUniverse {
    /// Generates `sld_count` second-level domains with about
    /// `hostnames_per_sld` names each (1..2× spread), Zipf popularity with
    /// exponent `s`.
    pub fn generate(sld_count: usize, hostnames_per_sld: usize, s: f64, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut names = Vec::new();
        for sld_i in 0..sld_count {
            let tld = ["com", "net", "org", "io"][sld_i % 4];
            let sld = Name::from_ascii(&format!("sld{sld_i}.{tld}")).expect("valid");
            let n = if hostnames_per_sld <= 1 {
                1
            } else {
                rng.gen_range(1..hostnames_per_sld * 2)
            };
            for h in 0..n {
                let label = match h {
                    0 => "www".to_string(),
                    1 => "img".to_string(),
                    2 => "api".to_string(),
                    other => format!("h{other}"),
                };
                names.push(sld.child(&label).expect("valid"));
            }
        }
        let ttls = names
            .iter()
            .map(|_| {
                let roll = rng.gen_range(0..100u32);
                let mut acc = 0;
                for &(ttl, w) in TTL_BUCKETS {
                    acc += w;
                    if roll < acc {
                        return ttl;
                    }
                }
                3600
            })
            .collect();
        let popularity = Zipf::new(names.len(), s);
        NameUniverse {
            names,
            ttls,
            popularity,
            slds: sld_count,
        }
    }

    /// Number of hostnames.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when empty (never: generation requires ≥ 1 SLD).
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Number of SLDs.
    pub fn sld_count(&self) -> usize {
        self.slds
    }

    /// Name at a rank.
    pub fn name(&self, idx: usize) -> &Name {
        &self.names[idx]
    }

    /// Authoritative TTL of a name.
    pub fn ttl(&self, idx: usize) -> u32 {
        self.ttls[idx]
    }

    /// Overrides every TTL (for the Fig-1 sweeps where the CDN returns a
    /// fixed TTL).
    pub fn set_uniform_ttl(&mut self, ttl: u32) {
        for t in &mut self.ttls {
            *t = ttl;
        }
    }

    /// Samples a name index by popularity.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        self.popularity.sample(rng)
    }

    /// All names (rank order).
    pub fn names(&self) -> &[Name] {
        &self.names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_shape() {
        let u = NameUniverse::generate(100, 7, 1.0, 1);
        assert_eq!(u.sld_count(), 100);
        assert!(u.len() >= 100);
        // Mean ≈ 7 names per SLD.
        let per_sld = u.len() as f64 / 100.0;
        assert!((3.0..12.0).contains(&per_sld), "{per_sld}");
        assert!(!u.is_empty());
    }

    #[test]
    fn names_are_unique_and_valid() {
        let u = NameUniverse::generate(50, 5, 1.0, 2);
        let mut set = std::collections::HashSet::new();
        for n in u.names() {
            assert!(n.label_count() >= 3);
            assert!(set.insert(n.clone()), "duplicate {n}");
        }
    }

    #[test]
    fn ttls_come_from_buckets() {
        let u = NameUniverse::generate(200, 5, 1.0, 3);
        let allowed = [20, 60, 300, 3600];
        let mut seen = std::collections::HashSet::new();
        for i in 0..u.len() {
            assert!(allowed.contains(&u.ttl(i)));
            seen.insert(u.ttl(i));
        }
        assert!(seen.len() >= 3, "TTL mix should be diverse");
        let mut u2 = u.clone();
        u2.set_uniform_ttl(20);
        assert!((0..u2.len()).all(|i| u2.ttl(i) == 20));
    }

    #[test]
    fn popularity_sampling_is_heavy_tailed() {
        let u = NameUniverse::generate(100, 5, 1.0, 4);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(5);
        let mut count0 = 0;
        for _ in 0..10_000 {
            if u.sample(&mut rng) == 0 {
                count0 += 1;
            }
        }
        assert!(count0 > 200, "rank 0 should be hot: {count0}");
    }

    #[test]
    fn deterministic() {
        let a = NameUniverse::generate(30, 4, 1.0, 7);
        let b = NameUniverse::generate(30, 4, 1.0, 7);
        assert_eq!(a.names(), b.names());
    }
}
