//! Hidden-resolver detection and distance analysis (§8.2, Figures 4–5).
//!
//! ECS accidentally exposed a previously unobservable component: when a
//! resolver derives its ECS prefix from the *immediate sender* of a query,
//! and that sender is an intermediary ("hidden") resolver, the prefix in
//! the authoritative's log covers neither the probed forwarder nor the
//! egress resolver. Comparing the forwarder→hidden distance (F-H) against
//! forwarder→recursive (F-R) shows whether ECS helped or hurt the
//! authoritative's understanding of client location.

use std::net::IpAddr;

use authoritative::QueryLogEntry;
use dns_wire::IpPrefix;
use netsim::GeoPoint;

use crate::stats::Cdf;

/// One (forwarder, hidden, recursive) combination with geolocated members.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistanceCombo {
    /// Forwarder position.
    pub forwarder: GeoPoint,
    /// Hidden-resolver position (geolocated from the ECS prefix).
    pub hidden: GeoPoint,
    /// Egress (recursive) resolver position.
    pub recursive: GeoPoint,
    /// Whether the egress belongs to the major public service.
    pub via_public_service: bool,
}

impl DistanceCombo {
    /// Forwarder→hidden distance (km).
    pub fn f_h_km(&self) -> f64 {
        self.forwarder.distance_km(&self.hidden)
    }

    /// Forwarder→recursive distance (km).
    pub fn f_r_km(&self) -> f64 {
        self.forwarder.distance_km(&self.recursive)
    }
}

/// Detects hidden-resolver prefixes in an authoritative scan log: ECS
/// prefixes that cover neither the probed forwarder (recovered from the
/// scan-encoded hostname by the caller) nor the egress resolver.
///
/// `forwarder_of` maps a log entry to the forwarder address that the scan
/// probe targeted (the paper encodes it in the hostname).
pub fn hidden_prefixes<F>(log: &[QueryLogEntry], forwarder_of: F) -> Vec<IpPrefix>
where
    F: Fn(&QueryLogEntry) -> Option<IpAddr>,
{
    let mut out: Vec<IpPrefix> = log
        .iter()
        .filter_map(|e| {
            let ecs = e.ecs.as_ref()?;
            let prefix = ecs.source_prefix();
            if prefix.is_default_route() || prefix.is_non_routable() {
                return None;
            }
            let fwd = forwarder_of(e)?;
            if prefix.contains(fwd) || prefix.contains(e.resolver) {
                None
            } else {
                Some(prefix)
            }
        })
        .collect();
    out.sort();
    out.dedup();
    out
}

/// The Figure-4/5 summary for a set of combinations.
#[derive(Debug, Clone)]
pub struct HiddenResolverReport {
    /// Combos where the hidden resolver is FARTHER from the forwarder than
    /// the recursive is (below the diagonal — ECS actively hurts; paper: 8%
    /// for the MP resolver, 7.8% for others).
    pub below_diagonal: usize,
    /// Combos where both are equidistant within tolerance (paper: 1.3% /
    /// 19.5%).
    pub on_diagonal: usize,
    /// Combos where the hidden resolver is closer (ECS helps; paper:
    /// 90.7% / 72.7%).
    pub above_diagonal: usize,
    /// CDF of F-H distances.
    pub f_h_cdf: Cdf,
    /// CDF of F-R distances.
    pub f_r_cdf: Cdf,
    /// The raw (F-H, F-R) points for binning/plotting.
    pub points: Vec<(f64, f64)>,
}

/// Analyses a set of combos with a distance tolerance (km) for the
/// diagonal.
pub struct HiddenAnalysis {
    /// Equidistance tolerance in km.
    pub tolerance_km: f64,
}

impl Default for HiddenAnalysis {
    fn default() -> Self {
        HiddenAnalysis { tolerance_km: 50.0 }
    }
}

impl HiddenAnalysis {
    /// Produces the report.
    pub fn analyze(&self, combos: &[DistanceCombo]) -> HiddenResolverReport {
        let mut below = 0;
        let mut on = 0;
        let mut above = 0;
        let mut points = Vec::with_capacity(combos.len());
        for c in combos {
            let fh = c.f_h_km();
            let fr = c.f_r_km();
            points.push((fh, fr));
            if (fh - fr).abs() <= self.tolerance_km {
                on += 1;
            } else if fh > fr {
                below += 1; // hidden farther → ECS delivers a worse proxy
            } else {
                above += 1;
            }
        }
        HiddenResolverReport {
            below_diagonal: below,
            on_diagonal: on,
            above_diagonal: above,
            f_h_cdf: Cdf::new(points.iter().map(|(x, _)| *x).collect()),
            f_r_cdf: Cdf::new(points.iter().map(|(_, y)| *y).collect()),
            points,
        }
    }
}

impl HiddenResolverReport {
    /// Total combos.
    pub fn total(&self) -> usize {
        self.below_diagonal + self.on_diagonal + self.above_diagonal
    }

    /// Fraction below the diagonal (ECS harmful).
    pub fn harmful_fraction(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.below_diagonal as f64 / self.total() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_wire::{EcsOption, Name, RecordType};
    use netsim::geo::city;
    use netsim::SimTime;
    use std::net::Ipv4Addr;

    fn combo(f: &str, h: &str, r: &str) -> DistanceCombo {
        DistanceCombo {
            forwarder: city(f).unwrap().pos,
            hidden: city(h).unwrap().pos,
            recursive: city(r).unwrap().pos,
            via_public_service: true,
        }
    }

    #[test]
    fn santiago_italy_case_is_below_diagonal() {
        // The paper's flagship example: forwarder and recursive both in
        // Santiago, hidden in Italy 12,000 km away.
        let c = combo("Santiago", "Milan", "Santiago");
        assert!(c.f_h_km() > 10_000.0);
        assert!(c.f_r_km() < 50.0);
        let report = HiddenAnalysis::default().analyze(&[c]);
        assert_eq!(report.below_diagonal, 1);
        assert_eq!(report.harmful_fraction(), 1.0);
    }

    #[test]
    fn diagonal_classification() {
        let combos = vec![
            // Hidden nearby, recursive far → above (ECS helps).
            combo("Beijing", "Beijing", "Guangzhou"),
            // Hidden far, recursive near → below (ECS hurts).
            combo("Beijing", "Guangzhou", "Beijing"),
            // Both in the same city → on diagonal.
            combo("Shanghai", "Shanghai", "Shanghai"),
        ];
        let r = HiddenAnalysis::default().analyze(&combos);
        assert_eq!(r.above_diagonal, 1);
        assert_eq!(r.below_diagonal, 1);
        assert_eq!(r.on_diagonal, 1);
        assert_eq!(r.total(), 3);
        assert_eq!(r.points.len(), 3);
        assert!(r.f_h_cdf.len() == 3 && r.f_r_cdf.len() == 3);
    }

    #[test]
    fn hidden_prefix_detection() {
        let fwd: IpAddr = "100.70.1.1".parse().unwrap();
        let egress: IpAddr = "9.9.9.9".parse().unwrap();
        let hidden_net = Ipv4Addr::new(77, 7, 7, 0);
        let make = |ecs: Option<EcsOption>| QueryLogEntry {
            at: SimTime::ZERO,
            resolver: egress,
            qname: Name::from_ascii("x.probe.example").unwrap(),
            qtype: RecordType::A,
            ecs,
            response_scope: None,
            answers: Vec::new(),
        };
        let log = vec![
            // Covers neither forwarder nor egress → hidden.
            make(Some(EcsOption::from_v4(hidden_net, 24))),
            // Covers the forwarder → not hidden.
            make(Some(EcsOption::from_v4(Ipv4Addr::new(100, 70, 1, 0), 24))),
            // Covers the egress → not hidden.
            make(Some(EcsOption::from_v4(Ipv4Addr::new(9, 9, 9, 0), 24))),
            // Non-routable → excluded.
            make(Some(EcsOption::from_v4(Ipv4Addr::new(127, 0, 0, 0), 24))),
            // No ECS → excluded.
            make(None),
        ];
        let prefixes = hidden_prefixes(&log, |_| Some(fwd));
        assert_eq!(prefixes.len(), 1);
        assert_eq!(prefixes[0].addr(), IpAddr::V4(hidden_net));
    }

    #[test]
    fn duplicate_hidden_prefixes_deduped() {
        let egress: IpAddr = "9.9.9.9".parse().unwrap();
        let make = || QueryLogEntry {
            at: SimTime::ZERO,
            resolver: egress,
            qname: Name::from_ascii("x.probe.example").unwrap(),
            qtype: RecordType::A,
            ecs: Some(EcsOption::from_v4(Ipv4Addr::new(77, 7, 7, 0), 24)),
            response_scope: None,
            answers: Vec::new(),
        };
        let log = vec![make(), make(), make()];
        let prefixes = hidden_prefixes(&log, |_| "100.70.1.1".parse().ok());
        assert_eq!(prefixes.len(), 1);
    }
}
