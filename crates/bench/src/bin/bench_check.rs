//! `bench_check` — the bench-history regression gate for CI.
//!
//! ```text
//! bench_check [--baseline ci/bench_baseline.json] [--dir .]
//! ```
//!
//! Reads the pinned baseline, loads every report it references from
//! `--dir`, and prints one PASS/FAIL line per check. Exits 0 when every
//! check holds, 1 on any regression (including missing reports or dangling
//! paths — a gate that errors out green is no gate), 2 on usage or
//! baseline-parse errors.

use bench::regression;

fn main() {
    let mut baseline = "ci/bench_baseline.json".to_string();
    let mut dir = ".".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |what: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("bench_check: {what} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--baseline" => baseline = take("--baseline"),
            "--dir" => dir = take("--dir"),
            other => {
                eprintln!("bench_check: unknown flag {other:?}");
                eprintln!("usage: bench_check [--baseline FILE] [--dir DIR]");
                std::process::exit(2);
            }
        }
    }

    let baseline_text = match std::fs::read_to_string(&baseline) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench_check: cannot read baseline {baseline}: {e}");
            std::process::exit(2);
        }
    };
    let report = match regression::run_gate(&baseline_text, |file| {
        let path = format!("{dir}/{file}");
        std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))
    }) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench_check: bad baseline {baseline}: {e}");
            std::process::exit(2);
        }
    };
    print!("{}", report.to_text());
    if report.pass() {
        println!("bench_check: no regression against {baseline}");
    } else {
        println!("bench_check: REGRESSION against {baseline}");
        std::process::exit(1);
    }
}
