//! Shared loopback-availability helpers for socket-backed tests.
//!
//! Sandboxed CI runners sometimes offer no loopback networking; socket
//! tests must then skip *visibly* rather than silently pass. Setting
//! `ECS_REQUIRE_LOOPBACK` in the environment (CI does) turns every skip
//! into a hard failure, so a misconfigured runner cannot fake green.

/// True when a loopback UDP socket can be bound.
pub fn loopback_available() -> bool {
    std::net::UdpSocket::bind("127.0.0.1:0").is_ok()
}

/// Gate for socket tests: returns `true` when loopback sockets work.
/// Otherwise prints a visible `SKIP` line and returns `false` — or panics
/// when `ECS_REQUIRE_LOOPBACK` is set, so environments that promise
/// sockets cannot skip silently.
pub fn require_loopback(test: &str) -> bool {
    if loopback_available() {
        return true;
    }
    if std::env::var_os("ECS_REQUIRE_LOOPBACK").is_some() {
        panic!("{test}: loopback sockets unavailable but ECS_REQUIRE_LOOPBACK is set");
    }
    eprintln!("SKIP {test}: no loopback UDP socket available");
    false
}

/// Gate for secondary socket resources (e.g. a TCP listener on the port a
/// UDP server picked): unwraps `Ok`, otherwise skips like
/// [`require_loopback`] — visible line, or panic under
/// `ECS_REQUIRE_LOOPBACK`.
pub fn require_socket<T, E: std::fmt::Display>(
    test: &str,
    what: &str,
    result: Result<T, E>,
) -> Option<T> {
    match result {
        Ok(v) => Some(v),
        Err(e) => {
            if std::env::var_os("ECS_REQUIRE_LOOPBACK").is_some() {
                panic!("{test}: {what} failed ({e}) but ECS_REQUIRE_LOOPBACK is set");
            }
            eprintln!("SKIP {test}: {what} failed ({e})");
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn require_socket_passes_ok_through() {
        let v: Option<u32> = require_socket("t", "op", Ok::<u32, String>(7));
        assert_eq!(v, Some(7));
    }
}
