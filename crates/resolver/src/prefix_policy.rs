//! Source-prefix construction policies (§6.2, Table 1).
//!
//! Given the client address a resolver believes it is acting for, the
//! policy decides what goes into the outgoing ECS option. Table 1 of the
//! paper shows the observed spread; every row is constructible here.

use std::net::IpAddr;

use dns_wire::{EcsOption, IpPrefix};

/// How a resolver builds the ECS prefix from a client address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefixPolicy {
    /// Truncate to at most `v4`/`v6` bits — `Truncate { v4: 24, v6: 56 }`
    /// is the RFC recommendation; `{ v4: 25, .. }` reproduces the
    /// bit-leaking resolvers; `{ v4: 16, .. }` the coarse ones.
    Truncate {
        /// IPv4 maximum source prefix length.
        v4: u8,
        /// IPv6 maximum source prefix length.
        v6: u8,
    },
    /// Send the full address (source prefix 32/128). The "no truncation at
    /// all" rows of Table 1.
    Full,
    /// Send source prefix 32/128 but overwrite the last byte with a fixed
    /// value — the "jammed last byte" behaviour of 3084 CDN-dataset
    /// resolvers (mostly 0x01, some 0x00). Reveals only 24 bits while
    /// *claiming* 32, which misleads authoritative servers.
    JammedFull {
        /// The constant final octet.
        jam: u8,
    },
    /// Pass through whatever prefix arrived from the client/forwarder,
    /// up to a maximum length (the resolvers that accept arbitrary client
    /// ECS; max 32 reproduces the 15 privacy-eroding resolvers, max 22 the
    /// 8 coarse ones when combined with `CacheCompliance::CapPrefix`).
    PassThrough {
        /// Maximum accepted/conveyed prefix length (IPv4; IPv6 uses 2×).
        max_v4: u8,
    },
    /// Use the resolver's own public address at /24 — the RFC-suggested,
    /// privacy-preserving option (and this paper's recommendation for
    /// probing).
    ResolverOwn,
    /// Send the loopback address (127.0.0.1/32) — the interval-probing
    /// resolvers of §6.1 and the §8.1 pitfall.
    Loopback,
    /// Send a private-space prefix (10.0.0.0/8 network, /24 source) — the
    /// PowerDNS misconfiguration of §8.1.
    PrivateLeak,
}

impl PrefixPolicy {
    /// The RFC 7871 recommended policy.
    pub fn rfc_recommended() -> Self {
        PrefixPolicy::Truncate { v4: 24, v6: 56 }
    }

    /// Builds the ECS option for a query.
    ///
    /// * `client` — address of the party the resolver acts for (its idea of
    ///   the client: the real client, the forwarder, or a hidden resolver);
    /// * `client_ecs` — ECS option received from downstream, if any (used
    ///   by [`PrefixPolicy::PassThrough`]);
    /// * `own_addr` — the resolver's own public address.
    pub fn build(
        &self,
        client: IpAddr,
        client_ecs: Option<&EcsOption>,
        own_addr: IpAddr,
    ) -> EcsOption {
        match *self {
            PrefixPolicy::Truncate { v4, v6 } => {
                let len = if client.is_ipv4() { v4 } else { v6 };
                EcsOption::new(client, len)
            }
            PrefixPolicy::Full => EcsOption::from_prefix(IpPrefix::host(client)),
            PrefixPolicy::JammedFull { jam } => match client {
                IpAddr::V4(a) => {
                    let mut o = a.octets();
                    o[3] = jam;
                    EcsOption::from_v4(o.into(), 32)
                }
                IpAddr::V6(a) => {
                    let mut o = a.octets();
                    o[15] = jam;
                    EcsOption::from_v6(o.into(), 128)
                }
            },
            PrefixPolicy::PassThrough { max_v4 } => match client_ecs {
                Some(opt) => {
                    let max = if opt.source_prefix().is_v4() {
                        max_v4
                    } else {
                        max_v4.saturating_mul(2)
                    };
                    let len = opt.source_prefix_len().min(max);
                    EcsOption::new(opt.addr(), len)
                }
                None => {
                    // Self-derived fallback still honors the cap (the /22
                    // resolvers convey 22 bits even for prefixes they build
                    // from the sender address themselves).
                    let len = if client.is_ipv4() {
                        24.min(max_v4)
                    } else {
                        56.min(max_v4.saturating_mul(2))
                    };
                    EcsOption::new(client, len)
                }
            },
            PrefixPolicy::ResolverOwn => {
                EcsOption::new(own_addr, if own_addr.is_ipv4() { 24 } else { 56 })
            }
            PrefixPolicy::Loopback => EcsOption::from_v4(std::net::Ipv4Addr::new(127, 0, 0, 1), 32),
            PrefixPolicy::PrivateLeak => {
                EcsOption::from_v4(std::net::Ipv4Addr::new(10, 0, 0, 0), 24)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    const CLIENT: IpAddr = IpAddr::V4(Ipv4Addr::new(192, 0, 2, 77));
    const OWN: IpAddr = IpAddr::V4(Ipv4Addr::new(8, 8, 8, 8));

    #[test]
    fn rfc_truncation() {
        let e = PrefixPolicy::rfc_recommended().build(CLIENT, None, OWN);
        assert_eq!(e.source_prefix_len(), 24);
        assert_eq!(e.to_v4(), Some(Ipv4Addr::new(192, 0, 2, 0)));
        let v6: IpAddr = "2001:db8:a:b:c::1".parse().unwrap();
        let e = PrefixPolicy::rfc_recommended().build(v6, None, OWN);
        assert_eq!(e.source_prefix_len(), 56);
    }

    #[test]
    fn full_reveals_everything() {
        let e = PrefixPolicy::Full.build(CLIENT, None, OWN);
        assert_eq!(e.source_prefix_len(), 32);
        assert_eq!(e.to_v4(), Some(Ipv4Addr::new(192, 0, 2, 77)));
    }

    #[test]
    fn jammed_claims_32_reveals_24() {
        let e = PrefixPolicy::JammedFull { jam: 0x01 }.build(CLIENT, None, OWN);
        assert_eq!(e.source_prefix_len(), 32);
        assert_eq!(e.to_v4(), Some(Ipv4Addr::new(192, 0, 2, 1)));
        let e = PrefixPolicy::JammedFull { jam: 0x00 }.build(CLIENT, None, OWN);
        assert_eq!(e.to_v4(), Some(Ipv4Addr::new(192, 0, 2, 0)));
    }

    #[test]
    fn pass_through_respects_max() {
        let incoming = EcsOption::from_v4(Ipv4Addr::new(198, 51, 100, 99), 32);
        let e = PrefixPolicy::PassThrough { max_v4: 32 }.build(CLIENT, Some(&incoming), OWN);
        assert_eq!(e.source_prefix_len(), 32);
        assert_eq!(e.to_v4(), Some(Ipv4Addr::new(198, 51, 100, 99)));
        let e = PrefixPolicy::PassThrough { max_v4: 22 }.build(CLIENT, Some(&incoming), OWN);
        assert_eq!(e.source_prefix_len(), 22);
        assert_eq!(e.to_v4(), Some(Ipv4Addr::new(198, 51, 100, 0)));
        // Without incoming ECS, falls back to the sender at /24 (capped).
        let e = PrefixPolicy::PassThrough { max_v4: 32 }.build(CLIENT, None, OWN);
        assert_eq!(e.source_prefix_len(), 24);
        assert_eq!(e.to_v4(), Some(Ipv4Addr::new(192, 0, 2, 0)));
        let e = PrefixPolicy::PassThrough { max_v4: 22 }.build(CLIENT, None, OWN);
        assert_eq!(e.source_prefix_len(), 22);
        assert_eq!(e.to_v4(), Some(Ipv4Addr::new(192, 0, 0, 0)));
    }

    #[test]
    fn resolver_own_uses_public_address() {
        let e = PrefixPolicy::ResolverOwn.build(CLIENT, None, OWN);
        assert_eq!(e.to_v4(), Some(Ipv4Addr::new(8, 8, 8, 0)));
        assert_eq!(e.source_prefix_len(), 24);
    }

    #[test]
    fn loopback_and_private_are_non_routable() {
        let e = PrefixPolicy::Loopback.build(CLIENT, None, OWN);
        assert!(e.is_non_routable());
        assert_eq!(e.source_prefix_len(), 32);
        let e = PrefixPolicy::PrivateLeak.build(CLIENT, None, OWN);
        assert!(e.is_non_routable());
        assert_eq!(e.to_v4(), Some(Ipv4Addr::new(10, 0, 0, 0)));
    }

    #[test]
    fn truncate_25_leaks_one_extra_bit() {
        let p = PrefixPolicy::Truncate { v4: 25, v6: 56 };
        let e = p.build(IpAddr::V4(Ipv4Addr::new(192, 0, 2, 200)), None, OWN);
        assert_eq!(e.source_prefix_len(), 25);
        assert_eq!(e.to_v4(), Some(Ipv4Addr::new(192, 0, 2, 128)));
    }
}
