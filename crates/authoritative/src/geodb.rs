//! Prefix → location database: the EdgeScape substitute.
//!
//! CDNs geolocate the client subnet (or, absent ECS, the resolver address)
//! to pick a nearby edge. We model this as a longest-prefix-match table
//! from [`IpPrefix`] to [`GeoPoint`], populated during world wiring from
//! the ground-truth positions of every simulated entity.
//!
//! Real geolocation databases are imperfect; callers that want to model
//! that feed jittered positions in (see `topology::asn::jitter_position`).

use dns_wire::IpPrefix;
use netsim::GeoPoint;
use std::collections::HashMap;
use std::net::IpAddr;

/// Longest-prefix-match geolocation database.
#[derive(Debug, Clone, Default)]
pub struct GeoDb {
    /// Entries bucketed by prefix length for LPM: `tables[len]` maps the
    /// masked prefix address to a position.
    v4: Vec<HashMap<IpAddr, GeoPoint>>,
    v6: Vec<HashMap<IpAddr, GeoPoint>>,
}

impl GeoDb {
    /// Creates an empty database.
    pub fn new() -> Self {
        GeoDb {
            v4: (0..=32).map(|_| HashMap::new()).collect(),
            v6: (0..=128).map(|_| HashMap::new()).collect(),
        }
    }

    /// Inserts a prefix with its position (replacing any previous entry for
    /// the identical prefix).
    pub fn insert(&mut self, prefix: IpPrefix, pos: GeoPoint) {
        let table = if prefix.is_v4() {
            &mut self.v4
        } else {
            &mut self.v6
        };
        table[prefix.len() as usize].insert(prefix.addr(), pos);
    }

    /// Longest-prefix-match lookup for an address.
    pub fn locate(&self, addr: IpAddr) -> Option<GeoPoint> {
        let (table, max) = match addr {
            IpAddr::V4(_) => (&self.v4, 32u8),
            IpAddr::V6(_) => (&self.v6, 128u8),
        };
        for len in (0..=max).rev() {
            let masked = dns_wire::prefix::mask_addr(addr, len);
            if let Some(pos) = table[len as usize].get(&masked) {
                return Some(*pos);
            }
        }
        None
    }

    /// Locates the prefix carried in an ECS option: looks up the prefix's
    /// network address. A /0 prefix never matches (no information).
    pub fn locate_prefix(&self, prefix: &IpPrefix) -> Option<GeoPoint> {
        if prefix.is_default_route() {
            return None;
        }
        self.locate(prefix.addr())
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.v4.iter().map(|t| t.len()).sum::<usize>()
            + self.v6.iter().map(|t| t.len()).sum::<usize>()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn p(s: &str, len: u8) -> IpPrefix {
        IpPrefix::v4(s.parse().unwrap(), len).unwrap()
    }

    fn gp(lat: f64, lon: f64) -> GeoPoint {
        GeoPoint::new(lat, lon)
    }

    #[test]
    fn longest_prefix_wins() {
        let mut db = GeoDb::new();
        db.insert(p("10.0.0.0", 8), gp(0.0, 0.0));
        db.insert(p("10.1.0.0", 16), gp(10.0, 10.0));
        db.insert(p("10.1.2.0", 24), gp(20.0, 20.0));
        let addr = IpAddr::V4(Ipv4Addr::new(10, 1, 2, 3));
        assert_eq!(db.locate(addr).unwrap(), gp(20.0, 20.0));
        let addr = IpAddr::V4(Ipv4Addr::new(10, 1, 9, 9));
        assert_eq!(db.locate(addr).unwrap(), gp(10.0, 10.0));
        let addr = IpAddr::V4(Ipv4Addr::new(10, 9, 9, 9));
        assert_eq!(db.locate(addr).unwrap(), gp(0.0, 0.0));
        let addr = IpAddr::V4(Ipv4Addr::new(11, 0, 0, 1));
        assert_eq!(db.locate(addr), None);
    }

    #[test]
    fn locate_prefix_uses_network_address() {
        let mut db = GeoDb::new();
        db.insert(p("192.0.2.0", 24), gp(41.0, -81.0));
        // A /25 inside the /24 matches via LPM.
        let q = p("192.0.2.128", 25);
        assert_eq!(db.locate_prefix(&q).unwrap(), gp(41.0, -81.0));
        // A /16 containing the /24 does not match (its network address
        // 192.0.0.0 is outside any entry).
        let q = p("192.0.0.0", 16);
        assert_eq!(db.locate_prefix(&q), None);
        // Default route carries no information.
        let q = p("0.0.0.0", 0);
        assert_eq!(db.locate_prefix(&q), None);
    }

    #[test]
    fn v6_supported() {
        let mut db = GeoDb::new();
        let prefix = IpPrefix::v6("2001:db8::".parse().unwrap(), 48).unwrap();
        db.insert(prefix, gp(1.0, 2.0));
        let addr: IpAddr = "2001:db8::42".parse().unwrap();
        assert_eq!(db.locate(addr).unwrap(), gp(1.0, 2.0));
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn exact_host_entries() {
        let mut db = GeoDb::new();
        db.insert(p("198.51.100.7", 32), gp(5.0, 5.0));
        db.insert(p("198.51.100.0", 24), gp(6.0, 6.0));
        assert_eq!(
            db.locate(IpAddr::V4(Ipv4Addr::new(198, 51, 100, 7)))
                .unwrap(),
            gp(5.0, 5.0)
        );
        assert_eq!(
            db.locate(IpAddr::V4(Ipv4Addr::new(198, 51, 100, 8)))
                .unwrap(),
            gp(6.0, 6.0)
        );
    }
}
