//! Trace serialization: a line-oriented TSV format for [`TraceSet`]s, so
//! generated workloads can be saved, shared, and replayed — the same role
//! the paper's (proprietary) packet logs played.
//!
//! Format, one record per line, tab-separated:
//!
//! ```text
//! at_micros  resolver  qname  qtype  ecs_source  response_scope  ttl  client
//! ```
//!
//! Missing optional fields are `-`; prefixes print as `addr/len`. The first
//! line is a header comment `#ecs-trace v1 <label>`.
//!
//! The v2 framing (`#ecs-trace v2 <count> <label>`) additionally declares
//! the record count up front so chunked readers can detect a truncated
//! tail: [`ChunkedTraceReader`] errors with [`TraceIoError::Truncated`]
//! when the input ends before the declared count, instead of silently
//! yielding a short trace.

use dns_wire::{IpPrefix, Name, RecordType};
use std::fmt::Write as _;
use std::io::{BufRead, Write};
use std::net::IpAddr;
use std::str::FromStr;

use crate::trace::{TraceRecord, TraceSet};

/// Errors from trace parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceIoError {
    /// The header line is missing or malformed.
    BadHeader,
    /// A record line has the wrong number of fields.
    FieldCount {
        /// 1-based line number.
        line: usize,
        /// Fields found.
        got: usize,
    },
    /// A field failed to parse.
    BadField {
        /// 1-based line number.
        line: usize,
        /// Field name.
        field: &'static str,
    },
    /// A v2 input ended before its declared record count — a corrupt or
    /// truncated tail, never silently accepted.
    Truncated {
        /// Records the header declared.
        expected: u64,
        /// Records actually read.
        got: u64,
    },
    /// Underlying I/O failure.
    Io(String),
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceIoError::BadHeader => write!(f, "missing or malformed #ecs-trace header"),
            TraceIoError::FieldCount { line, got } => {
                write!(f, "line {line}: expected 8 fields, got {got}")
            }
            TraceIoError::BadField { line, field } => {
                write!(f, "line {line}: malformed field '{field}'")
            }
            TraceIoError::Truncated { expected, got } => {
                write!(
                    f,
                    "truncated trace: header declared {expected} records, found {got}"
                )
            }
            TraceIoError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for TraceIoError {}

impl From<std::io::Error> for TraceIoError {
    fn from(e: std::io::Error) -> Self {
        TraceIoError::Io(e.to_string())
    }
}

/// Writes a trace in TSV form.
pub fn write_trace<W: Write>(trace: &TraceSet, mut out: W) -> Result<(), TraceIoError> {
    writeln!(out, "#ecs-trace v1 {}", trace.label)?;
    write_records(&trace.records, &mut out)
}

/// Writes a trace with the v2 counted header, so readers can detect a
/// truncated tail.
pub fn write_trace_v2<W: Write>(trace: &TraceSet, mut out: W) -> Result<(), TraceIoError> {
    writeln!(out, "#ecs-trace v2 {} {}", trace.records.len(), trace.label)?;
    write_records(&trace.records, &mut out)
}

fn write_records<W: Write>(records: &[TraceRecord], out: &mut W) -> Result<(), TraceIoError> {
    let mut line = String::with_capacity(128);
    for r in records {
        line.clear();
        write!(
            line,
            "{}\t{}\t{}\t{}",
            r.at_micros,
            r.resolver,
            r.qname,
            r.qtype.to_u16()
        )
        .expect("string write");
        match &r.ecs_source {
            Some(p) => write!(line, "\t{}/{}", p.addr(), p.len()).expect("string write"),
            None => line.push_str("\t-"),
        }
        match r.response_scope {
            Some(s) => write!(line, "\t{s}").expect("string write"),
            None => line.push_str("\t-"),
        }
        write!(line, "\t{}", r.ttl).expect("string write");
        match r.client {
            Some(c) => write!(line, "\t{c}").expect("string write"),
            None => line.push_str("\t-"),
        }
        writeln!(out, "{line}")?;
    }
    Ok(())
}

/// Reads a trace written by [`write_trace`].
pub fn read_trace<R: BufRead>(input: R) -> Result<TraceSet, TraceIoError> {
    let mut lines = input.lines();
    let header = lines.next().ok_or(TraceIoError::BadHeader)??;
    let label = header
        .strip_prefix("#ecs-trace v1 ")
        .ok_or(TraceIoError::BadHeader)?
        .to_string();
    let mut set = TraceSet::new(label);
    for (i, line) in lines.enumerate() {
        let line = line?;
        if line.is_empty() {
            continue;
        }
        set.records.push(parse_record(i + 2, &line)?);
    }
    Ok(set)
}

fn parse_record(lineno: usize, line: &str) -> Result<TraceRecord, TraceIoError> {
    let fields: Vec<&str> = line.split('\t').collect();
    if fields.len() != 8 {
        return Err(TraceIoError::FieldCount {
            line: lineno,
            got: fields.len(),
        });
    }
    let bad = |field: &'static str| TraceIoError::BadField {
        line: lineno,
        field,
    };
    let at_micros: u64 = fields[0].parse().map_err(|_| bad("at_micros"))?;
    let resolver: IpAddr = fields[1].parse().map_err(|_| bad("resolver"))?;
    let qname = Name::from_ascii(fields[2]).map_err(|_| bad("qname"))?;
    let qtype = RecordType::from_u16(fields[3].parse().map_err(|_| bad("qtype"))?);
    let ecs_source = match fields[4] {
        "-" => None,
        s => {
            let (addr, len) = s.split_once('/').ok_or_else(|| bad("ecs_source"))?;
            let addr = IpAddr::from_str(addr).map_err(|_| bad("ecs_source"))?;
            let len: u8 = len.parse().map_err(|_| bad("ecs_source"))?;
            Some(IpPrefix::new(addr, len).map_err(|_| bad("ecs_source"))?)
        }
    };
    let response_scope = match fields[5] {
        "-" => None,
        s => Some(s.parse().map_err(|_| bad("response_scope"))?),
    };
    let ttl: u32 = fields[6].parse().map_err(|_| bad("ttl"))?;
    let client = match fields[7] {
        "-" => None,
        s => Some(s.parse().map_err(|_| bad("client"))?),
    };
    Ok(TraceRecord {
        at_micros,
        resolver,
        qname,
        qtype,
        ecs_source,
        response_scope,
        ttl,
        client,
    })
}

/// Chunked reader over the v2 counted format. Yields `Vec<TraceRecord>`
/// chunks of at most `chunk_size` records and **errors** — never silently
/// truncates — when the input ends before the count the header declared.
pub struct ChunkedTraceReader<R: BufRead> {
    lines: std::iter::Enumerate<std::io::Lines<R>>,
    label: String,
    expected: u64,
    read: u64,
    chunk_size: usize,
    done: bool,
}

impl<R: BufRead> ChunkedTraceReader<R> {
    /// Opens a v2 trace, consuming and validating the header.
    pub fn new(input: R, chunk_size: usize) -> Result<Self, TraceIoError> {
        let mut lines = input.lines().enumerate();
        let (_, header) = lines.next().ok_or(TraceIoError::BadHeader)?;
        let header = header?;
        let rest = header
            .strip_prefix("#ecs-trace v2 ")
            .ok_or(TraceIoError::BadHeader)?;
        let (count, label) = rest.split_once(' ').ok_or(TraceIoError::BadHeader)?;
        let expected: u64 = count.parse().map_err(|_| TraceIoError::BadHeader)?;
        Ok(ChunkedTraceReader {
            lines,
            label: label.to_string(),
            expected,
            read: 0,
            chunk_size: chunk_size.max(1),
            done: false,
        })
    }

    /// The trace label from the header.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The record count the header declared.
    pub fn expected(&self) -> u64 {
        self.expected
    }
}

impl<R: BufRead> Iterator for ChunkedTraceReader<R> {
    type Item = Result<Vec<TraceRecord>, TraceIoError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done || self.read == self.expected {
            self.done = true;
            return None;
        }
        let mut chunk = Vec::with_capacity(self.chunk_size);
        while chunk.len() < self.chunk_size && self.read < self.expected {
            let Some((i, line)) = self.lines.next() else {
                self.done = true;
                return Some(Err(TraceIoError::Truncated {
                    expected: self.expected,
                    got: self.read,
                }));
            };
            let line = match line {
                Ok(l) => l,
                Err(e) => {
                    self.done = true;
                    return Some(Err(e.into()));
                }
            };
            if line.is_empty() {
                continue;
            }
            match parse_record(i + 1, &line) {
                Ok(r) => {
                    chunk.push(r);
                    self.read += 1;
                }
                Err(e) => {
                    self.done = true;
                    return Some(Err(e));
                }
            }
        }
        Some(Ok(chunk))
    }
}

/// Reads a trace written by [`write_trace_v2`], erroring on a truncated
/// tail.
pub fn read_trace_v2<R: BufRead>(input: R) -> Result<TraceSet, TraceIoError> {
    let mut reader = ChunkedTraceReader::new(input, 8192)?;
    let mut set = TraceSet::new(reader.label().to_string());
    set.records.reserve(reader.expected() as usize);
    for chunk in &mut reader {
        set.records.extend(chunk?);
    }
    Ok(set)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::AllNamesTraceGen;

    fn roundtrip(trace: &TraceSet) -> TraceSet {
        let mut buf = Vec::new();
        write_trace(trace, &mut buf).unwrap();
        read_trace(std::io::Cursor::new(buf)).unwrap()
    }

    #[test]
    fn generated_trace_roundtrips() {
        let trace = AllNamesTraceGen {
            v4_subnets: 20,
            v6_subnets: 5,
            slds: 30,
            queries: 500,
            ..AllNamesTraceGen::default()
        }
        .generate();
        let back = roundtrip(&trace);
        assert_eq!(back.label, trace.label);
        assert_eq!(back.records, trace.records);
    }

    #[test]
    fn optional_fields_roundtrip_as_dashes() {
        let mut trace = TraceSet::new("opt");
        trace.records.push(TraceRecord {
            at_micros: 7,
            resolver: "9.9.9.9".parse().unwrap(),
            qname: Name::from_ascii("a.example.com").unwrap(),
            qtype: RecordType::A,
            ecs_source: None,
            response_scope: None,
            ttl: 60,
            client: None,
        });
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.contains("\t-\t-\t60\t-"));
        assert_eq!(roundtrip(&trace).records, trace.records);
    }

    #[test]
    fn header_required() {
        let err = read_trace(std::io::Cursor::new(b"not a header\n".to_vec())).unwrap_err();
        assert_eq!(err, TraceIoError::BadHeader);
        let err = read_trace(std::io::Cursor::new(Vec::new())).unwrap_err();
        assert_eq!(err, TraceIoError::BadHeader);
    }

    #[test]
    fn field_errors_carry_line_numbers() {
        let data =
            b"#ecs-trace v1 t\n1\t9.9.9.9\ta.example.\t1\t-\t-\t60\t-\nbroken line\n".to_vec();
        let err = read_trace(std::io::Cursor::new(data)).unwrap_err();
        assert_eq!(err, TraceIoError::FieldCount { line: 3, got: 1 });

        let data = b"#ecs-trace v1 t\n1\tnot-an-ip\ta.example.\t1\t-\t-\t60\t-\n".to_vec();
        let err = read_trace(std::io::Cursor::new(data)).unwrap_err();
        assert_eq!(
            err,
            TraceIoError::BadField {
                line: 2,
                field: "resolver"
            }
        );
    }

    #[test]
    fn v2_roundtrips_with_count() {
        let trace = AllNamesTraceGen {
            v4_subnets: 20,
            v6_subnets: 5,
            slds: 30,
            queries: 500,
            ..AllNamesTraceGen::default()
        }
        .generate();
        let mut buf = Vec::new();
        write_trace_v2(&trace, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.starts_with("#ecs-trace v2 500 "));
        let back = read_trace_v2(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(back.label, trace.label);
        assert_eq!(back.records, trace.records);
    }

    #[test]
    fn chunked_reader_yields_bounded_chunks() {
        let trace = AllNamesTraceGen {
            v4_subnets: 20,
            v6_subnets: 5,
            slds: 30,
            queries: 500,
            ..AllNamesTraceGen::default()
        }
        .generate();
        let mut buf = Vec::new();
        write_trace_v2(&trace, &mut buf).unwrap();
        let reader = ChunkedTraceReader::new(std::io::Cursor::new(buf), 128).unwrap();
        assert_eq!(reader.expected(), 500);
        let mut total = 0usize;
        for chunk in reader {
            let chunk = chunk.unwrap();
            assert!(chunk.len() <= 128);
            total += chunk.len();
        }
        assert_eq!(total, 500);
    }

    #[test]
    fn corrupt_tail_errors_instead_of_truncating() {
        let trace = AllNamesTraceGen {
            v4_subnets: 20,
            v6_subnets: 5,
            slds: 30,
            queries: 500,
            ..AllNamesTraceGen::default()
        }
        .generate();
        let mut buf = Vec::new();
        write_trace_v2(&trace, &mut buf).unwrap();

        // Drop whole trailing lines: the counted header catches it.
        let text = String::from_utf8(buf.clone()).unwrap();
        let kept: Vec<&str> = text.lines().take(401).collect(); // header + 400 records
        let short = kept.join("\n") + "\n";
        let err = read_trace_v2(std::io::Cursor::new(short.into_bytes())).unwrap_err();
        assert_eq!(
            err,
            TraceIoError::Truncated {
                expected: 500,
                got: 400
            }
        );

        // Cut mid-line: the mangled record itself errors.
        buf.truncate(buf.len() - 7);
        let err = read_trace_v2(std::io::Cursor::new(buf)).unwrap_err();
        assert!(
            matches!(
                err,
                TraceIoError::FieldCount { .. }
                    | TraceIoError::BadField { .. }
                    | TraceIoError::Truncated { .. }
            ),
            "unexpected error: {err:?}"
        );

        // v1 header is rejected by the v2 reader.
        let err = ChunkedTraceReader::new(std::io::Cursor::new(b"#ecs-trace v1 t\n".to_vec()), 8)
            .map(|_| ())
            .unwrap_err();
        assert_eq!(err, TraceIoError::BadHeader);
    }

    #[test]
    fn empty_lines_skipped() {
        let data =
            b"#ecs-trace v1 t\n\n1\t9.9.9.9\ta.example.\t1\t10.0.0.0/24\t24\t60\t10.0.0.7\n\n"
                .to_vec();
        let set = read_trace(std::io::Cursor::new(data)).unwrap();
        assert_eq!(set.len(), 1);
        assert_eq!(set.records[0].ecs_source.unwrap().len(), 24);
        assert_eq!(set.records[0].client.unwrap().to_string(), "10.0.0.7");
    }
}
