//! The scenario DSL: scripted authoritative ECS behaviours.
//!
//! A [`Scenario`] is a table row describing how the authoritative side of a
//! conformance run behaves — which scope it advertises, whether it admits
//! ECS at all, whether it predates EDNS, whether it rejects ECS queries
//! with FORMERR, whether the probed name sits behind a CNAME. Building a
//! scenario yields a [`ScenarioUpstream`]: an [`resolver::Upstream`] whose
//! zone auto-materialises any in-zone name deterministically, so drivers can
//! probe unlimited fresh hostnames (the paper's methodology) without
//! pre-declaring them.

use std::net::{IpAddr, Ipv4Addr};

use authoritative::{AuthServer, EcsHandling, QueryLogEntry, ScopePolicy, Zone};
use dns_wire::{Message, Name, Rcode, RecordType};
use netsim::SimTime;
use resolver::{Upstream, UpstreamError};

/// How the scripted authoritative treats ECS options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EcsStance {
    /// ECS for everybody, scoped by the policy.
    Open(ScopePolicy),
    /// ECS is understood, but the subject resolver is *not* on the
    /// whitelist — it sees a non-ECS server (the major CDN's stance toward
    /// unknown resolvers, the backdrop of the §6.1 probing classes).
    NonWhitelisted,
    /// The server does not implement ECS at all; options are ignored.
    Disabled,
    /// Pre-EDNS server: FORMERR on any query carrying an OPT (RFC 6891 §7).
    PreEdns,
    /// ECS-intolerant middlebox: FORMERR on queries carrying ECS, normal
    /// answers otherwise — the behaviour RFC 7871 §7.1.3 withdrawal guards
    /// against.
    FormerrOnEcs,
}

/// One scripted authoritative behaviour, table-driven.
#[derive(Debug, Clone, Copy)]
pub struct Scenario {
    /// Short kebab-case identifier (appears in reports).
    pub name: &'static str,
    /// Zone apex the scenario serves.
    pub apex: &'static str,
    /// TTL stamped on auto-materialised records.
    pub ttl: u32,
    /// ECS stance of the server.
    pub stance: EcsStance,
    /// When set, every auto-materialised hostname resolves through a CNAME
    /// hop (`<name>` → `edge.<apex>`), the flattening-CNAME layout CDN
    /// onboarding uses (§8.4).
    pub cname: bool,
}

impl Scenario {
    /// RFC-compliant authoritative: open ECS, scope mirrors source.
    pub fn honors_scope() -> Self {
        Scenario {
            name: "honors-scope",
            apex: "conf.test",
            ttl: 300,
            stance: EcsStance::Open(ScopePolicy::MatchSource),
            cname: false,
        }
    }

    /// Always answers with a fixed /24 scope regardless of source.
    pub fn fixed_scope24() -> Self {
        Scenario {
            name: "fixed-scope-24",
            stance: EcsStance::Open(ScopePolicy::Fixed(24)),
            ..Self::honors_scope()
        }
    }

    /// Always answers with a fixed /16 scope.
    pub fn fixed_scope16() -> Self {
        Scenario {
            name: "fixed-scope-16",
            stance: EcsStance::Open(ScopePolicy::Fixed(16)),
            ..Self::honors_scope()
        }
    }

    /// Always answers scope /0 — "one answer fits all".
    pub fn always_zero() -> Self {
        Scenario {
            name: "always-scope-0",
            stance: EcsStance::Open(ScopePolicy::Zero),
            ..Self::honors_scope()
        }
    }

    /// Jams the scope to the full /32 on every answer.
    pub fn jams_scope32() -> Self {
        Scenario {
            name: "jams-scope-32",
            stance: EcsStance::Open(ScopePolicy::Fixed(32)),
            ..Self::honors_scope()
        }
    }

    /// Caps the advertised scope at /22.
    pub fn caps_scope22() -> Self {
        Scenario {
            name: "caps-scope-22",
            stance: EcsStance::Open(ScopePolicy::Fixed(22)),
            ..Self::honors_scope()
        }
    }

    /// Deliberately non-compliant: scope longer than source by 8 bits.
    pub fn scope_exceeds_source() -> Self {
        Scenario {
            name: "scope-exceeds-source",
            stance: EcsStance::Open(ScopePolicy::SourcePlusK(8)),
            ..Self::honors_scope()
        }
    }

    /// The subject resolver is not whitelisted: the server looks non-ECS.
    pub fn non_whitelisted() -> Self {
        Scenario {
            name: "non-whitelisted",
            stance: EcsStance::NonWhitelisted,
            ..Self::honors_scope()
        }
    }

    /// ECS-oblivious server.
    pub fn no_ecs() -> Self {
        Scenario {
            name: "no-ecs",
            stance: EcsStance::Disabled,
            ..Self::honors_scope()
        }
    }

    /// Pre-EDNS server (FORMERR on any OPT).
    pub fn pre_edns() -> Self {
        Scenario {
            name: "pre-edns",
            stance: EcsStance::PreEdns,
            ..Self::honors_scope()
        }
    }

    /// FORMERR only on ECS-bearing queries.
    pub fn formerr_on_ecs() -> Self {
        Scenario {
            name: "formerr-on-ecs",
            stance: EcsStance::FormerrOnEcs,
            ..Self::honors_scope()
        }
    }

    /// Every hostname resolves through a flattening CNAME hop.
    pub fn flattening_cname() -> Self {
        Scenario {
            name: "flattening-cname",
            cname: true,
            ..Self::honors_scope()
        }
    }

    /// Zero-TTL answers (the classifier edge case §6.3 probing must survive).
    pub fn zero_ttl() -> Self {
        Scenario {
            name: "zero-ttl",
            ttl: 0,
            ..Self::honors_scope()
        }
    }

    /// The zone apex as a [`Name`].
    pub fn apex_name(&self) -> Name {
        Name::from_ascii(self.apex).expect("static apex is valid")
    }

    /// Materialises the scenario into a live upstream.
    pub fn build(&self) -> ScenarioUpstream {
        ScenarioUpstream::new(*self)
    }

    /// Builds a plain [`AuthServer`] for this scenario with `names`
    /// pre-registered — the form the socket-backed subject needs (the UDP
    /// server cannot auto-materialise names once it owns the zone). Only
    /// stances expressible by `AuthServer` alone are supported here;
    /// [`EcsStance::FormerrOnEcs`] needs the in-process wrapper.
    pub fn build_auth(&self, names: &[Name]) -> AuthServer {
        assert!(
            self.stance != EcsStance::FormerrOnEcs,
            "FormerrOnEcs is only expressible in-process"
        );
        let mut upstream = ScenarioUpstream::new(*self);
        for n in names {
            upstream.ensure_name(n);
        }
        upstream.auth
    }
}

/// Deterministic edge address for an auto-materialised hostname: a stable
/// function of the name's bytes, inside 198.51.0.0/16 (TEST-NET-adjacent
/// space no workload client uses).
pub fn edge_addr_for(name: &Name) -> Ipv4Addr {
    // FNV-1a over the canonical name string.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.to_string().bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    Ipv4Addr::new(198, 51, (h >> 8) as u8, (h as u8).max(1))
}

/// A scripted authoritative behind the [`Upstream`] trait.
///
/// Wraps an [`AuthServer`] whose zone grows on demand: any queried in-zone
/// name gains a deterministic A record (plus a CNAME hop when the scenario
/// says so) the first time it is seen, so oracle drivers can use unlimited
/// fresh hostnames. The scripted FORMERR-on-ECS behaviour lives here, above
/// the `AuthServer`, with rejected queries captured in a side log so the
/// analysis oracles still see the complete upstream query stream.
pub struct ScenarioUpstream {
    scenario: Scenario,
    auth: AuthServer,
    apex: Name,
    /// Queries rejected with FORMERR before reaching the `AuthServer`
    /// (only the [`EcsStance::FormerrOnEcs`] stance populates this).
    rejected: Vec<QueryLogEntry>,
}

impl ScenarioUpstream {
    fn new(scenario: Scenario) -> Self {
        let apex = scenario.apex_name();
        let ecs = match scenario.stance {
            EcsStance::Open(policy) => EcsHandling::open(policy),
            // An empty whitelist admits nobody: the server understands ECS
            // but never applies it for our subject.
            EcsStance::NonWhitelisted => {
                EcsHandling::whitelisted(ScopePolicy::MatchSource, std::collections::HashSet::new())
            }
            EcsStance::Disabled | EcsStance::PreEdns => EcsHandling::disabled(),
            // FORMERR interception happens in `query`; ECS-free queries that
            // get through are answered normally (scope policy irrelevant).
            EcsStance::FormerrOnEcs => EcsHandling::disabled(),
        };
        let mut auth = AuthServer::new(Zone::new(apex.clone()), ecs);
        if scenario.stance == EcsStance::PreEdns {
            auth = auth.without_edns();
        }
        ScenarioUpstream {
            scenario,
            auth,
            apex,
            rejected: Vec::new(),
        }
    }

    /// The scenario this upstream was built from.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// Registers `name` in the zone if it is in-zone and unknown:
    /// a deterministic A record, behind a CNAME hop when the scenario
    /// flattens.
    pub fn ensure_name(&mut self, name: &Name) {
        if !name.is_subdomain_of(&self.apex) || self.auth.zone().name_exists(name) {
            return;
        }
        let ttl = self.scenario.ttl;
        let addr = edge_addr_for(name);
        if self.scenario.cname {
            let target = Name::from_ascii(&format!("edge.{}", self.scenario.apex))
                .expect("static target is valid");
            self.auth
                .zone_mut()
                .add_cname(name.clone(), ttl, target.clone())
                .expect("fresh name cannot conflict");
            if !self.auth.zone().name_exists(&target) {
                self.auth
                    .zone_mut()
                    .add_a(target, ttl, addr)
                    .expect("edge target is in-zone");
            }
        } else {
            self.auth
                .zone_mut()
                .add_a(name.clone(), ttl, addr)
                .expect("fresh name cannot conflict");
        }
    }

    /// The full captured upstream stream: queries the `AuthServer` logged
    /// plus any FORMERR-rejected ECS queries, in arrival order.
    pub fn captured_log(&self) -> Vec<QueryLogEntry> {
        // Rejected entries first: a FORMERR'd ECS query precedes its
        // same-instant plain retry, and the sort is stable.
        let mut log: Vec<QueryLogEntry> = self
            .rejected
            .iter()
            .chain(self.auth.log().iter())
            .cloned()
            .collect();
        log.sort_by_key(|e| e.at);
        log
    }

    /// Direct access to the wrapped server (zone edits, log drains).
    pub fn auth_mut(&mut self) -> &mut AuthServer {
        &mut self.auth
    }
}

impl Upstream for ScenarioUpstream {
    fn query(&mut self, q: &Message, from: IpAddr, now: SimTime) -> Result<Message, UpstreamError> {
        if let Some(question) = q.question() {
            self.ensure_name(&question.name.clone());
            if self.scenario.stance == EcsStance::FormerrOnEcs {
                if let Some(ecs) = q.ecs().copied() {
                    self.rejected.push(QueryLogEntry {
                        at: now,
                        resolver: from,
                        qname: question.name.clone(),
                        qtype: question.qtype,
                        ecs: Some(ecs),
                        response_scope: None,
                        answers: Vec::new(),
                    });
                    let mut resp = Message::response_to(q);
                    resp.rcode = Rcode::FormErr;
                    return Ok(resp);
                }
            }
        }
        Ok(self.auth.handle(q, from, now))
    }
}

/// Convenience for drivers: an A-question client message.
pub fn a_query(id: u16, qname: &Name) -> Message {
    Message::query(id, dns_wire::Question::a(qname.clone()))
}

/// Convenience for drivers: a scenario-scoped hostname.
pub fn host(label: &str, scenario: &Scenario) -> Name {
    Name::from_ascii(&format!("{label}.{}", scenario.apex)).expect("label is valid")
}

/// True when the entry is an address query (the §6 analyses look only at
/// A/AAAA traffic).
pub fn is_address_entry(e: &QueryLogEntry) -> bool {
    e.qtype == RecordType::A || e.qtype == RecordType::Aaaa
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_wire::EcsOption;

    const RES: IpAddr = IpAddr::V4(Ipv4Addr::new(9, 9, 9, 9));

    fn ecs_query(id: u16, qname: &Name) -> Message {
        let mut q = a_query(id, qname);
        q.set_edns(4096);
        q.set_ecs(EcsOption::from_v4(Ipv4Addr::new(100, 70, 1, 0), 24));
        q
    }

    #[test]
    fn auto_materialises_fresh_names_deterministically() {
        let s = Scenario::honors_scope();
        let mut up = s.build();
        let n = host("alpha", &s);
        let r1 = up.query(&ecs_query(1, &n), RES, SimTime::ZERO).unwrap();
        let mut up2 = s.build();
        let r2 = up2.query(&ecs_query(1, &n), RES, SimTime::ZERO).unwrap();
        assert_eq!(r1.answer_addrs(), r2.answer_addrs());
        assert_eq!(r1.answer_addrs().len(), 1);
        // Distinct names get distinct edges (with overwhelming likelihood
        // for these fixed labels).
        let m = host("beta", &s);
        let r3 = up.query(&ecs_query(2, &m), RES, SimTime::ZERO).unwrap();
        assert_ne!(r1.answer_addrs(), r3.answer_addrs());
    }

    #[test]
    fn honors_scope_echoes_source_as_scope() {
        let s = Scenario::honors_scope();
        let mut up = s.build();
        let resp = up
            .query(&ecs_query(1, &host("a", &s)), RES, SimTime::ZERO)
            .unwrap();
        let ecs = resp.ecs().unwrap();
        assert_eq!(ecs.source_prefix_len(), 24);
        assert_eq!(ecs.scope_prefix_len(), 24);
    }

    #[test]
    fn always_zero_answers_scope_zero() {
        let s = Scenario::always_zero();
        let mut up = s.build();
        let resp = up
            .query(&ecs_query(1, &host("a", &s)), RES, SimTime::ZERO)
            .unwrap();
        assert_eq!(resp.ecs().unwrap().scope_prefix_len(), 0);
    }

    #[test]
    fn non_whitelisted_never_returns_ecs() {
        let s = Scenario::non_whitelisted();
        let mut up = s.build();
        let resp = up
            .query(&ecs_query(1, &host("a", &s)), RES, SimTime::ZERO)
            .unwrap();
        assert!(resp.ecs().is_none());
        assert_eq!(resp.answer_addrs().len(), 1);
    }

    #[test]
    fn formerr_on_ecs_rejects_then_answers_plain() {
        let s = Scenario::formerr_on_ecs();
        let mut up = s.build();
        let n = host("a", &s);
        let resp = up.query(&ecs_query(1, &n), RES, SimTime::ZERO).unwrap();
        assert_eq!(resp.rcode, Rcode::FormErr);
        assert!(resp.answers.is_empty());
        let mut plain = a_query(2, &n);
        plain.set_edns(4096);
        let resp = up.query(&plain, RES, SimTime::from_secs(1)).unwrap();
        assert_eq!(resp.rcode, Rcode::NoError);
        assert_eq!(resp.answer_addrs().len(), 1);
        // Both exchanges appear in the captured stream, rejected one first.
        let log = up.captured_log();
        assert_eq!(log.len(), 2);
        assert!(log[0].ecs.is_some());
        assert!(log[1].ecs.is_none());
    }

    #[test]
    fn pre_edns_formerrs_any_opt() {
        let s = Scenario::pre_edns();
        let mut up = s.build();
        let n = host("a", &s);
        let mut q = a_query(1, &n);
        q.set_edns(4096);
        let resp = up.query(&q, RES, SimTime::ZERO).unwrap();
        assert_eq!(resp.rcode, Rcode::FormErr);
    }

    #[test]
    fn flattening_cname_serves_chain() {
        let s = Scenario::flattening_cname();
        let mut up = s.build();
        let resp = up
            .query(&ecs_query(1, &host("www", &s)), RES, SimTime::ZERO)
            .unwrap();
        // CNAME + A in one answer (in-zone flattening).
        assert_eq!(resp.answers.len(), 2);
        assert_eq!(resp.answer_addrs().len(), 1);
    }

    #[test]
    fn build_auth_preregisters_names() {
        let s = Scenario::honors_scope();
        let names = vec![host("x", &s), host("y", &s)];
        let auth = s.build_auth(&names);
        assert!(auth.zone().name_exists(&names[0]));
        assert!(auth.zone().name_exists(&names[1]));
    }

    #[test]
    fn scope_exceeds_source_is_expressible() {
        let s = Scenario::scope_exceeds_source();
        let mut up = s.build();
        let resp = up
            .query(&ecs_query(1, &host("a", &s)), RES, SimTime::ZERO)
            .unwrap();
        let ecs = resp.ecs().unwrap();
        assert_eq!(ecs.source_prefix_len(), 24);
        assert_eq!(ecs.scope_prefix_len(), 32);
    }
}
