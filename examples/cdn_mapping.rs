//! A CDN operator's view: how the ECS source prefix length affects
//! user-to-edge mapping quality across a world-spread client population —
//! the §8.3 experiment as a reusable tool.
//!
//! Run with: `cargo run --release --example cdn_mapping`

use ecs_study::experiments::fig67::{run, CdnModel, Config};

fn main() {
    for (label, config) in [
        ("CDN-1 (proximity needs /24)", Config::fig6()),
        ("CDN-2 (proximity needs /21)", Config::fig7()),
    ] {
        let (outcome, _) = run(&Config {
            probes: 400,
            ..config
        });
        println!("--- {label} ---");
        println!(
            "{:<6} {:>12} {:>12} {:>16}",
            "prefix", "median ms", "p90 ms", "unique answers"
        );
        for (len, q) in &outcome.by_length {
            println!(
                "/{:<5} {:>12.1} {:>12.1} {:>16}",
                len,
                q.median_ms,
                q.connect_cdf.quantile(0.9),
                q.unique_first_answers
            );
        }
        println!();
    }
    println!("Reading: once the prefix drops below each CDN's minimum, proximity");
    println!("mapping stops — the unique-answer count collapses and the median");
    println!("connect time jumps. Sending fewer bits than the minimum leaks client");
    println!("information for zero benefit (§8.3 of the paper).");
    let _ = CdnModel::Cdn1;
}
