//! Property tests for the trace-driven cache simulator.

use analysis::{CacheSimConfig, CacheSimulator};
use dns_wire::{IpPrefix, Name, RecordType};
use proptest::prelude::*;
use std::net::{IpAddr, Ipv4Addr};
use workload::{TraceRecord, TraceSet};

fn arb_record() -> impl Strategy<Value = TraceRecord> {
    (
        0u64..600_000_000,            // at_micros, up to 10 min
        0u8..3,                       // resolver index
        0u8..6,                       // name index
        0u32..40,                     // subnet index
        prop_oneof![Just(8u8), Just(16), Just(24)], // scope
        prop_oneof![Just(20u32), Just(60), Just(300)], // ttl
    )
        .prop_map(|(at, res, nm, subnet, scope, ttl)| {
            let subnet_addr = Ipv4Addr::from(0x0A00_0000 | (subnet << 8));
            TraceRecord {
                at_micros: at,
                resolver: IpAddr::V4(Ipv4Addr::new(9, 9, 9, res + 1)),
                qname: Name::from_ascii(&format!("h{nm}.example.com")).unwrap(),
                qtype: RecordType::A,
                ecs_source: Some(IpPrefix::v4(subnet_addr, 24).unwrap()),
                response_scope: Some(scope),
                ttl,
                client: Some(IpAddr::V4(Ipv4Addr::from(
                    u32::from(subnet_addr) | 7,
                ))),
            }
        })
}

fn arb_trace() -> impl Strategy<Value = TraceSet> {
    proptest::collection::vec(arb_record(), 1..300).prop_map(|mut records| {
        records.sort_by_key(|r| r.at_micros);
        let mut t = TraceSet::new("prop");
        t.records = records;
        t
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Metamorphic: when every query for a given name comes from a single
    /// subnet, scoped caching degenerates to plain caching — the two modes
    /// must agree exactly. (The general "ECS only costs" inequality is
    /// FALSE: with mixed TTLs a later-inserted scoped entry can outlive
    /// the shared plain entry and serve a hit the plain cache misses.
    /// This test pins the case where no such divergence is possible.)
    #[test]
    fn single_subnet_per_name_degenerates_to_plain(trace in arb_trace()) {
        let mut t = trace;
        // Rewrite each record's subnet to a function of its name, so a
        // name is only ever queried from one subnet.
        for r in &mut t.records {
            let tag = (r.qname.canonical().bytes().map(|b| b as u32).sum::<u32>() % 40) << 8;
            let subnet = Ipv4Addr::from(0x0A00_0000 | tag);
            r.ecs_source = Some(IpPrefix::v4(subnet, 24).unwrap());
            r.client = Some(IpAddr::V4(Ipv4Addr::from(u32::from(subnet) | 7)));
        }
        let result = CacheSimulator::new(CacheSimConfig::default()).run(&t);
        for r in &result.per_resolver {
            prop_assert_eq!(r.max_size_ecs, r.max_size_no_ecs);
            prop_assert_eq!(r.hits_ecs, r.hits_no_ecs);
            prop_assert!((r.blowup_factor() - 1.0).abs() < 1e-12);
        }
    }

    /// Metamorphic: zero-scope responses are shareable by everyone, so the
    /// two modes agree exactly.
    #[test]
    fn zero_scope_degenerates_to_plain(trace in arb_trace()) {
        let mut t = trace;
        for r in &mut t.records {
            r.response_scope = Some(0);
        }
        let result = CacheSimulator::new(CacheSimConfig::default()).run(&t);
        for r in &result.per_resolver {
            prop_assert_eq!(r.max_size_ecs, r.max_size_no_ecs);
            prop_assert_eq!(r.hits_ecs, r.hits_no_ecs);
        }
    }

    /// Lookup counts are conserved: every record is exactly one lookup for
    /// its resolver, in both modes.
    #[test]
    fn lookups_conserved(trace in arb_trace()) {
        let result = CacheSimulator::new(CacheSimConfig::default()).run(&trace);
        let total: u64 = result.per_resolver.iter().map(|r| r.lookups).sum();
        prop_assert_eq!(total as usize, trace.len());
    }

    /// With a uniform forced TTL, lengthening it never reduces peak
    /// concurrency: every entry's lifetime strictly contains its shorter
    /// counterpart, and longer lifetimes can only turn misses into hits
    /// (which never add entries).
    ///
    /// Note this needs the *uniform* override on both sides — with mixed
    /// per-record TTLs the hit/miss pattern can shift in ways that move
    /// the peak either way.
    #[test]
    fn longer_uniform_ttl_never_shrinks_plain_peak(trace in arb_trace()) {
        let short = CacheSimulator::new(CacheSimConfig {
            ttl_override: Some(20),
            ..CacheSimConfig::default()
        })
        .run(&trace);
        let long = CacheSimulator::new(CacheSimConfig {
            ttl_override: Some(120),
            ..CacheSimConfig::default()
        })
        .run(&trace);
        for (s, l) in short.per_resolver.iter().zip(long.per_resolver.iter()) {
            prop_assert_eq!(s.resolver, l.resolver);
            // In plain mode the entry set is exactly "one live entry per
            // recently-queried name", which grows monotonically with TTL.
            prop_assert!(l.max_size_no_ecs >= s.max_size_no_ecs);
            // Hits only increase with TTL in plain mode.
            prop_assert!(l.hits_no_ecs >= s.hits_no_ecs);
        }
    }

    /// Client sampling keeps a subset: lookups under sampling never exceed
    /// the full run, and 100% sampling is identical to no sampling.
    #[test]
    fn sampling_is_a_subset(trace in arb_trace(), pct in 0u8..=100) {
        let full = CacheSimulator::new(CacheSimConfig::default()).run(&trace);
        let sampled = CacheSimulator::new(CacheSimConfig {
            sample_pct: pct,
            ..CacheSimConfig::default()
        })
        .run(&trace);
        let full_lookups: u64 = full.per_resolver.iter().map(|r| r.lookups).sum();
        let sampled_lookups: u64 = sampled.per_resolver.iter().map(|r| r.lookups).sum();
        prop_assert!(sampled_lookups <= full_lookups);
        if pct == 100 {
            prop_assert_eq!(sampled_lookups, full_lookups);
        }
    }
}
