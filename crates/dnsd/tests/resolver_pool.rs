//! Cross-worker coalescing and global admission control for the
//! multi-worker resolver serving path, driven through real sockets
//! against a *scripted* upstream — a bare UDP responder with a
//! configurable answer delay, so tests can hold flights open long enough
//! for queries to pile up across workers.

use std::net::{Ipv4Addr, SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use dns_wire::{Message, Name, Question, Rcode, Rdata, Record};
use dnsd::UdpResolverServer;
use resolver::{ResolverConfig, Transport, TransportPolicy};

/// A scripted authoritative: answers every A query with a fixed address
/// after `delay`, counting the queries it saw. Single-threaded on
/// purpose — the *resolver pool* under test is what must limit and
/// coalesce upstream traffic.
struct ScriptedUpstream {
    addr: SocketAddr,
    queries_seen: Arc<AtomicUsize>,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ScriptedUpstream {
    fn start(delay: Duration) -> Self {
        let socket = UdpSocket::bind("127.0.0.1:0").expect("bind scripted upstream");
        socket
            .set_read_timeout(Some(Duration::from_millis(50)))
            .expect("timeout");
        let addr = socket.local_addr().expect("bound");
        let queries_seen = Arc::new(AtomicUsize::new(0));
        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let queries_seen = Arc::clone(&queries_seen);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut buf = [0u8; 4096];
                while !stop.load(Ordering::SeqCst) {
                    let (n, peer) = match socket.recv_from(&mut buf) {
                        Ok(r) => r,
                        Err(_) => continue, // timeout: re-check stop
                    };
                    let Ok(query) = Message::from_bytes(&buf[..n]) else {
                        continue;
                    };
                    queries_seen.fetch_add(1, Ordering::SeqCst);
                    std::thread::sleep(delay);
                    let mut resp = Message::response_to(&query);
                    if let Some(q) = query.question() {
                        resp.answers.push(Record::new(
                            q.name.clone(),
                            60,
                            Rdata::A(Ipv4Addr::new(198, 51, 100, 7)),
                        ));
                    }
                    let _ = socket.send_to(&resp.to_bytes().expect("encodes"), peer);
                }
            })
        };
        ScriptedUpstream {
            addr,
            queries_seen,
            stop,
            thread: Some(thread),
        }
    }

    fn queries_seen(&self) -> usize {
        self.queries_seen.load(Ordering::SeqCst)
    }
}

impl Drop for ScriptedUpstream {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

fn base_config() -> ResolverConfig {
    ResolverConfig::rfc_compliant(std::net::IpAddr::V4(Ipv4Addr::LOCALHOST))
}

/// Sends `queries` (already encoded) spaced `gap` apart, then collects
/// exactly `queries.len()` responses (any order). Panics on a dry socket.
fn send_spaced_collect(
    client: &UdpSocket,
    server: SocketAddr,
    queries: &[Vec<u8>],
    gap: Duration,
) -> Vec<Message> {
    for q in queries {
        client.send_to(q, server).expect("send");
        std::thread::sleep(gap);
    }
    let mut responses = Vec::new();
    let mut buf = [0u8; 4096];
    while responses.len() < queries.len() {
        let (n, _) = client.recv_from(&mut buf).expect("response expected");
        responses.push(Message::from_bytes(&buf[..n]).expect("decodes"));
    }
    responses
}

#[test]
fn identical_queries_across_workers_share_one_upstream_flight() {
    let upstream = ScriptedUpstream::start(Duration::from_millis(600));
    let mut config = base_config();
    config.overload.coalesce = true;

    let handle = UdpResolverServer::bind("127.0.0.1:0", upstream.addr, config)
        .expect("bind resolver")
        .with_workers(4)
        .with_upstream_timeout(Duration::from_secs(2))
        .spawn()
        .expect("spawn pool");
    let server = handle.local_addr();

    let client = UdpSocket::bind("127.0.0.1:0").expect("bind client");
    client
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");

    // Eight identical questions, distinct IDs, spaced so several workers
    // pick them up while the first one's 600 ms upstream flight is open.
    let queries: Vec<Vec<u8>> = (0..8u16)
        .map(|id| {
            Message::query(id, Question::a(Name::from_ascii("hot.test").unwrap()))
                .to_bytes()
                .unwrap()
        })
        .collect();
    let responses = send_spaced_collect(&client, server, &queries, Duration::from_millis(40));

    // Every client got the (identical) answer...
    let mut ids: Vec<u16> = responses.iter().map(|r| r.id).collect();
    ids.sort_unstable();
    assert_eq!(ids, (0..8).collect::<Vec<_>>(), "every query answered");
    for r in &responses {
        assert_eq!(r.rcode, Rcode::NoError);
        assert_eq!(r.answer_addrs(), vec![Ipv4Addr::new(198, 51, 100, 7)]);
    }
    // ...from exactly ONE upstream exchange: whichever worker owned the
    // flight resolved for everyone. Per-worker flight tables would have
    // sent up to 4.
    assert_eq!(
        upstream.queries_seen(),
        1,
        "flights coalesced across workers"
    );

    let snap = handle.shutdown();
    assert_eq!(snap.counter("resolver_upstream_queries_total"), Some(1));
    // The 7 non-owner queries either joined the open flight (a worker was
    // free while it flew) or arrived after completion and hit the shared
    // cache — both paths avoid upstream, and they partition exactly.
    let coalesced = snap
        .counter("resolver_coalesced_queries_total")
        .unwrap_or(0);
    let hits = snap.counter("cache_hits_total").unwrap_or(0);
    assert_eq!(coalesced + hits, 7, "non-owners split join/cache-hit");
    assert!(
        coalesced >= 1,
        "at least one query joined the open flight cross-worker"
    );
    assert_eq!(snap.counter("resolver_shed_queries_total"), Some(0));
}

#[test]
fn tcp_pinned_pool_resolves_through_a_tcp_only_upstream() {
    if !dnsd::testutil::require_loopback("tcp_pinned_pool_resolves_through_a_tcp_only_upstream") {
        return;
    }
    // A TCP-only authoritative: the pool's upstream address has a TCP
    // listener and *no* UDP listener, so only a TCP-pinned transport
    // policy can resolve through it. The `UdpAuthServer` below is never
    // spawned — it exists to own the shared zone state the TCP listener
    // serves (and to read the query log back at the end).
    let mut zone = authoritative::Zone::new(Name::from_ascii("hot.test").unwrap());
    zone.add_a(
        Name::from_ascii("hot.test").unwrap(),
        60,
        Ipv4Addr::new(198, 51, 100, 7),
    )
    .expect("fresh zone");
    let auth = authoritative::AuthServer::new(
        zone,
        authoritative::EcsHandling::open(authoritative::ScopePolicy::MatchSource),
    );
    let donor = dnsd::UdpAuthServer::bind("127.0.0.1:0", auth).expect("loopback available");
    let shared = donor.auth();
    let Some(tcp) = dnsd::testutil::require_socket(
        "tcp_pinned_pool_resolves_through_a_tcp_only_upstream",
        "binding the TCP listener",
        dnsd::TcpAuthServer::bind("127.0.0.1:0", donor.auth()),
    ) else {
        return;
    };
    let tcp_addr = tcp.local_addr().expect("bound");
    let tcp_handle = tcp.spawn();
    drop(donor); // the UDP socket closes; the shared zone lives on

    let mut config = base_config();
    config.transport = TransportPolicy::prefer(Transport::Tcp);
    let handle = UdpResolverServer::bind("127.0.0.1:0", tcp_addr, config)
        .expect("bind resolver")
        .with_workers(2)
        .with_upstream_timeout(Duration::from_secs(2))
        .spawn()
        .expect("spawn pool");
    let server = handle.local_addr();

    let client = UdpSocket::bind("127.0.0.1:0").expect("bind client");
    client
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");

    // Four identical questions: the first resolves over TCP, the rest ride
    // the shared cache (or join the flight) — none may SERVFAIL, which is
    // what would happen if any worker tried the dead UDP path.
    let queries: Vec<Vec<u8>> = (0..4u16)
        .map(|id| {
            Message::query(id, Question::a(Name::from_ascii("hot.test").unwrap()))
                .to_bytes()
                .unwrap()
        })
        .collect();
    let responses = send_spaced_collect(&client, server, &queries, Duration::from_millis(30));

    for r in &responses {
        assert_eq!(r.rcode, Rcode::NoError);
        assert_eq!(r.answer_addrs(), vec![Ipv4Addr::new(198, 51, 100, 7)]);
    }

    let snap = handle.shutdown();
    let upstream_queries = snap.counter("resolver_upstream_queries_total").unwrap_or(0);
    assert!(upstream_queries >= 1, "at least one exchange went upstream");
    assert_eq!(snap.counter("resolver_servfail_responses_total"), Some(0));
    // Engine accounting matches what the TCP listener actually served.
    assert_eq!(shared.lock().log().len() as u64, upstream_queries);

    tcp_handle.shutdown();
}

#[test]
fn max_in_flight_is_accounted_globally_not_per_worker() {
    let upstream = ScriptedUpstream::start(Duration::from_millis(600));
    let mut config = base_config();
    // Coalescing off so every admitted query is its own flight, cap 2.
    // Six workers make six concurrent admissions possible: a per-worker
    // cap of 2 would admit all six names; the global cap admits 2.
    config.overload.coalesce = false;
    config.overload.max_in_flight = Some(2);

    let handle = UdpResolverServer::bind("127.0.0.1:0", upstream.addr, config)
        .expect("bind resolver")
        .with_workers(6)
        .with_upstream_timeout(Duration::from_secs(3))
        .spawn()
        .expect("spawn pool");
    let server = handle.local_addr();

    let client = UdpSocket::bind("127.0.0.1:0").expect("bind client");
    client
        .set_read_timeout(Some(Duration::from_secs(8)))
        .expect("timeout");

    // Six distinct names, spaced so each lands on a free worker while the
    // first two hold both admission slots for 600 ms.
    let queries: Vec<Vec<u8>> = (0..6u16)
        .map(|id| {
            let name = Name::from_ascii(&format!("n{id}.test")).unwrap();
            Message::query(id, Question::a(name)).to_bytes().unwrap()
        })
        .collect();
    let responses = send_spaced_collect(&client, server, &queries, Duration::from_millis(50));

    let answered = responses
        .iter()
        .filter(|r| r.rcode == Rcode::NoError && !r.answers.is_empty())
        .count();
    let refused = responses
        .iter()
        .filter(|r| r.rcode == Rcode::ServFail)
        .count();
    assert_eq!(answered + refused, 6, "every query got a definite outcome");

    let snap = handle.shutdown();
    let shed = snap.counter("resolver_shed_queries_total").unwrap_or(0);
    let upstream_queries = snap.counter("resolver_upstream_queries_total").unwrap_or(0);
    assert_eq!(refused as u64, shed, "SERVFAILs are exactly the sheds");
    assert_eq!(
        upstream_queries as usize,
        upstream.queries_seen(),
        "engine accounting matches the wire"
    );
    assert_eq!(shed + upstream_queries, 6);
    // The global cap bit: with 6 workers and a per-worker cap of 2 no
    // query would ever shed. Timing decides the exact split (a late query
    // can land after an early flight freed its slot), but with both slots
    // held for 600 ms and queries 50 ms apart, most of the six must shed.
    assert!(
        shed >= 3,
        "cap of 2 admitted {upstream_queries} of 6 — accounting looks per-worker, not global"
    );
}
