//! The hot-path stage profiler: scoped stage spans accumulated into a
//! fixed-size per-thread table, folded after the join, exported as
//! standard collapsed ("folded") flamegraph stacks.
//!
//! Design constraints (the same ones the metrics registry lives under):
//!
//! * **No allocation or locking on the hot path.** A [`StageProfiler`] is
//!   owned by one thread (`&mut self` API) and records into fixed arrays
//!   sized at construction. Entering/exiting a span is a handful of
//!   integer ops plus — on the wall-clock path — one `Instant::now()`.
//! * **Fold after join.** Each worker snapshots its profiler when it
//!   exits; [`ProfileSnapshot::merge`] is commutative and associative, so
//!   folding per-worker snapshots in any order yields the same profile —
//!   exactly how the worker metrics snapshots already merge.
//! * **Deterministic on the sim-time axis.** Every operation has an
//!   `_at` variant taking an explicit microsecond clock, so sim-driven
//!   code (the scanner pipeline, `netsim` tests) produces bit-identical
//!   profiles for a fixed seed.
//!
//! Output is the standard collapsed-stack format consumed by
//! `flamegraph.pl`, `inferno`, speedscope, and friends — one line per
//! distinct stack, `root;child;leaf <self-microseconds>`:
//!
//! ```text
//! worker;recv 182000
//! worker;resolve;cache_hit 95000
//! worker;resolve;own_upstream 4100
//! worker;send 20100
//! ```
//!
//! The value is *self* time (time in that exact stack, excluding
//! children), so stage totals are additive: the time under `worker` is
//! the sum of every line prefixed `worker`. [`ProfileSnapshot::to_metrics`]
//! exports the same numbers into a [`MetricsRegistry`] as
//! `prof_stage_<leaf>_self_us_total` / `prof_stage_<leaf>_calls_total`
//! counters plus the `prof_spans_total` / `prof_self_us_total` /
//! `prof_dropped_paths_total` roll-ups, which is what makes the folded
//! file and the registry reconcile exactly (same accumulators, two
//! serializations).

use std::collections::BTreeMap;
use std::time::Instant;

use crate::metrics::{Counter, Histogram, MetricsRegistry};

/// Maximum distinct stage names one profiler can intern.
pub const MAX_STAGES: usize = 255;
/// Maximum span nesting depth (deeper spans are dropped, counted).
pub const MAX_DEPTH: usize = 8;
/// Distinct stack paths one profiler can hold (open-addressed table
/// capacity; collisions past this are dropped, counted).
const TABLE_CAP: usize = 1024;

/// One accumulated stack path.
#[derive(Clone, Copy, Default)]
struct Slot {
    /// Packed path (8 bits per level, depth ≤ [`MAX_DEPTH`]); 0 = empty.
    key: u64,
    calls: u64,
    self_us: u64,
}

/// A per-thread stage profiler. Not `Sync` by design: one worker owns
/// one profiler and folds its [`ProfileSnapshot`] after the join.
pub struct StageProfiler {
    /// Interned stage names; a stage id is its index + 1 (0 is reserved
    /// so packed path keys are never 0).
    stages: Vec<&'static str>,
    /// Open-addressed path table (linear probing, power-of-two size).
    table: Vec<Slot>,
    /// Span stack: (stage id, entry time µs, accumulated child µs).
    stack: [(u16, u64, u64); MAX_DEPTH],
    depth: usize,
    /// Packed key of the current path (8 bits per level).
    path_key: u64,
    /// Spans dropped because the stack, stage set, or table was full.
    dropped: u64,
    /// Nesting depth of dropped spans still "open" (so their exits are
    /// swallowed instead of unbalancing the stack).
    dropped_open: u32,
    /// Wall-clock epoch for the convenience non-`_at` API.
    epoch: Instant,
}

impl Default for StageProfiler {
    fn default() -> Self {
        Self::new()
    }
}

impl StageProfiler {
    /// A fresh profiler. All storage is allocated here, once.
    pub fn new() -> Self {
        StageProfiler {
            stages: Vec::with_capacity(16),
            table: vec![Slot::default(); TABLE_CAP],
            stack: [(0, 0, 0); MAX_DEPTH],
            depth: 0,
            path_key: 0,
            dropped: 0,
            dropped_open: 0,
            epoch: Instant::now(),
        }
    }

    /// Microseconds since this profiler was created (the wall clock the
    /// non-`_at` API uses).
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    fn stage_id(&mut self, name: &'static str) -> Option<u16> {
        if let Some(i) = self.stages.iter().position(|s| *s == name) {
            return Some(i as u16 + 1);
        }
        if self.stages.len() >= MAX_STAGES {
            return None;
        }
        self.stages.push(name);
        Some(self.stages.len() as u16)
    }

    /// Opens a span for `name` at wall-clock now.
    pub fn enter(&mut self, name: &'static str) {
        let now = self.now_us();
        self.enter_at(name, now);
    }

    /// Closes the innermost span at wall-clock now.
    pub fn exit(&mut self) {
        let now = self.now_us();
        self.exit_at(now);
    }

    /// Opens a span for `name` at explicit time `at_us` (sim-time axis:
    /// deterministic attribution under `netsim`).
    pub fn enter_at(&mut self, name: &'static str, at_us: u64) {
        if self.dropped_open > 0 {
            // Inside a dropped span: swallow nested entries too.
            self.dropped_open += 1;
            self.dropped += 1;
            return;
        }
        let Some(id) = self.stage_id(name) else {
            self.dropped += 1;
            self.dropped_open = 1;
            return;
        };
        if self.depth >= MAX_DEPTH {
            self.dropped += 1;
            self.dropped_open = 1;
            return;
        }
        self.stack[self.depth] = (id, at_us, 0);
        self.depth += 1;
        self.path_key = (self.path_key << 8) | id as u64;
    }

    /// Closes the innermost span at explicit time `at_us`. The span's
    /// elapsed time minus its children's elapsed is accumulated as self
    /// time under the full current path; the elapsed total is credited to
    /// the parent's child accumulator.
    pub fn exit_at(&mut self, at_us: u64) {
        if self.dropped_open > 0 {
            self.dropped_open -= 1;
            return;
        }
        if self.depth == 0 {
            return; // unbalanced exit: ignore
        }
        self.depth -= 1;
        let (_, start, child_us) = self.stack[self.depth];
        let elapsed = at_us.saturating_sub(start);
        let self_us = elapsed.saturating_sub(child_us);
        let key = self.path_key;
        self.path_key >>= 8;
        if self.depth > 0 {
            self.stack[self.depth - 1].2 += elapsed;
        }
        self.accumulate(key, 1, self_us);
    }

    /// Directly accumulates a leaf measurement under `path` without the
    /// enter/exit discipline — for event-driven code (the scanner's
    /// sim-time state machine) where a "span" is two callbacks apart.
    pub fn record(&mut self, path: &[&'static str], dur_us: u64) {
        debug_assert!(!path.is_empty() && path.len() <= MAX_DEPTH);
        let mut key = 0u64;
        for name in path.iter().take(MAX_DEPTH) {
            match self.stage_id(name) {
                Some(id) => key = (key << 8) | id as u64,
                None => {
                    self.dropped += 1;
                    return;
                }
            }
        }
        self.accumulate(key, 1, dur_us);
    }

    fn accumulate(&mut self, key: u64, calls: u64, self_us: u64) {
        let mask = TABLE_CAP - 1;
        // FxHash-style mix so packed keys spread over the table.
        let mut idx = (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize & mask;
        for _ in 0..TABLE_CAP {
            let slot = &mut self.table[idx];
            if slot.key == key {
                slot.calls += calls;
                slot.self_us += self_us;
                return;
            }
            if slot.key == 0 {
                *slot = Slot {
                    key,
                    calls,
                    self_us,
                };
                return;
            }
            idx = (idx + 1) & mask;
        }
        self.dropped += calls;
    }

    /// Spans dropped so far (stack overflow, stage-set overflow, table
    /// full).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Freezes the accumulated profile. Open spans are not included
    /// (snapshot between requests, or after the worker loop exits).
    pub fn snapshot(&self) -> ProfileSnapshot {
        let mut stacks = BTreeMap::new();
        for slot in &self.table {
            if slot.key == 0 {
                continue;
            }
            // Unpack the path key back into stage names, root first.
            let mut ids = Vec::new();
            let mut k = slot.key;
            while k != 0 {
                ids.push((k & 0xFF) as u16);
                k >>= 8;
            }
            ids.reverse();
            let path = ids
                .iter()
                .map(|id| self.stages[*id as usize - 1])
                .collect::<Vec<_>>()
                .join(";");
            let entry = stacks.entry(path).or_insert(StackStats::default());
            entry.calls += slot.calls;
            entry.self_us += slot.self_us;
        }
        ProfileSnapshot {
            stacks,
            dropped: self.dropped,
        }
    }
}

/// Accumulated stats for one distinct stack path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StackStats {
    /// Times this exact stack was exited (or [`StageProfiler::record`]ed).
    pub calls: u64,
    /// Self time: microseconds in this stack excluding child spans.
    pub self_us: u64,
}

/// A frozen, mergeable stage profile.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProfileSnapshot {
    /// Stats by `;`-joined stack path (BTreeMap: folded output is
    /// deterministic).
    pub stacks: BTreeMap<String, StackStats>,
    /// Spans dropped by the fixed-size accumulators.
    pub dropped: u64,
}

impl ProfileSnapshot {
    /// Folds `other` into `self` (adds calls and self time path-wise).
    /// Commutative and associative, so any fold order over any sharding
    /// of the same spans yields the same profile.
    pub fn merge(&mut self, other: &ProfileSnapshot) {
        for (path, stats) in &other.stacks {
            let entry = self.stacks.entry(path.clone()).or_default();
            entry.calls += stats.calls;
            entry.self_us += stats.self_us;
        }
        self.dropped += other.dropped;
    }

    /// True when no spans were recorded.
    pub fn is_empty(&self) -> bool {
        self.stacks.is_empty()
    }

    /// Total self time across every stack (the whole profiled wall).
    pub fn total_self_us(&self) -> u64 {
        self.stacks.values().map(|s| s.self_us).sum()
    }

    /// Total spans recorded.
    pub fn total_calls(&self) -> u64 {
        self.stacks.values().map(|s| s.calls).sum()
    }

    /// Time under `prefix`: the sum of self time over every stack equal
    /// to it or nested below it. Because values are self time, this is
    /// exactly the inclusive time of that subtree.
    pub fn subtree_us(&self, prefix: &str) -> u64 {
        self.stacks
            .iter()
            .filter(|(path, _)| {
                path.as_str() == prefix
                    || (path.starts_with(prefix)
                        && path.as_bytes().get(prefix.len()) == Some(&b';'))
            })
            .map(|(_, s)| s.self_us)
            .sum()
    }

    /// Standard collapsed-stack output: one `path value` line per stack,
    /// sorted by path, self time as the sample value. Feed to any
    /// flamegraph renderer.
    pub fn to_folded(&self) -> String {
        let mut out = String::new();
        for (path, stats) in &self.stacks {
            out.push_str(path);
            out.push(' ');
            out.push_str(&stats.self_us.to_string());
            out.push('\n');
        }
        out
    }

    /// Exports the profile into `reg` as counters: per-leaf
    /// `prof_stage_<leaf>_self_us_total` / `prof_stage_<leaf>_calls_total`
    /// (leaf = last path component; distinct stacks sharing a leaf add),
    /// plus `prof_spans_total`, `prof_self_us_total`, and
    /// `prof_dropped_paths_total`. The registry numbers and
    /// [`ProfileSnapshot::to_folded`] are two serializations of the same
    /// accumulators, so they always reconcile exactly.
    pub fn to_metrics(&self, reg: &MetricsRegistry) {
        for (path, stats) in &self.stacks {
            let leaf = path.rsplit(';').next().unwrap_or(path);
            reg.counter(&format!("prof_stage_{leaf}_self_us_total"))
                .add(stats.self_us);
            reg.counter(&format!("prof_stage_{leaf}_calls_total"))
                .add(stats.calls);
        }
        reg.counter("prof_spans_total").add(self.total_calls());
        reg.counter("prof_self_us_total").add(self.total_self_us());
        reg.counter("prof_dropped_paths_total").add(self.dropped);
    }
}

/// Lock-wait telemetry for one class of locks (e.g. the shared cache's
/// shard mutexes): acquisition and contended-acquisition counters plus a
/// wait-time histogram, registry-backed so snapshots merge like
/// everything else.
///
/// The caller decides contention (typically `try_lock` failing) and
/// measures the wait; the monitor only owns the series. Cloning shares
/// them.
#[derive(Clone, Debug)]
pub struct LockMonitor {
    acquisitions: Counter,
    contended: Counter,
    wait_us: Histogram,
}

impl LockMonitor {
    /// Creates (or re-attaches to) the `<prefix>_acquisitions_total`,
    /// `<prefix>_contended_total`, and `<prefix>_wait_us` series in `reg`.
    pub fn new(reg: &MetricsRegistry, prefix: &str) -> Self {
        LockMonitor {
            acquisitions: reg.counter(&format!("{prefix}_acquisitions_total")),
            contended: reg.counter(&format!("{prefix}_contended_total")),
            wait_us: reg.histogram(&format!("{prefix}_wait_us")),
        }
    }

    /// Records an acquisition that got the lock without waiting.
    pub fn record_uncontended(&self) {
        self.acquisitions.inc();
    }

    /// Records an acquisition that waited `wait_us` microseconds.
    pub fn record_contended(&self, wait_us: u64) {
        self.acquisitions.inc();
        self.contended.inc();
        self.wait_us.record(wait_us);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_self_time_excludes_children() {
        let mut p = StageProfiler::new();
        p.enter_at("worker", 0);
        p.enter_at("recv", 10);
        p.exit_at(40); // recv: 30 self
        p.enter_at("resolve", 40);
        p.enter_at("cache", 45);
        p.exit_at(65); // cache: 20 self
        p.exit_at(90); // resolve: 50 elapsed - 20 child = 30 self
        p.exit_at(100); // worker: 100 elapsed - 30 - 50 = 20 self
        let snap = p.snapshot();
        let get = |path: &str| snap.stacks.get(path).copied().unwrap();
        assert_eq!(get("worker;recv").self_us, 30);
        assert_eq!(get("worker;resolve;cache").self_us, 20);
        assert_eq!(get("worker;resolve").self_us, 30);
        assert_eq!(get("worker").self_us, 20);
        assert_eq!(snap.total_self_us(), 100, "self times sum to the wall");
        assert_eq!(snap.subtree_us("worker;resolve"), 50);
        assert_eq!(snap.subtree_us("worker"), 100);
        assert_eq!(snap.dropped, 0);
    }

    #[test]
    fn folded_output_is_sorted_and_parseable() {
        let mut p = StageProfiler::new();
        p.enter_at("b", 0);
        p.exit_at(5);
        p.enter_at("a", 5);
        p.enter_at("x", 6);
        p.exit_at(8);
        p.exit_at(9);
        let folded = p.snapshot().to_folded();
        assert_eq!(folded, "a 2\na;x 2\nb 5\n");
    }

    #[test]
    fn record_accumulates_leaf_paths_directly() {
        let mut p = StageProfiler::new();
        p.record(&["scan", "upstream_wait"], 100);
        p.record(&["scan", "upstream_wait"], 50);
        p.record(&["scan", "backoff"], 10);
        let snap = p.snapshot();
        assert_eq!(
            snap.stacks.get("scan;upstream_wait").unwrap(),
            &StackStats {
                calls: 2,
                self_us: 150
            }
        );
        assert_eq!(snap.subtree_us("scan"), 160);
    }

    #[test]
    fn merge_is_commutative_and_additive() {
        let mut a = StageProfiler::new();
        a.enter_at("s", 0);
        a.exit_at(10);
        let mut b = StageProfiler::new();
        b.enter_at("s", 0);
        b.exit_at(20);
        b.enter_at("t", 20);
        b.exit_at(25);
        let (sa, sb) = (a.snapshot(), b.snapshot());
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        assert_eq!(ab, ba);
        assert_eq!(ab.stacks.get("s").unwrap().self_us, 30);
        assert_eq!(ab.stacks.get("s").unwrap().calls, 2);
        assert_eq!(ab.stacks.get("t").unwrap().self_us, 5);
    }

    #[test]
    fn overflow_is_counted_never_unbalanced() {
        let mut p = StageProfiler::new();
        // Overflow the stack: MAX_DEPTH real levels, then two dropped.
        for i in 0..MAX_DEPTH {
            // Distinct static names without leaking: a fixed pool.
            const POOL: [&str; MAX_DEPTH] = ["s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7"];
            p.enter_at(POOL[i], i as u64);
        }
        p.enter_at("over1", 100);
        p.enter_at("over2", 101);
        assert_eq!(p.dropped(), 2);
        // Exits unwind the dropped spans first, then the real ones.
        for t in 0..(MAX_DEPTH + 2) {
            p.exit_at(200 + t as u64);
        }
        let snap = p.snapshot();
        assert_eq!(snap.dropped, 2);
        // All real levels recorded; the deepest real stack exists.
        assert_eq!(snap.total_calls(), MAX_DEPTH as u64);
        assert!(snap
            .stacks
            .keys()
            .any(|k| k.ends_with("s7") && k.starts_with("s0;")));
    }

    #[test]
    fn wall_clock_convenience_api_records() {
        let mut p = StageProfiler::new();
        p.enter("outer");
        p.enter("inner");
        p.exit();
        p.exit();
        let snap = p.snapshot();
        assert_eq!(snap.total_calls(), 2);
        assert!(snap.stacks.contains_key("outer;inner"));
    }

    #[test]
    fn to_metrics_reconciles_with_folded_totals() {
        let mut p = StageProfiler::new();
        p.enter_at("worker", 0);
        p.enter_at("recv", 0);
        p.exit_at(30);
        p.enter_at("send", 30);
        p.exit_at(45);
        p.exit_at(50);
        let snap = p.snapshot();
        let reg = MetricsRegistry::new();
        snap.to_metrics(&reg);
        let m = reg.snapshot();
        assert_eq!(m.counter("prof_spans_total"), Some(snap.total_calls()));
        assert_eq!(m.counter("prof_self_us_total"), Some(snap.total_self_us()));
        assert_eq!(m.counter("prof_stage_recv_self_us_total"), Some(30));
        assert_eq!(m.counter("prof_stage_send_self_us_total"), Some(15));
        assert_eq!(m.counter("prof_stage_worker_self_us_total"), Some(5));
        assert_eq!(m.counter("prof_dropped_paths_total"), Some(0));
        // The folded file and the registry agree on the grand total.
        let folded_total: u64 = snap
            .to_folded()
            .lines()
            .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
            .sum();
        assert_eq!(Some(folded_total), m.counter("prof_self_us_total"));
    }

    #[test]
    fn lock_monitor_series_shape() {
        let reg = MetricsRegistry::new();
        let m = LockMonitor::new(&reg, "lock_cache_shard");
        m.record_uncontended();
        m.record_uncontended();
        m.record_contended(120);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("lock_cache_shard_acquisitions_total"), Some(3));
        assert_eq!(snap.counter("lock_cache_shard_contended_total"), Some(1));
        let h = snap.histogram("lock_cache_shard_wait_us").unwrap();
        assert_eq!((h.count, h.sum), (1, 120));
    }
}
