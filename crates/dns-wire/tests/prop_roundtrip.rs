//! Property-based round-trip tests for the wire format.

use dns_wire::{
    EcsOption, Flags, Message, Name, Opcode, Question, Rcode, Rdata, Record, RecordClass,
    RecordType, SoaData,
};
use proptest::prelude::*;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

fn arb_label() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z0-9]([a-z0-9-]{0,14}[a-z0-9])?").unwrap()
}

fn arb_name() -> impl Strategy<Value = Name> {
    proptest::collection::vec(arb_label(), 0..6)
        .prop_map(|labels| Name::from_ascii(&labels.join(".")).unwrap())
}

fn arb_v4() -> impl Strategy<Value = Ipv4Addr> {
    any::<u32>().prop_map(Ipv4Addr::from)
}

fn arb_v6() -> impl Strategy<Value = Ipv6Addr> {
    any::<u128>().prop_map(Ipv6Addr::from)
}

fn arb_ecs() -> impl Strategy<Value = EcsOption> {
    prop_oneof![
        (arb_v4(), 0u8..=32, 0u8..=32)
            .prop_map(|(a, s, sc)| EcsOption::from_v4(a, s).with_scope(sc)),
        (arb_v6(), 0u8..=128, 0u8..=128)
            .prop_map(|(a, s, sc)| EcsOption::from_v6(a, s).with_scope(sc)),
    ]
}

fn arb_rdata() -> impl Strategy<Value = Rdata> {
    prop_oneof![
        arb_v4().prop_map(Rdata::A),
        arb_v6().prop_map(Rdata::Aaaa),
        arb_name().prop_map(Rdata::Cname),
        arb_name().prop_map(Rdata::Ns),
        arb_name().prop_map(Rdata::Ptr),
        proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..40), 0..3)
            .prop_map(Rdata::Txt),
        (arb_name(), arb_name(), any::<u32>(), any::<u32>()).prop_map(|(m, r, serial, t)| {
            Rdata::Soa(SoaData {
                mname: m,
                rname: r,
                serial,
                refresh: t,
                retry: t / 2,
                expire: t.wrapping_mul(2),
                minimum: 300,
            })
        }),
        (256u16..400, proptest::collection::vec(any::<u8>(), 0..32))
            .prop_map(|(rtype, data)| Rdata::Unknown { rtype, data }),
    ]
}

fn arb_record() -> impl Strategy<Value = Record> {
    (arb_name(), 0u32..1_000_000, arb_rdata()).prop_map(|(n, ttl, rd)| Record::new(n, ttl, rd))
}

fn arb_message() -> impl Strategy<Value = Message> {
    (
        any::<u16>(),
        arb_name(),
        prop_oneof![
            Just(RecordType::A),
            Just(RecordType::Aaaa),
            Just(RecordType::Txt)
        ],
        proptest::collection::vec(arb_record(), 0..5),
        proptest::collection::vec(arb_record(), 0..3),
        proptest::option::of(arb_ecs()),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(id, qname, qtype, answers, auths, ecs, qr, aa)| {
            let mut m = Message::query(id, Question::new(qname, qtype, RecordClass::In));
            m.flags = Flags {
                qr,
                aa,
                rd: true,
                ra: qr,
                ..Flags::default()
            };
            m.opcode = Opcode::Query;
            m.rcode = Rcode::NoError;
            m.answers = answers;
            m.authorities = auths;
            if let Some(e) = ecs {
                m.set_ecs(e);
            }
            m
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn name_roundtrips(name in arb_name()) {
        let mut w = dns_wire::wire::WireWriter::new();
        name.write(&mut w).unwrap();
        let bytes = w.finish().unwrap();
        let mut r = dns_wire::wire::WireReader::new(&bytes);
        prop_assert_eq!(Name::read(&mut r).unwrap(), name);
    }

    #[test]
    fn ecs_option_roundtrips(ecs in arb_ecs()) {
        let wire = ecs.to_wire().unwrap();
        let back = EcsOption::from_wire(&wire).unwrap();
        prop_assert_eq!(back, ecs);
    }

    #[test]
    fn ecs_address_is_always_masked(addr in arb_v4(), len in 0u8..=32) {
        let ecs = EcsOption::from_v4(addr, len);
        let masked = dns_wire::prefix::mask_addr(IpAddr::V4(addr), len);
        prop_assert_eq!(ecs.addr(), masked);
        // Wire form never carries more octets than the prefix needs.
        let wire = ecs.to_wire().unwrap();
        prop_assert_eq!(wire.len(), 4 + (len as usize).div_ceil(8));
    }

    #[test]
    fn message_roundtrips(msg in arb_message()) {
        let bytes = msg.to_bytes().unwrap();
        let back = Message::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, msg);
    }

    #[test]
    fn parser_never_panics_on_noise(data in proptest::collection::vec(any::<u8>(), 0..600)) {
        // Any input must either parse or fail cleanly; reserialization of a
        // successful parse must parse again to the same message.
        if let Ok(m) = Message::from_bytes(&data) {
            if let Ok(bytes) = m.to_bytes() {
                let again = Message::from_bytes(&bytes).unwrap();
                prop_assert_eq!(again, m);
            }
        }
    }

    #[test]
    fn truncating_any_valid_message_fails_cleanly(msg in arb_message(), cut in 0usize..100) {
        let bytes = msg.to_bytes().unwrap();
        if cut < bytes.len() {
            let _ = Message::from_bytes(&bytes[..bytes.len() - cut - 1]);
            // No panic is the property.
        }
    }

    #[test]
    fn prefix_truncate_is_monotone(addr in arb_v4(), a in 0u8..=32, b in 0u8..=32) {
        let p = dns_wire::IpPrefix::v4(addr, a).unwrap();
        let t = p.truncate(b);
        prop_assert!(t.len() <= p.len());
        prop_assert!(t.covers(&p));
    }

    #[test]
    fn prefix_contains_its_own_addresses(addr in arb_v4(), len in 0u8..=32, other in arb_v4()) {
        let p = dns_wire::IpPrefix::v4(addr, len).unwrap();
        prop_assert!(p.contains(IpAddr::V4(addr)));
        // Containment agrees with leading-bit equality.
        if len > 0 && len < 32 {
            let lhs = u32::from(addr) >> (32 - len);
            let rhs = u32::from(other) >> (32 - len);
            prop_assert_eq!(p.contains(IpAddr::V4(other)), lhs == rhs);
        }
    }
}
