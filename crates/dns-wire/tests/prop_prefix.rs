//! Properties of the RFC 7871 scope/source prefix arithmetic: masking is
//! idempotent and order-insensitive, `/0` and `/32`–`/128` behave at the
//! extremes, truncation only shortens, containment agrees with covering,
//! and the ECS option survives a wire round-trip at every legal length.
//!
//! CI runs this file with `PROPTEST_CASES=1024` for a deeper sweep; the
//! in-tree default keeps `cargo test` fast.

use dns_wire::prefix::mask_addr;
use dns_wire::{AddressFamily, EcsOption, IpPrefix};
use proptest::prelude::*;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

fn arb_v4() -> impl Strategy<Value = Ipv4Addr> {
    any::<u32>().prop_map(Ipv4Addr::from)
}

fn arb_v6() -> impl Strategy<Value = Ipv6Addr> {
    any::<u128>().prop_map(Ipv6Addr::from)
}

fn arb_addr() -> impl Strategy<Value = (IpAddr, u8)> {
    prop_oneof![
        (arb_v4(), 0u8..=32).prop_map(|(a, l)| (IpAddr::V4(a), l)),
        (arb_v6(), 0u8..=128).prop_map(|(a, l)| (IpAddr::V6(a), l)),
    ]
}

fn arb_ecs() -> impl Strategy<Value = EcsOption> {
    (arb_addr(), any::<u8>()).prop_map(|((addr, len), scope)| {
        // with_scope clamps to the family maximum itself.
        EcsOption::new(addr, len).with_scope(scope)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn masking_is_idempotent(input in arb_addr()) {
        let (addr, len) = input;
        let once = mask_addr(addr, len);
        prop_assert_eq!(mask_addr(once, len), once);
        // The prefix constructor applies exactly this mask.
        let p = IpPrefix::new(addr, len).unwrap();
        prop_assert_eq!(p.addr(), once);
        prop_assert_eq!(p.len(), len);
        // A masked address is inside its own prefix.
        prop_assert!(p.contains(addr));
    }

    #[test]
    fn shorter_masks_absorb_longer_ones(input in arb_addr(), shorter in 0u8..=128) {
        let (addr, len) = input;
        let shorter = shorter.min(len);
        // Masking to `len` first changes nothing about a subsequent
        // shorter mask: mask_s ∘ mask_l = mask_s for s ≤ l.
        prop_assert_eq!(
            mask_addr(mask_addr(addr, len), shorter),
            mask_addr(addr, shorter)
        );
    }

    #[test]
    fn zero_length_prefix_is_default_route(input in arb_addr(), input2 in arb_addr()) {
        let ((addr, _), (other, _)) = (input, input2);
        let p = IpPrefix::new(addr, 0).unwrap();
        prop_assert!(p.is_default_route());
        // /0 zeroes the whole address...
        let expected = match addr {
            IpAddr::V4(_) => IpAddr::V4(Ipv4Addr::UNSPECIFIED),
            IpAddr::V6(_) => IpAddr::V6(Ipv6Addr::UNSPECIFIED),
        };
        prop_assert_eq!(p.addr(), expected);
        prop_assert_eq!(p.wire_octets(), 0);
        // ...and contains every address of its family, none of the other.
        let same_family = matches!(
            (addr, other),
            (IpAddr::V4(_), IpAddr::V4(_)) | (IpAddr::V6(_), IpAddr::V6(_))
        );
        prop_assert_eq!(p.contains(other), same_family);
    }

    #[test]
    fn host_prefix_contains_exactly_itself(a in arb_v4()) {
        let p = IpPrefix::v4(a, 32).unwrap();
        prop_assert_eq!(p.addr(), IpAddr::V4(a));
        prop_assert!(p.contains(IpAddr::V4(a)));
        // Flipping any single bit leaves the /32.
        for bit in 0..32u32 {
            let flipped = Ipv4Addr::from(u32::from(a) ^ (1 << bit));
            prop_assert!(!p.contains(IpAddr::V4(flipped)));
        }
        prop_assert_eq!(p, IpPrefix::host(IpAddr::V4(a)));
    }

    #[test]
    fn family_length_limits_enforced(a in arb_v4(), b in arb_v6(), over in 1u8..=100) {
        prop_assert!(IpPrefix::v4(a, 32u8.saturating_add(over)).is_err());
        prop_assert!(IpPrefix::v6(b, 128u8.saturating_add(over)).is_err());
        prop_assert!(IpPrefix::v4(a, over.min(32)).is_ok());
        prop_assert!(IpPrefix::v6(b, over.min(128)).is_ok());
    }

    #[test]
    fn truncate_only_shortens(input in arb_addr(), to in 0u8..=128) {
        let (addr, len) = input;
        let p = IpPrefix::new(addr, len).unwrap();
        let t = p.truncate(to);
        prop_assert_eq!(t.len(), len.min(to));
        // Truncation never lengthens and the result covers the original.
        prop_assert!(t.len() <= p.len());
        prop_assert!(t.covers(&p));
        prop_assert!(t.contains(p.addr()));
        // Truncating to the same or longer length is the identity.
        prop_assert_eq!(p.truncate(p.len()), p);
        prop_assert_eq!(p.truncate(p.family_bits()), p);
    }

    #[test]
    fn covers_agrees_with_contains(input in arb_addr(), sub_extra in 0u8..=32) {
        let (addr, len) = input;
        let p = IpPrefix::new(addr, len).unwrap();
        let sub_len = (len as u16 + sub_extra as u16).min(p.family_bits() as u16) as u8;
        let sub = IpPrefix::new(addr, sub_len).unwrap();
        // A prefix covers every extension of itself built on the same bits.
        prop_assert!(p.covers(&sub));
        prop_assert!(p.contains(sub.addr()));
        // covers is reflexive and antisymmetric up to equality.
        prop_assert!(p.covers(&p));
        if sub.covers(&p) {
            prop_assert_eq!(p, sub);
        }
    }

    #[test]
    fn wire_encoding_matches_length(input in arb_addr()) {
        let (addr, len) = input;
        let p = IpPrefix::new(addr, len).unwrap();
        prop_assert_eq!(p.wire_octets(), (len as usize).div_ceil(8));
        let bytes = p.wire_bytes();
        prop_assert_eq!(bytes.len(), p.wire_octets());
        // RFC 7871 §6: trailing bits beyond the prefix length are zero.
        if len % 8 != 0 {
            let last = *bytes.last().unwrap();
            prop_assert_eq!(last & (0xFFu8 >> (len % 8)), 0);
        }
    }

    #[test]
    fn ecs_option_round_trips_on_the_wire(opt in arb_ecs()) {
        let wire = opt.to_wire().unwrap();
        let back = EcsOption::from_wire(&wire).unwrap();
        prop_assert_eq!(back.family(), opt.family());
        prop_assert_eq!(back.source_prefix_len(), opt.source_prefix_len());
        prop_assert_eq!(back.scope_prefix_len(), opt.scope_prefix_len());
        prop_assert_eq!(back.addr(), opt.addr());
        prop_assert_eq!(back, opt);
        // Round-tripping again is a fixpoint.
        prop_assert_eq!(back.to_wire().unwrap(), wire);
    }

    #[test]
    fn ecs_new_truncates_and_clamps(input in arb_addr(), scope in any::<u8>()) {
        let (addr, len) = input;
        let opt = EcsOption::new(addr, len);
        // The stored address is the masked prefix, never the raw client.
        prop_assert_eq!(opt.addr(), mask_addr(addr, len));
        prop_assert_eq!(opt.source_prefix_len(), len);
        prop_assert_eq!(opt.scope_prefix_len(), 0);
        let max = opt.family().max_prefix_len();
        let scoped = opt.with_scope(scope);
        prop_assert_eq!(scoped.scope_prefix_len(), scope.min(max));
        // scope_prefix never exceeds the source prefix's information.
        prop_assert!(scoped.scope_prefix().len() <= scoped.source_prefix_len().max(scoped.scope_prefix_len()));
        let family_ok = match opt.family() {
            AddressFamily::V4 => opt.source_prefix().is_v4(),
            AddressFamily::V6 => !opt.source_prefix().is_v4(),
        };
        prop_assert!(family_ok);
    }
}
