//! Trace-driven cache simulation (§7).
//!
//! Replays a [`TraceSet`] twice — once ignoring ECS (any cached answer
//! serves any client, as a pre-ECS resolver would) and once obeying the
//! source/scope prefixes from the trace — and reports, per resolver, the
//! peak cache size in each mode (the *blow-up factor* is their ratio,
//! Figure 1/2) and the hit rates (Figure 3).
//!
//! The simulation follows the paper's assumptions: resolvers honor
//! authoritative TTLs exactly and never evict early.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::net::IpAddr;

use dns_wire::{IpPrefix, Name, RecordType};
use netsim::SimTime;
use workload::{TraceRecord, TraceSet};

/// Configuration for one simulation run.
#[derive(Debug, Clone)]
pub struct CacheSimConfig {
    /// Override every record's TTL (Figure 1 sweeps 20/40/60 s). `None`
    /// keeps trace TTLs.
    pub ttl_override: Option<u32>,
    /// Keep only records whose client passes this percentage-based sample
    /// (hash of client address + `sample_seed`, kept if `< sample_pct`).
    /// 100 keeps everything. Records without a client are always kept.
    pub sample_pct: u8,
    /// Seed for the client sample hash.
    pub sample_seed: u64,
}

impl Default for CacheSimConfig {
    fn default() -> Self {
        CacheSimConfig {
            ttl_override: None,
            sample_pct: 100,
            sample_seed: 0,
        }
    }
}

/// Per-resolver outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct ResolverCacheResult {
    /// The resolver.
    pub resolver: IpAddr,
    /// Peak live entries obeying ECS.
    pub max_size_ecs: usize,
    /// Peak live entries ignoring ECS.
    pub max_size_no_ecs: usize,
    /// Hits/lookups obeying ECS.
    pub hits_ecs: u64,
    /// Hits/lookups ignoring ECS.
    pub hits_no_ecs: u64,
    /// Total lookups (same in both modes).
    pub lookups: u64,
}

impl ResolverCacheResult {
    /// `max_size_ecs / max_size_no_ecs` (the Figure-1 metric). 1.0 when the
    /// denominator is zero.
    pub fn blowup_factor(&self) -> f64 {
        if self.max_size_no_ecs == 0 {
            1.0
        } else {
            self.max_size_ecs as f64 / self.max_size_no_ecs as f64
        }
    }

    /// Hit rate obeying ECS.
    pub fn hit_rate_ecs(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits_ecs as f64 / self.lookups as f64
        }
    }

    /// Hit rate ignoring ECS.
    pub fn hit_rate_no_ecs(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits_no_ecs as f64 / self.lookups as f64
        }
    }
}

/// Whole-trace outcome.
#[derive(Debug, Clone)]
pub struct CacheSimResult {
    /// Per-resolver results, in resolver-address order.
    pub per_resolver: Vec<ResolverCacheResult>,
}

impl CacheSimResult {
    /// All blow-up factors.
    pub fn blowup_factors(&self) -> Vec<f64> {
        self.per_resolver.iter().map(|r| r.blowup_factor()).collect()
    }

    /// Aggregate hit rate obeying ECS.
    pub fn overall_hit_rate_ecs(&self) -> f64 {
        let (h, l) = self
            .per_resolver
            .iter()
            .fold((0u64, 0u64), |(h, l), r| (h + r.hits_ecs, l + r.lookups));
        if l == 0 {
            0.0
        } else {
            h as f64 / l as f64
        }
    }

    /// Aggregate hit rate ignoring ECS.
    pub fn overall_hit_rate_no_ecs(&self) -> f64 {
        let (h, l) = self
            .per_resolver
            .iter()
            .fold((0u64, 0u64), |(h, l), r| (h + r.hits_no_ecs, l + r.lookups));
        if l == 0 {
            0.0
        } else {
            h as f64 / l as f64
        }
    }
}

/// Interned cache key: (resolver id, name id, qtype).
type Key = (u32, u32, RecordType);
/// One live entry: scope prefix (None for non-ECS answers) and expiry.
type LiveEntry = (Option<IpPrefix>, SimTime);

/// Interned-key cache state for one mode.
struct ModeState {
    /// Key → live entries.
    entries: HashMap<Key, Vec<LiveEntry>>,
    /// Expiry heap: (expiry, key). A key may appear multiple times.
    heap: BinaryHeap<Reverse<(SimTime, Key)>>,
    live: usize,
    max_live_per_resolver: HashMap<u32, usize>,
    live_per_resolver: HashMap<u32, usize>,
    hits: HashMap<u32, u64>,
}

impl ModeState {
    fn new() -> Self {
        ModeState {
            entries: HashMap::new(),
            heap: BinaryHeap::new(),
            live: 0,
            max_live_per_resolver: HashMap::new(),
            live_per_resolver: HashMap::new(),
            hits: HashMap::new(),
        }
    }

    fn purge(&mut self, now: SimTime) {
        while let Some(Reverse((exp, key))) = self.heap.peek().copied() {
            if exp > now {
                break;
            }
            self.heap.pop();
            if let Some(list) = self.entries.get_mut(&key) {
                let before = list.len();
                list.retain(|(_, e)| *e > now);
                let removed = before - list.len();
                if removed > 0 {
                    self.live -= removed;
                    *self.live_per_resolver.entry(key.0).or_default() -= removed;
                }
                if list.is_empty() {
                    self.entries.remove(&key);
                }
            }
        }
    }

    /// Returns true on hit.
    fn lookup(&mut self, key: Key, source: Option<&IpPrefix>, now: SimTime) -> bool {
        let hit = self
            .entries
            .get(&key)
            .map(|list| {
                list.iter().any(|(scope, exp)| {
                    *exp > now
                        && match (scope, source) {
                            (None, _) => true, // non-ECS entry serves all
                            (Some(p), Some(s)) => {
                                p.is_default_route() || p.covers(s)
                            }
                            (Some(p), None) => p.is_default_route(),
                        }
                })
            })
            .unwrap_or(false);
        if hit {
            *self.hits.entry(key.0).or_default() += 1;
        }
        hit
    }

    fn insert(&mut self, key: Key, scope: Option<IpPrefix>, expiry: SimTime) {
        let list = self.entries.entry(key).or_default();
        list.push((scope, expiry));
        self.heap.push(Reverse((expiry, key)));
        self.live += 1;
        let lr = self.live_per_resolver.entry(key.0).or_default();
        *lr += 1;
        let mx = self.max_live_per_resolver.entry(key.0).or_default();
        *mx = (*mx).max(*lr);
    }
}

/// The simulator.
pub struct CacheSimulator {
    config: CacheSimConfig,
}

impl CacheSimulator {
    /// Creates a simulator.
    pub fn new(config: CacheSimConfig) -> Self {
        CacheSimulator { config }
    }

    /// Runs both modes over the trace.
    pub fn run(&self, trace: &TraceSet) -> CacheSimResult {
        let mut name_ids: HashMap<Name, u32> = HashMap::new();
        let mut resolver_ids: HashMap<IpAddr, u32> = HashMap::new();
        let mut resolvers: Vec<IpAddr> = Vec::new();

        let mut ecs_mode = ModeState::new();
        let mut plain_mode = ModeState::new();
        let mut lookups: HashMap<u32, u64> = HashMap::new();

        for rec in &trace.records {
            if !self.keep(rec) {
                continue;
            }
            let rid = *resolver_ids.entry(rec.resolver).or_insert_with(|| {
                resolvers.push(rec.resolver);
                (resolvers.len() - 1) as u32
            });
            let next_name_id = name_ids.len() as u32;
            let nid = *name_ids.entry(rec.qname.clone()).or_insert(next_name_id);
            let key = (rid, nid, rec.qtype);
            let now = SimTime::from_micros(rec.at_micros);
            let ttl = self.config.ttl_override.unwrap_or(rec.ttl);
            let expiry = now + netsim::SimDuration::from_secs(ttl as u64);

            *lookups.entry(rid).or_default() += 1;

            // Plain mode: ECS ignored entirely.
            plain_mode.purge(now);
            if !plain_mode.lookup(key, None, now) {
                plain_mode.insert(key, None, expiry);
            }

            // ECS mode: obey source/scope from the trace.
            ecs_mode.purge(now);
            let source = rec.ecs_source;
            if !ecs_mode.lookup(key, source.as_ref(), now) {
                let entry_prefix = match (source, rec.response_scope) {
                    (Some(src), Some(scope)) => Some(src.truncate(scope.min(src.len()))),
                    (Some(src), None) => {
                        // Query carried ECS, response did not: cacheable for
                        // everyone per RFC 7871 §7.3.
                        let _ = src;
                        None
                    }
                    (None, _) => None,
                };
                ecs_mode.insert(key, entry_prefix, expiry);
            }
        }

        let mut per_resolver: Vec<ResolverCacheResult> = resolvers
            .iter()
            .enumerate()
            .map(|(i, addr)| {
                let rid = i as u32;
                ResolverCacheResult {
                    resolver: *addr,
                    max_size_ecs: ecs_mode
                        .max_live_per_resolver
                        .get(&rid)
                        .copied()
                        .unwrap_or(0),
                    max_size_no_ecs: plain_mode
                        .max_live_per_resolver
                        .get(&rid)
                        .copied()
                        .unwrap_or(0),
                    hits_ecs: ecs_mode.hits.get(&rid).copied().unwrap_or(0),
                    hits_no_ecs: plain_mode.hits.get(&rid).copied().unwrap_or(0),
                    lookups: lookups.get(&rid).copied().unwrap_or(0),
                }
            })
            .collect();
        per_resolver.sort_by_key(|r| r.resolver);
        CacheSimResult { per_resolver }
    }

    fn keep(&self, rec: &TraceRecord) -> bool {
        if self.config.sample_pct >= 100 {
            return true;
        }
        match rec.client {
            None => true,
            Some(client) => {
                use std::hash::{Hash, Hasher};
                let mut h = std::collections::hash_map::DefaultHasher::new();
                client.hash(&mut h);
                self.config.sample_seed.hash(&mut h);
                (h.finish() % 100) < self.config.sample_pct as u64
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn name(s: &str) -> Name {
        Name::from_ascii(s).unwrap()
    }

    fn prefix(s: &str, len: u8) -> IpPrefix {
        IpPrefix::v4(s.parse().unwrap(), len).unwrap()
    }

    fn rec(
        at_secs: u64,
        name_s: &str,
        subnet: &str,
        scope: u8,
        ttl: u32,
    ) -> TraceRecord {
        TraceRecord {
            at_micros: at_secs * 1_000_000,
            resolver: IpAddr::V4(Ipv4Addr::new(9, 9, 9, 9)),
            qname: name(name_s),
            qtype: RecordType::A,
            ecs_source: Some(prefix(subnet, 24)),
            response_scope: Some(scope),
            ttl,
            client: Some(IpAddr::V4(subnet.parse().unwrap())),
        }
    }

    fn run(records: Vec<TraceRecord>) -> CacheSimResult {
        let mut t = TraceSet::new("t");
        t.records = records;
        t.sort_by_time();
        CacheSimulator::new(CacheSimConfig::default()).run(&t)
    }

    #[test]
    fn ecs_splits_cache_by_subnet() {
        // Three subnets query the same name within one TTL window.
        let r = run(vec![
            rec(0, "a.example.com", "10.1.1.0", 24, 60),
            rec(1, "a.example.com", "10.1.2.0", 24, 60),
            rec(2, "a.example.com", "10.1.3.0", 24, 60),
        ]);
        let res = &r.per_resolver[0];
        assert_eq!(res.max_size_no_ecs, 1);
        assert_eq!(res.max_size_ecs, 3);
        assert!((res.blowup_factor() - 3.0).abs() < 1e-9);
        // Plain mode: 2 hits; ECS mode: 0 hits.
        assert_eq!(res.hits_no_ecs, 2);
        assert_eq!(res.hits_ecs, 0);
        assert_eq!(res.lookups, 3);
    }

    #[test]
    fn coarse_scope_shares_across_subnets() {
        // Scope 16: both /24s in the same /16 share the entry.
        let r = run(vec![
            rec(0, "a.example.com", "10.1.1.0", 16, 60),
            rec(1, "a.example.com", "10.1.2.0", 16, 60),
        ]);
        let res = &r.per_resolver[0];
        assert_eq!(res.max_size_ecs, 1);
        assert_eq!(res.hits_ecs, 1);
    }

    #[test]
    fn entries_expire_and_shrink_peak() {
        // Second query arrives after the first expired: no concurrency.
        let r = run(vec![
            rec(0, "a.example.com", "10.1.1.0", 24, 20),
            rec(30, "a.example.com", "10.1.2.0", 24, 20),
        ]);
        let res = &r.per_resolver[0];
        assert_eq!(res.max_size_ecs, 1);
        assert_eq!(res.max_size_no_ecs, 1);
        assert_eq!(res.hits_ecs, 0);
        assert_eq!(res.hits_no_ecs, 0);
    }

    #[test]
    fn ttl_override_changes_concurrency() {
        let records = vec![
            rec(0, "a.example.com", "10.1.1.0", 24, 20),
            rec(30, "a.example.com", "10.1.2.0", 24, 20),
        ];
        let mut t = TraceSet::new("t");
        t.records = records;
        let r = CacheSimulator::new(CacheSimConfig {
            ttl_override: Some(60),
            ..CacheSimConfig::default()
        })
        .run(&t);
        // With 60s TTL the two entries now overlap.
        assert_eq!(r.per_resolver[0].max_size_ecs, 2);
    }

    #[test]
    fn same_subnet_hits_in_both_modes() {
        let r = run(vec![
            rec(0, "a.example.com", "10.1.1.0", 24, 60),
            rec(5, "a.example.com", "10.1.1.0", 24, 60),
        ]);
        let res = &r.per_resolver[0];
        assert_eq!(res.hits_ecs, 1);
        assert_eq!(res.hits_no_ecs, 1);
        assert_eq!(res.max_size_ecs, 1);
    }

    #[test]
    fn distinct_names_never_share() {
        let r = run(vec![
            rec(0, "a.example.com", "10.1.1.0", 24, 60),
            rec(1, "b.example.com", "10.1.1.0", 24, 60),
        ]);
        let res = &r.per_resolver[0];
        assert_eq!(res.max_size_ecs, 2);
        assert_eq!(res.max_size_no_ecs, 2);
    }

    #[test]
    fn non_ecs_records_shared_in_ecs_mode() {
        let mut a = rec(0, "a.example.com", "10.1.1.0", 24, 60);
        a.ecs_source = None;
        a.response_scope = None;
        let mut b = rec(1, "a.example.com", "10.1.2.0", 24, 60);
        b.ecs_source = None;
        b.response_scope = None;
        let r = run(vec![a, b]);
        let res = &r.per_resolver[0];
        assert_eq!(res.max_size_ecs, 1);
        assert_eq!(res.hits_ecs, 1);
    }

    #[test]
    fn client_sampling_filters() {
        let records: Vec<TraceRecord> = (0..100)
            .map(|i| rec(i, "a.example.com", &format!("10.1.{}.0", i % 250), 24, 60))
            .collect();
        let mut t = TraceSet::new("t");
        t.records = records;
        let full = CacheSimulator::new(CacheSimConfig::default()).run(&t);
        let half = CacheSimulator::new(CacheSimConfig {
            sample_pct: 50,
            ..CacheSimConfig::default()
        })
        .run(&t);
        let full_lookups = full.per_resolver[0].lookups;
        let half_lookups = half.per_resolver[0].lookups;
        assert_eq!(full_lookups, 100);
        assert!(half_lookups < 75 && half_lookups > 25, "{half_lookups}");
    }

    #[test]
    fn multiple_resolvers_tracked_separately() {
        let mut a = rec(0, "a.example.com", "10.1.1.0", 24, 60);
        let mut b = rec(1, "a.example.com", "10.1.2.0", 24, 60);
        a.resolver = IpAddr::V4(Ipv4Addr::new(1, 1, 1, 1));
        b.resolver = IpAddr::V4(Ipv4Addr::new(2, 2, 2, 2));
        let r = run(vec![a, b]);
        assert_eq!(r.per_resolver.len(), 2);
        assert!(r.per_resolver.iter().all(|res| res.max_size_ecs == 1));
    }

    #[test]
    fn blowup_factor_of_empty_resolver_is_one() {
        let res = ResolverCacheResult {
            resolver: IpAddr::V4(Ipv4Addr::new(1, 1, 1, 1)),
            max_size_ecs: 0,
            max_size_no_ecs: 0,
            hits_ecs: 0,
            hits_no_ecs: 0,
            lookups: 0,
        };
        assert_eq!(res.blowup_factor(), 1.0);
        assert_eq!(res.hit_rate_ecs(), 0.0);
    }
}
