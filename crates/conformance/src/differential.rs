//! Engine-vs-dnsd differential run.
//!
//! The same seeded workload is played twice through identically configured
//! resolvers: once with the in-process [`authoritative::AuthServer`] as the
//! upstream, once through [`dnsd::SocketUpstream`] against a live
//! [`dnsd::UdpAuthServer`] on loopback serving an identical zone. Both
//! sides share the virtual-clock axis (each query carries its own
//! `SimTime`), so answers, cache behaviour, and metrics must agree — up to
//! a fixed whitelist of transport-timing series that legitimately drift
//! when a real datagram is lost or delayed.

use std::io;
use std::net::{IpAddr, Ipv4Addr};
use std::time::Duration;

use authoritative::{AuthServer, EcsHandling, ScopePolicy, Zone};
use dns_wire::{Message, Name, Question};
use dnsd::{SocketUpstream, TcpAuthServer, UdpAuthServer};
use netsim::SimTime;
use obs::MetricsSnapshot;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use resolver::{
    CacheStats, Resolver, ResolverConfig, ResolverStats, Transport, TransportPolicy, Upstream,
};

use crate::report::{DifferentialReport, MetricDelta};

/// Zone apex served on both sides.
pub const DIFF_APEX: &str = "diff.test";
/// Distinct hostnames in the zone/workload.
pub const DIFF_NAMES: usize = 150;
/// Record TTL — the ~370 s workload span re-expires each name ~6 times.
pub const DIFF_TTL: u32 = 60;
/// Default workload size (the acceptance floor).
pub const DIFF_QUERIES: usize = 10_000;

/// Metric series allowed to differ between the in-process and socket runs.
///
/// Everything here is downstream of real-transport timing: a lost loopback
/// datagram triggers retry → timeout counters → RFC 7871 §7.1.3 ECS
/// withdrawal → changed upstream/cache traffic. `cache_*` covers every
/// cache series for the same reason (a withdrawal changes the scope the
/// answer is cached under). Client-facing series — `resolver_client_
/// queries_total`, `resolver_servfail_responses_total`, shed/coalesced/
/// stale counters — are deliberately NOT whitelisted: those must match no
/// matter what the transport does.
pub const METRIC_WHITELIST: &[&str] = &[
    "resolver_retries_total",
    "resolver_upstream_timeouts_total",
    "resolver_ecs_withdrawals_total",
    "resolver_upstream_queries_total",
    "resolver_upstream_ecs_queries_total",
    "resolver_tcp_fallbacks_total",
    "resolver_transport_fallbacks_*",
    "resolver_query_latency_us",
    "cache_*",
];

/// True when `series` falls under [`METRIC_WHITELIST`] (exact match, or a
/// `prefix_*` glob entry).
pub fn is_whitelisted(series: &str) -> bool {
    METRIC_WHITELIST.iter().any(|w| match w.strip_suffix('*') {
        Some(prefix) => series.starts_with(prefix),
        None => *w == series,
    })
}

/// One client query of the seeded workload.
#[derive(Debug, Clone)]
pub struct WorkloadQuery {
    /// Virtual arrival time.
    pub at: SimTime,
    /// Queried hostname.
    pub name: Name,
    /// Client source address.
    pub client: IpAddr,
}

/// The identical zone both sides serve.
pub fn diff_zone() -> Zone {
    let apex = Name::from_ascii(DIFF_APEX).expect("static apex is valid");
    let mut zone = Zone::new(apex);
    for i in 0..DIFF_NAMES {
        let n = Name::from_ascii(&format!("site{i}.{DIFF_APEX}")).expect("static name is valid");
        let addr = crate::scenario::edge_addr_for(&n);
        zone.add_a(n, DIFF_TTL, addr)
            .expect("fresh names never conflict");
    }
    zone
}

fn diff_auth() -> AuthServer {
    AuthServer::new(diff_zone(), EcsHandling::open(ScopePolicy::MatchSource))
}

fn diff_config() -> ResolverConfig {
    ResolverConfig::rfc_compliant(IpAddr::V4(Ipv4Addr::new(9, 9, 9, 9)))
}

/// Generates the seeded workload: `queries` lookups over the zone's names
/// from clients spread across `100.64.0.0/10`-adjacent routable space, one
/// query every 37 ms of virtual time.
pub fn seeded_workload(queries: usize, seed: u64) -> Vec<WorkloadQuery> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..queries)
        .map(|j| {
            let i: usize = rng.gen_range(0..DIFF_NAMES);
            let name =
                Name::from_ascii(&format!("site{i}.{DIFF_APEX}")).expect("static name is valid");
            let client = IpAddr::V4(Ipv4Addr::new(
                100,
                rng.gen_range(64u8..96),
                rng.gen_range(0u8..=255),
                rng.gen_range(1u8..=254),
            ));
            WorkloadQuery {
                at: SimTime::from_micros(j as u64 * 37_000),
                name,
                client,
            }
        })
        .collect()
}

/// Everything one side produced.
pub struct SideResult {
    /// Client-facing responses, wire-encoded, in workload order.
    pub responses: Vec<Vec<u8>>,
    /// Legacy stats snapshot.
    pub stats: ResolverStats,
    /// Cache stats snapshot.
    pub cache: CacheStats,
    /// Full metrics snapshot (resolver + cache registries).
    pub metrics: MetricsSnapshot,
}

fn run_side<U: Upstream>(workload: &[WorkloadQuery], upstream: &mut U) -> SideResult {
    run_side_with(workload, diff_config(), upstream)
}

fn run_side_with<U: Upstream>(
    workload: &[WorkloadQuery],
    config: ResolverConfig,
    upstream: &mut U,
) -> SideResult {
    let mut r = Resolver::new(config);
    let responses = workload
        .iter()
        .enumerate()
        .map(|(j, w)| {
            let q = Message::query(j as u16, Question::a(w.name.clone()));
            r.resolve_msg(&q, w.client, w.at, upstream)
                .to_bytes()
                .expect("responses we build always encode")
        })
        .collect();
    SideResult {
        responses,
        stats: r.stats(),
        cache: r.cache_stats(),
        metrics: r.metrics_snapshot(),
    }
}

/// Runs the workload against the in-process authoritative.
pub fn run_engine_side(workload: &[WorkloadQuery]) -> SideResult {
    let mut auth = diff_auth();
    run_side(workload, &mut auth)
}

/// The differential subject config pinned to one transport.
fn matrix_config(transport: Transport) -> ResolverConfig {
    ResolverConfig {
        transport: TransportPolicy::prefer(transport),
        ..diff_config()
    }
}

/// [`run_engine_side`] with the subject pinned to `transport`. The
/// in-process [`AuthServer`] answers stream transports through the default
/// [`Upstream::query_tcp`] mapping — the same messages, undegraded — which
/// is exactly the reference the socket side must match.
pub fn run_engine_side_matrix(workload: &[WorkloadQuery], transport: Transport) -> SideResult {
    let mut auth = diff_auth();
    run_side_with(workload, matrix_config(transport), &mut auth)
}

/// Runs the workload through real loopback sockets: a spawned
/// [`UdpAuthServer`] serving the same zone, queried via
/// [`SocketUpstream`].
pub fn run_socket_side(workload: &[WorkloadQuery]) -> io::Result<SideResult> {
    run_socket_side_with_workers(workload, 1)
}

/// [`run_socket_side`] with the authoritative served by a `workers`-wide
/// thread pool over one shared socket. The worker count must be
/// behaviour-invisible: the kernel hands each datagram to one worker, the
/// zone is immutable, and the server's metrics registry is shared — so
/// answers must stay byte-identical at any width.
pub fn run_socket_side_with_workers(
    workload: &[WorkloadQuery],
    workers: usize,
) -> io::Result<SideResult> {
    run_socket_side_matrix(workload, workers, Transport::Udp)
}

/// [`run_socket_side_with_workers`] with the subject pinned to
/// `transport`. The zone is served on *both* transports from one shared
/// [`authoritative::AuthServer`]: the UDP server owns it, and a
/// [`TcpAuthServer`] bound on its own port serves the same
/// `Arc`-shared state, with [`SocketUpstream::with_tcp_server`] routing
/// stream exchanges there. Answers must stay byte-identical to the
/// in-process engine side whichever transport carries them.
pub fn run_socket_side_matrix(
    workload: &[WorkloadQuery],
    workers: usize,
    transport: Transport,
) -> io::Result<SideResult> {
    let server = UdpAuthServer::bind("127.0.0.1:0", diff_auth())?.with_workers(workers);
    let addr = server.local_addr()?;
    let tcp = TcpAuthServer::bind("127.0.0.1:0", server.auth())?;
    let tcp_addr = tcp.local_addr()?;
    let tcp_handle = tcp.spawn();
    let handle = server.spawn();
    let mut up = SocketUpstream::new(addr)?
        .with_timeout(Duration::from_secs(2))
        .with_tcp_server(tcp_addr);
    let result = run_side_with(workload, matrix_config(transport), &mut up);
    handle.shutdown();
    tcp_handle.shutdown();
    Ok(result)
}

/// Diffs the two sides into a report.
pub fn compare_sides(engine: &SideResult, socket: &SideResult) -> DifferentialReport {
    assert_eq!(engine.responses.len(), socket.responses.len());
    let mismatched_answers = engine
        .responses
        .iter()
        .zip(&socket.responses)
        .filter(|(a, b)| a != b)
        .count();

    let mut series: Vec<&String> = engine
        .metrics
        .series
        .keys()
        .chain(socket.metrics.series.keys())
        .collect();
    series.sort();
    series.dedup();
    let deltas: Vec<MetricDelta> = series
        .into_iter()
        .filter_map(|name| {
            let e = engine.metrics.series.get(name);
            let s = socket.metrics.series.get(name);
            if e == s {
                return None;
            }
            let render = |v: Option<&obs::MetricValue>| match v {
                Some(v) => format!("{v:?}"),
                None => "absent".to_string(),
            };
            Some(MetricDelta {
                series: name.clone(),
                engine: render(e),
                socket: render(s),
                whitelisted: is_whitelisted(name),
            })
        })
        .collect();

    DifferentialReport {
        queries: engine.responses.len(),
        mismatched_answers,
        stats_equal: engine.stats == socket.stats,
        cache_equal: engine.cache == socket.cache,
        socket_timeouts: socket.stats.upstream_timeouts,
        whitelist: METRIC_WHITELIST.to_vec(),
        deltas,
    }
}

/// The full differential run: seeded workload through both sides.
pub fn run_differential(queries: usize, seed: u64) -> io::Result<DifferentialReport> {
    run_differential_with_workers(queries, seed, 1)
}

/// [`run_differential`] with a multi-worker dnsd on the socket side.
pub fn run_differential_with_workers(
    queries: usize,
    seed: u64,
    workers: usize,
) -> io::Result<DifferentialReport> {
    run_differential_matrix(queries, seed, workers, Transport::Udp)
}

/// The full workers × transport differential cell: seeded workload played
/// through the in-process engine and through real loopback sockets, both
/// pinned to `transport`.
pub fn run_differential_matrix(
    queries: usize,
    seed: u64,
    workers: usize,
    transport: Transport,
) -> io::Result<DifferentialReport> {
    let workload = seeded_workload(queries, seed);
    let engine = run_engine_side_matrix(&workload, transport);
    let socket = run_socket_side_matrix(&workload, workers, transport)?;
    Ok(compare_sides(&engine, &socket))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic_and_routable() {
        let a = seeded_workload(500, 7);
        let b = seeded_workload(500, 7);
        assert_eq!(a.len(), 500);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.at, y.at);
            assert_eq!(x.name, y.name);
            assert_eq!(x.client, y.client);
        }
        let c = seeded_workload(500, 8);
        assert!(a.iter().zip(&c).any(|(x, y)| x.client != y.client));
        // Clients stay in routable space (the resolver derives ECS from
        // them; non-routable sources would perturb the §6 oracles).
        for w in &a {
            let IpAddr::V4(v4) = w.client else {
                panic!("v4 workload")
            };
            assert!(!v4.is_private() && !v4.is_loopback());
        }
    }

    #[test]
    fn engine_side_is_reproducible() {
        let workload = seeded_workload(2_000, 42);
        let a = run_engine_side(&workload);
        let b = run_engine_side(&workload);
        assert_eq!(a.responses, b.responses);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.cache, b.cache);
        assert_eq!(a.metrics, b.metrics);
        // Self-diff is trivially clean.
        let d = compare_sides(&a, &b);
        assert!(d.pass());
        assert_eq!(d.mismatched_answers, 0);
        assert!(d.deltas.is_empty());
    }

    #[test]
    fn whitelist_globs_match_cache_series() {
        assert!(is_whitelisted("cache_hits_total"));
        assert!(is_whitelisted("resolver_retries_total"));
        assert!(is_whitelisted("resolver_transport_fallbacks_total"));
        assert!(is_whitelisted("resolver_transport_fallbacks_to_tcp_total"));
        assert!(!is_whitelisted("resolver_client_queries_total"));
        assert!(!is_whitelisted("resolver_servfail_responses_total"));
    }
}
