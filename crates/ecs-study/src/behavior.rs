//! Mapping from the workload crate's behaviour classes (the paper's
//! observed populations) to live [`ResolverConfig`]s.

use std::collections::HashSet;

use dns_wire::Name;
use netsim::SimDuration;
use resolver::{CacheCompliance, PrefixPolicy, ProbingStrategy, ResolverConfig};
use workload::{ComplianceClass, PrefixClass, ProbingClass, ResolverSpec};

/// Builds the resolver configuration that exhibits a spec's behaviour.
///
/// `probe_names` are the hostnames that hostname-probing and on-miss
/// resolvers single out (the paper observed each such resolver picking its
/// own small set; passing the workload's hottest names makes the behaviour
/// observable within a short trace).
pub fn resolver_config_for(spec: &ResolverSpec, probe_names: &[Name]) -> ResolverConfig {
    let mut config = ResolverConfig::rfc_compliant(spec.addr);

    config.prefix_policy = match spec.prefix {
        PrefixClass::Slash24 => PrefixPolicy::Truncate { v4: 24, v6: 56 },
        PrefixClass::Slash32Jammed => PrefixPolicy::JammedFull { jam: 0x01 },
        PrefixClass::Slash32Full => PrefixPolicy::Full,
        PrefixClass::Slash25 => PrefixPolicy::Truncate { v4: 25, v6: 56 },
        PrefixClass::Slash16 => PrefixPolicy::Truncate { v4: 16, v6: 48 },
        PrefixClass::Slash22 => PrefixPolicy::PassThrough { max_v4: 22 },
        PrefixClass::V6Slash56 => PrefixPolicy::Truncate { v4: 24, v6: 56 },
        PrefixClass::V6Slash48 => PrefixPolicy::Truncate { v4: 24, v6: 48 },
        PrefixClass::V6Slash128 => PrefixPolicy::Full,
    };

    config.probing = match spec.probing {
        ProbingClass::Always => ProbingStrategy::Always,
        ProbingClass::HostnameProbe => ProbingStrategy::HostnameProbe {
            hostnames: to_set(probe_names),
        },
        ProbingClass::IntervalLoopback => ProbingStrategy::IntervalProbe {
            period: SimDuration::from_secs(1800),
            use_own_address: false,
        },
        ProbingClass::OnMiss => ProbingStrategy::OnMiss {
            hostnames: to_set(probe_names),
        },
        ProbingClass::Mixed => ProbingStrategy::EveryKth { k: 3 },
    };

    config.compliance = match spec.compliance {
        ComplianceClass::Correct => CacheCompliance::Honor,
        ComplianceClass::IgnoresScope => CacheCompliance::IgnoreScope,
        ComplianceClass::AcceptsLong => CacheCompliance::Honor,
        ComplianceClass::Cap22 => CacheCompliance::CapPrefix(22),
        ComplianceClass::PrivateLeak => CacheCompliance::Honor,
    };

    match spec.compliance {
        ComplianceClass::AcceptsLong => {
            config.accept_client_ecs = true;
            config.prefix_policy = PrefixPolicy::PassThrough { max_v4: 32 };
        }
        ComplianceClass::Cap22 => {
            config.accept_client_ecs = true;
            config.prefix_policy = PrefixPolicy::PassThrough { max_v4: 22 };
        }
        ComplianceClass::PrivateLeak => {
            config.prefix_policy = PrefixPolicy::PrivateLeak;
            config.cache_zero_scope = false;
        }
        _ => {}
    }

    config
}

fn to_set(names: &[Name]) -> HashSet<Name> {
    names.iter().cloned().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{IpAddr, Ipv4Addr};

    fn spec(
        probing: ProbingClass,
        prefix: PrefixClass,
        compliance: ComplianceClass,
    ) -> ResolverSpec {
        ResolverSpec {
            addr: IpAddr::V4(Ipv4Addr::new(9, 9, 9, 9)),
            probing,
            prefix,
            compliance,
            dominant_as: false,
            whitelisted: false,
        }
    }

    #[test]
    fn always_slash24_correct() {
        let c = resolver_config_for(
            &spec(
                ProbingClass::Always,
                PrefixClass::Slash24,
                ComplianceClass::Correct,
            ),
            &[],
        );
        assert!(matches!(c.probing, ProbingStrategy::Always));
        assert!(matches!(
            c.prefix_policy,
            PrefixPolicy::Truncate { v4: 24, .. }
        ));
        assert_eq!(c.compliance, CacheCompliance::Honor);
    }

    #[test]
    fn compliance_overrides_prefix_policy() {
        let c = resolver_config_for(
            &spec(
                ProbingClass::Always,
                PrefixClass::Slash24,
                ComplianceClass::Cap22,
            ),
            &[],
        );
        assert!(matches!(
            c.prefix_policy,
            PrefixPolicy::PassThrough { max_v4: 22 }
        ));
        assert!(c.accept_client_ecs);
        let c = resolver_config_for(
            &spec(
                ProbingClass::Always,
                PrefixClass::Slash24,
                ComplianceClass::PrivateLeak,
            ),
            &[],
        );
        assert!(matches!(c.prefix_policy, PrefixPolicy::PrivateLeak));
        assert!(!c.cache_zero_scope);
    }

    #[test]
    fn probe_names_threaded_through() {
        let names = vec![Name::from_ascii("hot.example.com").unwrap()];
        let c = resolver_config_for(
            &spec(
                ProbingClass::HostnameProbe,
                PrefixClass::Slash24,
                ComplianceClass::Correct,
            ),
            &names,
        );
        match c.probing {
            ProbingStrategy::HostnameProbe { hostnames } => {
                assert!(hostnames.contains(&names[0]));
            }
            other => panic!("wrong strategy {other:?}"),
        }
    }
}
