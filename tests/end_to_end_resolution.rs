//! Cross-crate integration: full packet-level resolution paths through the
//! simulator, covering the chains the paper studies.

use std::net::{IpAddr, Ipv4Addr};
use std::sync::Arc;

use authoritative::{AuthServer, CdnBehavior, EcsHandling, GeoDb, ScopePolicy, Zone};
use dns_wire::{IpPrefix, Message, Name, Question};
use netsim::geo::city;
use netsim::{AddressBook, SimDuration, SimTime, Simulation};
use parking_lot::RwLock;
use resolver::actors::{
    AuthActor, ClientActor, EgressActor, FrontendActor, RelayActor, SharedBook,
};
use resolver::{Resolver, ResolverConfig};
use topology::{CdnFootprint, EdgeServerSpec};

fn name(s: &str) -> Name {
    Name::from_ascii(s).unwrap()
}

fn book() -> SharedBook {
    Arc::new(RwLock::new(AddressBook::new()))
}

/// A CDN authoritative whose edges cover the world; geodb knows the given
/// prefixes.
fn cdn_server(geo_entries: &[(IpPrefix, &str)]) -> (AuthServer, CdnFootprint) {
    let footprint = CdnFootprint {
        edges: netsim::geo::CITIES
            .iter()
            .enumerate()
            .map(|(i, c)| EdgeServerSpec {
                addr: IpAddr::V4(Ipv4Addr::new(203, 0, 113, i as u8 + 1)),
                pos: c.pos,
                city: c.name.to_string(),
            })
            .collect(),
    };
    let mut geodb = GeoDb::new();
    for (p, cname) in geo_entries {
        geodb.insert(*p, city(cname).unwrap().pos);
    }
    let server = AuthServer::new(
        Zone::new(name("cdn.example")),
        EcsHandling::open(ScopePolicy::MatchSource),
    )
    .with_cdn(CdnBehavior::cdn1(footprint.clone()), geodb);
    (server, footprint)
}

#[test]
fn whitelisted_vs_nonwhitelisted_resolvers_get_different_treatment() {
    // Two identical resolvers; the CDN whitelists only one. The whitelisted
    // one receives scoped ECS responses; the other sees no ECS at all.
    let whitelisted: IpAddr = "9.9.9.1".parse().unwrap();
    let plain: IpAddr = "9.9.9.2".parse().unwrap();
    let client: IpAddr = "100.70.1.7".parse().unwrap();

    let mut zone = Zone::new(name("cdn.example"));
    zone.add_a(name("www.cdn.example"), 20, Ipv4Addr::new(198, 51, 100, 1))
        .unwrap();
    let mut cdn = AuthServer::new(
        zone,
        EcsHandling::whitelisted(
            ScopePolicy::MatchSource,
            std::collections::HashSet::from([whitelisted]),
        ),
    );

    for (addr, expect_ecs) in [(whitelisted, true), (plain, false)] {
        let mut r = Resolver::new(ResolverConfig::rfc_compliant(addr));
        let q = Message::query(3, Question::a(name("www.cdn.example")));
        let resp = r.resolve_msg(&q, client, SimTime::ZERO, &mut cdn);
        assert_eq!(resp.answers.len(), 1);
        let last = cdn.log().last().unwrap();
        assert!(last.ecs.is_some(), "resolver always sent ECS");
        assert_eq!(
            last.response_scope.is_some(),
            expect_ecs,
            "whitelisting must gate the response ECS"
        );
    }
}

#[test]
fn ecs_tailors_answers_per_client_subnet_through_real_packets() {
    // Two clients in different countries behind the same egress resolver;
    // with ECS the CDN gives each a nearby edge.
    let book = book();
    let mut sim = Simulation::new(3);

    let auth_addr: IpAddr = "198.51.100.53".parse().unwrap();
    let egress_addr: IpAddr = "9.9.9.9".parse().unwrap();
    let client_us: IpAddr = "100.70.1.7".parse().unwrap();
    let client_jp: IpAddr = "100.71.1.7".parse().unwrap();

    let (cdn, footprint) = cdn_server(&[
        (IpPrefix::new(client_us, 24).unwrap(), "Chicago"),
        (IpPrefix::new(client_jp, 24).unwrap(), "Tokyo"),
        (IpPrefix::new(egress_addr, 24).unwrap(), "Frankfurt"),
    ]);
    let auth_node = sim.add_node(
        AuthActor::new(cdn, book.clone()),
        city("Frankfurt").unwrap().pos,
    );
    let egress_node = sim.add_node(
        EgressActor::new(
            Resolver::new(ResolverConfig::rfc_compliant(egress_addr)),
            vec![(name("cdn.example"), auth_addr)],
            book.clone(),
        ),
        city("Frankfurt").unwrap().pos,
    );
    let q1 = Message::query(1, Question::a(name("www.cdn.example")));
    let q2 = Message::query(2, Question::a(name("www.cdn.example")));
    let us_node = sim.add_node(
        ClientActor::new(egress_node, vec![(SimTime::ZERO, q1)]),
        city("Chicago").unwrap().pos,
    );
    let jp_node = sim.add_node(
        ClientActor::new(egress_node, vec![(SimTime::ZERO, q2)]),
        city("Tokyo").unwrap().pos,
    );
    {
        let mut b = book.write();
        b.bind(auth_addr, auth_node);
        b.bind(egress_addr, egress_node);
        b.bind(client_us, us_node);
        b.bind(client_jp, jp_node);
    }
    ClientActor::arm(&mut sim, us_node);
    ClientActor::arm(&mut sim, jp_node);
    sim.run();

    let edge_city = |addr: IpAddr| {
        footprint
            .edges
            .iter()
            .find(|e| e.addr == addr)
            .unwrap()
            .city
            .clone()
    };
    let us = sim.node_mut::<ClientActor>(us_node).unwrap();
    assert_eq!(us.responses.len(), 1);
    let us_edge = edge_city(us.responses[0].1.answer_addrs()[0]);
    let jp = sim.node_mut::<ClientActor>(jp_node).unwrap();
    assert_eq!(jp.responses.len(), 1);
    let jp_edge = edge_city(jp.responses[0].1.answer_addrs()[0]);
    assert_eq!(us_edge, "Chicago");
    assert_eq!(jp_edge, "Tokyo");
}

#[test]
fn without_ecs_all_clients_share_the_resolvers_edge() {
    // Same setup, but the resolver never sends ECS: both clients get the
    // edge near the resolver (Frankfurt) — the pre-ECS status quo.
    let book = book();
    let mut sim = Simulation::new(3);

    let auth_addr: IpAddr = "198.51.100.53".parse().unwrap();
    let egress_addr: IpAddr = "9.9.9.9".parse().unwrap();
    let client_us: IpAddr = "100.70.1.7".parse().unwrap();
    let client_jp: IpAddr = "100.71.1.7".parse().unwrap();

    let (cdn, footprint) = cdn_server(&[
        (IpPrefix::new(client_us, 24).unwrap(), "Chicago"),
        (IpPrefix::new(client_jp, 24).unwrap(), "Tokyo"),
        (IpPrefix::new(egress_addr, 24).unwrap(), "Frankfurt"),
    ]);
    let auth_node = sim.add_node(
        AuthActor::new(cdn, book.clone()),
        city("Frankfurt").unwrap().pos,
    );
    let mut config = ResolverConfig::rfc_compliant(egress_addr);
    config.probing = resolver::ProbingStrategy::ZoneWhitelist { zones: vec![] };
    let egress_node = sim.add_node(
        EgressActor::new(
            Resolver::new(config),
            vec![(name("cdn.example"), auth_addr)],
            book.clone(),
        ),
        city("Frankfurt").unwrap().pos,
    );
    let q1 = Message::query(1, Question::a(name("www.cdn.example")));
    // Second query delayed past the 20 s CDN TTL so it is a fresh miss and
    // not a (correctly shared, scope-0) cache hit.
    let q2 = Message::query(2, Question::a(name("www.cdn.example")));
    let us_node = sim.add_node(
        ClientActor::new(egress_node, vec![(SimTime::ZERO, q1)]),
        city("Chicago").unwrap().pos,
    );
    let jp_node = sim.add_node(
        ClientActor::new(
            egress_node,
            vec![(SimTime::ZERO + SimDuration::from_secs(30), q2)],
        ),
        city("Tokyo").unwrap().pos,
    );
    {
        let mut b = book.write();
        b.bind(auth_addr, auth_node);
        b.bind(egress_addr, egress_node);
        b.bind(client_us, us_node);
        b.bind(client_jp, jp_node);
    }
    ClientActor::arm(&mut sim, us_node);
    ClientActor::arm(&mut sim, jp_node);
    sim.run();

    let edge_city = |addr: IpAddr| {
        footprint
            .edges
            .iter()
            .find(|e| e.addr == addr)
            .unwrap()
            .city
            .clone()
    };
    for node in [us_node, jp_node] {
        let c = sim.node_mut::<ClientActor>(node).unwrap();
        assert_eq!(c.responses.len(), 1);
        assert_eq!(edge_city(c.responses[0].1.answer_addrs()[0]), "Frankfurt");
    }
}

#[test]
fn anycast_service_preserves_client_subnet_across_frontends() {
    // A client reaches the service's nearest frontend; the frontend stamps
    // the client subnet; the egress truncates to /24 and the CDN maps near
    // the CLIENT even though frontend and egress are elsewhere.
    let book = book();
    let mut sim = Simulation::new(8);

    let auth_addr: IpAddr = "198.51.100.53".parse().unwrap();
    let egress_addr: IpAddr = "9.9.9.9".parse().unwrap();
    let fe_addr: IpAddr = "9.9.8.8".parse().unwrap();
    let client_addr: IpAddr = "100.70.1.7".parse().unwrap();

    let (cdn, footprint) = cdn_server(&[
        (IpPrefix::new(client_addr, 24).unwrap(), "Sydney"),
        (IpPrefix::new(egress_addr, 24).unwrap(), "Dallas"),
    ]);
    let auth_node = sim.add_node(
        AuthActor::new(cdn, book.clone()),
        city("Dallas").unwrap().pos,
    );
    let egress_node = sim.add_node(
        EgressActor::new(
            Resolver::new(ResolverConfig::anycast_service_egress(egress_addr)),
            vec![(name("cdn.example"), auth_addr)],
            book.clone(),
        ),
        city("Dallas").unwrap().pos,
    );
    let fe_node = sim.add_node(
        FrontendActor::new(vec![egress_node], book.clone()),
        city("Singapore").unwrap().pos,
    );
    let q = Message::query(1, Question::a(name("www.cdn.example")));
    let client_node = sim.add_node(
        ClientActor::new(fe_node, vec![(SimTime::ZERO, q)]),
        city("Sydney").unwrap().pos,
    );
    {
        let mut b = book.write();
        b.bind(auth_addr, auth_node);
        b.bind(egress_addr, egress_node);
        b.bind(fe_addr, fe_node);
        b.bind(client_addr, client_node);
    }
    ClientActor::arm(&mut sim, client_node);
    sim.run();

    let c = sim.node_mut::<ClientActor>(client_node).unwrap();
    assert_eq!(c.responses.len(), 1);
    let edge = c.responses[0].1.answer_addrs()[0];
    let edge_city = footprint
        .edges
        .iter()
        .find(|e| e.addr == edge)
        .unwrap()
        .city
        .clone();
    assert_eq!(edge_city, "Sydney", "mapping must follow the client");
}

#[test]
fn relay_chains_preserve_transaction_ids_end_to_end() {
    // Stacked relays rewrite ids hop by hop; the client must still see its
    // own id on the answer.
    let book = book();
    let mut sim = Simulation::new(1);

    let auth_addr: IpAddr = "198.51.100.53".parse().unwrap();
    let egress_addr: IpAddr = "9.9.9.9".parse().unwrap();

    let mut zone = Zone::new(name("probe.example"));
    zone.add_a(name("www.probe.example"), 60, Ipv4Addr::new(1, 2, 3, 4))
        .unwrap();
    let auth = AuthServer::new(zone, EcsHandling::open(ScopePolicy::Zero));
    let auth_node = sim.add_node(
        AuthActor::new(auth, book.clone()),
        city("Paris").unwrap().pos,
    );
    let egress_node = sim.add_node(
        EgressActor::new(
            Resolver::new(ResolverConfig::rfc_compliant(egress_addr)),
            vec![(name("probe.example"), auth_addr)],
            book.clone(),
        ),
        city("London").unwrap().pos,
    );
    let relay2 = sim.add_node(RelayActor::new(egress_node), city("Madrid").unwrap().pos);
    let relay1 = sim.add_node(RelayActor::new(relay2), city("Milan").unwrap().pos);
    let q = Message::query(0xABCD, Question::a(name("www.probe.example")));
    let client_node = sim.add_node(
        ClientActor::new(relay1, vec![(SimTime::ZERO, q)]),
        city("Milan").unwrap().pos,
    );
    {
        let mut b = book.write();
        b.bind(auth_addr, auth_node);
        b.bind(egress_addr, egress_node);
        b.bind("10.1.0.2".parse().unwrap(), relay2);
        b.bind("10.1.0.1".parse().unwrap(), relay1);
        b.bind("10.1.0.9".parse().unwrap(), client_node);
    }
    ClientActor::arm(&mut sim, client_node);
    sim.run();

    let c = sim.node_mut::<ClientActor>(client_node).unwrap();
    assert_eq!(c.responses.len(), 1);
    assert_eq!(c.responses[0].1.id, 0xABCD);
    assert_eq!(c.responses[0].1.answer_addrs().len(), 1);
}

#[test]
fn wire_format_survives_every_hop() {
    // Corrupted packets must be dropped without crashing any actor.
    let book = book();
    let mut sim = Simulation::new(1);
    let egress_addr: IpAddr = "9.9.9.9".parse().unwrap();
    let egress_node = sim.add_node(
        EgressActor::new(
            Resolver::new(ResolverConfig::rfc_compliant(egress_addr)),
            vec![],
            book.clone(),
        ),
        city("London").unwrap().pos,
    );
    let relay = sim.add_node(RelayActor::new(egress_node), city("Paris").unwrap().pos);
    // Garbage payloads.
    sim.inject(relay, egress_node, vec![0xFF; 13], SimDuration::ZERO);
    sim.inject(egress_node, relay, vec![], SimDuration::ZERO);
    sim.inject(relay, egress_node, vec![1, 2, 3], SimDuration::ZERO);
    sim.run();
    // Nothing to assert beyond "no panic, all delivered".
    assert_eq!(sim.delivered(), 3);
}
