//! Event-driven actors: the DNS parties as [`netsim::Node`]s.
//!
//! These wrap the synchronous logic (`engine`, `authoritative`) behind
//! packet handlers so a whole resolution path — client → forwarder →
//! hidden resolver → egress resolver → authoritative — runs as real
//! message exchanges with geographic latencies.
//!
//! All actors share an [`AddressBook`] (behind a `parking_lot::RwLock`)
//! that maps simulated IP addresses to node ids. Queries are plain DNS
//! wire bytes; malformed packets are dropped, as UDP servers do.

use std::collections::HashMap;
use std::net::IpAddr;
use std::sync::Arc;

use authoritative::AuthServer;
use dns_wire::{Message, Name};
use netsim::{AddressBook, Ctx, Node, NodeId, Packet, SimTime};
use obs::EventKind;
use parking_lot::RwLock;

use crate::engine::{FlightKey, PendingQuery, Resolver, Step};

/// Shared address directory type used by every actor.
pub type SharedBook = Arc<RwLock<AddressBook>>;

/// A plain relay: receives a query, forwards it upstream under a fresh
/// transaction id, and routes the response back. Models both open
/// forwarders and hidden resolvers (which, at this layer, behave
/// identically — their *position* and *address* are what matter).
pub struct RelayActor {
    /// Upstream node (a hidden resolver or an egress resolver).
    pub upstream: NodeId,
    pending: HashMap<u16, (NodeId, u16)>,
    next_id: u16,
    /// Maximum outstanding relayed queries; `0` means unbounded. A full
    /// table answers REFUSED instead of relaying — how resource-starved
    /// open forwarders behave under scan load, and the organic source of
    /// the REFUSED signal the scanner's circuit breakers key on.
    pending_cap: usize,
    /// Queries relayed (for assertions).
    pub relayed: u64,
    /// Queries refused because the pending table was full.
    pub refused: u64,
}

impl RelayActor {
    /// Creates a relay pointing at `upstream`.
    pub fn new(upstream: NodeId) -> Self {
        RelayActor {
            upstream,
            pending: HashMap::new(),
            next_id: 1,
            pending_cap: 0,
            relayed: 0,
            refused: 0,
        }
    }

    /// Caps the outstanding-query table at `cap` (≥ 1): further queries
    /// are answered REFUSED until responses drain the table.
    pub fn with_pending_cap(mut self, cap: usize) -> Self {
        self.pending_cap = cap.max(1);
        self
    }
}

impl Node for RelayActor {
    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx) {
        let Ok(mut msg) = Message::from_bytes(&pkt.payload) else {
            return;
        };
        if msg.is_response() {
            // Route back to the original querier under its original id.
            if let Some((client, orig_id)) = self.pending.remove(&msg.id) {
                msg.id = orig_id;
                if let Ok(bytes) = msg.to_bytes() {
                    ctx.send(client, bytes);
                }
            }
        } else {
            if self.pending_cap > 0 && self.pending.len() >= self.pending_cap {
                self.refused += 1;
                let mut resp = Message::response_to(&msg);
                resp.rcode = dns_wire::Rcode::Refused;
                if let Ok(bytes) = resp.to_bytes() {
                    ctx.send(pkt.src, bytes);
                }
                return;
            }
            let fresh = self.next_id;
            self.next_id = self.next_id.wrapping_add(1).max(1);
            self.pending.insert(fresh, (pkt.src, msg.id));
            msg.id = fresh;
            self.relayed += 1;
            if let Ok(bytes) = msg.to_bytes() {
                ctx.send(self.upstream, bytes);
            }
        }
    }
}

/// An egress resolver as a simulation node. Wraps [`Resolver`] and a zone →
/// authoritative-address routing table.
///
/// Upstream exchanges are retried per the wrapped resolver's
/// [`crate::config::RetryPolicy`]: each outstanding query arms a timer with
/// that attempt's (exponentially backed-off) timeout, timed-out ECS queries
/// are retransmitted without the option (RFC 7871 §7.1.3), and once the
/// attempt budget is spent the client gets SERVFAIL — so resolution
/// survives the simulator's loss model and never hangs or loops.
pub struct EgressActor {
    resolver: Resolver,
    /// Zone apex → authoritative server address, searched most-specific
    /// first.
    routes: Vec<(Name, IpAddr)>,
    book: SharedBook,
    pending: HashMap<u16, PendingUpstream>,
    /// Coalescing index: flight key → owning pending id. Only populated
    /// when [`crate::config::OverloadConfig::coalesce`] is on.
    flights: HashMap<FlightKey, u16>,
}

struct PendingUpstream {
    client: NodeId,
    query: PendingQuery,
    auth_node: NodeId,
    /// 0-based attempt currently in flight.
    attempt: u8,
    /// This flight's coalescing key, when coalescing is on.
    flight: Option<FlightKey>,
    /// Queries that joined this flight instead of going upstream.
    joiners: Vec<Joiner>,
}

/// A coalesced query waiting on another query's upstream flight.
struct Joiner {
    node: NodeId,
    /// Effective client address (for per-joiner ECS scope matching).
    addr: IpAddr,
    query: Message,
}

impl EgressActor {
    /// Creates an egress actor.
    pub fn new(resolver: Resolver, routes: Vec<(Name, IpAddr)>, book: SharedBook) -> Self {
        let mut routes = routes;
        routes.sort_by_key(|(apex, _)| std::cmp::Reverse(apex.label_count()));
        EgressActor {
            resolver,
            routes,
            book,
            pending: HashMap::new(),
            flights: HashMap::new(),
        }
    }

    /// Upstream flights currently outstanding.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// The wrapped resolver (for stats and cache inspection).
    pub fn resolver(&self) -> &Resolver {
        &self.resolver
    }

    /// Mutable access to the wrapped resolver.
    pub fn resolver_mut(&mut self) -> &mut Resolver {
        &mut self.resolver
    }

    fn route_for(&self, name: &Name) -> Option<IpAddr> {
        self.routes
            .iter()
            .find(|(apex, _)| name.is_subdomain_of(apex))
            .map(|(_, a)| *a)
    }

    /// The client-facing answer for a coalesced joiner — delegates to
    /// [`Resolver::joiner_response`] so every front end (this actor, the
    /// socket serving path) shares one implementation.
    fn joiner_response(&self, joined: &Message, upstream_resp: &Message) -> Message {
        self.resolver.joiner_response(joined, upstream_resp)
    }
}

impl Node for EgressActor {
    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx) {
        let Ok(msg) = Message::from_bytes(&pkt.payload) else {
            return;
        };
        if msg.is_response() {
            // A truncated reply is unusable; completing with it would
            // negative-cache an empty answer. Ignore it — the retry timer
            // resends (packet-level sims have no TCP leg to fall back to).
            if msg.flags.tc {
                return;
            }
            // An authoritative answered one of our upstream queries.
            if let Some(p) = self.pending.remove(&msg.id) {
                if let Some(key) = &p.flight {
                    self.flights.remove(key);
                }
                let joiner_resps: Vec<(NodeId, Message)> = p
                    .joiners
                    .iter()
                    .map(|j| (j.node, self.joiner_response(&j.query, &msg)))
                    .collect();
                let resp = self.resolver.complete(p.query, &msg, ctx.now());
                if let Ok(bytes) = resp.to_bytes() {
                    ctx.send(p.client, bytes);
                }
                for (node, resp) in joiner_resps {
                    if let Ok(bytes) = resp.to_bytes() {
                        ctx.send(node, bytes);
                    }
                }
            }
            return;
        }
        // A downstream party (client, forwarder, hidden resolver) queries us.
        let src_addr = self
            .book
            .read()
            .addr_of(pkt.src)
            .unwrap_or(IpAddr::V4(std::net::Ipv4Addr::UNSPECIFIED));
        match self.resolver.begin(&msg, src_addr, ctx.now()) {
            Step::Answer(resp) => {
                if let Ok(bytes) = resp.to_bytes() {
                    ctx.send(pkt.src, bytes);
                }
            }
            Step::NeedUpstream(pending) => {
                let coalesce = self.resolver.config().overload.coalesce;
                let max_in_flight = self.resolver.config().overload.max_in_flight;
                // Coalescing: identical (qname, qtype, effective-ECS-prefix)
                // lookups ride an existing flight instead of going upstream.
                if coalesce {
                    let key = pending.flight_key();
                    if let Some(&owner) = self.flights.get(&key) {
                        if let Some(p) = self.pending.get_mut(&owner) {
                            self.resolver.note_coalesced(&pending.upstream_query);
                            self.resolver.trace_event(
                                pending.trace,
                                ctx.now(),
                                &EventKind::CoalescedJoin,
                            );
                            p.joiners.push(Joiner {
                                node: pkt.src,
                                addr: pending.client_addr,
                                query: pending.client_query,
                            });
                            return;
                        }
                        self.flights.remove(&key);
                    }
                }
                // Admission control: a full in-flight table sheds the query
                // with SERVFAIL instead of queueing unboundedly.
                if max_in_flight.is_some_and(|cap| self.pending.len() >= cap) {
                    let fail = self.resolver.shed(&pending);
                    if let Ok(bytes) = fail.to_bytes() {
                        ctx.send(pkt.src, bytes);
                    }
                    return;
                }
                let qname = &pending.question.name;
                let Some(auth_addr) = self.route_for(qname) else {
                    return; // no route: drop (client would time out)
                };
                let Some(auth_node) = self.book.read().node_of(auth_addr) else {
                    return;
                };
                let id = pending.upstream_query.id;
                if let Ok(bytes) = pending.upstream_query.to_bytes() {
                    let timeout = self.resolver.config().retry.timeout_for(0);
                    self.resolver.trace_event(
                        pending.trace,
                        ctx.now(),
                        &EventKind::UpstreamAttempt {
                            attempt: 0,
                            ecs: pending.upstream_query.ecs().is_some(),
                        },
                    );
                    let flight = coalesce.then(|| pending.flight_key());
                    if let Some(key) = &flight {
                        self.flights.insert(key.clone(), id);
                    }
                    self.pending.insert(
                        id,
                        PendingUpstream {
                            client: pkt.src,
                            query: pending,
                            auth_node,
                            attempt: 0,
                            flight,
                            joiners: Vec::new(),
                        },
                    );
                    ctx.send(auth_node, bytes);
                    ctx.set_timer(timeout, id as u64);
                }
            }
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Ctx) {
        let id = token as u16;
        // Still pending? The upstream answer never came: retransmit or fail.
        let attempts = self.resolver.config().retry.attempts.max(1);
        let give_up = match self.pending.get_mut(&id) {
            None => return, // answered in the meantime
            Some(p) if p.attempt + 1 < attempts => {
                // The in-flight attempt timed out: withdraw ECS if the
                // policy says so (RFC 7871 §7.1.3), then retransmit with
                // the next attempt's backed-off timeout.
                let had_ecs = p.query.upstream_query.ecs().is_some();
                self.resolver
                    .note_upstream_timeout(&mut p.query.upstream_query, p.attempt);
                if p.query.trace.is_enabled() {
                    self.resolver.trace_event(
                        p.query.trace,
                        ctx.now(),
                        &EventKind::UpstreamFault {
                            kind: "timeout".into(),
                        },
                    );
                    if had_ecs && p.query.upstream_query.ecs().is_none() {
                        self.resolver.trace_event(
                            p.query.trace,
                            ctx.now(),
                            &EventKind::EcsWithdrawn { reason: "timeout" },
                        );
                    }
                }
                p.attempt += 1;
                self.resolver.note_retry_sent(&p.query.upstream_query);
                self.resolver.trace_event(
                    p.query.trace,
                    ctx.now(),
                    &EventKind::UpstreamAttempt {
                        attempt: u32::from(p.attempt),
                        ecs: p.query.upstream_query.ecs().is_some(),
                    },
                );
                if let Ok(bytes) = p.query.upstream_query.to_bytes() {
                    ctx.send(p.auth_node, bytes);
                }
                let timeout = self.resolver.config().retry.timeout_for(p.attempt);
                ctx.set_timer(timeout, token);
                false
            }
            Some(p) => {
                let had_ecs = p.query.upstream_query.ecs().is_some();
                self.resolver
                    .note_upstream_timeout(&mut p.query.upstream_query, p.attempt);
                if p.query.trace.is_enabled() {
                    self.resolver.trace_event(
                        p.query.trace,
                        ctx.now(),
                        &EventKind::UpstreamFault {
                            kind: "timeout".into(),
                        },
                    );
                    if had_ecs && p.query.upstream_query.ecs().is_none() {
                        self.resolver.trace_event(
                            p.query.trace,
                            ctx.now(),
                            &EventKind::EcsWithdrawn { reason: "timeout" },
                        );
                    }
                }
                true
            }
        };
        if give_up {
            let p = self.pending.remove(&id).expect("checked above");
            if let Some(key) = &p.flight {
                self.flights.remove(key);
            }
            // RFC 8767: a stale answer beats SERVFAIL when one matches —
            // per party, since joiners may sit in different scopes.
            let fail = self.resolver.answer_failure(&p.query, ctx.now());
            if let Ok(bytes) = fail.to_bytes() {
                ctx.send(p.client, bytes);
            }
            for j in p.joiners {
                let resp = self.resolver.stale_or_servfail(
                    &j.query,
                    &p.query.question.name,
                    p.query.question.qtype,
                    j.addr,
                    ctx.now(),
                );
                if let Ok(bytes) = resp.to_bytes() {
                    ctx.send(j.node, bytes);
                }
            }
        }
    }
}

/// An authoritative server as a simulation node.
pub struct AuthActor {
    server: AuthServer,
    book: SharedBook,
}

impl AuthActor {
    /// Wraps a server.
    pub fn new(server: AuthServer, book: SharedBook) -> Self {
        AuthActor { server, book }
    }

    /// The wrapped server (for log inspection).
    pub fn server(&self) -> &AuthServer {
        &self.server
    }

    /// Mutable access.
    pub fn server_mut(&mut self) -> &mut AuthServer {
        &mut self.server
    }
}

impl Node for AuthActor {
    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx) {
        let Ok(msg) = Message::from_bytes(&pkt.payload) else {
            return;
        };
        if msg.is_response() {
            return;
        }
        let src_addr = self
            .book
            .read()
            .addr_of(pkt.src)
            .unwrap_or(IpAddr::V4(std::net::Ipv4Addr::UNSPECIFIED));
        let resp = self.server.handle(&msg, src_addr, ctx.now());
        if let Ok(bytes) = resp.to_bytes() {
            ctx.send(pkt.src, bytes);
        }
    }
}

/// An anycast front-end of the public resolution service: stamps the
/// (trusted) client address into an ECS option before forwarding to one of
/// the service's egress resolvers.
pub struct FrontendActor {
    /// Egress resolvers of the service.
    pub egresses: Vec<NodeId>,
    book: SharedBook,
    pending: HashMap<u16, (NodeId, u16)>,
    next_id: u16,
    rr: usize,
}

impl FrontendActor {
    /// Creates a front-end.
    pub fn new(egresses: Vec<NodeId>, book: SharedBook) -> Self {
        FrontendActor {
            egresses,
            book,
            pending: HashMap::new(),
            next_id: 1,
            rr: 0,
        }
    }
}

impl Node for FrontendActor {
    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx) {
        let Ok(mut msg) = Message::from_bytes(&pkt.payload) else {
            return;
        };
        if msg.is_response() {
            if let Some((client, orig_id)) = self.pending.remove(&msg.id) {
                msg.id = orig_id;
                if let Ok(bytes) = msg.to_bytes() {
                    ctx.send(client, bytes);
                }
            }
            return;
        }
        if self.egresses.is_empty() {
            return;
        }
        // Stamp the real client address as a full-length trusted ECS
        // option (the egress applies its own truncation policy).
        if let Some(client_addr) = self.book.read().addr_of(pkt.src) {
            msg.set_ecs(dns_wire::EcsOption::new(
                client_addr,
                if client_addr.is_ipv4() { 32 } else { 128 },
            ));
        }
        let fresh = self.next_id;
        self.next_id = self.next_id.wrapping_add(1).max(1);
        self.pending.insert(fresh, (pkt.src, msg.id));
        msg.id = fresh;
        let egress = self.egresses[self.rr % self.egresses.len()];
        self.rr += 1;
        if let Ok(bytes) = msg.to_bytes() {
            ctx.send(egress, bytes);
        }
    }
}

/// A scripted client that issues queries at given times and records the
/// responses with their arrival times. Like a real stub resolver it
/// retransmits unanswered queries (up to [`ClientActor::MAX_RETRIES`]
/// times, [`ClientActor::RETRY_TIMEOUT`] apart).
pub struct ClientActor {
    /// Where queries go (a forwarder, front-end, or resolver node).
    pub resolver: NodeId,
    /// Scripted queries: (send-at, message).
    pub script: Vec<(SimTime, Message)>,
    /// Collected responses: (arrival time, message).
    pub responses: Vec<(SimTime, Message)>,
    answered: Vec<bool>,
}

impl ClientActor {
    /// Retransmissions per scripted query.
    pub const MAX_RETRIES: u64 = 3;
    /// Gap between retransmissions.
    pub const RETRY_TIMEOUT: netsim::SimDuration = netsim::SimDuration::from_secs(3);

    /// Creates a scripted client. Call [`ClientActor::arm`] after adding
    /// the node to schedule its queries.
    pub fn new(resolver: NodeId, script: Vec<(SimTime, Message)>) -> Self {
        let answered = vec![false; script.len()];
        ClientActor {
            resolver,
            script,
            responses: Vec::new(),
            answered,
        }
    }

    /// Schedules the send (and retransmission) timers for every scripted
    /// query. `self_id` is the node id returned by `add_node`. Timer token
    /// = `index * (MAX_RETRIES+1) + attempt`.
    pub fn arm(sim: &mut netsim::Simulation, self_id: NodeId) {
        let times: Vec<SimTime> = sim
            .node_mut::<ClientActor>(self_id)
            .expect("client actor")
            .script
            .iter()
            .map(|(t, _)| *t)
            .collect();
        let slots = Self::MAX_RETRIES + 1;
        for (i, at) in times.into_iter().enumerate() {
            for attempt in 0..slots {
                sim.inject_timer(
                    self_id,
                    at.since(SimTime::ZERO) + Self::RETRY_TIMEOUT.mul(attempt),
                    i as u64 * slots + attempt,
                );
            }
        }
    }
}

impl Node for ClientActor {
    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx) {
        if let Ok(msg) = Message::from_bytes(&pkt.payload) {
            if msg.is_response() {
                // Mark the matching scripted query as answered so its
                // remaining retransmission timers become no-ops.
                for (i, (_, q)) in self.script.iter().enumerate() {
                    if q.id == msg.id {
                        if self.answered[i] {
                            return; // duplicate (a retry raced the answer)
                        }
                        self.answered[i] = true;
                    }
                }
                self.responses.push((ctx.now(), msg));
            }
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Ctx) {
        let slots = Self::MAX_RETRIES + 1;
        let idx = (token / slots) as usize;
        if self.answered.get(idx).copied().unwrap_or(true) {
            return;
        }
        if let Some((_, msg)) = self.script.get(idx) {
            if let Ok(bytes) = msg.to_bytes() {
                ctx.send(self.resolver, bytes);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ResolverConfig;
    use authoritative::{EcsHandling, ScopePolicy, Zone};
    use dns_wire::Question;
    use netsim::geo::city;
    use netsim::{SimDuration, Simulation};
    use std::net::Ipv4Addr;

    fn name(s: &str) -> Name {
        Name::from_ascii(s).unwrap()
    }

    /// Builds: client (Santiago) → forwarder (Santiago) → hidden (Milan) →
    /// egress (Dallas) → authoritative (Chicago). The §8.2 pathological
    /// chain, verified end to end.
    #[test]
    fn full_chain_resolution_with_hidden_resolver() {
        let book: SharedBook = Arc::new(RwLock::new(AddressBook::new()));
        let mut sim = Simulation::new(11);

        let auth_addr: IpAddr = "198.51.100.53".parse().unwrap();
        let egress_addr: IpAddr = "203.0.113.9".parse().unwrap();
        let hidden_addr: IpAddr = "192.0.2.200".parse().unwrap();
        let fwd_addr: IpAddr = "100.66.1.1".parse().unwrap();
        let client_addr: IpAddr = "100.66.1.77".parse().unwrap();

        let mut zone = Zone::new(name("probe.example"));
        zone.add_a(
            name("www.probe.example"),
            60,
            Ipv4Addr::new(198, 51, 100, 1),
        )
        .unwrap();
        let auth = AuthServer::new(zone, EcsHandling::open(ScopePolicy::SourceMinusK(4)));
        let auth_node = sim.add_node(
            AuthActor::new(auth, book.clone()),
            city("Chicago").unwrap().pos,
        );

        let resolver = Resolver::new(ResolverConfig::public_service_egress(egress_addr));
        let egress_node = sim.add_node(
            EgressActor::new(
                resolver,
                vec![(name("probe.example"), auth_addr)],
                book.clone(),
            ),
            city("Dallas").unwrap().pos,
        );

        let hidden_node = sim.add_node(RelayActor::new(egress_node), city("Milan").unwrap().pos);
        let fwd_node = sim.add_node(RelayActor::new(hidden_node), city("Santiago").unwrap().pos);

        let query = Message::query(77, Question::a(name("www.probe.example")));
        let client_node = sim.add_node(
            ClientActor::new(fwd_node, vec![(SimTime::ZERO, query)]),
            city("Santiago").unwrap().pos,
        );

        {
            let mut b = book.write();
            b.bind(auth_addr, auth_node);
            b.bind(egress_addr, egress_node);
            b.bind(hidden_addr, hidden_node);
            b.bind(fwd_addr, fwd_node);
            b.bind(client_addr, client_node);
        }
        ClientActor::arm(&mut sim, client_node);
        sim.run();

        // Client got an answer.
        let client = sim.node_mut::<ClientActor>(client_node).unwrap();
        assert_eq!(client.responses.len(), 1);
        let (at, resp) = &client.responses[0];
        assert_eq!(resp.id, 77);
        assert_eq!(resp.answer_addrs().len(), 1);
        // The full path crosses Santiago→Milan→Dallas→Chicago and back:
        // tens of thousands of km, so hundreds of ms.
        assert!(at.as_micros() > 200_000, "RTT {at}");

        // The egress saw the HIDDEN resolver as its client and conveyed the
        // hidden resolver's /24 in ECS — the §8.2 mechanism.
        let auth_actor = sim.node_mut::<AuthActor>(auth_node).unwrap();
        let log = auth_actor.server().log();
        assert_eq!(log.len(), 1);
        let ecs = log[0].ecs.unwrap();
        assert_eq!(ecs.to_v4(), Some(Ipv4Addr::new(192, 0, 2, 0)));
        assert_eq!(log[0].resolver, egress_addr);
    }

    #[test]
    fn frontend_stamps_client_ecs() {
        let book: SharedBook = Arc::new(RwLock::new(AddressBook::new()));
        let mut sim = Simulation::new(5);

        let auth_addr: IpAddr = "198.51.100.53".parse().unwrap();
        let egress_addr: IpAddr = "203.0.113.9".parse().unwrap();
        let fe_addr: IpAddr = "203.0.113.1".parse().unwrap();
        let client_addr: IpAddr = "100.66.2.42".parse().unwrap();

        let mut zone = Zone::new(name("probe.example"));
        zone.add_a(
            name("www.probe.example"),
            60,
            Ipv4Addr::new(198, 51, 100, 1),
        )
        .unwrap();
        let auth = AuthServer::new(zone, EcsHandling::open(ScopePolicy::MatchSource));
        let auth_node = sim.add_node(
            AuthActor::new(auth, book.clone()),
            city("Chicago").unwrap().pos,
        );
        // Anycast egress trusts frontend ECS and truncates to /24.
        let egress_node = sim.add_node(
            EgressActor::new(
                Resolver::new(ResolverConfig::anycast_service_egress(egress_addr)),
                vec![(name("probe.example"), auth_addr)],
                book.clone(),
            ),
            city("Dallas").unwrap().pos,
        );
        let fe_node = sim.add_node(
            FrontendActor::new(vec![egress_node], book.clone()),
            city("Toronto").unwrap().pos,
        );
        let query = Message::query(5, Question::a(name("www.probe.example")));
        let client_node = sim.add_node(
            ClientActor::new(fe_node, vec![(SimTime::ZERO, query)]),
            city("Toronto").unwrap().pos,
        );
        {
            let mut b = book.write();
            b.bind(auth_addr, auth_node);
            b.bind(egress_addr, egress_node);
            b.bind(fe_addr, fe_node);
            b.bind(client_addr, client_node);
        }
        ClientActor::arm(&mut sim, client_node);
        sim.run();

        let auth_actor = sim.node_mut::<AuthActor>(auth_node).unwrap();
        let ecs = auth_actor.server().log()[0].ecs.unwrap();
        // The CLIENT's /24 (not the frontend's, not the egress's).
        assert_eq!(ecs.to_v4(), Some(Ipv4Addr::new(100, 66, 2, 0)));
        assert_eq!(ecs.source_prefix_len(), 24);

        let client = sim.node_mut::<ClientActor>(client_node).unwrap();
        assert_eq!(client.responses.len(), 1);
    }

    #[test]
    fn cached_second_query_is_faster_and_skips_authoritative() {
        let book: SharedBook = Arc::new(RwLock::new(AddressBook::new()));
        let mut sim = Simulation::new(5);

        let auth_addr: IpAddr = "198.51.100.53".parse().unwrap();
        let egress_addr: IpAddr = "203.0.113.9".parse().unwrap();
        let client_addr: IpAddr = "100.66.2.42".parse().unwrap();

        let mut zone = Zone::new(name("probe.example"));
        zone.add_a(
            name("www.probe.example"),
            600,
            Ipv4Addr::new(198, 51, 100, 1),
        )
        .unwrap();
        let auth = AuthServer::new(zone, EcsHandling::open(ScopePolicy::MatchSource));
        let auth_node = sim.add_node(
            AuthActor::new(auth, book.clone()),
            city("Tokyo").unwrap().pos,
        );
        let egress_node = sim.add_node(
            EgressActor::new(
                Resolver::new(ResolverConfig::rfc_compliant(egress_addr)),
                vec![(name("probe.example"), auth_addr)],
                book.clone(),
            ),
            city("Toronto").unwrap().pos,
        );
        let q1 = Message::query(1, Question::a(name("www.probe.example")));
        let q2 = Message::query(2, Question::a(name("www.probe.example")));
        let client_node = sim.add_node(
            ClientActor::new(
                egress_node,
                vec![
                    (SimTime::ZERO, q1),
                    (SimTime::ZERO + SimDuration::from_secs(2), q2),
                ],
            ),
            city("Toronto").unwrap().pos,
        );
        {
            let mut b = book.write();
            b.bind(auth_addr, auth_node);
            b.bind(egress_addr, egress_node);
            b.bind(client_addr, client_node);
        }
        ClientActor::arm(&mut sim, client_node);
        sim.run();

        let auth_actor = sim.node_mut::<AuthActor>(auth_node).unwrap();
        assert_eq!(auth_actor.server().log().len(), 1, "second query cached");

        let client = sim.node_mut::<ClientActor>(client_node).unwrap();
        assert_eq!(client.responses.len(), 2);
        let rtt1 = client.responses[0].0.since(SimTime::ZERO);
        let rtt2 = client.responses[1]
            .0
            .since(SimTime::ZERO + SimDuration::from_secs(2));
        assert!(
            rtt2.as_millis_f64() < rtt1.as_millis_f64() / 2.0,
            "cache hit should be much faster: {rtt1} vs {rtt2}"
        );
    }
}

#[cfg(test)]
mod retry_tests {
    use super::*;
    use crate::config::ResolverConfig;
    use authoritative::{EcsHandling, ScopePolicy, Zone};
    use dns_wire::Question;
    use netsim::geo::city;
    use netsim::{LatencyModel, SimTime, Simulation};
    use std::net::Ipv4Addr;

    fn name(s: &str) -> Name {
        Name::from_ascii(s).unwrap()
    }

    fn lossy_world(loss: f64, seed: u64) -> (Simulation, NodeId, NodeId, NodeId) {
        let book: SharedBook = Arc::new(RwLock::new(AddressBook::new()));
        let mut sim = Simulation::with_latency(
            seed,
            LatencyModel {
                loss,
                ..LatencyModel::default()
            },
        );
        let auth_addr: IpAddr = "198.51.100.53".parse().unwrap();
        let egress_addr: IpAddr = "9.9.9.9".parse().unwrap();
        let client_addr: IpAddr = "100.70.1.7".parse().unwrap();

        let mut zone = Zone::new(name("probe.example"));
        zone.add_a(
            name("www.probe.example"),
            60,
            Ipv4Addr::new(198, 51, 100, 1),
        )
        .unwrap();
        let auth = AuthServer::new(zone, EcsHandling::open(ScopePolicy::MatchSource));
        let auth_node = sim.add_node(
            AuthActor::new(auth, book.clone()),
            city("Chicago").unwrap().pos,
        );
        let egress_node = sim.add_node(
            EgressActor::new(
                Resolver::new(ResolverConfig::rfc_compliant(egress_addr)),
                vec![(name("probe.example"), auth_addr)],
                book.clone(),
            ),
            city("Toronto").unwrap().pos,
        );
        let q = Message::query(42, Question::a(name("www.probe.example")));
        let client_node = sim.add_node(
            ClientActor::new(egress_node, vec![(SimTime::ZERO, q)]),
            city("Toronto").unwrap().pos,
        );
        {
            let mut b = book.write();
            b.bind(auth_addr, auth_node);
            b.bind(egress_addr, egress_node);
            b.bind(client_addr, client_node);
        }
        ClientActor::arm(&mut sim, client_node);
        (sim, client_node, auth_node, egress_node)
    }

    #[test]
    fn moderate_loss_is_absorbed_by_retries() {
        // 30% loss per leg: without retries the end-to-end success rate of
        // a 2-leg exchange would be ~0.24; with 3 retries it is near 1.
        // Check several seeds to exercise different loss patterns.
        let mut answered = 0;
        for seed in 0..10 {
            let (mut sim, client_node, _, _) = lossy_world(0.3, seed);
            sim.run();
            let c = sim.node_mut::<ClientActor>(client_node).unwrap();
            if c.responses
                .iter()
                .any(|(_, m)| m.rcode == dns_wire::Rcode::NoError && !m.answers.is_empty())
            {
                answered += 1;
            }
        }
        assert!(
            answered >= 9,
            "retries should absorb 30% loss: {answered}/10"
        );
    }

    #[test]
    fn total_loss_yields_servfail_not_silence() {
        let (mut sim, client_node, _, egress_node) = lossy_world(1.0, 7);
        sim.run();
        let c = sim.node_mut::<ClientActor>(client_node).unwrap();
        // The egress → client response leg is also lossy under loss=1.0, so
        // the client may see nothing; but the egress must have given up
        // cleanly (no pending state, simulation terminates) — reaching this
        // point at all proves no infinite retry loop.
        assert!(c.responses.len() <= 1);
        // Whatever did get through was accounted for: every exchange the
        // egress started either completed or ended in a counted SERVFAIL.
        let e = sim.node_mut::<EgressActor>(egress_node).unwrap();
        let s = e.resolver().stats();
        assert_eq!(s.upstream_timeouts, s.retries + s.servfail_responses);
    }

    #[test]
    fn retry_timer_after_answer_is_harmless() {
        // No loss: the answer arrives well before the 2 s retry timer; the
        // timer must find nothing pending and do nothing (exactly one
        // upstream query in the authoritative log).
        let (mut sim, client_node, auth_node, egress_node) = lossy_world(0.0, 1);
        sim.run();
        let c = sim.node_mut::<ClientActor>(client_node).unwrap();
        assert_eq!(c.responses.len(), 1);
        let a = sim.node_mut::<AuthActor>(auth_node).unwrap();
        assert_eq!(a.server().log().len(), 1, "no spurious retransmissions");
        let e = sim.node_mut::<EgressActor>(egress_node).unwrap();
        let s = e.resolver().stats();
        assert_eq!(
            (s.retries, s.upstream_timeouts, s.servfail_responses),
            (0, 0, 0)
        );
    }

    #[test]
    fn egress_backoff_spaces_retransmissions_exponentially() {
        // Blackhole only the egress → authoritative link: queries vanish,
        // the client leg stays clean, and the authoritative log is empty.
        // The egress must send 4 attempts spaced 2/4/8 s apart.
        let (mut sim, client_node, auth_node, egress_node) = lossy_world(0.0, 5);
        let plan = {
            let mut p = netsim::FaultPlan::none();
            p.set_link(
                egress_node,
                auth_node,
                netsim::LinkFaults {
                    blackhole: true,
                    ..netsim::LinkFaults::NONE
                },
            );
            p
        };
        sim.set_fault_plan(plan);
        sim.run();
        // 1 client query + 3 client retransmissions each hit the egress;
        // the first created the pending exchange, later ones were cache
        // misses creating their own exchanges (same id → keyed per id).
        let e = sim.node_mut::<EgressActor>(egress_node).unwrap();
        let s = e.resolver().stats();
        assert!(s.servfail_responses >= 1, "gave up cleanly: {s:?}");
        assert!(e.resolver().probing_state().marked_non_ecs);
        // The blackhole swallowed every upstream attempt.
        assert_eq!(sim.fault_stats().dropped_blackhole, s.upstream_queries);
        let c = sim.node_mut::<ClientActor>(client_node).unwrap();
        assert!(c
            .responses
            .iter()
            .all(|(_, m)| m.rcode == dns_wire::Rcode::ServFail));
    }
}

#[cfg(test)]
mod overload_tests {
    use super::*;
    use crate::config::ResolverConfig;
    use authoritative::{EcsHandling, ScopePolicy, Zone};
    use dns_wire::{Question, Rcode};
    use netsim::geo::city;
    use netsim::{AddressBook, SimDuration, SimTime, Simulation};
    use std::net::Ipv4Addr;

    fn name(s: &str) -> Name {
        Name::from_ascii(s).unwrap()
    }

    /// One authoritative, one egress with the given config, and `n` clients
    /// in one /24 all asking the same name at t=0 (concurrently: every
    /// query arrives before the first upstream answer returns).
    fn burst_world(config: ResolverConfig, n: usize) -> (Simulation, Vec<NodeId>, NodeId, NodeId) {
        let book: SharedBook = Arc::new(RwLock::new(AddressBook::new()));
        let mut sim = Simulation::new(3);
        let auth_addr: IpAddr = "198.51.100.53".parse().unwrap();
        let egress_addr: IpAddr = "9.9.9.9".parse().unwrap();

        let mut zone = Zone::new(name("probe.example"));
        zone.add_a(
            name("www.probe.example"),
            60,
            Ipv4Addr::new(198, 51, 100, 1),
        )
        .unwrap();
        let auth = AuthServer::new(zone, EcsHandling::open(ScopePolicy::MatchSource));
        let auth_node = sim.add_node(
            AuthActor::new(auth, book.clone()),
            city("Chicago").unwrap().pos,
        );
        let egress_node = sim.add_node(
            EgressActor::new(
                Resolver::new(config),
                vec![(name("probe.example"), auth_addr)],
                book.clone(),
            ),
            city("Toronto").unwrap().pos,
        );
        let mut clients = Vec::new();
        for i in 0..n {
            let q = Message::query(i as u16 + 1, Question::a(name("www.probe.example")));
            let node = sim.add_node(
                ClientActor::new(egress_node, vec![(SimTime::ZERO, q)]),
                city("Toronto").unwrap().pos,
            );
            book.write()
                .bind(format!("100.70.1.{}", i + 1).parse().unwrap(), node);
            clients.push(node);
        }
        {
            let mut b = book.write();
            b.bind(auth_addr, auth_node);
            b.bind(egress_addr, egress_node);
        }
        for &c in &clients {
            ClientActor::arm(&mut sim, c);
        }
        (sim, clients, auth_node, egress_node)
    }

    #[test]
    fn duplicate_concurrent_queries_coalesce_into_one_flight() {
        let mut config = ResolverConfig::rfc_compliant("9.9.9.9".parse().unwrap());
        config.overload.coalesce = true;
        let (mut sim, clients, auth_node, egress_node) = burst_world(config, 5);
        sim.run();
        // Exactly one upstream flight for five identical concurrent queries.
        let a = sim.node_mut::<AuthActor>(auth_node).unwrap();
        assert_eq!(a.server().log().len(), 1, "one upstream flight");
        let e = sim.node_mut::<EgressActor>(egress_node).unwrap();
        let s = e.resolver().stats();
        assert_eq!(s.upstream_queries, 1);
        assert_eq!(s.coalesced_queries, 4);
        assert_eq!(s.client_queries, 5);
        // Every client still got a real answer.
        for c in clients {
            let cl = sim.node_mut::<ClientActor>(c).unwrap();
            assert_eq!(cl.responses.len(), 1);
            assert_eq!(cl.responses[0].1.rcode, Rcode::NoError);
            assert_eq!(cl.responses[0].1.answers.len(), 1);
        }
    }

    #[test]
    fn coalescing_off_sends_every_query_upstream() {
        // Same burst without coalescing: the five same-/24 clients race —
        // every one misses (the first answer has not returned yet) and goes
        // upstream independently. This is the pre-change behaviour.
        let config = ResolverConfig::rfc_compliant("9.9.9.9".parse().unwrap());
        let (mut sim, _, auth_node, egress_node) = burst_world(config, 5);
        sim.run();
        let a = sim.node_mut::<AuthActor>(auth_node).unwrap();
        assert_eq!(a.server().log().len(), 5, "no coalescing by default");
        let e = sim.node_mut::<EgressActor>(egress_node).unwrap();
        assert_eq!(e.resolver().stats().coalesced_queries, 0);
    }

    #[test]
    fn in_flight_cap_sheds_excess_load_with_servfail() {
        let mut config = ResolverConfig::rfc_compliant("9.9.9.9".parse().unwrap());
        config.overload.max_in_flight = Some(2);
        let (mut sim, clients, auth_node, egress_node) = burst_world(config, 6);
        sim.run();
        let e = sim.node_mut::<EgressActor>(egress_node).unwrap();
        let s = e.resolver().stats();
        // The first two queries entered the in-flight table; the other
        // four of the burst were shed.
        assert_eq!(s.shed_queries, 4);
        assert_eq!(e.in_flight(), 0, "table drains after the burst");
        let a = sim.node_mut::<AuthActor>(auth_node).unwrap();
        assert_eq!(a.server().log().len(), 2);
        // Shed clients got SERVFAIL promptly, not silence.
        let mut servfails = 0;
        for c in clients {
            let cl = sim.node_mut::<ClientActor>(c).unwrap();
            assert!(!cl.responses.is_empty());
            if cl.responses[0].1.rcode == Rcode::ServFail {
                servfails += 1;
            }
        }
        assert_eq!(servfails, 4);
    }

    #[test]
    fn egress_serves_stale_when_authoritative_goes_dark() {
        let mut config = ResolverConfig::rfc_compliant("9.9.9.9".parse().unwrap());
        config.overload.serve_stale_ttl = SimDuration::from_secs(3600);
        // One short attempt: the resolver gives up (and answers stale) before
        // the client's own 3 s retransmission timer spawns a second exchange.
        config.retry.attempts = 1;
        config.retry.initial_timeout = SimDuration::from_secs(1);
        let (mut sim, clients, auth_node, egress_node) = build_stale_world(config);
        // Let the t=0 warm-up complete, then blackhole the upstream leg
        // before the t=120 re-ask (the 60 s TTL has expired by then).
        sim.run_until(SimTime::from_secs(60));
        let plan = {
            let mut p = netsim::FaultPlan::none();
            p.set_link(
                egress_node,
                auth_node,
                netsim::LinkFaults {
                    blackhole: true,
                    ..netsim::LinkFaults::NONE
                },
            );
            p
        };
        sim.set_fault_plan(plan);
        sim.run();
        let cl = sim.node_mut::<ClientActor>(clients[0]).unwrap();
        assert_eq!(cl.responses.len(), 2);
        // First answer fresh, second stale (the auth was dark) — a NoError
        // answer with the RFC 8767 §5 stale TTL, not SERVFAIL.
        assert_eq!(cl.responses[1].1.rcode, Rcode::NoError);
        assert!(!cl.responses[1].1.answers.is_empty());
        assert!(cl.responses[1].1.answers[0].ttl <= 30);
        let e = sim.node_mut::<EgressActor>(egress_node).unwrap();
        let s = e.resolver().stats();
        assert_eq!(s.stale_answers, 1);
        assert_eq!(s.servfail_responses, 0);
        let a = sim.node_mut::<AuthActor>(auth_node).unwrap();
        assert_eq!(a.server().log().len(), 1, "only the warm-up reached auth");
    }

    /// A world for the serve-stale test: one client scripted with a warm-up
    /// query at t=0 and a re-ask at t=120 (past the 60 s record TTL).
    fn build_stale_world(config: ResolverConfig) -> (Simulation, Vec<NodeId>, NodeId, NodeId) {
        let book: SharedBook = Arc::new(RwLock::new(AddressBook::new()));
        let mut sim = Simulation::new(3);
        let auth_addr: IpAddr = "198.51.100.53".parse().unwrap();
        let egress_addr: IpAddr = "9.9.9.9".parse().unwrap();

        let mut zone = Zone::new(name("probe.example"));
        zone.add_a(
            name("www.probe.example"),
            60,
            Ipv4Addr::new(198, 51, 100, 1),
        )
        .unwrap();
        let auth = AuthServer::new(zone, EcsHandling::open(ScopePolicy::MatchSource));
        let auth_node = sim.add_node(
            AuthActor::new(auth, book.clone()),
            city("Chicago").unwrap().pos,
        );
        let egress_node = sim.add_node(
            EgressActor::new(
                Resolver::new(config),
                vec![(name("probe.example"), auth_addr)],
                book.clone(),
            ),
            city("Toronto").unwrap().pos,
        );
        let q1 = Message::query(1, Question::a(name("www.probe.example")));
        let q2 = Message::query(2, Question::a(name("www.probe.example")));
        let client = sim.add_node(
            ClientActor::new(
                egress_node,
                vec![(SimTime::ZERO, q1), (SimTime::from_secs(120), q2)],
            ),
            city("Toronto").unwrap().pos,
        );
        {
            let mut b = book.write();
            b.bind(auth_addr, auth_node);
            b.bind(egress_addr, egress_node);
            b.bind("100.70.1.1".parse().unwrap(), client);
        }
        ClientActor::arm(&mut sim, client);
        (sim, vec![client], auth_node, egress_node)
    }
}

#[cfg(test)]
mod frontend_tests {
    use super::*;
    use crate::config::ResolverConfig;
    use authoritative::{EcsHandling, ScopePolicy, Zone};
    use dns_wire::Question;
    use netsim::geo::city;
    use netsim::{SimDuration, SimTime, Simulation};
    use std::net::Ipv4Addr;

    fn name(s: &str) -> Name {
        Name::from_ascii(s).unwrap()
    }

    #[test]
    fn frontend_round_robins_across_egresses() {
        let book: SharedBook = Arc::new(RwLock::new(AddressBook::new()));
        let mut sim = Simulation::new(2);
        let auth_addr: IpAddr = "198.51.100.53".parse().unwrap();

        let mut zone = Zone::new(name("probe.example"));
        for i in 0..4 {
            zone.add_a(
                name(&format!("h{i}.probe.example")),
                60,
                Ipv4Addr::new(198, 51, 100, i + 1),
            )
            .unwrap();
        }
        let auth_node = sim.add_node(
            AuthActor::new(
                AuthServer::new(zone, EcsHandling::open(ScopePolicy::MatchSource)),
                book.clone(),
            ),
            city("Chicago").unwrap().pos,
        );

        let mut egresses = Vec::new();
        for i in 0..2 {
            let addr: IpAddr = format!("9.9.9.{}", i + 1).parse().unwrap();
            let node = sim.add_node(
                EgressActor::new(
                    Resolver::new(ResolverConfig::anycast_service_egress(addr)),
                    vec![(name("probe.example"), auth_addr)],
                    book.clone(),
                ),
                city("Dallas").unwrap().pos,
            );
            book.write().bind(addr, node);
            egresses.push(node);
        }
        let fe_node = sim.add_node(
            FrontendActor::new(egresses.clone(), book.clone()),
            city("Toronto").unwrap().pos,
        );
        // Four distinct-name queries → strict alternation across the two
        // egresses.
        let script: Vec<(SimTime, Message)> = (0..4)
            .map(|i| {
                (
                    SimTime::ZERO + SimDuration::from_secs(i),
                    Message::query(
                        i as u16 + 1,
                        Question::a(name(&format!("h{i}.probe.example"))),
                    ),
                )
            })
            .collect();
        let client_node = sim.add_node(
            ClientActor::new(fe_node, script),
            city("Toronto").unwrap().pos,
        );
        {
            let mut b = book.write();
            b.bind(auth_addr, auth_node);
            b.bind("100.66.9.9".parse().unwrap(), fe_node);
            b.bind("100.66.1.1".parse().unwrap(), client_node);
        }
        ClientActor::arm(&mut sim, client_node);
        sim.run();

        let c = sim.node_mut::<ClientActor>(client_node).unwrap();
        assert_eq!(c.responses.len(), 4);
        // The authoritative saw queries from BOTH egress addresses.
        let auth = sim.node_mut::<AuthActor>(auth_node).unwrap();
        let sources: std::collections::HashSet<IpAddr> =
            auth.server().log().iter().map(|e| e.resolver).collect();
        assert_eq!(sources.len(), 2, "round robin must use both egresses");
    }
}
