//! Shared statistics: empirical CDFs, percentiles, 2-D binning.

/// An empirical CDF over `f64` samples.
#[derive(Debug, Clone)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from samples (NaNs are dropped).
    pub fn new(mut samples: Vec<f64>) -> Self {
        samples.retain(|v| v.is_finite());
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        Cdf { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples ≤ `x`.
    pub fn at(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|v| *v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile (0 ≤ q ≤ 1), by nearest-rank.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.sorted.is_empty() {
            return f64::NAN;
        }
        let q = q.clamp(0.0, 1.0);
        let idx = ((self.sorted.len() as f64 - 1.0) * q).round() as usize;
        self.sorted[idx]
    }

    /// Maximum sample.
    pub fn max(&self) -> f64 {
        self.sorted.last().copied().unwrap_or(f64::NAN)
    }

    /// Minimum sample.
    pub fn min(&self) -> f64 {
        self.sorted.first().copied().unwrap_or(f64::NAN)
    }

    /// Mean of the samples.
    pub fn mean(&self) -> f64 {
        if self.sorted.is_empty() {
            return f64::NAN;
        }
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }

    /// `(x, F(x))` points for plotting/printing: one per sample, thinned to
    /// at most `max_points`.
    pub fn points(&self, max_points: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || max_points == 0 {
            return Vec::new();
        }
        let n = self.sorted.len();
        let step = n.div_ceil(max_points);
        let mut out = Vec::new();
        for i in (0..n).step_by(step.max(1)) {
            out.push((self.sorted[i], (i + 1) as f64 / n as f64));
        }
        if out.last().map(|(x, _)| *x) != Some(self.sorted[n - 1]) {
            out.push((self.sorted[n - 1], 1.0));
        }
        out
    }
}

/// Common percentile summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Percentiles {
    /// 10th percentile.
    pub p10: f64,
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl Percentiles {
    /// Computes the summary from samples.
    pub fn of(samples: Vec<f64>) -> Self {
        let cdf = Cdf::new(samples);
        Percentiles {
            p10: cdf.quantile(0.10),
            p50: cdf.quantile(0.50),
            p90: cdf.quantile(0.90),
            p99: cdf.quantile(0.99),
            max: cdf.max(),
        }
    }
}

/// A 2-D histogram ("hexbin substitute") over (x, y) points — used for the
/// Figure 4/5 distance scatter summaries.
#[derive(Debug, Clone)]
pub struct Bins2d {
    /// Bin edges are uniform on [0, x_max] × [0, y_max].
    pub nx: usize,
    /// Number of y bins.
    pub ny: usize,
    /// Upper bound of x.
    pub x_max: f64,
    /// Upper bound of y.
    pub y_max: f64,
    /// Counts in row-major order (`y * nx + x`).
    pub counts: Vec<u64>,
}

impl Bins2d {
    /// Builds a 2-D histogram from points.
    pub fn new(points: &[(f64, f64)], nx: usize, ny: usize) -> Self {
        let x_max = points.iter().map(|(x, _)| *x).fold(1e-9, f64::max);
        let y_max = points.iter().map(|(_, y)| *y).fold(1e-9, f64::max);
        let mut counts = vec![0u64; nx * ny];
        for &(x, y) in points {
            let xi = (((x / x_max) * nx as f64) as usize).min(nx - 1);
            let yi = (((y / y_max) * ny as f64) as usize).min(ny - 1);
            counts[yi * nx + xi] += 1;
        }
        Bins2d {
            nx,
            ny,
            x_max,
            y_max,
            counts,
        }
    }

    /// Total points binned.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_basics() {
        let c = Cdf::new(vec![3.0, 1.0, 2.0, 4.0]);
        assert_eq!(c.len(), 4);
        assert_eq!(c.min(), 1.0);
        assert_eq!(c.max(), 4.0);
        assert!((c.mean() - 2.5).abs() < 1e-9);
        assert!((c.at(2.0) - 0.5).abs() < 1e-9);
        assert!((c.at(0.5) - 0.0).abs() < 1e-9);
        assert!((c.at(9.0) - 1.0).abs() < 1e-9);
        assert_eq!(c.quantile(0.0), 1.0);
        assert_eq!(c.quantile(1.0), 4.0);
        assert_eq!(c.quantile(0.5), 3.0); // nearest rank of 1.5 -> idx 2
    }

    #[test]
    fn cdf_handles_empty_and_nan() {
        let c = Cdf::new(vec![f64::NAN, f64::INFINITY]);
        assert!(c.is_empty());
        assert_eq!(c.at(1.0), 0.0);
        assert!(c.quantile(0.5).is_nan());
    }

    #[test]
    fn cdf_points_thin_correctly() {
        let c = Cdf::new((0..1000).map(|i| i as f64).collect());
        let pts = c.points(50);
        assert!(pts.len() <= 52);
        assert_eq!(pts.last().unwrap().1, 1.0);
        // Monotone.
        assert!(pts.windows(2).all(|w| w[0].0 <= w[1].0 && w[0].1 <= w[1].1));
    }

    #[test]
    fn percentiles() {
        let p = Percentiles::of((1..=100).map(|i| i as f64).collect());
        assert!((49.0..=51.0).contains(&p.p50), "{}", p.p50);
        assert_eq!(p.max, 100.0);
        assert!(p.p90 >= 89.0 && p.p90 <= 91.0);
    }

    #[test]
    fn bins2d_counts_everything() {
        let points: Vec<(f64, f64)> = (0..100).map(|i| (i as f64, (i * 7 % 100) as f64)).collect();
        let b = Bins2d::new(&points, 10, 10);
        assert_eq!(b.total(), 100);
        assert_eq!(b.counts.len(), 100);
    }
}
