//! Forwarder-population worlds for mass scans: scanner → open forwarders
//! (per-AS groups with health profiles over the fault layer) → egress
//! resolvers → one experimental authoritative server.
//!
//! [`ForwarderChainSpec::build`] wires the chain; [`run_scan`] drives the
//! simulation in slices, draining the authoritative log into a bounded
//! [`ScanCapture`] each slice so no component's memory grows with probe
//! count.

use std::net::{IpAddr, Ipv4Addr};
use std::sync::Arc;

use authoritative::{AuthServer, EcsHandling, ScopePolicy, Zone};
use dns_wire::Name;
use netsim::fault::{FaultPlan, LinkFaults};
use netsim::geo::city;
use netsim::{AddressBook, NodeId, SimDuration, Simulation};
use parking_lot::RwLock;
use resolver::actors::{AuthActor, EgressActor, RelayActor, SharedBook};
use resolver::{Resolver, ResolverConfig};

use crate::capture::ScanCapture;
use crate::pipeline::{ProbeFeed, ProbeTarget, ScanConfig, ScanStats, ScannerNode};

/// A forwarder group's health profile, realised as link faults.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ForwarderHealth {
    /// Responds normally.
    Healthy,
    /// A routing blackhole: probes vanish (no RNG drawn), every probe
    /// times out — the breaker-by-timeout population.
    Dead,
    /// Answers, but replies are rewritten to REFUSED — the
    /// breaker-by-rcode population.
    Refusing,
    /// Drops each packet with this probability (both directions) — the
    /// retry-budget population.
    Lossy(f64),
}

/// One group of identically-configured forwarders inside a single AS.
#[derive(Debug, Clone, Copy)]
pub struct ForwarderGroup {
    /// Forwarders in the group.
    pub count: usize,
    /// Their shared health profile.
    pub health: ForwarderHealth,
    /// The AS they all sit in (one rate-limit bucket per AS).
    pub asn: u32,
}

/// Blueprint for a scan world.
#[derive(Debug)]
pub struct ForwarderChainSpec {
    /// Simulation seed — two builds with the same spec and seed run
    /// byte-identically.
    pub seed: u64,
    /// Forwarder populations.
    pub groups: Vec<ForwarderGroup>,
    /// Egress resolvers; forwarders round-robin across them. Empty →
    /// one RFC-compliant egress at 9.9.9.9.
    pub egress_configs: Vec<ResolverConfig>,
    /// Whether the authoritative server logs queries (drain with
    /// [`run_scan`]; turn off for pure-throughput runs).
    pub auth_logging: bool,
    /// Replaces the default synthesizing authoritative — e.g. a
    /// conformance-scenario server with a scripted ECS stance. The
    /// caller keeps [`ScanConfig::zone`] equal to the server's apex
    /// (that string is what routes egress queries to the auth node).
    pub custom_auth: Option<AuthServer>,
}

/// Where world components live (cycled per forwarder for latency
/// diversity without RNG).
const SITES: &[&str] = &[
    "Chicago",
    "Dallas",
    "Seattle",
    "Miami",
    "Toronto",
    "Santiago",
    "London",
    "Frankfurt",
    "Milan",
    "Stockholm",
];

impl ForwarderChainSpec {
    /// An empty spec: no forwarders, default egress, logging on.
    pub fn new(seed: u64) -> Self {
        ForwarderChainSpec {
            seed,
            groups: Vec::new(),
            egress_configs: Vec::new(),
            auth_logging: true,
            custom_auth: None,
        }
    }

    /// Serves the scan through `auth` instead of the default synthesizing
    /// zone (see [`ForwarderChainSpec::custom_auth`]).
    pub fn with_auth(mut self, auth: AuthServer) -> Self {
        self.custom_auth = Some(auth);
        self
    }

    /// Adds a forwarder group.
    pub fn group(mut self, count: usize, health: ForwarderHealth, asn: u32) -> Self {
        self.groups.push(ForwarderGroup { count, health, asn });
        self
    }

    /// Adds an egress resolver.
    pub fn egress(mut self, config: ResolverConfig) -> Self {
        self.egress_configs.push(config);
        self
    }

    /// Builds the world. `make_feed` receives the realised target list
    /// (one entry per forwarder, group order) and returns the probe feed.
    pub fn build<F: ProbeFeed>(
        mut self,
        cfg: ScanConfig,
        make_feed: impl FnOnce(&[ProbeTarget]) -> F,
    ) -> ScanWorld {
        let book: SharedBook = Arc::new(RwLock::new(AddressBook::new()));
        let mut sim = Simulation::new(self.seed);
        let pos = |i: usize| city(SITES[i % SITES.len()]).expect("known city").pos;

        // Authoritative: the experimental scan server. By default it
        // synthesises an A record for every name under the zone, so
        // auto-generated probe qnames all resolve without per-name zone
        // state; a custom server (scripted ECS stance) may stand in.
        let zone_name = Name::from_ascii(&cfg.zone).expect("zone must parse");
        let auth_addr: IpAddr = "198.51.100.53".parse().unwrap();
        let mut auth = self.custom_auth.take().unwrap_or_else(|| {
            let mut zone = Zone::new(zone_name.clone());
            zone.set_synth_a(300, Ipv4Addr::new(198, 51, 100, 1));
            AuthServer::new(zone, EcsHandling::open(ScopePolicy::SourceMinusK(4)))
        });
        auth.set_logging(self.auth_logging);
        let auth_node = sim.add_node(AuthActor::new(auth, book.clone()), pos(0));
        book.write().bind(auth_addr, auth_node);

        // Egress resolvers.
        let configs = if self.egress_configs.is_empty() {
            vec![ResolverConfig::rfc_compliant("9.9.9.9".parse().unwrap())]
        } else {
            self.egress_configs
        };
        let mut egress_addrs = Vec::new();
        let mut egress_nodes = Vec::new();
        for (i, config) in configs.into_iter().enumerate() {
            let addr = config.addr;
            let node = sim.add_node(
                EgressActor::new(
                    Resolver::new(config),
                    vec![(zone_name.clone(), auth_addr)],
                    book.clone(),
                ),
                pos(i + 1),
            );
            book.write().bind(addr, node);
            egress_addrs.push(addr);
            egress_nodes.push(node);
        }

        // Forwarder populations, with their health realised as link
        // faults between scanner and forwarder. Addresses walk
        // 100.64.0.0/10 (the CGN range real open forwarders often sit
        // behind).
        let population: usize = self.groups.iter().map(|g| g.count).sum();
        let scanner_node_id = NodeId(sim.node_count() + population);
        let mut plan = FaultPlan::none();
        let mut targets = Vec::new();
        let mut b = book.write();
        for group in &self.groups {
            for _ in 0..group.count {
                let i = targets.len() as u32;
                assert!(i < (1 << 22), "forwarder population exceeds 100.64/10");
                let addr = IpAddr::V4(Ipv4Addr::from(0x6440_0000u32 + 1 + i));
                let node = sim.add_node(
                    RelayActor::new(egress_nodes[targets.len() % egress_nodes.len()]),
                    pos(targets.len() + 2),
                );
                b.bind(addr, node);
                match group.health {
                    ForwarderHealth::Healthy => {}
                    ForwarderHealth::Dead => {
                        plan.set_link(
                            scanner_node_id,
                            node,
                            LinkFaults {
                                blackhole: true,
                                ..LinkFaults::NONE
                            },
                        );
                    }
                    ForwarderHealth::Refusing => {
                        plan.set_link(
                            node,
                            scanner_node_id,
                            LinkFaults {
                                refused_replies: 1.0,
                                ..LinkFaults::NONE
                            },
                        );
                    }
                    ForwarderHealth::Lossy(p) => {
                        plan.set_link(scanner_node_id, node, LinkFaults::lossy(p));
                        plan.set_link(node, scanner_node_id, LinkFaults::lossy(p));
                    }
                }
                targets.push(ProbeTarget {
                    addr,
                    node,
                    asn: group.asn,
                });
            }
        }
        drop(b);
        sim.set_fault_plan(plan);

        // The scanner itself, last so `scanner_node_id` was predictable.
        let feed = make_feed(&targets);
        let scanner = sim.add_node(ScannerNode::new(cfg, feed), pos(0));
        assert_eq!(scanner, scanner_node_id, "scanner must be the last node");
        book.write().bind("203.0.113.250".parse().unwrap(), scanner);
        ScannerNode::arm(&mut sim, scanner);

        ScanWorld {
            sim,
            book,
            scanner,
            auth: auth_node,
            targets,
            egress_addrs,
        }
    }
}

/// A built scan world, ready for [`run_scan`].
pub struct ScanWorld {
    /// The simulation (exposed for metrics/tracer wiring before the run).
    pub sim: Simulation,
    /// The shared address book.
    pub book: SharedBook,
    /// The scanner node.
    pub scanner: NodeId,
    /// The authoritative node (its log is drained by [`run_scan`]).
    pub auth: NodeId,
    /// One entry per forwarder, group order.
    pub targets: Vec<ProbeTarget>,
    /// Egress resolver addresses (the §6 classification subjects).
    pub egress_addrs: Vec<IpAddr>,
}

impl ScanWorld {
    /// The scanner node, concretely.
    pub fn scanner_mut(&mut self) -> &mut ScannerNode {
        self.sim
            .node_mut::<ScannerNode>(self.scanner)
            .expect("scanner node")
    }

    /// The authoritative actor, concretely.
    pub fn auth_mut(&mut self) -> &mut AuthActor {
        self.sim
            .node_mut::<AuthActor>(self.auth)
            .expect("auth node")
    }
}

/// Final report of a driven scan. All counters are exact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanReport {
    /// Pipeline counters.
    pub stats: ScanStats,
    /// Forwarders in the world.
    pub targets: usize,
    /// Distinct ASes rate-limit-tracked.
    pub ases: usize,
    /// Breakers instantiated (targets ever probed).
    pub breakers: usize,
    /// Whether `probes == answered + retry_exhausted + shed_rate_limit +
    /// shed_breaker` held at the end.
    pub reconciled: bool,
    /// True if the run stalled (events drained with probes unaccounted) —
    /// always a bug, surfaced rather than hidden.
    pub stuck: bool,
    /// Virtual time at completion, microseconds.
    pub sim_end_us: u64,
}

impl ScanReport {
    /// Deterministic single-line JSON (stable key order).
    pub fn to_json(&self) -> String {
        let s = &self.stats;
        format!(
            concat!(
                "{{\"probes\":{},\"attempts\":{},\"answered\":{},\"refused\":{},",
                "\"servfail\":{},\"retries\":{},\"retry_exhausted\":{},",
                "\"shed_rate_limit\":{},\"shed_breaker\":{},\"rate_deferrals\":{},",
                "\"breaker_opens\":{},\"max_in_flight\":{},\"targets\":{},",
                "\"ases\":{},\"breakers\":{},\"reconciled\":{},\"stuck\":{},",
                "\"sim_end_us\":{}}}"
            ),
            s.probes,
            s.attempts,
            s.answered,
            s.refused,
            s.servfail,
            s.retries,
            s.retry_exhausted,
            s.shed_rate_limit,
            s.shed_breaker,
            s.rate_deferrals,
            s.breaker_opens,
            s.max_in_flight,
            self.targets,
            self.ases,
            self.breakers,
            self.reconciled,
            self.stuck,
            self.sim_end_us,
        )
    }
}

/// Drives the world to completion in `slice`-sized steps, draining the
/// authoritative query log into `capture` after each step so neither the
/// log nor the capture grows with probe count.
pub fn run_scan(
    world: &mut ScanWorld,
    slice: SimDuration,
    capture: &mut ScanCapture,
) -> ScanReport {
    let slice = if slice == SimDuration::ZERO {
        SimDuration::from_secs(60)
    } else {
        slice
    };
    let mut stuck = false;
    loop {
        let deadline = world.sim.now() + slice;
        world.sim.run_until(deadline);
        let log = world.auth_mut().server_mut().take_log();
        capture.absorb(log);
        if world.scanner_mut().is_done() {
            break;
        }
        if !world.sim.events_pending() {
            stuck = true;
            break;
        }
    }
    let sim_end_us = world.sim.now().as_micros();
    let targets = world.targets.len();
    let scanner = world.scanner_mut();
    let stats = scanner.stats();
    ScanReport {
        stats,
        targets,
        ases: scanner.ases_tracked(),
        breakers: scanner.breakers_tracked(),
        reconciled: stats.reconciles() && !stuck,
        stuck,
        sim_end_us,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::RoundRobinFeed;

    #[test]
    fn healthy_world_answers_everything() {
        let world = ForwarderChainSpec::new(11)
            .group(4, ForwarderHealth::Healthy, 64500)
            .build(ScanConfig::default(), |targets| {
                RoundRobinFeed::new(targets.to_vec(), 40)
            });
        let mut world = world;
        let mut capture = ScanCapture::new(256);
        let report = run_scan(&mut world, SimDuration::from_secs(30), &mut capture);
        assert!(report.reconciled, "{report:?}");
        assert!(!report.stuck);
        assert_eq!(report.stats.probes, 40);
        assert_eq!(report.stats.answered, 40);
        assert_eq!(report.stats.refused, 0);
        assert_eq!(report.stats.shed_breaker, 0);
        assert!(capture.total > 0, "probes must reach the authoritative");
    }

    #[test]
    fn dead_forwarders_trip_breakers_and_everything_reconciles() {
        // A small window so probes enter over time: breakers trip while
        // later probes are still being admitted, producing sheds.
        let cfg = ScanConfig {
            window: 4,
            ..ScanConfig::default()
        };
        let mut world = ForwarderChainSpec::new(12)
            .group(2, ForwarderHealth::Healthy, 64500)
            .group(2, ForwarderHealth::Dead, 64501)
            .build(cfg, |targets| RoundRobinFeed::new(targets.to_vec(), 80));
        let mut capture = ScanCapture::new(256);
        let report = run_scan(&mut world, SimDuration::from_secs(30), &mut capture);
        assert!(report.reconciled, "{report:?}");
        assert!(report.stats.retry_exhausted > 0, "dead targets time out");
        assert!(report.stats.breaker_opens > 0, "breakers must trip");
        assert!(report.stats.shed_breaker > 0, "open breakers shed probes");
        assert_eq!(
            report.stats.answered,
            report.stats.probes - report.stats.retry_exhausted - report.stats.shed_breaker,
            "healthy half still answers: {report:?}"
        );
    }

    #[test]
    fn refusing_forwarders_are_accounted_as_answered_refused() {
        let mut world = ForwarderChainSpec::new(13)
            .group(2, ForwarderHealth::Refusing, 64502)
            .build(ScanConfig::default(), |targets| {
                RoundRobinFeed::new(targets.to_vec(), 20)
            });
        let mut capture = ScanCapture::new(256);
        let report = run_scan(&mut world, SimDuration::from_secs(30), &mut capture);
        assert!(report.reconciled, "{report:?}");
        assert!(report.stats.refused > 0, "REFUSED rewrites must be seen");
        assert!(
            report.stats.breaker_opens > 0,
            "REFUSED trips breakers: {report:?}"
        );
    }
}
