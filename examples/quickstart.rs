//! Quickstart: a minimal ECS world — one client, one recursive resolver,
//! one CDN authoritative — showing scope-based caching in action.
//!
//! Run with: `cargo run --example quickstart`

use std::net::{IpAddr, Ipv4Addr};

use authoritative::{AuthServer, CdnBehavior, EcsHandling, GeoDb, ScopePolicy, Zone};
use dns_wire::{IpPrefix, Message, Name, Question};
use netsim::geo::{city, CITIES};
use netsim::SimTime;
use resolver::{Resolver, ResolverConfig};
use topology::{CdnFootprint, EdgeServerSpec};

fn main() {
    // --- 1. A CDN with edges in every city of the built-in table ---
    let footprint = CdnFootprint {
        edges: CITIES
            .iter()
            .enumerate()
            .map(|(i, c)| EdgeServerSpec {
                addr: IpAddr::V4(Ipv4Addr::new(203, 0, 113, i as u8 + 1)),
                pos: c.pos,
                city: c.name.to_string(),
            })
            .collect(),
    };

    // --- 2. A geolocation database (the CDN's EdgeScape) ---
    // Two client subnets: one in Chicago, one in Tokyo.
    let chicago_subnet = IpPrefix::v4(Ipv4Addr::new(100, 70, 1, 0), 24).unwrap();
    let tokyo_subnet = IpPrefix::v4(Ipv4Addr::new(100, 71, 1, 0), 24).unwrap();
    let mut geodb = GeoDb::new();
    geodb.insert(chicago_subnet, city("Chicago").unwrap().pos);
    geodb.insert(tokyo_subnet, city("Tokyo").unwrap().pos);

    // --- 3. The CDN's authoritative server, ECS open ---
    let apex = Name::from_ascii("cdn.example").unwrap();
    let www = apex.child("www").unwrap();
    let mut cdn = AuthServer::new(Zone::new(apex), EcsHandling::open(ScopePolicy::MatchSource))
        .with_cdn(CdnBehavior::cdn1(footprint.clone()), geodb);

    // --- 4. An RFC-compliant recursive resolver ---
    let resolver_addr: IpAddr = "9.9.9.9".parse().unwrap();
    let mut resolver = Resolver::new(ResolverConfig::rfc_compliant(resolver_addr));

    let edge_city = |resp: &Message| {
        let addr = resp.answer_addrs()[0];
        footprint
            .edges
            .iter()
            .find(|e| e.addr == addr)
            .unwrap()
            .city
            .clone()
    };

    // --- 5. Resolve from both subnets ---
    let chicago_client: IpAddr = "100.70.1.50".parse().unwrap();
    let tokyo_client: IpAddr = "100.71.1.50".parse().unwrap();

    let q = Message::query(1, Question::a(www.clone()));
    let resp = resolver.resolve_msg(&q, chicago_client, SimTime::from_secs(0), &mut cdn);
    println!("Chicago client  → edge in {}", edge_city(&resp));

    let resp = resolver.resolve_msg(&q, tokyo_client, SimTime::from_secs(1), &mut cdn);
    println!("Tokyo client    → edge in {}", edge_city(&resp));

    // --- 6. Scope-based caching: same subnet = cache hit ---
    let chicago_neighbor: IpAddr = "100.70.1.99".parse().unwrap();
    resolver.resolve_msg(&q, chicago_neighbor, SimTime::from_secs(2), &mut cdn);
    println!(
        "3 clients, {} upstream queries (the Chicago neighbour hit the scoped cache entry)",
        resolver.stats().upstream_queries
    );
    println!(
        "cache: {} hits, {} misses",
        resolver.cache_stats().hits,
        resolver.cache_stats().misses
    );

    assert_eq!(resolver.stats().upstream_queries, 2);
}
