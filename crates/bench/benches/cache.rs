//! Microbenchmarks of the ECS-aware cache: lookup/insert costs as the
//! per-name entry count grows (the §7 blow-up, felt as CPU), plus the
//! trace-replay engine's records/sec at different shard counts.

use analysis::{CacheSimConfig, CacheSimulator};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dns_wire::{EcsOption, Name, Rdata, Record, RecordType};
use netsim::SimTime;
use resolver::{CacheCompliance, EcsCache};
use std::net::{IpAddr, Ipv4Addr};
use workload::PublicCdnTraceGen;

fn filled_cache(entries_per_name: u32) -> (EcsCache, Name) {
    let mut cache = EcsCache::new(CacheCompliance::Honor);
    let name = Name::from_ascii("www.example.com").unwrap();
    let rec = vec![Record::new(
        name.clone(),
        600,
        Rdata::A(Ipv4Addr::new(203, 0, 113, 1)),
    )];
    for i in 0..entries_per_name {
        let subnet = Ipv4Addr::from(0x0A00_0000 | (i << 8));
        let ecs = EcsOption::from_v4(subnet, 24).with_scope(24);
        cache.insert(
            name.clone(),
            RecordType::A,
            rec.clone(),
            Some(ecs),
            600,
            SimTime::ZERO,
        );
    }
    (cache, name)
}

fn bench_lookup_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache/lookup_vs_entries_per_name");
    for entries in [1u32, 4, 16, 64, 256] {
        let (mut cache, name) = filled_cache(entries);
        // The hit probe: a client inside the last-inserted subnet.
        let hit_client = IpAddr::V4(Ipv4Addr::from(0x0A00_0000 | ((entries - 1) << 8) | 7));
        // The miss probe: a client outside every cached scope.
        let miss_client = IpAddr::V4(Ipv4Addr::new(192, 0, 2, 7));
        g.bench_with_input(BenchmarkId::new("hit", entries), &entries, |b, _| {
            b.iter(|| {
                cache.lookup(
                    black_box(&name),
                    RecordType::A,
                    hit_client,
                    SimTime::from_secs(1),
                )
            })
        });
        let (mut cache, name) = filled_cache(entries);
        g.bench_with_input(BenchmarkId::new("miss", entries), &entries, |b, _| {
            b.iter(|| {
                cache.lookup(
                    black_box(&name),
                    RecordType::A,
                    miss_client,
                    SimTime::from_secs(1),
                )
            })
        });
    }
    g.finish();
}

fn bench_insert(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache/insert");
    let name = Name::from_ascii("www.example.com").unwrap();
    let rec = vec![Record::new(
        name.clone(),
        600,
        Rdata::A(Ipv4Addr::new(203, 0, 113, 1)),
    )];
    g.bench_function("scoped_insert", |b| {
        let mut cache = EcsCache::new(CacheCompliance::Honor);
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            let ecs = EcsOption::from_v4(Ipv4Addr::from(i << 8), 24).with_scope(24);
            cache.insert(
                name.clone(),
                RecordType::A,
                rec.clone(),
                Some(ecs),
                600,
                SimTime::ZERO,
            )
        })
    });
    g.finish();
}

fn bench_compliance_modes(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache/compliance_mode_lookup");
    for (label, mode) in [
        ("honor", CacheCompliance::Honor),
        ("ignore_scope", CacheCompliance::IgnoreScope),
        ("cap22", CacheCompliance::CapPrefix(22)),
    ] {
        let mut cache = EcsCache::new(mode);
        let name = Name::from_ascii("www.example.com").unwrap();
        let rec = vec![Record::new(
            name.clone(),
            600,
            Rdata::A(Ipv4Addr::new(203, 0, 113, 1)),
        )];
        for i in 0..64u32 {
            let ecs = EcsOption::from_v4(Ipv4Addr::from(0x0A00_0000 | (i << 8)), 24).with_scope(24);
            cache.insert(
                name.clone(),
                RecordType::A,
                rec.clone(),
                Some(ecs),
                600,
                SimTime::ZERO,
            );
        }
        let client = IpAddr::V4(Ipv4Addr::new(10, 0, 31, 7));
        g.bench_function(label, |b| {
            b.iter(|| {
                cache.lookup(
                    black_box(&name),
                    RecordType::A,
                    client,
                    SimTime::from_secs(1),
                )
            })
        });
    }
    g.finish();
}

/// Replay throughput of the §7 simulator: sequential vs sharded, both
/// modes computed in the single pass. Identical results at every thread
/// count, so only the records/sec rate should move.
fn bench_sim_replay(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache/sim_replay");
    g.sample_size(10);
    let trace = PublicCdnTraceGen {
        resolvers: 24,
        subnets_per_resolver: 40,
        hostnames: 120,
        queries: 200_000,
        duration: netsim::SimDuration::from_secs(600),
        ..PublicCdnTraceGen::default()
    }
    .generate();
    g.throughput(Throughput::Elements(trace.len() as u64));
    for parallelism in [1usize, 2, 8] {
        let sim = CacheSimulator::new(CacheSimConfig {
            parallelism,
            ..CacheSimConfig::default()
        });
        g.bench_with_input(
            BenchmarkId::new("threads", parallelism),
            &parallelism,
            |b, _| b.iter(|| sim.run(black_box(&trace)).per_resolver.len()),
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_lookup_scaling,
    bench_insert,
    bench_compliance_modes,
    bench_sim_replay
);
criterion_main!(benches);
