//! The bounded in-flight window: a fixed-size slot table with a free
//! list and per-slot generations.
//!
//! The table is the *only* per-probe state the pipeline holds — there is
//! no queue behind it, so memory is bounded by the window size no matter
//! how many probes a scan issues. Generations make slot handles (and the
//! timer tokens derived from them) ABA-safe: a timeout timer armed for a
//! probe that has since completed finds a stale generation and is ignored
//! instead of cancelling an unrelated probe that reused the slot.

/// A generation-stamped handle to one slot. Packs into a `u64` timer
/// token: the low 16 bits are the index, the high 48 the generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SlotRef {
    /// Slot index (doubles as the probe's DNS transaction id).
    pub index: u16,
    /// Generation the slot had when the handle was issued.
    pub generation: u64,
}

impl SlotRef {
    /// Packs the handle into a timer token. Generations above 2^48 would
    /// alias; a scan would need ~10^14 probes per slot to get there.
    pub fn token(self) -> u64 {
        (self.generation << 16) | self.index as u64
    }

    /// Reverses [`SlotRef::token`].
    pub fn from_token(token: u64) -> Self {
        SlotRef {
            index: (token & 0xFFFF) as u16,
            generation: token >> 16,
        }
    }
}

struct Entry<T> {
    generation: u64,
    value: Option<T>,
}

/// Fixed-capacity slot table: O(1) insert/remove, no growth, LIFO reuse.
pub struct SlotTable<T> {
    slots: Vec<Entry<T>>,
    free: Vec<u16>,
    live: usize,
}

impl<T> SlotTable<T> {
    /// A table with `capacity` slots (at most 65536 so indices fit the
    /// DNS transaction-id space).
    pub fn new(capacity: usize) -> Self {
        assert!(
            (1..=u16::MAX as usize + 1).contains(&capacity),
            "slot capacity must be in 1..=65536"
        );
        let mut slots = Vec::with_capacity(capacity);
        // Generation starts at 1 so a zero token never matches a slot.
        slots.resize_with(capacity, || Entry {
            generation: 1,
            value: None,
        });
        // LIFO: low indices are handed out first.
        let free = (0..capacity as u32).rev().map(|i| i as u16).collect();
        SlotTable {
            slots,
            free,
            live: 0,
        }
    }

    /// Total slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Occupied slots.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Whether every slot is occupied.
    pub fn is_full(&self) -> bool {
        self.live == self.slots.len()
    }

    /// Claims a free slot for `value`; `None` when the window is full
    /// (callers must shed or defer — there is no queue).
    pub fn insert(&mut self, value: T) -> Option<SlotRef> {
        let index = self.free.pop()?;
        let entry = &mut self.slots[index as usize];
        debug_assert!(entry.value.is_none());
        entry.value = Some(value);
        self.live += 1;
        Some(SlotRef {
            index,
            generation: entry.generation,
        })
    }

    /// The slot behind a handle, if the generation still matches.
    pub fn get(&self, r: SlotRef) -> Option<&T> {
        let entry = self.slots.get(r.index as usize)?;
        (entry.generation == r.generation)
            .then_some(entry.value.as_ref())
            .flatten()
    }

    /// Mutable access with the same generation check.
    pub fn get_mut(&mut self, r: SlotRef) -> Option<&mut T> {
        let entry = self.slots.get_mut(r.index as usize)?;
        (entry.generation == r.generation)
            .then_some(entry.value.as_mut())
            .flatten()
    }

    /// The live slot at a bare index (responses are matched by DNS id =
    /// index), along with its current handle.
    pub fn get_index(&self, index: u16) -> Option<(SlotRef, &T)> {
        let entry = self.slots.get(index as usize)?;
        entry.value.as_ref().map(|v| {
            (
                SlotRef {
                    index,
                    generation: entry.generation,
                },
                v,
            )
        })
    }

    /// Frees the slot: bumps its generation (invalidating outstanding
    /// handles and timer tokens) and returns the value.
    pub fn remove(&mut self, r: SlotRef) -> Option<T> {
        let entry = self.slots.get_mut(r.index as usize)?;
        if entry.generation != r.generation || entry.value.is_none() {
            return None;
        }
        entry.generation += 1;
        self.live -= 1;
        self.free.push(r.index);
        entry.value.take()
    }

    /// Iterates the live slots (index order).
    pub fn iter(&self) -> impl Iterator<Item = (SlotRef, &T)> {
        self.slots.iter().enumerate().filter_map(|(i, e)| {
            e.value.as_ref().map(|v| {
                (
                    SlotRef {
                        index: i as u16,
                        generation: e.generation,
                    },
                    v,
                )
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_to_capacity_then_refuses() {
        let mut t = SlotTable::new(3);
        let a = t.insert("a").unwrap();
        let b = t.insert("b").unwrap();
        let c = t.insert("c").unwrap();
        assert!(t.is_full());
        assert_eq!(t.insert("d"), None, "no queue behind the window");
        assert_eq!(t.live(), 3);
        assert_eq!(t.get(a), Some(&"a"));
        assert_eq!(t.remove(b), Some("b"));
        assert!(!t.is_full());
        let d = t.insert("d").unwrap();
        assert_eq!(d.index, b.index, "LIFO reuse of the freed slot");
        assert_ne!(d.generation, b.generation);
        assert_eq!(t.get(c), Some(&"c"));
    }

    #[test]
    fn stale_handles_are_dead() {
        let mut t = SlotTable::new(2);
        let a = t.insert(1u32).unwrap();
        t.remove(a);
        let b = t.insert(2u32).unwrap();
        assert_eq!(b.index, a.index);
        // The old handle no longer reads, writes, or removes.
        assert_eq!(t.get(a), None);
        assert_eq!(t.get_mut(a), None);
        assert_eq!(t.remove(a), None);
        assert_eq!(t.get(b), Some(&2));
        assert_eq!(t.live(), 1);
    }

    #[test]
    fn tokens_round_trip() {
        let r = SlotRef {
            index: 0xBEEF,
            generation: 123_456_789,
        };
        assert_eq!(SlotRef::from_token(r.token()), r);
        let zero = SlotRef {
            index: 0,
            generation: 1,
        };
        assert_ne!(zero.token(), 0, "generation 1 keeps tokens nonzero");
    }

    #[test]
    fn index_lookup_sees_only_live_slots() {
        let mut t = SlotTable::new(2);
        let a = t.insert("x").unwrap();
        let (r, v) = t.get_index(a.index).unwrap();
        assert_eq!((r, *v), (a, "x"));
        t.remove(a);
        assert!(t.get_index(a.index).is_none());
        assert_eq!(t.iter().count(), 0);
    }
}
