//! Regenerates the paper's tables as benchmarks: each iteration runs the
//! full experiment pipeline at reduced scale, and the first iteration
//! prints the reproduced rows.

use criterion::{criterion_group, criterion_main, Criterion};
use ecs_study::experiments::{table1, table2};
use std::sync::Once;

static PRINT_T1: Once = Once::new();
static PRINT_T2: Once = Once::new();

fn bench_table1(c: &mut Criterion) {
    let mut g = c.benchmark_group("tables/table1_prefix_lengths");
    g.sample_size(10);
    let config = table1::Config {
        scale: 30,
        ..table1::Config::default()
    };
    g.bench_function("scan_and_tabulate", |b| {
        b.iter(|| {
            let (out, report) = table1::run(&config);
            PRINT_T1.call_once(|| println!("\n{report}"));
            out.table.resolver_count()
        })
    });
    g.finish();
}

fn bench_table2(c: &mut Criterion) {
    let mut g = c.benchmark_group("tables/table2_unroutable_prefixes");
    g.sample_size(20);
    let config = table2::Config::default();
    g.bench_function("five_variant_probe", |b| {
        b.iter(|| {
            let (out, report) = table2::run(&config);
            PRINT_T2.call_once(|| println!("\n{report}"));
            out.rows.len()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_table1, bench_table2);
criterion_main!(benches);
