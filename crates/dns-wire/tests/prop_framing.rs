//! Property-based tests for stream framing (RFC 1035 §4.2.2 length
//! prefixes, DoH HTTP envelopes) and the truncation/retry equivalence the
//! transport ladder relies on: a UDP answer that comes back TC and is
//! re-fetched over TCP must deliver byte-for-byte what a direct TCP
//! exchange would have.

use dns_wire::framing::{
    frame_doh_request, frame_doh_response, frame_tcp, unframe_doh_request, unframe_doh_response,
    unframe_tcp, MAX_FRAME_LEN,
};
use dns_wire::{EcsOption, Message, Name, Question, Rdata, Record, WireError};
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn arb_label() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z0-9]([a-z0-9-]{0,14}[a-z0-9])?").unwrap()
}

fn arb_name() -> impl Strategy<Value = Name> {
    proptest::collection::vec(arb_label(), 1..4)
        .prop_map(|labels| Name::from_ascii(&labels.join(".")).unwrap())
}

/// An answer-bearing response message whose wire size scales with the
/// record count — the shape UDP truncation decisions are made over.
fn arb_response() -> impl Strategy<Value = Message> {
    (
        any::<u16>(),
        arb_name(),
        proptest::collection::vec(any::<u32>(), 0..60),
        proptest::option::of((any::<u32>().prop_map(Ipv4Addr::from), 0u8..=32)),
    )
        .prop_map(|(id, qname, addrs, ecs)| {
            let mut m = Message::query(id, Question::a(qname.clone()));
            m.flags.qr = true;
            for a in addrs {
                m.answers
                    .push(Record::new(qname.clone(), 300, Rdata::A(Ipv4Addr::from(a))));
            }
            if let Some((addr, len)) = ecs {
                m.set_ecs(EcsOption::from_v4(addr, len).with_scope(len));
            }
            m
        })
}

/// One framed TCP exchange: what a direct stream transport delivers.
fn deliver_tcp(msg: &Message) -> Message {
    let wire = msg.to_bytes().unwrap();
    let framed = frame_tcp(&wire).unwrap();
    let (payload, consumed) = unframe_tcp(&framed).unwrap();
    assert_eq!(consumed, framed.len());
    Message::from_bytes(payload).unwrap()
}

/// The UDP-first path against an advertised EDNS buffer: answers that fit
/// are delivered as datagrams; oversize answers come back TC (headers
/// only) and are re-fetched over framed TCP (RFC 7766). Returns the
/// finally delivered message and whether the TCP retry fired.
fn deliver_udp_with_tcp_retry(msg: &Message, advertised: usize) -> (Message, bool) {
    let wire = msg.to_bytes().unwrap();
    if wire.len() <= advertised {
        return (Message::from_bytes(&wire).unwrap(), false);
    }
    // The truncated datagram: TC set, answers stripped — parseable, but
    // useless, which is exactly why the retry must happen.
    let mut tc = msg.clone();
    tc.flags.tc = true;
    tc.answers.clear();
    let tc_wire = tc.to_bytes().unwrap();
    assert!(Message::from_bytes(&tc_wire).unwrap().flags.tc);
    (deliver_tcp(msg), true)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn tcp_frame_roundtrips_any_payload(payload in proptest::collection::vec(any::<u8>(), 0..3000)) {
        let framed = frame_tcp(&payload).unwrap();
        prop_assert_eq!(framed.len(), payload.len() + 2);
        let (back, consumed) = unframe_tcp(&framed).unwrap();
        prop_assert_eq!(back, &payload[..]);
        prop_assert_eq!(consumed, framed.len());
    }

    #[test]
    fn tcp_frames_concatenate_and_drain_in_order(
        a in proptest::collection::vec(any::<u8>(), 0..500),
        b in proptest::collection::vec(any::<u8>(), 0..500),
    ) {
        let mut stream = frame_tcp(&a).unwrap();
        stream.extend_from_slice(&frame_tcp(&b).unwrap());
        let (first, consumed) = unframe_tcp(&stream).unwrap();
        prop_assert_eq!(first, &a[..]);
        let (second, rest) = unframe_tcp(&stream[consumed..]).unwrap();
        prop_assert_eq!(second, &b[..]);
        prop_assert_eq!(consumed + rest, stream.len());
    }

    #[test]
    fn every_strict_prefix_of_a_tcp_frame_wants_more_bytes(
        payload in proptest::collection::vec(any::<u8>(), 0..300),
        cut in any::<usize>(),
    ) {
        let framed = frame_tcp(&payload).unwrap();
        let cut = cut % framed.len();
        // Any strict prefix is "incomplete", never "malformed" and never a
        // spurious success: stream readers may retry with more bytes.
        prop_assert!(matches!(
            unframe_tcp(&framed[..cut]),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn oversize_payloads_are_rejected_not_wrapped(extra in 1usize..100) {
        let huge = vec![0u8; MAX_FRAME_LEN + extra];
        prop_assert_eq!(
            frame_tcp(&huge),
            Err(WireError::MessageTooLong(MAX_FRAME_LEN + extra))
        );
    }

    #[test]
    fn doh_envelopes_roundtrip_with_pipelined_tails(
        body in proptest::collection::vec(any::<u8>(), 0..1200),
        tail in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let mut req = frame_doh_request(&body);
        let req_len = req.len();
        req.extend_from_slice(&tail);
        let (got, consumed) = unframe_doh_request(&req).unwrap();
        prop_assert_eq!(got, &body[..]);
        prop_assert_eq!(consumed, req_len);

        let mut resp = frame_doh_response(&body);
        let resp_len = resp.len();
        resp.extend_from_slice(&tail);
        let (got, consumed) = unframe_doh_response(&resp).unwrap();
        prop_assert_eq!(got, &body[..]);
        prop_assert_eq!(consumed, resp_len);
    }

    #[test]
    fn doh_strict_prefixes_want_more_bytes(
        body in proptest::collection::vec(any::<u8>(), 0..300),
        cut in any::<usize>(),
    ) {
        let framed = frame_doh_response(&body);
        let cut = cut % framed.len();
        prop_assert!(matches!(
            unframe_doh_response(&framed[..cut]),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn tc_plus_tcp_retry_equals_direct_tcp(
        msg in arb_response(),
        advertised in 512usize..4096,
    ) {
        let (via_ladder, retried) = deliver_udp_with_tcp_retry(&msg, advertised);
        let direct = deliver_tcp(&msg);
        prop_assert_eq!(&via_ladder, &direct);
        prop_assert_eq!(&via_ladder, &msg);
        // The retry fires exactly when the answer exceeds the buffer.
        prop_assert_eq!(retried, msg.to_bytes().unwrap().len() > advertised);
    }

    #[test]
    fn edns_buffer_boundary_is_exact(msg in arb_response()) {
        let len = msg.to_bytes().unwrap().len();
        // Advertising exactly the wire size delivers over UDP; one byte
        // less forces the stream retry. Either way the same message
        // arrives.
        let (fit, retried_fit) = deliver_udp_with_tcp_retry(&msg, len);
        prop_assert!(!retried_fit);
        let (tight, retried_tight) = deliver_udp_with_tcp_retry(&msg, len - 1);
        prop_assert!(retried_tight);
        prop_assert_eq!(&fit, &tight);
        prop_assert_eq!(&fit, &msg);
    }
}
