//! ECS probing strategies (§6.1): when does a resolver attach the option?
//!
//! RFC 7871 tells resolvers not to send ECS blindly — they should probe for
//! support or keep a whitelist. The paper classified what deployed
//! resolvers actually do into five patterns; each is a variant here.

use std::collections::{HashMap, HashSet};

use dns_wire::Name;
use netsim::{SimDuration, SimTime};

/// The decision produced by a probing strategy for one outgoing query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EcsDecision {
    /// Attach the client-derived ECS option.
    SendClientEcs,
    /// Attach an ECS option carrying the loopback address (the 32
    /// interval-probing resolvers' behaviour).
    SendLoopbackProbe,
    /// Attach an ECS option carrying the resolver's own address — the
    /// paper's *recommended* probing prefix.
    SendOwnAddress,
    /// Send no ECS option.
    Omit,
}

/// Strategy for deciding ECS inclusion per query.
#[derive(Debug, Clone)]
pub enum ProbingStrategy {
    /// Send ECS on every A/AAAA query (3382 of 4147 CDN-dataset resolvers).
    Always,
    /// Send ECS consistently, but only for a fixed set of probe hostnames —
    /// and for those hostnames bypass the cache, re-querying within TTL
    /// (258 resolvers).
    HostnameProbe {
        /// The probe hostnames.
        hostnames: HashSet<Name>,
    },
    /// Send a loopback-ECS probe for a single query string at multiples of
    /// `period` (30 minutes in the wild), non-ECS queries otherwise
    /// (32 resolvers). When `use_own_address` is true this becomes the
    /// paper's recommended variant.
    IntervalProbe {
        /// Probe period.
        period: SimDuration,
        /// Send the resolver's own address instead of loopback.
        use_own_address: bool,
    },
    /// Send ECS for specific hostnames, but only on a cache miss
    /// (88 resolvers).
    OnMiss {
        /// The hostnames that get ECS.
        hostnames: HashSet<Name>,
    },
    /// Maintain a per-zone whitelist (OpenDNS style): ECS only for queries
    /// under whitelisted zones.
    ZoneWhitelist {
        /// Whitelisted zone apexes.
        zones: Vec<Name>,
    },
    /// Send ECS on every `k`-th address query, regardless of name — the
    /// "no discernible pattern" class (387 resolvers): the same name is
    /// seen both with and without ECS.
    EveryKth {
        /// Period of the pattern (k ≥ 1; 1 degenerates to `Always`).
        k: u64,
    },
}

/// Mutable probing state kept per authoritative nameserver.
#[derive(Debug, Clone, Default)]
pub struct ProbingState {
    /// Last time an interval probe was sent, per strategy bookkeeping.
    last_probe: HashMap<&'static str, SimTime>,
    /// Whether the last probe response carried a valid ECS option.
    pub ecs_supported: Option<bool>,
    /// Address-query counter (drives [`ProbingStrategy::EveryKth`]).
    pub query_counter: u64,
    /// RFC 7871 §7.1.3: set after an ECS query to this server timed out
    /// (or FORMERR'd, when that downgrade is enabled). While set, every
    /// strategy omits ECS; a later response carrying a valid ECS option
    /// clears it.
    pub marked_non_ecs: bool,
}

impl ProbingState {
    /// Remembers the server as non-ECS (RFC 7871 §7.1.3). Cleared by
    /// [`ProbingStrategy::record_response`] on the next valid ECS reply.
    pub fn mark_non_ecs(&mut self) {
        self.marked_non_ecs = true;
    }
}

impl ProbingStrategy {
    /// Decides ECS handling for a query.
    ///
    /// * `qname` — the name being queried upstream;
    /// * `is_address_query` — A/AAAA (others never get client ECS);
    /// * `cache_hit` — whether the resolver could have answered from cache
    ///   (drives [`ProbingStrategy::OnMiss`]);
    /// * `now` — virtual time (drives [`ProbingStrategy::IntervalProbe`]).
    pub fn decide(
        &self,
        qname: &Name,
        is_address_query: bool,
        cache_hit: bool,
        now: SimTime,
        state: &mut ProbingState,
    ) -> EcsDecision {
        if !is_address_query {
            return EcsDecision::Omit;
        }
        if state.marked_non_ecs {
            // The server is remembered as non-ECS after an unanswered (or
            // rejected) ECS query; keep traffic plain until it recovers.
            return EcsDecision::Omit;
        }
        match self {
            ProbingStrategy::Always => EcsDecision::SendClientEcs,
            ProbingStrategy::HostnameProbe { hostnames } => {
                if hostnames.contains(qname) {
                    EcsDecision::SendClientEcs
                } else {
                    EcsDecision::Omit
                }
            }
            ProbingStrategy::IntervalProbe {
                period,
                use_own_address,
            } => {
                let due = match state.last_probe.get("interval") {
                    None => true,
                    Some(last) => now.since(*last) >= *period,
                };
                if due {
                    state.last_probe.insert("interval", now);
                    if *use_own_address {
                        EcsDecision::SendOwnAddress
                    } else {
                        EcsDecision::SendLoopbackProbe
                    }
                } else if state.ecs_supported == Some(true) {
                    // Once support is confirmed, real client ECS flows.
                    EcsDecision::SendClientEcs
                } else {
                    EcsDecision::Omit
                }
            }
            ProbingStrategy::OnMiss { hostnames } => {
                if hostnames.contains(qname) && !cache_hit {
                    EcsDecision::SendClientEcs
                } else {
                    EcsDecision::Omit
                }
            }
            ProbingStrategy::ZoneWhitelist { zones } => {
                if zones.iter().any(|z| qname.is_subdomain_of(z)) {
                    EcsDecision::SendClientEcs
                } else {
                    EcsDecision::Omit
                }
            }
            ProbingStrategy::EveryKth { k } => {
                let i = state.query_counter;
                state.query_counter += 1;
                if *k <= 1 || i.is_multiple_of(*k) {
                    EcsDecision::SendClientEcs
                } else {
                    EcsDecision::Omit
                }
            }
        }
    }

    /// Whether this strategy disables caching for the given probe hostname
    /// (the paper's second class re-queries probe names within TTL).
    pub fn bypasses_cache(&self, qname: &Name) -> bool {
        match self {
            ProbingStrategy::HostnameProbe { hostnames } => hostnames.contains(qname),
            _ => false,
        }
    }

    /// Records the outcome of a probe (a response carrying / not carrying a
    /// valid ECS option). A valid ECS reply also clears a non-ECS mark left
    /// by an earlier timeout: the server evidently supports the option now.
    pub fn record_response(&self, had_valid_ecs: bool, state: &mut ProbingState) {
        state.ecs_supported = Some(had_valid_ecs);
        if had_valid_ecs {
            state.marked_non_ecs = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> Name {
        Name::from_ascii(s).unwrap()
    }

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn always_sends_on_address_queries_only() {
        let s = ProbingStrategy::Always;
        let mut st = ProbingState::default();
        assert_eq!(
            s.decide(&name("a.example"), true, false, t(0), &mut st),
            EcsDecision::SendClientEcs
        );
        assert_eq!(
            s.decide(&name("a.example"), false, false, t(0), &mut st),
            EcsDecision::Omit
        );
    }

    #[test]
    fn hostname_probe_limits_to_set_and_bypasses_cache() {
        let s = ProbingStrategy::HostnameProbe {
            hostnames: HashSet::from([name("probe.example")]),
        };
        let mut st = ProbingState::default();
        assert_eq!(
            s.decide(&name("probe.example"), true, true, t(0), &mut st),
            EcsDecision::SendClientEcs
        );
        assert_eq!(
            s.decide(&name("other.example"), true, false, t(0), &mut st),
            EcsDecision::Omit
        );
        assert!(s.bypasses_cache(&name("probe.example")));
        assert!(!s.bypasses_cache(&name("other.example")));
    }

    #[test]
    fn interval_probe_fires_on_schedule() {
        let s = ProbingStrategy::IntervalProbe {
            period: SimDuration::from_secs(1800),
            use_own_address: false,
        };
        let mut st = ProbingState::default();
        // First query probes with loopback.
        assert_eq!(
            s.decide(&name("a.example"), true, false, t(0), &mut st),
            EcsDecision::SendLoopbackProbe
        );
        // Within the period, no ECS (support not yet confirmed).
        assert_eq!(
            s.decide(&name("a.example"), true, false, t(60), &mut st),
            EcsDecision::Omit
        );
        // At the period boundary, probes again.
        assert_eq!(
            s.decide(&name("a.example"), true, false, t(1800), &mut st),
            EcsDecision::SendLoopbackProbe
        );
        // Confirm support: now client ECS flows between probes.
        s.record_response(true, &mut st);
        assert_eq!(
            s.decide(&name("a.example"), true, false, t(1900), &mut st),
            EcsDecision::SendClientEcs
        );
        // Probes still fire on schedule.
        assert_eq!(
            s.decide(&name("a.example"), true, false, t(3600), &mut st),
            EcsDecision::SendLoopbackProbe
        );
    }

    #[test]
    fn interval_probe_own_address_variant() {
        let s = ProbingStrategy::IntervalProbe {
            period: SimDuration::from_secs(1800),
            use_own_address: true,
        };
        let mut st = ProbingState::default();
        assert_eq!(
            s.decide(&name("a.example"), true, false, t(0), &mut st),
            EcsDecision::SendOwnAddress
        );
    }

    #[test]
    fn on_miss_only_fires_on_misses() {
        let s = ProbingStrategy::OnMiss {
            hostnames: HashSet::from([name("x.example")]),
        };
        let mut st = ProbingState::default();
        assert_eq!(
            s.decide(&name("x.example"), true, false, t(0), &mut st),
            EcsDecision::SendClientEcs
        );
        assert_eq!(
            s.decide(&name("x.example"), true, true, t(0), &mut st),
            EcsDecision::Omit
        );
        assert_eq!(
            s.decide(&name("y.example"), true, false, t(0), &mut st),
            EcsDecision::Omit
        );
    }

    #[test]
    fn non_ecs_mark_suppresses_every_strategy_until_cleared() {
        let mut st = ProbingState::default();
        st.mark_non_ecs();
        for s in [
            ProbingStrategy::Always,
            ProbingStrategy::EveryKth { k: 1 },
            ProbingStrategy::IntervalProbe {
                period: SimDuration::from_secs(1800),
                use_own_address: true,
            },
        ] {
            assert_eq!(
                s.decide(&name("a.example"), true, false, t(0), &mut st),
                EcsDecision::Omit,
                "{s:?} must omit while marked non-ECS"
            );
        }
        // A reply carrying valid ECS clears the mark; ECS flows again.
        ProbingStrategy::Always.record_response(true, &mut st);
        assert!(!st.marked_non_ecs);
        assert_eq!(
            ProbingStrategy::Always.decide(&name("a.example"), true, false, t(1), &mut st),
            EcsDecision::SendClientEcs
        );
        // A non-ECS reply does NOT clear the mark.
        st.mark_non_ecs();
        ProbingStrategy::Always.record_response(false, &mut st);
        assert!(st.marked_non_ecs);
    }

    #[test]
    fn zone_whitelist_matches_subdomains() {
        let s = ProbingStrategy::ZoneWhitelist {
            zones: vec![name("cdn.example")],
        };
        let mut st = ProbingState::default();
        assert_eq!(
            s.decide(&name("img.cdn.example"), true, false, t(0), &mut st),
            EcsDecision::SendClientEcs
        );
        assert_eq!(
            s.decide(&name("cdn.example"), true, false, t(0), &mut st),
            EcsDecision::SendClientEcs
        );
        assert_eq!(
            s.decide(&name("other.example"), true, false, t(0), &mut st),
            EcsDecision::Omit
        );
    }
}

#[cfg(test)]
mod every_kth_tests {
    use super::*;

    #[test]
    fn every_kth_alternates() {
        let s = ProbingStrategy::EveryKth { k: 3 };
        let mut st = ProbingState::default();
        let n = Name::from_ascii("a.example").unwrap();
        let decisions: Vec<_> = (0..6)
            .map(|i| s.decide(&n, true, false, SimTime::from_secs(i), &mut st))
            .collect();
        assert_eq!(decisions[0], EcsDecision::SendClientEcs);
        assert_eq!(decisions[1], EcsDecision::Omit);
        assert_eq!(decisions[2], EcsDecision::Omit);
        assert_eq!(decisions[3], EcsDecision::SendClientEcs);
        // k=1 always sends.
        let s = ProbingStrategy::EveryKth { k: 1 };
        let mut st = ProbingState::default();
        assert!((0..5).all(|i| {
            s.decide(&n, true, false, SimTime::from_secs(i), &mut st) == EcsDecision::SendClientEcs
        }));
    }
}
