//! Deterministic allocation of unique addresses and subnets.

use dns_wire::IpPrefix;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

/// Hands out non-overlapping IPv4 `/24` blocks, IPv6 `/48` blocks, and
/// individual host addresses inside them.
///
/// Allocation is sequential from disjoint pools, so no RNG is needed and any
/// two allocators constructed the same way produce the same sequence:
///
/// * IPv4 client blocks come from `100.64.0.0/10`-style sequential space
///   starting at `1.0.0.0`, skipping reserved ranges;
/// * IPv6 blocks come from `2001:db8::/32` extended upward (documentation
///   space is only a /32; we use `2400::/12`-style sequential space to get
///   enough /48s).
#[derive(Debug, Clone)]
pub struct AddrAllocator {
    next_v4_block: u32,
    next_v6_block: u64,
}

impl Default for AddrAllocator {
    fn default() -> Self {
        Self::new()
    }
}

impl AddrAllocator {
    /// Creates an allocator at the start of its pools.
    pub fn new() -> Self {
        AddrAllocator {
            // First /24 block: 1.0.0.0/24 (block index = top 24 bits).
            next_v4_block: 0x01_00_00,
            // First /48 block under 2400::/12.
            next_v6_block: 0x2400_0000_0000,
        }
    }

    /// Allocates the next free IPv4 `/24`, skipping reserved space.
    pub fn alloc_v4_block(&mut self) -> IpPrefix {
        loop {
            let block = self.next_v4_block;
            self.next_v4_block += 1;
            let addr = Ipv4Addr::from(block << 8);
            let prefix = IpPrefix::v4(addr, 24).expect("24 <= 32");
            if !prefix.is_non_routable() && !is_reserved_v4(addr) {
                return prefix;
            }
        }
    }

    /// Allocates the next free IPv6 `/48`.
    pub fn alloc_v6_block(&mut self) -> IpPrefix {
        let block = self.next_v6_block;
        self.next_v6_block += 1;
        // Block index occupies the top 48 bits.
        let addr = Ipv6Addr::from((block as u128) << 80);
        IpPrefix::v6(addr, 48).expect("48 <= 128")
    }

    /// A specific host inside a previously allocated block. `host` must be
    /// 1–254 for IPv4 /24 blocks (0 and 255 are avoided by convention).
    pub fn host_in(block: &IpPrefix, host: u32) -> IpAddr {
        match block.addr() {
            IpAddr::V4(a) => {
                debug_assert!(block.len() <= 24, "host_in expects /24 or shorter");
                debug_assert!((1..=254).contains(&host));
                IpAddr::V4(Ipv4Addr::from(u32::from(a) | host))
            }
            IpAddr::V6(a) => IpAddr::V6(Ipv6Addr::from(u128::from(a) | host as u128)),
        }
    }
}

/// Multicast, special-use, and future-use space we must not hand to
/// simulated hosts (beyond what `IpPrefix::is_non_routable` covers).
fn is_reserved_v4(addr: Ipv4Addr) -> bool {
    let o = addr.octets();
    o[0] == 0 || o[0] >= 224 || (o[0] == 100 && (64..=127).contains(&o[1])) // CGN
        || (o[0] == 192 && o[1] == 0 && o[2] == 0)
        || (o[0] == 198 && (o[1] == 18 || o[1] == 19))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn v4_blocks_are_unique_and_routable() {
        let mut alloc = AddrAllocator::new();
        let mut seen = HashSet::new();
        for _ in 0..10_000 {
            let b = alloc.alloc_v4_block();
            assert_eq!(b.len(), 24);
            assert!(!b.is_non_routable(), "{b}");
            assert!(seen.insert(b), "duplicate {b}");
        }
    }

    #[test]
    fn v4_skips_loopback_and_private() {
        let mut alloc = AddrAllocator::new();
        for _ in 0..200_000 {
            let b = alloc.alloc_v4_block();
            let o = match b.addr() {
                IpAddr::V4(a) => a.octets(),
                _ => unreachable!(),
            };
            assert_ne!(o[0], 10);
            assert_ne!(o[0], 127);
            assert_ne!(o[0], 0);
            assert!(o[0] < 224);
        }
    }

    #[test]
    fn v6_blocks_are_unique() {
        let mut alloc = AddrAllocator::new();
        let mut seen = HashSet::new();
        for _ in 0..10_000 {
            let b = alloc.alloc_v6_block();
            assert_eq!(b.len(), 48);
            assert!(seen.insert(b));
        }
    }

    #[test]
    fn hosts_fall_inside_blocks() {
        let mut alloc = AddrAllocator::new();
        let b = alloc.alloc_v4_block();
        for host in [1u32, 77, 254] {
            let h = AddrAllocator::host_in(&b, host);
            assert!(b.contains(h), "{h} not in {b}");
        }
        let b6 = alloc.alloc_v6_block();
        let h = AddrAllocator::host_in(&b6, 42);
        assert!(b6.contains(h));
    }

    #[test]
    fn determinism() {
        let mut a = AddrAllocator::new();
        let mut b = AddrAllocator::new();
        for _ in 0..1000 {
            assert_eq!(a.alloc_v4_block(), b.alloc_v4_block());
            assert_eq!(a.alloc_v6_block(), b.alloc_v6_block());
        }
    }
}
