//! The synchronous resolution engine.
//!
//! [`Resolver::resolve_msg`] runs one full client interaction: cache
//! lookup, ECS decision, upstream query, cache insert, client response.
//! The upstream side is abstracted by [`Upstream`] so experiments can wire
//! a single [`AuthServer`], a routing table over many ([`ZoneRouter`]), or
//! a recorded trace.

use std::net::IpAddr;

use authoritative::AuthServer;
use dns_wire::{Message, Name, Rcode};
use netsim::SimTime;
use obs::{EventKind, TraceCtx, Tracer};

use crate::cache::{CacheStats, EcsCache};
use crate::config::ResolverConfig;
use crate::probing::{EcsDecision, ProbingState};

/// Why an upstream exchange failed at the transport layer.
///
/// In-band DNS failures (SERVFAIL, FORMERR, REFUSED arriving as parseable
/// messages) are *not* errors at this level — they come back as `Ok`
/// messages, exactly as a socket would deliver them. The error variants
/// cover the cases where no usable message arrived at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpstreamError {
    /// No (matching) reply before the transport timeout — the lost-packet
    /// case RFC 7871 §7.1.3 tells resolvers to treat as possible ECS
    /// intolerance.
    Timeout,
    /// The reply arrived truncated (TC) and unusable over UDP; carries the
    /// truncated message so callers can inspect it before retrying over
    /// TCP.
    Truncated(Box<Message>),
    /// The transport itself failed and the failure is best classified by
    /// an RCODE (e.g. an ICMP-unreachable mapped to SERVFAIL by a stub).
    Rcode(Rcode),
}

impl std::fmt::Display for UpstreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UpstreamError::Timeout => write!(f, "upstream query timed out"),
            UpstreamError::Truncated(_) => write!(f, "upstream reply truncated"),
            UpstreamError::Rcode(rc) => write!(f, "upstream transport failure ({rc:?})"),
        }
    }
}

impl std::error::Error for UpstreamError {}

/// Where a resolver sends its upstream queries.
///
/// The contract is fallible: transports that can lose packets or truncate
/// replies surface those as [`UpstreamError`]s, and the engine's retry
/// policy ([`crate::config::RetryPolicy`]) decides what happens next.
/// In-process upstreams (an [`AuthServer`], a [`ZoneRouter`]) are
/// infallible and always return `Ok`.
pub trait Upstream {
    /// Performs one upstream exchange: the resolver at `from` sends `q`,
    /// the authoritative side answers.
    fn query(&mut self, q: &Message, from: IpAddr, now: SimTime) -> Result<Message, UpstreamError>;

    /// Retries an exchange over TCP after a truncated UDP reply (RFC 7766).
    /// Defaults to [`Upstream::query`] — correct for upstreams that never
    /// truncate; socket-backed implementations override this with a real
    /// TCP exchange.
    fn query_tcp(
        &mut self,
        q: &Message,
        from: IpAddr,
        now: SimTime,
    ) -> Result<Message, UpstreamError> {
        self.query(q, from, now)
    }

    /// Performs one exchange over an explicit transport (the ladder rungs
    /// of [`crate::TransportPolicy`]). The default maps the datagram
    /// transport to [`Upstream::query`] and every stream transport (TCP,
    /// DoT, DoH) to [`Upstream::query_tcp`] — correct for upstreams that
    /// don't model transports; transport-aware implementations
    /// ([`crate::TransportUpstream`]) override this.
    fn query_via(
        &mut self,
        q: &Message,
        from: IpAddr,
        now: SimTime,
        transport: netsim::Transport,
    ) -> Result<Message, UpstreamError> {
        match transport {
            netsim::Transport::Udp => self.query(q, from, now),
            _ => self.query_tcp(q, from, now),
        }
    }
}

impl Upstream for AuthServer {
    fn query(&mut self, q: &Message, from: IpAddr, now: SimTime) -> Result<Message, UpstreamError> {
        Ok(self.handle(q, from, now))
    }

    /// Stream responses are never truncated (RFC 7766): when the handler
    /// truncated against the advertised UDP buffer, re-handle with the
    /// maximum advertisement — mirroring `dnsd`'s TCP listener, which does
    /// exactly this, so the engine and socket sides stay byte-identical.
    fn query_tcp(
        &mut self,
        q: &Message,
        from: IpAddr,
        now: SimTime,
    ) -> Result<Message, UpstreamError> {
        let resp = self.handle(q, from, now);
        if resp.flags.tc {
            let mut big = q.clone();
            big.set_edns(u16::MAX);
            return Ok(self.handle(&big, from, now));
        }
        Ok(resp)
    }
}

/// Routes upstream queries to the authoritative server whose zone apex
/// contains the question name (longest apex wins). Unmatched queries get
/// REFUSED.
#[derive(Default)]
pub struct ZoneRouter {
    routes: Vec<(Name, AuthServer)>,
}

impl ZoneRouter {
    /// Creates an empty router.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a server; its zone apex becomes the route key.
    pub fn add(&mut self, server: AuthServer) {
        let apex = server.zone().apex().clone();
        self.routes.push((apex, server));
        // Longest apex first so the most specific zone wins.
        self.routes
            .sort_by_key(|(apex, _)| std::cmp::Reverse(apex.label_count()));
    }

    /// The server responsible for a name, if any.
    pub fn server_for(&mut self, name: &Name) -> Option<&mut AuthServer> {
        self.routes
            .iter_mut()
            .find(|(apex, _)| name.is_subdomain_of(apex))
            .map(|(_, s)| s)
    }

    /// Immutable access for assertions in tests/experiments.
    pub fn servers(&self) -> impl Iterator<Item = &AuthServer> {
        self.routes.iter().map(|(_, s)| s)
    }
}

impl Upstream for ZoneRouter {
    fn query(&mut self, q: &Message, from: IpAddr, now: SimTime) -> Result<Message, UpstreamError> {
        match q.question().map(|qq| qq.name.clone()) {
            Some(name) => match self.server_for(&name) {
                Some(server) => Ok(server.handle(q, from, now)),
                None => {
                    let mut resp = Message::response_to(q);
                    resp.rcode = Rcode::Refused;
                    Ok(resp)
                }
            },
            None => {
                let mut resp = Message::response_to(q);
                resp.rcode = Rcode::FormErr;
                Ok(resp)
            }
        }
    }
}

/// The first stream rung strictly after `rung`, if the ladder has one —
/// where a TC-bit truncation sends the exchange (re-asking over another
/// datagram transport could only truncate again).
fn next_stream_rung(ladder: &[netsim::Transport], rung: usize) -> Option<usize> {
    ladder
        .iter()
        .enumerate()
        .skip(rung + 1)
        .find(|(_, t)| t.is_stream())
        .map(|(i, _)| i)
}

/// Counters for one resolver's upstream traffic. All counters update with
/// saturating arithmetic — overload is exactly when they get hammered.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct ResolverStats {
    /// Client queries handled.
    pub client_queries: u64,
    /// Queries sent upstream (cache misses + probe bypasses + retries).
    pub upstream_queries: u64,
    /// Upstream queries that carried an ECS option.
    pub upstream_ecs_queries: u64,
    /// Retransmissions after a failed attempt.
    pub retries: u64,
    /// Attempts that ended in a transport timeout.
    pub upstream_timeouts: u64,
    /// ECS options withdrawn from a retry (RFC 7871 §7.1.3 or the FORMERR
    /// downgrade).
    pub ecs_withdrawals: u64,
    /// TC-bit replies that triggered a TCP re-query (RFC 7766).
    pub tcp_fallbacks: u64,
    /// Transport-ladder edges taken: exchanges that moved to the next
    /// rung of the [`crate::TransportPolicy`] ladder (truncation jumps
    /// and exhausted-budget falls).
    pub transport_fallbacks: u64,
    /// Client queries answered SERVFAIL after the attempt budget ran out.
    pub servfail_responses: u64,
    /// Client queries shed by admission control (in-flight cap).
    pub shed_queries: u64,
    /// Client queries that joined an existing upstream flight.
    pub coalesced_queries: u64,
    /// Client queries answered from expired cache entries (RFC 8767).
    pub stale_answers: u64,
}

impl ResolverStats {
    /// JSON object literal. The vendored `serde` derive is annotation-only
    /// (no code generation offline), so emission is hand-rolled here.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"client_queries\":{},\"upstream_queries\":{},\"upstream_ecs_queries\":{},\"retries\":{},\"upstream_timeouts\":{},\"ecs_withdrawals\":{},\"tcp_fallbacks\":{},\"transport_fallbacks\":{},\"servfail_responses\":{},\"shed_queries\":{},\"coalesced_queries\":{},\"stale_answers\":{}}}",
            self.client_queries,
            self.upstream_queries,
            self.upstream_ecs_queries,
            self.retries,
            self.upstream_timeouts,
            self.ecs_withdrawals,
            self.tcp_fallbacks,
            self.transport_fallbacks,
            self.servfail_responses,
            self.shed_queries,
            self.coalesced_queries,
            self.stale_answers
        )
    }
}

/// Registry-backed handles behind [`ResolverStats`]. The registry is the
/// single source of truth; [`Resolver::stats`] reconstructs the legacy
/// struct from counter loads, so existing readers see identical values.
#[derive(Debug)]
struct ResolverMetrics {
    registry: obs::MetricsRegistry,
    client_queries: obs::Counter,
    upstream_queries: obs::Counter,
    upstream_ecs_queries: obs::Counter,
    retries: obs::Counter,
    upstream_timeouts: obs::Counter,
    ecs_withdrawals: obs::Counter,
    tcp_fallbacks: obs::Counter,
    transport_fallbacks: obs::Counter,
    fallbacks_to_tcp: obs::Counter,
    fallbacks_to_dot: obs::Counter,
    fallbacks_to_doh: obs::Counter,
    servfail_responses: obs::Counter,
    shed_queries: obs::Counter,
    coalesced_queries: obs::Counter,
    stale_answers: obs::Counter,
    /// Client-observed resolution latency on the SimTime axis.
    query_latency: obs::Histogram,
}

impl ResolverMetrics {
    fn new() -> Self {
        let registry = obs::MetricsRegistry::new();
        ResolverMetrics {
            client_queries: registry.counter("resolver_client_queries_total"),
            upstream_queries: registry.counter("resolver_upstream_queries_total"),
            upstream_ecs_queries: registry.counter("resolver_upstream_ecs_queries_total"),
            retries: registry.counter("resolver_retries_total"),
            upstream_timeouts: registry.counter("resolver_upstream_timeouts_total"),
            ecs_withdrawals: registry.counter("resolver_ecs_withdrawals_total"),
            tcp_fallbacks: registry.counter("resolver_tcp_fallbacks_total"),
            // Ladder counters are registered eagerly (not on first edge) so
            // differential snapshots of fallback-free runs stay exactly
            // equal across subjects.
            transport_fallbacks: registry.counter("resolver_transport_fallbacks_total"),
            fallbacks_to_tcp: registry.counter("resolver_transport_fallbacks_to_tcp_total"),
            fallbacks_to_dot: registry.counter("resolver_transport_fallbacks_to_dot_total"),
            fallbacks_to_doh: registry.counter("resolver_transport_fallbacks_to_doh_total"),
            servfail_responses: registry.counter("resolver_servfail_responses_total"),
            shed_queries: registry.counter("resolver_shed_queries_total"),
            coalesced_queries: registry.counter("resolver_coalesced_queries_total"),
            stale_answers: registry.counter("resolver_stale_answers_total"),
            query_latency: registry.histogram("resolver_query_latency_us"),
            registry,
        }
    }
}

/// Where a resolver's cache state lives.
///
/// `Owned` is the historical single-threaded arrangement: the engine holds
/// its [`EcsCache`] directly and every call compiles to the same code as
/// before the multi-worker refactor. `Shared` points the engine at a
/// [`SharedEcsCache`] owned jointly by a worker pool — lookups and inserts
/// route through per-shard locks, and everything else about the engine
/// (probing state, stats, retry policy) stays worker-private.
enum CacheSlot {
    Owned(EcsCache),
    Shared(std::sync::Arc<crate::shared_cache::SharedEcsCache>),
}

impl CacheSlot {
    fn lookup(
        &mut self,
        qname: &Name,
        qtype: dns_wire::RecordType,
        client: IpAddr,
        now: SimTime,
    ) -> Option<crate::cache::CachedAnswer> {
        match self {
            CacheSlot::Owned(c) => c.lookup(qname, qtype, client, now),
            CacheSlot::Shared(c) => c.lookup(qname, qtype, client, now),
        }
    }

    fn lookup_stale(
        &mut self,
        qname: &Name,
        qtype: dns_wire::RecordType,
        client: IpAddr,
        now: SimTime,
        serve_ttl: u32,
    ) -> Option<crate::cache::CachedAnswer> {
        match self {
            CacheSlot::Owned(c) => c.lookup_stale(qname, qtype, client, now, serve_ttl),
            CacheSlot::Shared(c) => c.lookup_stale(qname, qtype, client, now, serve_ttl),
        }
    }

    fn insert(
        &mut self,
        qname: Name,
        qtype: dns_wire::RecordType,
        records: Vec<dns_wire::Record>,
        ecs: Option<dns_wire::EcsOption>,
        ttl: u32,
        now: SimTime,
    ) -> bool {
        match self {
            CacheSlot::Owned(c) => c.insert(qname, qtype, records, ecs, ttl, now),
            CacheSlot::Shared(c) => c.insert(qname, qtype, records, ecs, ttl, now),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn insert_with_rcode(
        &mut self,
        qname: Name,
        qtype: dns_wire::RecordType,
        records: Vec<dns_wire::Record>,
        ecs: Option<dns_wire::EcsOption>,
        rcode: Rcode,
        ttl: u32,
        now: SimTime,
    ) -> bool {
        match self {
            CacheSlot::Owned(c) => c.insert_with_rcode(qname, qtype, records, ecs, rcode, ttl, now),
            CacheSlot::Shared(c) => {
                c.insert_with_rcode(qname, qtype, records, ecs, rcode, ttl, now)
            }
        }
    }

    fn stats(&self) -> CacheStats {
        match self {
            CacheSlot::Owned(c) => c.stats(),
            CacheSlot::Shared(c) => c.stats(),
        }
    }

    fn len(&mut self, now: SimTime) -> usize {
        match self {
            CacheSlot::Owned(c) => c.len(now),
            CacheSlot::Shared(c) => c.len(now),
        }
    }
}

/// A recursive resolver instance.
pub struct Resolver {
    config: ResolverConfig,
    cache: CacheSlot,
    probing_state: ProbingState,
    stats: ResolverMetrics,
    tracer: Tracer,
    /// Per-SLD learned authoritative scope (see
    /// [`ResolverConfig::adaptive_prefix`]).
    scope_memory: std::collections::HashMap<Name, u8>,
    next_id: u16,
}

impl Resolver {
    /// Creates a resolver from a configuration.
    pub fn new(config: ResolverConfig) -> Self {
        let mut cache = EcsCache::with_limits(
            config.compliance,
            crate::cache::CacheLimits {
                max_entries: config.overload.max_cache_entries,
                max_bytes: config.overload.max_cache_bytes,
                per_name_cap: config.overload.per_name_cap,
                stale_ttl: config.overload.serve_stale_ttl,
            },
        );
        cache.cache_zero_scope = config.cache_zero_scope;
        Resolver {
            config,
            cache: CacheSlot::Owned(cache),
            probing_state: ProbingState::default(),
            stats: ResolverMetrics::new(),
            tracer: Tracer::disabled(),
            scope_memory: std::collections::HashMap::new(),
            next_id: 1,
        }
    }

    /// Creates a resolver whose cache state lives in `cache`, shared with
    /// other engines in a worker pool. The overload cache-bound knobs in
    /// `config` are ignored here — the shared cache carries its own limits
    /// (see [`crate::shared_cache::SharedEcsCache::for_config`]); probing
    /// state, stats, and retry behaviour remain engine-private.
    ///
    /// [`Resolver::metrics_snapshot`] on such an engine excludes the
    /// cache's `cache_*` series: fold
    /// [`crate::shared_cache::SharedEcsCache::snapshot`] exactly once per
    /// pool instead, or the shared counters multiply by the worker count.
    pub fn with_shared_cache(
        config: ResolverConfig,
        cache: std::sync::Arc<crate::shared_cache::SharedEcsCache>,
    ) -> Self {
        Resolver {
            config,
            cache: CacheSlot::Shared(cache),
            probing_state: ProbingState::default(),
            stats: ResolverMetrics::new(),
            tracer: Tracer::disabled(),
            scope_memory: std::collections::HashMap::new(),
            next_id: 1,
        }
    }

    /// The scope learned for a zone so far (adaptive mode).
    pub fn learned_scope(&self, qname: &Name) -> Option<u8> {
        self.scope_memory
            .get(&qname.second_level_domain().unwrap_or_else(|| qname.clone()))
            .copied()
    }

    /// The configuration.
    pub fn config(&self) -> &ResolverConfig {
        &self.config
    }

    /// Cache statistics.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Upstream-traffic statistics, reconstructed from the metrics
    /// registry (which is the single source of truth behind the legacy
    /// struct API — both read the same values).
    pub fn stats(&self) -> ResolverStats {
        ResolverStats {
            client_queries: self.stats.client_queries.get(),
            upstream_queries: self.stats.upstream_queries.get(),
            upstream_ecs_queries: self.stats.upstream_ecs_queries.get(),
            retries: self.stats.retries.get(),
            upstream_timeouts: self.stats.upstream_timeouts.get(),
            ecs_withdrawals: self.stats.ecs_withdrawals.get(),
            tcp_fallbacks: self.stats.tcp_fallbacks.get(),
            transport_fallbacks: self.stats.transport_fallbacks.get(),
            servfail_responses: self.stats.servfail_responses.get(),
            shed_queries: self.stats.shed_queries.get(),
            coalesced_queries: self.stats.coalesced_queries.get(),
            stale_answers: self.stats.stale_answers.get(),
        }
    }

    /// The resolver's private metrics registry (counters plus the
    /// `resolver_query_latency_us` histogram). Each resolver owns its own
    /// registry; merge [`obs::MetricsSnapshot`]s externally to aggregate
    /// across resolvers.
    pub fn registry(&self) -> &obs::MetricsRegistry {
        &self.stats.registry
    }

    /// One merged snapshot of the resolver's and its cache's registries.
    ///
    /// With a shared cache ([`Resolver::with_shared_cache`]) only the
    /// engine-private series are included — the pool folds the cache's
    /// registries once via
    /// [`crate::shared_cache::SharedEcsCache::snapshot`].
    pub fn metrics_snapshot(&self) -> obs::MetricsSnapshot {
        let mut snap = self.stats.registry.snapshot();
        if let CacheSlot::Owned(cache) = &self.cache {
            snap.merge(&cache.registry().snapshot());
        }
        snap
    }

    /// Installs a tracer: every subsequent resolution emits structured
    /// span events to its sink. The default tracer is disabled and costs
    /// one branch per site.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The installed tracer (disabled by default).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Emits a trace event against `parent` at `at` — for asynchronous
    /// drivers (the netsim actors) that manage their own span contexts.
    pub fn trace_event(&self, parent: TraceCtx, at: SimTime, kind: &EventKind) {
        if parent.is_enabled() {
            self.tracer.event(parent, at.as_micros(), kind);
        }
    }

    /// The probing state (per-server ECS-capability memory), for assertions
    /// in tests and experiments.
    pub fn probing_state(&self) -> &ProbingState {
        &self.probing_state
    }

    /// Live cache size at `now`.
    pub fn cache_len(&mut self, now: SimTime) -> usize {
        self.cache.len(now)
    }

    /// Direct cache access for white-box tests.
    ///
    /// # Panics
    ///
    /// When the engine runs against a shared cache
    /// ([`Resolver::with_shared_cache`]) there is no exclusively-owned
    /// `EcsCache` to hand out; white-box tests should reach through the
    /// [`crate::shared_cache::SharedEcsCache`] handle they supplied.
    pub fn cache_mut(&mut self) -> &mut EcsCache {
        match &mut self.cache {
            CacheSlot::Owned(c) => c,
            CacheSlot::Shared(_) => panic!("cache_mut requires an engine-owned cache"),
        }
    }

    /// Handles one client query synchronously.
    ///
    /// * `query` — the client's message (may carry ECS);
    /// * `client_src` — the immediate sender's address (a client, a
    ///   forwarder, or a hidden resolver — the resolver cannot tell!);
    /// * `upstream` — the authoritative side.
    ///
    /// Failed upstream attempts are retried per the configured
    /// [`crate::config::RetryPolicy`]; when every attempt fails the client
    /// gets SERVFAIL (never silence, never a hang).
    pub fn resolve_msg<U: Upstream>(
        &mut self,
        query: &Message,
        client_src: IpAddr,
        now: SimTime,
        upstream: &mut U,
    ) -> Message {
        match self.begin(query, client_src, now) {
            Step::Answer(resp) => resp,
            Step::NeedUpstream(pending) => self.drive_upstream(pending, now, upstream),
        }
    }

    /// Runs the upstream exchange for `pending` to completion: retries with
    /// exponential backoff on the SimTime axis, withdraws ECS per RFC 7871
    /// §7.1.3, falls back to TCP on truncation, and answers SERVFAIL once
    /// the attempt budget is spent.
    ///
    /// Time is virtual: each timed-out attempt advances the local clock by
    /// that attempt's timeout, so cache inserts and probing-state updates
    /// happen at the moment the answer would really have arrived.
    pub fn drive_upstream<U: Upstream>(
        &mut self,
        pending: PendingQuery,
        now: SimTime,
        upstream: &mut U,
    ) -> Message {
        self.drive_upstream_capturing(pending, now, upstream).0
    }

    /// [`Resolver::drive_upstream`], additionally returning the raw
    /// upstream response the exchange completed with (`None` when the
    /// exchange failed and the client answer is stale/SERVFAIL).
    ///
    /// Multi-worker front ends need the raw response to satisfy coalesced
    /// joiners: each joiner builds its own client answer from it via
    /// [`Resolver::joiner_response`], while only the flight owner caches.
    pub fn drive_upstream_capturing<U: Upstream>(
        &mut self,
        mut pending: PendingQuery,
        now: SimTime,
        upstream: &mut U,
    ) -> (Message, Option<Message>) {
        let policy = self.config.retry.clone();
        // The transport ladder: with the default UDP-only policy this loop
        // is line-for-line the legacy retry loop (one rung, whole budget,
        // inline RFC 7766 TCP re-query on TC). With more rungs, truncation
        // jumps to the next *stream* rung and an exhausted per-rung budget
        // falls to the next rung, each edge counted and traced.
        let ladder: Vec<netsim::Transport> = if self.config.transport.ladder.is_empty() {
            vec![netsim::Transport::Udp]
        } else {
            self.config.transport.ladder.clone()
        };
        let per_rung = self
            .config
            .transport
            .attempts_per_transport
            .unwrap_or(policy.attempts)
            .max(1);
        let mut rung = 0usize;
        let mut at = now;
        // `attempt` numbers the exchange globally (trace labels);
        // `rung_attempt` is the budget spent on the current rung and the
        // index into the backoff schedule, which restarts per rung.
        let mut attempt: u8 = 0;
        let mut rung_attempt: u8 = 0;
        loop {
            let transport = ladder[rung];
            let attempt_span = if pending.trace.is_enabled() {
                self.tracer.child(
                    pending.trace,
                    at.as_micros(),
                    &EventKind::UpstreamAttempt {
                        attempt: attempt as u32,
                        ecs: pending.upstream_query.ecs().is_some(),
                    },
                )
            } else {
                TraceCtx::DISABLED
            };
            let mut backoff = netsim::SimDuration::ZERO;
            match upstream.query_via(&pending.upstream_query, self.config.addr, at, transport) {
                Ok(resp) if resp.flags.tc && !transport.is_stream() => {
                    // RFC 7766: a truncated UDP reply is re-asked over a
                    // stream — the ladder's next stream rung when one is
                    // configured, the inline TCP re-query otherwise.
                    self.stats.tcp_fallbacks.inc();
                    self.trace_event(attempt_span, at, &EventKind::TcpFallback);
                    if let Some(next) = next_stream_rung(&ladder, rung) {
                        rung = self.note_transport_fallback(
                            &ladder,
                            rung,
                            next,
                            "truncated",
                            pending.trace,
                            at,
                        );
                        rung_attempt = 0;
                        attempt = attempt.saturating_add(1);
                        self.note_retry_sent(&pending.upstream_query);
                        continue;
                    }
                    if let Ok(full) =
                        upstream.query_tcp(&pending.upstream_query, self.config.addr, at)
                    {
                        let answer = self.complete(pending, &full, at);
                        return (answer, Some(full));
                    }
                }
                Ok(resp)
                    if resp.rcode == Rcode::FormErr
                        && policy.withdraw_ecs_on_formerr
                        && pending.upstream_query.ecs().is_some() =>
                {
                    // An ECS-intolerant server: drop the option and re-ask
                    // immediately (no timeout elapsed, no attempt consumed —
                    // this fires at most once since the option is now gone).
                    pending.upstream_query.clear_ecs();
                    self.probing_state.mark_non_ecs();
                    self.stats.ecs_withdrawals.inc();
                    self.trace_event(
                        attempt_span,
                        at,
                        &EventKind::EcsWithdrawn { reason: "formerr" },
                    );
                    self.note_retry_sent(&pending.upstream_query);
                    continue;
                }
                Ok(resp)
                    if resp.rcode == Rcode::ServFail
                        && self.config.overload.serve_stale_enabled() =>
                {
                    // RFC 8767: an upstream SERVFAIL is a failure we may
                    // paper over with a stale answer.
                    if attempt_span.is_enabled() {
                        self.tracer.event(
                            attempt_span,
                            at.as_micros(),
                            &EventKind::UpstreamFault {
                                kind: "rcode:ServFail".to_string(),
                            },
                        );
                    }
                    return (self.answer_failure(&pending, at), None);
                }
                Ok(resp) => {
                    let answer = self.complete(pending, &resp, at);
                    return (answer, Some(resp));
                }
                Err(UpstreamError::Truncated(_)) => {
                    self.stats.tcp_fallbacks.inc();
                    if attempt_span.is_enabled() {
                        self.tracer.event(
                            attempt_span,
                            at.as_micros(),
                            &EventKind::UpstreamFault {
                                kind: "truncated".to_string(),
                            },
                        );
                        self.tracer
                            .event(attempt_span, at.as_micros(), &EventKind::TcpFallback);
                    }
                    if let Some(next) = next_stream_rung(&ladder, rung) {
                        rung = self.note_transport_fallback(
                            &ladder,
                            rung,
                            next,
                            "truncated",
                            pending.trace,
                            at,
                        );
                        rung_attempt = 0;
                        attempt = attempt.saturating_add(1);
                        self.note_retry_sent(&pending.upstream_query);
                        continue;
                    }
                    if let Ok(full) =
                        upstream.query_tcp(&pending.upstream_query, self.config.addr, at)
                    {
                        let answer = self.complete(pending, &full, at);
                        return (answer, Some(full));
                    }
                }
                Err(UpstreamError::Timeout) => {
                    if attempt_span.is_enabled() {
                        self.tracer.event(
                            attempt_span,
                            at.as_micros(),
                            &EventKind::UpstreamFault {
                                kind: "timeout".to_string(),
                            },
                        );
                    }
                    let had_ecs = pending.upstream_query.ecs().is_some();
                    backoff = self.note_upstream_timeout(&mut pending.upstream_query, rung_attempt);
                    if had_ecs && pending.upstream_query.ecs().is_none() {
                        self.trace_event(
                            attempt_span,
                            at,
                            &EventKind::EcsWithdrawn { reason: "timeout" },
                        );
                    }
                    at += backoff;
                }
                Err(UpstreamError::Rcode(rc)) => {
                    if attempt_span.is_enabled() {
                        self.tracer.event(
                            attempt_span,
                            at.as_micros(),
                            &EventKind::UpstreamFault {
                                kind: format!("rcode:{rc:?}"),
                            },
                        );
                    }
                }
            }
            attempt = attempt.saturating_add(1);
            rung_attempt += 1;
            if rung_attempt >= per_rung {
                if rung + 1 < ladder.len() {
                    rung = self.note_transport_fallback(
                        &ladder,
                        rung,
                        rung + 1,
                        "exhausted",
                        pending.trace,
                        at,
                    );
                    rung_attempt = 0;
                } else {
                    return (self.answer_failure(&pending, at), None);
                }
            }
            if pending.trace.is_enabled() {
                self.tracer.event(
                    pending.trace,
                    at.as_micros(),
                    &EventKind::RetryBackoff {
                        attempt: attempt as u32,
                        delay_us: backoff.as_micros(),
                    },
                );
            }
            self.note_retry_sent(&pending.upstream_query);
        }
    }

    /// Counts and traces one transport-ladder edge (`ladder[from]` →
    /// `ladder[to]` for `reason`), returning the new rung index.
    fn note_transport_fallback(
        &mut self,
        ladder: &[netsim::Transport],
        from: usize,
        to: usize,
        reason: &'static str,
        trace: TraceCtx,
        at: SimTime,
    ) -> usize {
        self.stats.transport_fallbacks.inc();
        match ladder[to] {
            netsim::Transport::Tcp => self.stats.fallbacks_to_tcp.inc(),
            netsim::Transport::Dot => self.stats.fallbacks_to_dot.inc(),
            netsim::Transport::Doh => self.stats.fallbacks_to_doh.inc(),
            netsim::Transport::Udp => {}
        }
        self.trace_event(
            trace,
            at,
            &EventKind::TransportFallback {
                from: ladder[from].label(),
                to: ladder[to].label(),
                reason,
            },
        );
        to
    }

    /// Records a timed-out attempt (0-based `attempt`) for an exchange whose
    /// upstream query is `upstream_query`, withdrawing ECS per RFC 7871
    /// §7.1.3 when the policy says so, and returns how long the attempt
    /// waited. Exposed for asynchronous drivers (the netsim actors) that run
    /// their own timers instead of [`Resolver::drive_upstream`].
    pub fn note_upstream_timeout(
        &mut self,
        upstream_query: &mut Message,
        attempt: u8,
    ) -> netsim::SimDuration {
        self.stats.upstream_timeouts.inc();
        if self.config.retry.withdraw_ecs_on_timeout && upstream_query.ecs().is_some() {
            upstream_query.clear_ecs();
            self.probing_state.mark_non_ecs();
            self.stats.ecs_withdrawals.inc();
        }
        self.config.retry.timeout_for(attempt)
    }

    /// Records one retransmission of `upstream_query`. Exposed for
    /// asynchronous drivers.
    pub fn note_retry_sent(&mut self, upstream_query: &Message) {
        self.stats.retries.inc();
        self.stats.upstream_queries.inc();
        if upstream_query.ecs().is_some() {
            self.stats.upstream_ecs_queries.inc();
        }
    }

    /// Builds the SERVFAIL answer for a client whose upstream exchange
    /// exhausted its attempt budget, and counts it. Nothing is cached: the
    /// failure is transient, not a property of the name.
    pub fn give_up(&mut self, client_query: &Message) -> Message {
        self.stats.servfail_responses.inc();
        let mut resp = Message::response_to(client_query);
        resp.rcode = Rcode::ServFail;
        resp
    }

    /// Answers a failed upstream exchange: a stale answer per RFC 8767 when
    /// serve-stale is enabled and a matching expired entry is still inside
    /// the stale budget, SERVFAIL otherwise. With serve-stale off this is
    /// exactly [`Resolver::give_up`].
    pub fn answer_failure(&mut self, pending: &PendingQuery, now: SimTime) -> Message {
        let stale_before = self.stats.stale_answers.get();
        let resp = self.stale_or_servfail(
            &pending.client_query,
            &pending.question.name,
            pending.question.qtype,
            pending.client_addr,
            now,
        );
        let latency_us = now.since(pending.started).as_micros();
        self.stats.query_latency.record(latency_us);
        if pending.trace.is_enabled() {
            if self.stats.stale_answers.get() > stale_before {
                self.tracer
                    .event(pending.trace, now.as_micros(), &EventKind::StaleServe);
            }
            self.tracer.event(
                pending.trace,
                now.as_micros(),
                &EventKind::Answered {
                    rcode: format!("{:?}", resp.rcode),
                    latency_us,
                },
            );
        }
        resp
    }

    /// The serve-stale decision for an arbitrary failed client, used by
    /// asynchronous drivers for coalesced joiners whose effective client
    /// address differs from the flight owner's.
    pub fn stale_or_servfail(
        &mut self,
        client_query: &Message,
        qname: &Name,
        qtype: dns_wire::RecordType,
        client_addr: IpAddr,
        now: SimTime,
    ) -> Message {
        if self.config.overload.serve_stale_enabled() {
            let serve_ttl = self.config.overload.stale_answer_ttl;
            if let Some(stale) = self
                .cache
                .lookup_stale(qname, qtype, client_addr, now, serve_ttl)
            {
                self.stats.stale_answers.inc();
                let mut resp = Message::response_to(client_query);
                resp.rcode = stale.rcode;
                resp.answers = stale.records;
                if self.config.echo_ecs_to_client {
                    if let (Some(client_opt), Some(stored)) = (client_query.ecs(), stale.ecs) {
                        resp.set_ecs(client_opt.with_scope(stored.scope_prefix_len()));
                    }
                }
                return resp;
            }
        }
        self.give_up(client_query)
    }

    /// The client-facing answer for a coalesced joiner, built from the
    /// flight owner's raw upstream response — the non-caching half of
    /// [`Resolver::complete`] (the owner's completion does the caching).
    /// Each joiner echoes ECS against its *own* query, so joiners with
    /// different client options still get correct echoes.
    pub fn joiner_response(&self, joined: &Message, upstream_resp: &Message) -> Message {
        let mut resp = Message::response_to(joined);
        resp.rcode = upstream_resp.rcode;
        resp.answers = upstream_resp.answers.clone();
        if self.config.echo_ecs_to_client {
            if let (Some(client_opt), Some(up_ecs)) = (joined.ecs(), upstream_resp.ecs()) {
                resp.set_ecs(client_opt.with_scope(up_ecs.scope_prefix_len()));
            }
        }
        resp
    }

    /// Records that a query joined an existing upstream flight instead of
    /// launching its own: retracts the upstream send that
    /// [`Resolver::begin`] already counted, and counts the coalesce.
    pub fn note_coalesced(&mut self, upstream_query: &Message) {
        self.stats.upstream_queries.sub_saturating(1);
        if upstream_query.ecs().is_some() {
            self.stats.upstream_ecs_queries.sub_saturating(1);
        }
        self.stats.coalesced_queries.inc();
    }

    /// Sheds a query under admission control: retracts the upstream send
    /// that [`Resolver::begin`] already counted, counts the shed, and
    /// builds the SERVFAIL refusal.
    pub fn shed(&mut self, pending: &PendingQuery) -> Message {
        self.stats.upstream_queries.sub_saturating(1);
        if pending.upstream_query.ecs().is_some() {
            self.stats.upstream_ecs_queries.sub_saturating(1);
        }
        self.stats.shed_queries.inc();
        // Shed queries are refused on arrival: zero client-observed wait.
        self.stats.query_latency.record(0);
        if pending.trace.is_enabled() {
            let at = pending.started.as_micros();
            self.tracer.event(pending.trace, at, &EventKind::Shed);
            self.tracer.event(
                pending.trace,
                at,
                &EventKind::Answered {
                    rcode: format!("{:?}", Rcode::ServFail),
                    latency_us: 0,
                },
            );
        }
        let mut resp = Message::response_to(&pending.client_query);
        resp.rcode = Rcode::ServFail;
        resp
    }

    /// Phase one: cache lookup and ECS decision. Returns either an
    /// immediate answer or the upstream query to send.
    pub fn begin(&mut self, query: &Message, client_src: IpAddr, now: SimTime) -> Step {
        self.stats.client_queries.inc();
        let question = match query.question() {
            Some(q) => q.clone(),
            None => {
                let mut resp = Message::response_to(query);
                resp.rcode = Rcode::FormErr;
                return Step::Answer(resp);
            }
        };

        let trace = if self.tracer.is_enabled() {
            self.tracer.start(
                now.as_micros(),
                &EventKind::QueryReceived {
                    qname: question.name.to_string(),
                    qtype: format!("{:?}", question.qtype),
                },
            )
        } else {
            TraceCtx::DISABLED
        };

        // Whose location is this query about? Trusted incoming ECS wins,
        // otherwise the immediate sender.
        let client_ecs = if self.config.accept_client_ecs {
            query.ecs().copied()
        } else {
            None
        };
        let effective_client: IpAddr = client_ecs.as_ref().map(|e| e.addr()).unwrap_or(client_src);

        // Cache lookup (unless the probing strategy bypasses the cache for
        // this name).
        let bypass = self.config.probing.bypasses_cache(&question.name);
        let cached = if bypass {
            None
        } else {
            self.cache
                .lookup(&question.name, question.qtype, effective_client, now)
        };
        if trace.is_enabled() {
            let outcome = if bypass {
                "bypass"
            } else if cached.is_some() {
                "hit"
            } else {
                "miss"
            };
            self.tracer
                .event(trace, now.as_micros(), &EventKind::CacheProbe { outcome });
        }

        if let Some(answer) = cached {
            let mut resp = Message::response_to(query);
            resp.rcode = answer.rcode;
            resp.answers = answer.records;
            if self.config.echo_ecs_to_client {
                if let (Some(client_opt), Some(stored)) = (query.ecs(), answer.ecs) {
                    resp.set_ecs(client_opt.with_scope(stored.scope_prefix_len()));
                }
            }
            self.stats.query_latency.record(0);
            if trace.is_enabled() {
                self.tracer.event(
                    trace,
                    now.as_micros(),
                    &EventKind::Answered {
                        rcode: format!("{:?}", resp.rcode),
                        latency_us: 0,
                    },
                );
            }
            return Step::Answer(resp);
        }

        // Miss: decide ECS and build the upstream query.
        let decision = self.config.probing.decide(
            &question.name,
            question.qtype.is_address(),
            false,
            now,
            &mut self.probing_state,
        );
        let mut upstream_q = Message::query(self.take_id(), question.clone());
        upstream_q.set_edns(self.config.transport.edns_buf);
        match decision {
            EcsDecision::SendClientEcs => {
                let mut opt = self.config.prefix_policy.build(
                    effective_client,
                    client_ecs.as_ref(),
                    self.config.addr,
                );
                if self.config.adaptive_prefix {
                    if let Some(learned) = self.learned_scope(&question.name) {
                        if learned < opt.source_prefix_len() {
                            opt = dns_wire::EcsOption::new(opt.addr(), learned);
                        }
                    }
                }
                upstream_q.set_ecs(opt);
            }
            EcsDecision::SendLoopbackProbe => {
                upstream_q.set_ecs(crate::prefix_policy::PrefixPolicy::Loopback.build(
                    effective_client,
                    None,
                    self.config.addr,
                ));
            }
            EcsDecision::SendOwnAddress => {
                upstream_q.set_ecs(crate::prefix_policy::PrefixPolicy::ResolverOwn.build(
                    effective_client,
                    None,
                    self.config.addr,
                ));
            }
            EcsDecision::Omit => {}
        }
        if trace.is_enabled() {
            let label = match decision {
                EcsDecision::SendClientEcs => "client_ecs",
                EcsDecision::SendLoopbackProbe => "loopback_probe",
                EcsDecision::SendOwnAddress => "own_address",
                EcsDecision::Omit => "omit",
            };
            self.tracer.event(
                trace,
                now.as_micros(),
                &EventKind::EcsDecision {
                    decision: label,
                    prefix: upstream_q.ecs().map(|e| e.source_prefix().to_string()),
                },
            );
        }
        self.stats.upstream_queries.inc();
        if upstream_q.ecs().is_some() {
            self.stats.upstream_ecs_queries.inc();
        }
        Step::NeedUpstream(PendingQuery {
            client_query: query.clone(),
            question,
            upstream_query: upstream_q,
            client_addr: effective_client,
            started: now,
            trace,
        })
    }

    /// Phase two: ingest the upstream response, cache it, and build the
    /// client-facing answer.
    pub fn complete(
        &mut self,
        pending: PendingQuery,
        upstream_resp: &Message,
        now: SimTime,
    ) -> Message {
        self.config
            .probing
            .record_response(upstream_resp.ecs().is_some(), &mut self.probing_state);

        // Adaptive mode: remember the largest non-zero scope the zone's
        // authoritative has used.
        if self.config.adaptive_prefix {
            if let Some(ecs) = upstream_resp.ecs() {
                let scope = ecs.scope_prefix_len().min(ecs.source_prefix_len());
                if scope > 0 {
                    let key = pending
                        .question
                        .name
                        .second_level_domain()
                        .unwrap_or_else(|| pending.question.name.clone());
                    let entry = self.scope_memory.entry(key).or_insert(scope);
                    *entry = (*entry).max(scope);
                }
            }
        }

        let evictions_before = if pending.trace.is_enabled() {
            let s = self.cache.stats();
            s.evictions.saturating_add(s.per_name_evictions)
        } else {
            0
        };

        // Cache the upstream answer (even probe-bypass responses are
        // cached; the bypass only skips the lookup).
        let ttl = upstream_resp
            .min_answer_ttl()
            .unwrap_or(self.config.negative_ttl);
        if upstream_resp.rcode.is_ok() && !upstream_resp.answers.is_empty() {
            self.cache.insert(
                pending.question.name.clone(),
                pending.question.qtype,
                upstream_resp.answers.clone(),
                upstream_resp.ecs().copied(),
                ttl,
                now,
            );
        } else if matches!(upstream_resp.rcode, Rcode::NxDomain)
            || (upstream_resp.rcode.is_ok() && upstream_resp.answers.is_empty())
        {
            // RFC 2308 negative caching: NXDOMAIN and NODATA responses are
            // cached (with their ECS scope, if any) for the negative TTL.
            self.cache.insert_with_rcode(
                pending.question.name.clone(),
                pending.question.qtype,
                Vec::new(),
                upstream_resp.ecs().copied(),
                upstream_resp.rcode,
                self.config.negative_ttl,
                now,
            );
        }

        let mut resp = Message::response_to(&pending.client_query);
        resp.rcode = upstream_resp.rcode;
        resp.answers = upstream_resp.answers.clone();
        if self.config.echo_ecs_to_client {
            if let (Some(client_opt), Some(up_ecs)) =
                (pending.client_query.ecs(), upstream_resp.ecs())
            {
                resp.set_ecs(client_opt.with_scope(up_ecs.scope_prefix_len()));
            }
        }
        let latency_us = now.since(pending.started).as_micros();
        self.stats.query_latency.record(latency_us);
        if pending.trace.is_enabled() {
            let s = self.cache.stats();
            let evicted = s
                .evictions
                .saturating_add(s.per_name_evictions)
                .saturating_sub(evictions_before);
            if evicted > 0 {
                self.tracer.event(
                    pending.trace,
                    now.as_micros(),
                    &EventKind::EvictionPressure { evicted },
                );
            }
            self.tracer.event(
                pending.trace,
                now.as_micros(),
                &EventKind::Answered {
                    rcode: format!("{:?}", resp.rcode),
                    latency_us,
                },
            );
        }
        resp
    }

    /// Handles a client query, chasing CNAME chains across zones: when the
    /// upstream answer ends in a CNAME without address records (the
    /// cross-zone redirection CDNs use for onboarding), the resolver
    /// re-queries the target — through the cache, so chased hops are
    /// cached and scoped independently — and merges the chains. Depth is
    /// bounded at 8 per RFC practice.
    pub fn resolve_chasing<U: Upstream>(
        &mut self,
        query: &Message,
        client_src: IpAddr,
        now: SimTime,
        upstream: &mut U,
    ) -> Message {
        let mut merged = self.resolve_msg(query, client_src, now, upstream);
        let Some(question) = query.question().cloned() else {
            return merged;
        };
        for _ in 0..8 {
            if !merged.rcode.is_ok()
                || !merged.answer_addrs().is_empty()
                || merged.answers.is_empty()
            {
                break;
            }
            let Some(target) = merged.final_name() else {
                break;
            };
            if target == question.name {
                break;
            }
            let mut chase = Message::query(
                query.id,
                dns_wire::Question::new(target, question.qtype, question.qclass),
            );
            if let Some(e) = query.ecs() {
                chase.set_ecs(*e);
            }
            let hop = self.resolve_msg(&chase, client_src, now, upstream);
            merged.rcode = hop.rcode;
            merged.answers.extend(hop.answers.iter().cloned());
            if let Some(e) = hop.ecs() {
                merged.set_ecs(*e);
            }
            if hop.answers.is_empty() {
                break;
            }
        }
        merged
    }

    fn take_id(&mut self) -> u16 {
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1).max(1);
        id
    }
}

/// Outcome of [`Resolver::begin`].
// A `NeedUpstream` is destructured and moved into the caller's flight
// table immediately, so the size skew between variants never costs a copy
// on a hot path.
#[allow(clippy::large_enum_variant)]
pub enum Step {
    /// The query was answered immediately (cache hit or error).
    Answer(Message),
    /// An upstream exchange is required.
    NeedUpstream(PendingQuery),
}

/// State carried between [`Resolver::begin`] and [`Resolver::complete`].
pub struct PendingQuery {
    /// The original client message.
    pub client_query: Message,
    /// The question being resolved.
    pub question: dns_wire::Question,
    /// The query to send upstream.
    pub upstream_query: Message,
    /// The effective client address (trusted incoming ECS, else the
    /// immediate sender) — what scope matching is about.
    pub client_addr: IpAddr,
    /// When the client query entered [`Resolver::begin`] — the zero point
    /// of the `resolver_query_latency_us` histogram.
    pub started: SimTime,
    /// Trace context of this resolution's root span
    /// ([`TraceCtx::DISABLED`] when tracing is off).
    pub trace: TraceCtx,
}

/// The coalescing identity of an upstream flight: lookups with identical
/// (qname, qtype, effective-ECS-prefix) may share one upstream exchange.
pub type FlightKey = (Name, dns_wire::RecordType, Option<dns_wire::IpPrefix>);

impl PendingQuery {
    /// This flight's coalescing key.
    pub fn flight_key(&self) -> FlightKey {
        (
            self.question.name.clone(),
            self.question.qtype,
            self.upstream_query.ecs().map(|e| e.source_prefix()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use authoritative::{EcsHandling, ScopePolicy, Zone};
    use dns_wire::{EcsOption, Question};
    use std::net::Ipv4Addr;

    fn name(s: &str) -> Name {
        Name::from_ascii(s).unwrap()
    }

    fn auth() -> AuthServer {
        let mut zone = Zone::new(name("example.com"));
        zone.add_a(name("www.example.com"), 60, Ipv4Addr::new(198, 51, 100, 1))
            .unwrap();
        AuthServer::new(zone, EcsHandling::open(ScopePolicy::MatchSource))
    }

    fn client_query(qname: &str) -> Message {
        Message::query(9, Question::a(name(qname)))
    }

    const CLIENT: IpAddr = IpAddr::V4(Ipv4Addr::new(192, 0, 2, 77));
    const RES: IpAddr = IpAddr::V4(Ipv4Addr::new(9, 9, 9, 9));

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn resolves_and_caches() {
        let mut auth = auth();
        let mut r = Resolver::new(ResolverConfig::rfc_compliant(RES));
        let resp = r.resolve_msg(&client_query("www.example.com"), CLIENT, t(0), &mut auth);
        assert_eq!(resp.answers.len(), 1);
        assert_eq!(r.stats().upstream_queries, 1);
        // Second query from the same client: cache hit, no upstream.
        let resp2 = r.resolve_msg(&client_query("www.example.com"), CLIENT, t(1), &mut auth);
        assert_eq!(resp2.answers.len(), 1);
        assert_eq!(r.stats().upstream_queries, 1);
        assert_eq!(r.cache_stats().hits, 1);
    }

    #[test]
    fn scope_respected_across_clients() {
        let mut auth = auth(); // scope = source = 24
        let mut r = Resolver::new(ResolverConfig::rfc_compliant(RES));
        r.resolve_msg(&client_query("www.example.com"), CLIENT, t(0), &mut auth);
        // Client in another /24 misses and triggers a second upstream query.
        let other: IpAddr = "192.0.3.1".parse().unwrap();
        r.resolve_msg(&client_query("www.example.com"), other, t(1), &mut auth);
        assert_eq!(r.stats().upstream_queries, 2);
        // Client in the first /24 hits.
        let near: IpAddr = "192.0.2.200".parse().unwrap();
        r.resolve_msg(&client_query("www.example.com"), near, t(2), &mut auth);
        assert_eq!(r.stats().upstream_queries, 2);
    }

    #[test]
    fn upstream_query_carries_truncated_prefix() {
        let mut auth = auth();
        let mut r = Resolver::new(ResolverConfig::rfc_compliant(RES));
        r.resolve_msg(&client_query("www.example.com"), CLIENT, t(0), &mut auth);
        let log = auth.log();
        assert_eq!(log.len(), 1);
        let ecs = log[0].ecs.unwrap();
        assert_eq!(ecs.source_prefix_len(), 24);
        assert_eq!(ecs.to_v4(), Some(Ipv4Addr::new(192, 0, 2, 0)));
        assert_eq!(log[0].resolver, RES);
    }

    #[test]
    fn ignore_scope_resolver_shares_across_subnets() {
        let mut auth = auth();
        let mut r = Resolver::new(ResolverConfig::jammed_full(RES, 1));
        r.resolve_msg(&client_query("www.example.com"), CLIENT, t(0), &mut auth);
        let other: IpAddr = "203.0.113.5".parse().unwrap();
        r.resolve_msg(&client_query("www.example.com"), other, t(1), &mut auth);
        // One upstream query: the second client was served the cached answer
        // despite being outside the scope.
        assert_eq!(r.stats().upstream_queries, 1);
    }

    #[test]
    fn echo_ecs_scope_to_client() {
        let mut auth = auth();
        let mut r = Resolver::new(ResolverConfig::anycast_service_egress(RES));
        let mut q = client_query("www.example.com");
        q.set_ecs(EcsOption::from_v4(Ipv4Addr::new(192, 0, 2, 77), 32));
        let resp = r.resolve_msg(&q, CLIENT, t(0), &mut auth);
        let echoed = resp.ecs().unwrap();
        assert_eq!(echoed.scope_prefix_len(), 24); // authoritative matched source (/24)
    }

    #[test]
    fn trusted_client_ecs_drives_identity() {
        let mut auth = auth();
        let mut r = Resolver::new(ResolverConfig::anycast_service_egress(RES));
        // Frontend stamps the real client's /32; resolver truncates to /24.
        let mut q = client_query("www.example.com");
        q.set_ecs(EcsOption::from_v4(Ipv4Addr::new(100, 1, 2, 3), 32));
        let frontend: IpAddr = "10.0.0.1".parse().unwrap();
        r.resolve_msg(&q, frontend, t(0), &mut auth);
        let ecs = auth.log()[0].ecs.unwrap();
        assert_eq!(ecs.to_v4(), Some(Ipv4Addr::new(100, 1, 2, 0)));
        assert_eq!(ecs.source_prefix_len(), 24);
    }

    #[test]
    fn untrusted_client_ecs_overridden_with_sender() {
        let mut auth = auth();
        let mut r = Resolver::new(ResolverConfig::public_service_egress(RES));
        let mut q = client_query("www.example.com");
        q.set_ecs(EcsOption::from_v4(Ipv4Addr::new(100, 1, 2, 3), 32));
        let hidden: IpAddr = "77.7.7.7".parse().unwrap();
        r.resolve_msg(&q, hidden, t(0), &mut auth);
        let ecs = auth.log()[0].ecs.unwrap();
        // The HIDDEN RESOLVER's /24 is conveyed — the §8.2 phenomenon.
        assert_eq!(ecs.to_v4(), Some(Ipv4Addr::new(77, 7, 7, 0)));
    }

    #[test]
    fn zone_router_routes_by_apex() {
        let mut router = ZoneRouter::new();
        router.add(auth());
        let mut zone2 = Zone::new(name("other.net"));
        zone2
            .add_a(name("www.other.net"), 60, Ipv4Addr::new(198, 51, 100, 9))
            .unwrap();
        router.add(AuthServer::new(zone2, EcsHandling::open(ScopePolicy::Zero)));
        let mut r = Resolver::new(ResolverConfig::rfc_compliant(RES));
        let a = r.resolve_msg(&client_query("www.example.com"), CLIENT, t(0), &mut router);
        assert_eq!(a.answer_addrs()[0].to_string(), "198.51.100.1");
        let b = r.resolve_msg(&client_query("www.other.net"), CLIENT, t(0), &mut router);
        assert_eq!(b.answer_addrs()[0].to_string(), "198.51.100.9");
        let c = r.resolve_msg(&client_query("www.unknown.org"), CLIENT, t(0), &mut router);
        assert_eq!(c.rcode, Rcode::Refused);
    }

    #[test]
    fn ttl_counts_down_in_cached_answers() {
        let mut auth = auth();
        let mut r = Resolver::new(ResolverConfig::rfc_compliant(RES));
        r.resolve_msg(&client_query("www.example.com"), CLIENT, t(0), &mut auth);
        let resp = r.resolve_msg(&client_query("www.example.com"), CLIENT, t(45), &mut auth);
        assert_eq!(resp.answers[0].ttl, 15);
        // After expiry: upstream again.
        r.resolve_msg(&client_query("www.example.com"), CLIENT, t(61), &mut auth);
        assert_eq!(r.stats().upstream_queries, 2);
    }

    #[test]
    fn non_ecs_upstream_cached_globally() {
        let mut zone = Zone::new(name("plain.org"));
        zone.add_a(name("www.plain.org"), 60, Ipv4Addr::new(1, 2, 3, 4))
            .unwrap();
        let mut auth = AuthServer::new(zone, EcsHandling::disabled());
        let mut r = Resolver::new(ResolverConfig::rfc_compliant(RES));
        r.resolve_msg(&client_query("www.plain.org"), CLIENT, t(0), &mut auth);
        let far: IpAddr = "203.0.113.200".parse().unwrap();
        r.resolve_msg(&client_query("www.plain.org"), far, t(1), &mut auth);
        assert_eq!(r.stats().upstream_queries, 1, "shared across all clients");
    }

    #[test]
    fn stats_count_ecs_queries() {
        let mut auth = auth();
        let mut r = Resolver::new(ResolverConfig::rfc_compliant(RES));
        r.resolve_msg(&client_query("www.example.com"), CLIENT, t(0), &mut auth);
        assert_eq!(r.stats().upstream_ecs_queries, 1);
        assert_eq!(r.stats().client_queries, 1);
    }

    #[test]
    fn legacy_stats_read_the_registry_values() {
        // Back-compat: the struct accessor and the registry snapshot are
        // two views of the same counters.
        let mut auth = auth();
        let mut r = Resolver::new(ResolverConfig::rfc_compliant(RES));
        r.resolve_msg(&client_query("www.example.com"), CLIENT, t(0), &mut auth);
        r.resolve_msg(&client_query("www.example.com"), CLIENT, t(1), &mut auth);
        let s = r.stats();
        let snap = r.registry().snapshot();
        assert_eq!(
            snap.counter("resolver_client_queries_total"),
            Some(s.client_queries)
        );
        assert_eq!(
            snap.counter("resolver_upstream_queries_total"),
            Some(s.upstream_queries)
        );
        assert_eq!(
            snap.counter("resolver_upstream_ecs_queries_total"),
            Some(s.upstream_ecs_queries)
        );
        // Every resolution records one latency sample (the cache hit at 0).
        let latency = snap.histogram("resolver_query_latency_us").unwrap();
        assert_eq!(latency.count, 2);
        // The merged snapshot also carries the cache's series.
        let merged = r.metrics_snapshot();
        assert_eq!(
            merged.counter("cache_hits_total"),
            Some(r.cache_stats().hits)
        );
        assert_eq!(
            merged.counter("cache_misses_total"),
            Some(r.cache_stats().misses)
        );
    }

    #[test]
    fn traced_resolution_emits_span_events() {
        use std::sync::Arc;
        let sink = Arc::new(obs::MemorySink::new());
        let mut auth = auth();
        let mut r = Resolver::new(ResolverConfig::rfc_compliant(RES));
        r.set_tracer(obs::Tracer::new(sink.clone()));
        r.resolve_msg(&client_query("www.example.com"), CLIENT, t(0), &mut auth);
        r.resolve_msg(&client_query("www.example.com"), CLIENT, t(1), &mut auth);
        let text = sink.lines().join("\n");
        let events = obs::validate::validate_trace(&text).expect("valid trace");
        // Miss: received, probe, decision, attempt, answered (5);
        // hit: received, probe, answered (3).
        assert_eq!(events, 8);
        assert!(text.contains("\"event\":\"cache_probe\",\"outcome\":\"miss\""));
        assert!(text.contains("\"event\":\"cache_probe\",\"outcome\":\"hit\""));
        assert!(text.contains("\"event\":\"ecs_decision\""));
        assert!(text.contains("\"event\":\"upstream_attempt\""));
        assert!(text.contains("\"event\":\"answered\""));
    }
}

#[cfg(test)]
mod retry_tests {
    use super::*;
    use authoritative::{EcsHandling, ScopePolicy, Zone};
    use dns_wire::Question;
    use std::collections::VecDeque;
    use std::net::Ipv4Addr;

    fn name(s: &str) -> Name {
        Name::from_ascii(s).unwrap()
    }

    const CLIENT: IpAddr = IpAddr::V4(Ipv4Addr::new(192, 0, 2, 77));
    const RES: IpAddr = IpAddr::V4(Ipv4Addr::new(9, 9, 9, 9));

    /// What a scripted upstream does on one UDP attempt.
    enum Act {
        /// Answer normally from the inner zone.
        Answer,
        /// Answer with the TC bit set and no records (in-band truncation).
        Tc,
        /// Fail with this transport error.
        Fail(UpstreamError),
    }

    /// Pops one `Act` per UDP query; once the script runs dry it answers
    /// normally. TCP always answers from the zone.
    struct Scripted {
        inner: AuthServer,
        script: VecDeque<Act>,
        /// (carried ECS?, virtual time) per UDP attempt.
        udp_log: Vec<(bool, SimTime)>,
        tcp_calls: u32,
    }

    impl Scripted {
        fn new(script: Vec<Act>) -> Self {
            let mut zone = Zone::new(name("example.com"));
            zone.add_a(name("www.example.com"), 60, Ipv4Addr::new(198, 51, 100, 1))
                .unwrap();
            Scripted {
                inner: AuthServer::new(zone, EcsHandling::open(ScopePolicy::MatchSource)),
                script: VecDeque::from(script),
                udp_log: Vec::new(),
                tcp_calls: 0,
            }
        }
    }

    impl Upstream for Scripted {
        fn query(
            &mut self,
            q: &Message,
            from: IpAddr,
            now: SimTime,
        ) -> Result<Message, UpstreamError> {
            self.udp_log.push((q.ecs().is_some(), now));
            match self.script.pop_front() {
                Some(Act::Fail(e)) => Err(e),
                Some(Act::Tc) => {
                    let mut resp = Message::response_to(q);
                    resp.flags.tc = true;
                    Ok(resp)
                }
                Some(Act::Answer) | None => Ok(self.inner.handle(q, from, now)),
            }
        }

        fn query_tcp(
            &mut self,
            q: &Message,
            from: IpAddr,
            now: SimTime,
        ) -> Result<Message, UpstreamError> {
            self.tcp_calls += 1;
            Ok(self.inner.handle(q, from, now))
        }
    }

    fn q() -> Message {
        Message::query(9, Question::a(name("www.example.com")))
    }

    #[test]
    fn timeout_retries_without_ecs_and_marks_server() {
        let mut up = Scripted::new(vec![Act::Fail(UpstreamError::Timeout), Act::Answer]);
        let mut r = Resolver::new(ResolverConfig::rfc_compliant(RES));
        let resp = r.resolve_msg(&q(), CLIENT, SimTime::ZERO, &mut up);
        assert_eq!(resp.answers.len(), 1);
        assert_eq!(up.udp_log.len(), 2);
        assert!(up.udp_log[0].0, "first attempt carries ECS");
        assert!(!up.udp_log[1].0, "retry withdrew ECS (RFC 7871 §7.1.3)");
        // The retry happens after the first attempt's 2 s timeout elapsed.
        assert_eq!(up.udp_log[1].1, SimTime::from_secs(2));
        assert!(r.probing_state().marked_non_ecs);
        let s = r.stats();
        assert_eq!(
            (s.retries, s.upstream_timeouts, s.ecs_withdrawals),
            (1, 1, 1)
        );
        assert_eq!(s.upstream_queries, 2);
        assert_eq!(s.upstream_ecs_queries, 1);
    }

    #[test]
    fn attempt_budget_exhaustion_yields_servfail_with_backoff() {
        let mut up = Scripted::new(vec![
            Act::Fail(UpstreamError::Timeout),
            Act::Fail(UpstreamError::Timeout),
            Act::Fail(UpstreamError::Timeout),
            Act::Fail(UpstreamError::Timeout),
        ]);
        let mut r = Resolver::new(ResolverConfig::rfc_compliant(RES));
        let resp = r.resolve_msg(&q(), CLIENT, SimTime::ZERO, &mut up);
        assert_eq!(resp.rcode, Rcode::ServFail);
        assert!(resp.answers.is_empty());
        // 4 attempts at t = 0, 2, 6, 14 (exponential backoff: 2, 4, 8 s).
        let times: Vec<u64> = up
            .udp_log
            .iter()
            .map(|(_, t)| t.as_micros() / 1_000_000)
            .collect();
        assert_eq!(times, vec![0, 2, 6, 14]);
        assert_eq!(r.stats().servfail_responses, 1);
        assert_eq!(r.stats().retries, 3);
        // SERVFAIL is not cached: the next query goes upstream again.
        r.resolve_msg(&q(), CLIENT, SimTime::from_secs(20), &mut up);
        assert_eq!(up.udp_log.len(), 5);
    }

    #[test]
    fn truncated_error_falls_back_to_tcp() {
        let mut up = Scripted::new(vec![Act::Fail(UpstreamError::Truncated(Box::new(
            Message::response_to(&q()),
        )))]);
        let mut r = Resolver::new(ResolverConfig::rfc_compliant(RES));
        let resp = r.resolve_msg(&q(), CLIENT, SimTime::ZERO, &mut up);
        assert_eq!(resp.answers.len(), 1);
        assert_eq!(up.tcp_calls, 1);
        assert_eq!(r.stats().tcp_fallbacks, 1);
        assert_eq!(r.stats().servfail_responses, 0);
    }

    #[test]
    fn tc_bit_reply_falls_back_to_tcp() {
        let mut up = Scripted::new(vec![Act::Tc]);
        let mut r = Resolver::new(ResolverConfig::rfc_compliant(RES));
        let resp = r.resolve_msg(&q(), CLIENT, SimTime::ZERO, &mut up);
        assert_eq!(resp.answers.len(), 1);
        assert_eq!(up.tcp_calls, 1);
        assert_eq!(r.stats().tcp_fallbacks, 1);
    }

    #[test]
    fn formerr_downgrade_is_opt_in_and_withdraws_ecs() {
        // Default policy: FORMERR passes through to the client untouched.
        let mut up = Scripted::new(vec![Act::Fail(UpstreamError::Rcode(Rcode::ServFail))]);
        let mut r = Resolver::new(ResolverConfig::rfc_compliant(RES));
        let resp = r.resolve_msg(&q(), CLIENT, SimTime::ZERO, &mut up);
        assert_eq!(resp.answers.len(), 1, "Rcode error consumed one attempt");
        assert_eq!(r.stats().retries, 1);
    }

    #[test]
    fn fault_free_paths_leave_new_counters_at_zero() {
        // Bit-identical guarantee: with an infallible upstream the engine
        // takes the exact pre-fault path and the new counters stay zero.
        let mut up = Scripted::new(vec![]);
        let mut r = Resolver::new(ResolverConfig::rfc_compliant(RES));
        r.resolve_msg(&q(), CLIENT, SimTime::ZERO, &mut up);
        let s = r.stats();
        assert_eq!(s.upstream_queries, 1);
        assert_eq!(
            (
                s.retries,
                s.upstream_timeouts,
                s.ecs_withdrawals,
                s.tcp_fallbacks,
                s.servfail_responses
            ),
            (0, 0, 0, 0, 0)
        );
        assert_eq!(
            (s.shed_queries, s.coalesced_queries, s.stale_answers),
            (0, 0, 0)
        );
        assert!(!r.probing_state().marked_non_ecs);
    }

    fn stale_config() -> ResolverConfig {
        let mut config = ResolverConfig::rfc_compliant(RES);
        config.overload.serve_stale_ttl = netsim::SimDuration::from_secs(3600);
        config
    }

    #[test]
    fn timed_out_upstream_serves_stale_instead_of_servfail() {
        let mut r = Resolver::new(stale_config());
        // Warm the cache, then let the entry expire (TTL 60).
        let mut up = Scripted::new(vec![]);
        r.resolve_msg(&q(), CLIENT, SimTime::ZERO, &mut up);
        // At t=120 the entry is stale; the upstream times out every attempt.
        let mut dead = Scripted::new(vec![
            Act::Fail(UpstreamError::Timeout),
            Act::Fail(UpstreamError::Timeout),
            Act::Fail(UpstreamError::Timeout),
            Act::Fail(UpstreamError::Timeout),
        ]);
        let resp = r.resolve_msg(&q(), CLIENT, SimTime::from_secs(120), &mut dead);
        assert_eq!(resp.rcode, Rcode::NoError, "stale answer beats SERVFAIL");
        assert_eq!(resp.answers.len(), 1);
        assert!(resp.answers[0].ttl <= 30, "stale TTL stamped down");
        let s = r.stats();
        assert_eq!(s.stale_answers, 1);
        assert_eq!(s.servfail_responses, 0);
    }

    #[test]
    fn stale_answer_respects_ecs_scope() {
        let mut r = Resolver::new(stale_config());
        let mut up = Scripted::new(vec![]);
        // Warmed by a /24 client → entry scoped to 192.0.2.0/24.
        r.resolve_msg(&q(), CLIENT, SimTime::ZERO, &mut up);
        let mut dead = Scripted::new(vec![
            Act::Fail(UpstreamError::Timeout),
            Act::Fail(UpstreamError::Timeout),
            Act::Fail(UpstreamError::Timeout),
            Act::Fail(UpstreamError::Timeout),
        ]);
        // A client outside the stale entry's /24 must NOT get the stale
        // answer — SERVFAIL is the honest response.
        let other: IpAddr = "198.18.5.5".parse().unwrap();
        let resp = r.resolve_msg(&q(), other, SimTime::from_secs(120), &mut dead);
        assert_eq!(resp.rcode, Rcode::ServFail);
        assert_eq!(r.stats().stale_answers, 0);
        assert_eq!(r.stats().servfail_responses, 1);
    }

    #[test]
    fn stale_budget_expiry_falls_back_to_servfail() {
        let mut r = Resolver::new(stale_config());
        let mut up = Scripted::new(vec![]);
        r.resolve_msg(&q(), CLIENT, SimTime::ZERO, &mut up);
        let mut dead = Scripted::new(vec![
            Act::Fail(UpstreamError::Timeout),
            Act::Fail(UpstreamError::Timeout),
            Act::Fail(UpstreamError::Timeout),
            Act::Fail(UpstreamError::Timeout),
        ]);
        // Far past expiry + stale budget (60 + 3600): no stale answer.
        let resp = r.resolve_msg(&q(), CLIENT, SimTime::from_secs(10_000), &mut dead);
        assert_eq!(resp.rcode, Rcode::ServFail);
        assert_eq!(r.stats().stale_answers, 0);
    }

    #[test]
    fn upstream_servfail_serves_stale_when_enabled() {
        let mut r = Resolver::new(stale_config());
        let mut up = Scripted::new(vec![]);
        r.resolve_msg(&q(), CLIENT, SimTime::ZERO, &mut up);
        // The upstream answers — with an in-band SERVFAIL (a parseable
        // message, not a transport error). RFC 8767 treats that as a
        // failure to paper over too.
        struct ServFailer;
        impl Upstream for ServFailer {
            fn query(
                &mut self,
                q: &Message,
                _from: IpAddr,
                _now: SimTime,
            ) -> Result<Message, UpstreamError> {
                let mut resp = Message::response_to(q);
                resp.rcode = Rcode::ServFail;
                Ok(resp)
            }
        }
        let resp = r.resolve_msg(&q(), CLIENT, SimTime::from_secs(120), &mut ServFailer);
        assert_eq!(resp.rcode, Rcode::NoError);
        assert_eq!(r.stats().stale_answers, 1);
    }
}

#[cfg(test)]
mod chasing_tests {
    use super::*;
    use authoritative::{CdnBehavior, EcsHandling, GeoDb, ScopePolicy, Zone};
    use dns_wire::{IpPrefix, Question};
    use std::net::{IpAddr, Ipv4Addr};
    use topology::{CdnFootprint, EdgeServerSpec};

    fn name(s: &str) -> Name {
        Name::from_ascii(s).unwrap()
    }

    const RES: IpAddr = IpAddr::V4(Ipv4Addr::new(9, 9, 9, 9));
    const CLIENT: IpAddr = IpAddr::V4(Ipv4Addr::new(100, 70, 1, 7));

    /// customer zone: www.customer.com CNAME ex.cdn.net; CDN zone serves
    /// the edges. Chasing must cross zones and keep ECS tailoring.
    fn world() -> ZoneRouter {
        let mut router = ZoneRouter::new();
        let mut customer = Zone::new(name("customer.com"));
        customer
            .add_cname(name("www.customer.com"), 300, name("ex.cdn.net"))
            .unwrap();
        router.add(AuthServer::new(
            customer,
            EcsHandling::open(ScopePolicy::Zero),
        ));

        let footprint = CdnFootprint {
            edges: netsim::geo::CITIES
                .iter()
                .enumerate()
                .map(|(i, c)| EdgeServerSpec {
                    addr: IpAddr::V4(Ipv4Addr::new(203, 0, 113, i as u8 + 1)),
                    pos: c.pos,
                    city: c.name.to_string(),
                })
                .collect(),
        };
        let mut geodb = GeoDb::new();
        geodb.insert(
            IpPrefix::new(CLIENT, 24).unwrap(),
            netsim::geo::city("Tokyo").unwrap().pos,
        );
        router.add(
            AuthServer::new(
                Zone::new(name("cdn.net")),
                EcsHandling::open(ScopePolicy::MatchSource),
            )
            .with_cdn(CdnBehavior::cdn1(footprint), geodb),
        );
        router
    }

    #[test]
    fn chases_cname_across_zones_with_ecs() {
        let mut router = world();
        let mut r = Resolver::new(ResolverConfig::rfc_compliant(RES));
        let q = Message::query(7, Question::a(name("www.customer.com")));
        let resp = r.resolve_chasing(&q, CLIENT, SimTime::ZERO, &mut router);
        assert!(resp.rcode.is_ok());
        // Chain: CNAME + A record(s).
        assert_eq!(resp.answers[0].rtype(), dns_wire::RecordType::Cname);
        assert_eq!(resp.answer_addrs().len(), 1);
        assert_eq!(resp.final_name().unwrap(), name("ex.cdn.net"));
        // The CDN zone saw the client's ECS and mapped near Tokyo:
        // edge index for Tokyo in CITIES.
        let tokyo_idx = netsim::geo::CITIES
            .iter()
            .position(|c| c.name == "Tokyo")
            .unwrap() as u8;
        assert_eq!(
            resp.answer_addrs()[0],
            IpAddr::V4(Ipv4Addr::new(203, 0, 113, tokyo_idx + 1))
        );
        // Both hops are now cached: a same-subnet repeat does no upstream.
        let upstream_before = r.stats().upstream_queries;
        let resp2 = r.resolve_chasing(&q, CLIENT, SimTime::from_secs(5), &mut router);
        assert_eq!(r.stats().upstream_queries, upstream_before);
        assert_eq!(resp2.answer_addrs(), resp.answer_addrs());
    }

    #[test]
    fn chase_depth_is_bounded() {
        let mut router = ZoneRouter::new();
        let mut zone = Zone::new(name("loop.example"));
        zone.add_cname(name("a.loop.example"), 60, name("b.loop.example"))
            .unwrap();
        zone.add_cname(name("b.loop.example"), 60, name("a.loop.example"))
            .unwrap();
        router.add(AuthServer::new(zone, EcsHandling::disabled()));
        let mut r = Resolver::new(ResolverConfig::rfc_compliant(RES));
        let q = Message::query(7, Question::a(name("a.loop.example")));
        // Terminates despite the CNAME loop.
        let resp = r.resolve_chasing(&q, CLIENT, SimTime::ZERO, &mut router);
        assert!(resp.answer_addrs().is_empty());
    }

    #[test]
    fn negative_answers_are_cached() {
        let mut router = world();
        let mut r = Resolver::new(ResolverConfig::rfc_compliant(RES));
        let q = Message::query(7, Question::a(name("missing.customer.com")));
        let resp = r.resolve_msg(&q, CLIENT, SimTime::ZERO, &mut router);
        assert_eq!(resp.rcode, Rcode::NxDomain);
        assert_eq!(r.stats().upstream_queries, 1);
        // Within the negative TTL the NXDOMAIN is served from cache.
        let resp = r.resolve_msg(&q, CLIENT, SimTime::from_secs(30), &mut router);
        assert_eq!(resp.rcode, Rcode::NxDomain);
        assert_eq!(r.stats().upstream_queries, 1);
        // After the negative TTL it goes upstream again.
        r.resolve_msg(&q, CLIENT, SimTime::from_secs(61), &mut router);
        assert_eq!(r.stats().upstream_queries, 2);
    }
}

#[cfg(test)]
mod adaptive_tests {
    use super::*;
    use authoritative::{EcsHandling, ScopePolicy, Zone};
    use dns_wire::Question;
    use std::net::{IpAddr, Ipv4Addr};

    fn name(s: &str) -> Name {
        Name::from_ascii(s).unwrap()
    }

    const RES: IpAddr = IpAddr::V4(Ipv4Addr::new(9, 9, 9, 9));

    #[test]
    fn learns_zone_scope_and_truncates_future_prefixes() {
        // An authoritative that maps at /20 granularity.
        let mut zone = Zone::new(name("coarse.example"));
        zone.add_a(
            name("www.coarse.example"),
            20,
            Ipv4Addr::new(198, 51, 100, 1),
        )
        .unwrap();
        let mut auth = AuthServer::new(zone, EcsHandling::open(ScopePolicy::Fixed(20)));
        let mut r = Resolver::new(ResolverConfig {
            adaptive_prefix: true,
            ..ResolverConfig::rfc_compliant(RES)
        });
        let q = Message::query(1, Question::a(name("www.coarse.example")));
        // First query: nothing learned yet → RFC /24.
        r.resolve_msg(
            &q,
            "100.70.1.1".parse().unwrap(),
            SimTime::from_secs(0),
            &mut auth,
        );
        assert_eq!(auth.log()[0].ecs.unwrap().source_prefix_len(), 24);
        assert_eq!(r.learned_scope(&name("www.coarse.example")), Some(20));
        // Second query (other subnet, past TTL): learned /20 applies.
        r.resolve_msg(
            &q,
            "100.80.1.1".parse().unwrap(),
            SimTime::from_secs(30),
            &mut auth,
        );
        assert_eq!(auth.log()[1].ecs.unwrap().source_prefix_len(), 20);
    }

    #[test]
    fn zero_scope_never_poisons_the_zone() {
        let mut zone = Zone::new(name("z.example"));
        zone.add_a(name("www.z.example"), 20, Ipv4Addr::new(198, 51, 100, 1))
            .unwrap();
        let mut auth = AuthServer::new(zone, EcsHandling::open(ScopePolicy::Zero));
        let mut r = Resolver::new(ResolverConfig {
            adaptive_prefix: true,
            ..ResolverConfig::rfc_compliant(RES)
        });
        let q = Message::query(1, Question::a(name("www.z.example")));
        r.resolve_msg(
            &q,
            "100.70.1.1".parse().unwrap(),
            SimTime::from_secs(0),
            &mut auth,
        );
        // Scope 0 is not learned; future queries stay at /24.
        assert_eq!(r.learned_scope(&name("www.z.example")), None);
        r.resolve_msg(
            &q,
            "100.80.1.1".parse().unwrap(),
            SimTime::from_secs(30),
            &mut auth,
        );
        assert_eq!(auth.log()[1].ecs.unwrap().source_prefix_len(), 24);
    }

    #[test]
    fn learned_scope_is_max_across_names_in_sld() {
        // Two hostnames in one SLD with different scopes: the finer (max)
        // one must win so no name in the zone is under-served.
        let mut zone = Zone::new(name("mix.example"));
        zone.add_a(name("a.mix.example"), 20, Ipv4Addr::new(198, 51, 100, 1))
            .unwrap();
        zone.add_a(name("b.mix.example"), 20, Ipv4Addr::new(198, 51, 100, 2))
            .unwrap();
        let mut auth = AuthServer::new(zone, EcsHandling::open(ScopePolicy::Fixed(16)));
        let mut r = Resolver::new(ResolverConfig {
            adaptive_prefix: true,
            ..ResolverConfig::rfc_compliant(RES)
        });
        let qa = Message::query(1, Question::a(name("a.mix.example")));
        r.resolve_msg(
            &qa,
            "100.70.1.1".parse().unwrap(),
            SimTime::from_secs(0),
            &mut auth,
        );
        assert_eq!(r.learned_scope(&name("a.mix.example")), Some(16));
        // Server policy shifts finer (Fixed(24)-like via a new server).
        let mut zone2 = Zone::new(name("mix.example"));
        zone2
            .add_a(name("b.mix.example"), 20, Ipv4Addr::new(198, 51, 100, 2))
            .unwrap();
        let mut auth24 = AuthServer::new(zone2, EcsHandling::open(ScopePolicy::MatchSource));
        let qb = Message::query(2, Question::a(name("b.mix.example")));
        r.resolve_msg(
            &qb,
            "100.70.1.1".parse().unwrap(),
            SimTime::from_secs(1),
            &mut auth24,
        );
        // learned = max(16, 24-ish). The /16-learned state truncated the
        // outgoing prefix to 16, so the response scope echoes 16 and the
        // memory stays at 16 — the known one-way ratchet of adaptation.
        assert_eq!(r.learned_scope(&name("b.mix.example")), Some(16));
    }
}
