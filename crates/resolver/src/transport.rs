//! The per-upstream transport policy and the transport-modelling
//! [`Upstream`] decorator.
//!
//! Two pieces live here:
//!
//! * [`TransportPolicy`] — configuration: the fallback **ladder** (which
//!   transports the engine may use, in preference order), the per-rung
//!   retry budget, and the EDNS buffer size the engine advertises. The
//!   engine climbs the ladder on two triggers: a TC-bit/truncated reply
//!   jumps straight to the next *stream* rung (RFC 7766 generalized), and
//!   an exhausted retry budget falls to the next rung whatever it is.
//! * [`TransportUpstream`] — a decorator in the mold of
//!   [`crate::FaultyUpstream`] that gives any inner upstream a
//!   [`netsim::TransportModel`]: handshake RTT costs shift the virtual
//!   arrival time of stream exchanges, UDP answers are subjected to the
//!   EDNS-buffer/path-MTU datagram fate (truncation and fragment loss),
//!   and standing per-transport faults ([`TransportFaults`]) let tests
//!   refuse or blackhole individual rungs deterministically.
//!
//! With the default policy (UDP-only ladder) and a default model (1500-byte
//! MTU, no fragment loss) both pieces are transparent: the engine takes
//! exactly the legacy code path and the decorator delivers every answer
//! unmodified, drawing nothing from its RNG.

use std::net::IpAddr;

use dns_wire::Message;
use netsim::transport::{DatagramFate, HandshakeCosts, PathProfile, TransportModel};
use netsim::{SimDuration, SimTime};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

pub use netsim::transport::{Transport, TransportStats};

use crate::engine::{Upstream, UpstreamError};

/// Which transports an upstream exchange may use, in fallback order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransportPolicy {
    /// The preference ladder, tried left to right. Empty is treated as
    /// `[Udp]`.
    pub ladder: Vec<Transport>,
    /// Attempts spent on each rung before falling to the next. `None`
    /// uses the [`crate::RetryPolicy::attempts`] budget per rung.
    pub attempts_per_transport: Option<u8>,
    /// EDNS buffer size (RFC 6891 `udp_payload_size`) advertised on
    /// upstream queries. Answers larger than this come back truncated.
    pub edns_buf: u16,
}

impl Default for TransportPolicy {
    fn default() -> Self {
        TransportPolicy::udp_only()
    }
}

impl TransportPolicy {
    /// The legacy behaviour: plain UDP with the engine's historical
    /// 4096-byte EDNS buffer, TC handled by an inline RFC 7766 TCP
    /// re-query.
    pub fn udp_only() -> Self {
        TransportPolicy {
            ladder: vec![Transport::Udp],
            attempts_per_transport: None,
            edns_buf: 4096,
        }
    }

    /// A single-transport ladder pinned to `transport`.
    pub fn prefer(transport: Transport) -> Self {
        TransportPolicy {
            ladder: vec![transport],
            ..TransportPolicy::udp_only()
        }
    }

    /// An explicit ladder.
    pub fn with_ladder(ladder: impl Into<Vec<Transport>>) -> Self {
        TransportPolicy {
            ladder: ladder.into(),
            ..TransportPolicy::udp_only()
        }
    }

    /// The full UDP → TCP → DoT → DoH ladder.
    pub fn full_ladder() -> Self {
        TransportPolicy::with_ladder(Transport::ALL)
    }

    /// The advertised buffer, for building upstream queries.
    pub fn edns_buf(&self) -> u16 {
        self.edns_buf
    }
}

/// A standing fault pinned to one transport of a [`TransportUpstream`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportFault {
    /// Exchanges over the transport never complete (lost datagrams, or a
    /// handshake that hangs until the timeout). Surfaces as
    /// [`UpstreamError::Timeout`].
    Timeout,
    /// The server actively refuses the transport (RST / REFUSED).
    /// Surfaces as [`UpstreamError::Rcode`] with
    /// [`dns_wire::Rcode::Refused`].
    Refused,
}

/// Per-transport standing faults: unlike [`crate::InjectedFault`] scripts
/// these don't tick down — the transport stays broken, which is how
/// blocked ports and broken middleboxes present in the fallback papers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportFaults {
    /// Fault on plain UDP.
    pub udp: Option<TransportFault>,
    /// Fault on TCP.
    pub tcp: Option<TransportFault>,
    /// Fault on DoT.
    pub dot: Option<TransportFault>,
    /// Fault on DoH.
    pub doh: Option<TransportFault>,
}

impl TransportFaults {
    /// No faults anywhere.
    pub const NONE: TransportFaults = TransportFaults {
        udp: None,
        tcp: None,
        dot: None,
        doh: None,
    };

    /// The standing fault on `transport`, if any.
    pub fn on(&self, transport: Transport) -> Option<TransportFault> {
        match transport {
            Transport::Udp => self.udp,
            Transport::Tcp => self.tcp,
            Transport::Dot => self.dot,
            Transport::Doh => self.doh,
        }
    }
}

/// An [`Upstream`] decorator that models transports for the inner
/// upstream: handshake costs on the SimTime axis, UDP datagram fate
/// against the advertised EDNS buffer and path MTU, and standing
/// per-transport faults.
pub struct TransportUpstream<U> {
    inner: U,
    model: TransportModel,
    rtt: SimDuration,
    faults: TransportFaults,
    rng: SmallRng,
}

impl<U: Upstream> TransportUpstream<U> {
    /// Wraps `inner` with a default model: 1500-byte MTU, no fragment
    /// loss, default handshake costs, 40 ms upstream RTT. Small answers
    /// pass through untouched and the RNG is never drawn.
    pub fn new(inner: U, seed: u64) -> Self {
        TransportUpstream {
            inner,
            model: TransportModel::default(),
            rtt: SimDuration::from_millis(40),
            faults: TransportFaults::NONE,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// An entirely transparent wrapper (infinite MTU, no loss, no
    /// faults): transport *selection* still routes and is cost-accounted,
    /// but no answer is ever degraded.
    pub fn ideal(inner: U) -> Self {
        let mut t = TransportUpstream::new(inner, 0);
        t.model = TransportModel::ideal();
        t
    }

    /// Replaces the path profile (MTU / fragment loss).
    pub fn with_profile(mut self, profile: PathProfile) -> Self {
        self.model.profile = profile;
        self
    }

    /// Replaces the handshake cost table.
    pub fn with_costs(mut self, costs: HandshakeCosts) -> Self {
        self.model.costs = costs;
        self
    }

    /// Sets the one-way-and-back RTT handshakes are priced in.
    pub fn with_rtt(mut self, rtt: SimDuration) -> Self {
        self.rtt = rtt;
        self
    }

    /// Installs standing per-transport faults.
    pub fn with_faults(mut self, faults: TransportFaults) -> Self {
        self.faults = faults;
        self
    }

    /// The wrapped upstream.
    pub fn inner(&self) -> &U {
        &self.inner
    }

    /// Mutable access to the wrapped upstream.
    pub fn inner_mut(&mut self) -> &mut U {
        &mut self.inner
    }

    /// Transport counters (exchanges per transport, handshakes, reuse,
    /// truncations, fragment drops).
    pub fn stats(&self) -> TransportStats {
        self.model.stats()
    }

    fn exchange(
        &mut self,
        q: &Message,
        from: IpAddr,
        now: SimTime,
        transport: Transport,
    ) -> Result<Message, UpstreamError> {
        if let Some(fault) = self.faults.on(transport) {
            return Err(match fault {
                TransportFault::Timeout => UpstreamError::Timeout,
                TransportFault::Refused => UpstreamError::Rcode(dns_wire::Rcode::Refused),
            });
        }
        // Handshakes delay the exchange: the inner upstream sees the query
        // arrive after the setup round-trips have been paid.
        let at = now + self.model.exchange_cost(transport, self.rtt, now);
        if transport.is_stream() {
            // Streams carry any size; simulated DoT/DoH differ from TCP
            // only in handshake cost, so all three use the framed path.
            return self.inner.query_tcp(q, from, at);
        }
        let resp = self.inner.query(q, from, at)?;
        if resp.flags.tc {
            // The inner upstream already truncated (e.g. against a smaller
            // server-side limit) — nothing further to model.
            return Ok(resp);
        }
        let wire_len = resp.to_bytes().map(|b| b.len()).unwrap_or(0);
        let advertised = q
            .edns
            .as_ref()
            .map(|e| e.udp_payload_size as usize)
            .unwrap_or(512);
        let model = &mut self.model;
        let rng = &mut self.rng;
        match model.datagram_fate(wire_len, advertised, || rng.gen::<f64>()) {
            DatagramFate::Deliver => Ok(resp),
            DatagramFate::Truncate => {
                let mut tc = resp;
                tc.flags.tc = true;
                tc.answers.clear();
                Err(UpstreamError::Truncated(Box::new(tc)))
            }
            DatagramFate::FragmentDrop => Err(UpstreamError::Timeout),
        }
    }
}

impl<U: Upstream> Upstream for TransportUpstream<U> {
    fn query(&mut self, q: &Message, from: IpAddr, now: SimTime) -> Result<Message, UpstreamError> {
        self.exchange(q, from, now, Transport::Udp)
    }

    fn query_tcp(
        &mut self,
        q: &Message,
        from: IpAddr,
        now: SimTime,
    ) -> Result<Message, UpstreamError> {
        self.exchange(q, from, now, Transport::Tcp)
    }

    fn query_via(
        &mut self,
        q: &Message,
        from: IpAddr,
        now: SimTime,
        transport: Transport,
    ) -> Result<Message, UpstreamError> {
        self.exchange(q, from, now, transport)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use authoritative::{AuthServer, EcsHandling, ScopePolicy, Zone};
    use dns_wire::{Name, Question, Rcode};
    use std::net::Ipv4Addr;

    fn name(s: &str) -> Name {
        Name::from_ascii(s).unwrap()
    }

    fn auth_with_records(n: usize) -> AuthServer {
        let mut zone = Zone::new(name("big.example"));
        for i in 0..n {
            zone.add_a(
                name("www.big.example"),
                60,
                Ipv4Addr::new(198, 51, (i / 256) as u8, (i % 256) as u8),
            )
            .unwrap();
        }
        AuthServer::new(zone, EcsHandling::open(ScopePolicy::MatchSource))
    }

    const RES: IpAddr = IpAddr::V4(Ipv4Addr::new(9, 9, 9, 9));

    fn query(buf: u16) -> Message {
        let mut q = Message::query(1, Question::a(name("www.big.example")));
        q.set_edns(buf);
        q
    }

    #[test]
    fn policy_defaults_and_builders() {
        assert_eq!(TransportPolicy::default(), TransportPolicy::udp_only());
        assert_eq!(TransportPolicy::default().edns_buf(), 4096);
        assert_eq!(
            TransportPolicy::prefer(Transport::Dot).ladder,
            vec![Transport::Dot]
        );
        assert_eq!(TransportPolicy::full_ladder().ladder.len(), 4);
    }

    #[test]
    fn small_answers_pass_untouched_over_udp() {
        let mut up = TransportUpstream::new(auth_with_records(1), 7);
        let resp = up.query(&query(4096), RES, SimTime::ZERO).unwrap();
        assert_eq!(resp.answers.len(), 1);
        assert_eq!(up.stats().exchanges_over(Transport::Udp), 1);
        assert_eq!(up.stats().truncated, 0);
    }

    /// An upstream that ignores the advertised EDNS buffer entirely and
    /// always answers with `n` A records — so truncation decisions are
    /// the decorator's alone (a real [`AuthServer`] truncates for itself).
    struct OversizeAnswerer(usize);
    impl Upstream for OversizeAnswerer {
        fn query(
            &mut self,
            q: &Message,
            _from: IpAddr,
            _now: SimTime,
        ) -> Result<Message, UpstreamError> {
            let mut resp = Message::response_to(q);
            for i in 0..self.0 {
                resp.answers.push(dns_wire::Record::new(
                    name("www.big.example"),
                    60,
                    dns_wire::Rdata::A(Ipv4Addr::new(198, 51, (i / 256) as u8, (i % 256) as u8)),
                ));
            }
            Ok(resp)
        }
    }

    #[test]
    fn oversize_answers_truncate_against_the_advertised_buffer() {
        // 60 A records ≈ 960+ bytes of rdata: bigger than a 512 buffer.
        let mut up = TransportUpstream::new(OversizeAnswerer(60), 7);
        let err = up.query(&query(512), RES, SimTime::ZERO).unwrap_err();
        let UpstreamError::Truncated(tc) = err else {
            panic!("expected truncation, got {err:?}");
        };
        assert!(tc.flags.tc);
        assert!(tc.answers.is_empty());
        assert_eq!(up.stats().truncated, 1);
        // The same answer fits a 4096 buffer (and the 1500 MTU is only
        // fragmentation, which is lossless by default).
        let resp = up.query(&query(4096), RES, SimTime::ZERO).unwrap();
        assert_eq!(resp.answers.len(), 60);
    }

    #[test]
    fn server_side_truncation_passes_through_as_tc() {
        // A real AuthServer truncates against the advertised buffer by
        // itself; the decorator must hand that TC through untouched for
        // the engine's RFC 7766 arm, not double-handle it.
        let mut up = TransportUpstream::new(auth_with_records(60), 7);
        let resp = up.query(&query(512), RES, SimTime::ZERO).unwrap();
        assert!(resp.flags.tc);
        assert_eq!(up.stats().truncated, 0, "decorator did not re-truncate");
    }

    #[test]
    fn fragment_loss_turns_big_answers_into_timeouts() {
        let mut up = TransportUpstream::new(auth_with_records(60), 7).with_profile(PathProfile {
            mtu: 512,
            frag_loss: 1.0,
        });
        assert_eq!(
            up.query(&query(4096), RES, SimTime::ZERO).unwrap_err(),
            UpstreamError::Timeout
        );
        // The stream side of the same path is immune.
        let resp = up.query_tcp(&query(4096), RES, SimTime::ZERO).unwrap();
        assert_eq!(resp.answers.len(), 60);
        assert_eq!(up.stats().fragments_dropped, 1);
    }

    #[test]
    fn standing_faults_break_exactly_their_transport() {
        let mut up = TransportUpstream::new(auth_with_records(1), 7).with_faults(TransportFaults {
            tcp: Some(TransportFault::Refused),
            dot: Some(TransportFault::Timeout),
            ..TransportFaults::NONE
        });
        assert!(up.query(&query(4096), RES, SimTime::ZERO).is_ok());
        assert_eq!(
            up.query_via(&query(4096), RES, SimTime::ZERO, Transport::Tcp)
                .unwrap_err(),
            UpstreamError::Rcode(Rcode::Refused)
        );
        assert_eq!(
            up.query_via(&query(4096), RES, SimTime::ZERO, Transport::Dot)
                .unwrap_err(),
            UpstreamError::Timeout
        );
        assert!(up
            .query_via(&query(4096), RES, SimTime::ZERO, Transport::Doh)
            .is_ok());
    }

    #[test]
    fn stream_exchanges_arrive_after_the_handshake_cost() {
        // An upstream that records when queries reach it.
        struct ArrivalProbe(Vec<u64>);
        impl Upstream for ArrivalProbe {
            fn query(
                &mut self,
                q: &Message,
                _from: IpAddr,
                now: SimTime,
            ) -> Result<Message, UpstreamError> {
                self.0.push(now.as_micros());
                Ok(Message::response_to(q))
            }
        }
        let rtt = SimDuration::from_millis(40);
        let mut up = TransportUpstream::new(ArrivalProbe(Vec::new()), 7).with_rtt(rtt);
        // Cold DoT: 2 RTTs of setup before the inner upstream sees it.
        up.query_via(&query(4096), RES, SimTime::ZERO, Transport::Dot)
            .unwrap();
        // Warm follow-up 1 s later: no setup.
        up.query_via(&query(4096), RES, SimTime::from_secs(1), Transport::Dot)
            .unwrap();
        assert_eq!(
            up.inner().0,
            vec![rtt.mul(2).as_micros(), SimTime::from_secs(1).as_micros()]
        );
        assert_eq!(up.stats().handshakes, 1);
        assert_eq!(up.stats().reused_connections, 1);
    }
}
