//! Collection strategies (`proptest::collection::vec`).

use core::fmt::Debug;
use core::ops::{Range, RangeInclusive};

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Bounds on a generated collection's length.
pub trait SizeRange {
    /// Draws a length.
    fn pick_len(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for Range<usize> {
    fn pick_len(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "vec(): empty size range");
        rng.gen_range(self.clone())
    }
}

impl SizeRange for RangeInclusive<usize> {
    fn pick_len(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.clone())
    }
}

impl SizeRange for usize {
    fn pick_len(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

/// Strategy producing `Vec`s of an element strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S, R> {
    element: S,
    size: R,
}

impl<S, R> Strategy for VecStrategy<S, R>
where
    S: Strategy,
    R: SizeRange,
{
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.pick_len(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates vectors whose length falls in `size`.
pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
    VecStrategy { element, size }
}
