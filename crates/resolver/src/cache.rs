//! The ECS-aware resolver cache (RFC 7871 §7.3) and its deviant variants.
//!
//! Without ECS a cache entry is keyed by `(qname, qtype)` and serves every
//! client. With ECS, each entry additionally carries the *scope prefix* the
//! authoritative returned, and may only answer clients whose address falls
//! inside it — which is exactly why ECS blows up cache size (§7.1) and
//! depresses hit rate (§7.2).

use std::collections::HashMap;
use std::net::IpAddr;

use dns_wire::{EcsOption, IpPrefix, Name, Rcode, Record, RecordType};
use netsim::{SimDuration, SimTime};

/// How the resolver obeys (or disobeys) scope restrictions — the §6.3
/// classification, as implementable behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheCompliance {
    /// Honor scope exactly as RFC 7871 prescribes, clamping the effective
    /// scope to the source prefix length (and never conveying more than the
    /// policy's maximum prefix upstream). The paper's 76 correct resolvers.
    Honor,
    /// Ignore scope entirely: any cached answer serves any client, as if
    /// the resolver did not understand ECS. The paper's 103 resolvers.
    IgnoreScope,
    /// Impose a maximum cacheable prefix length (the paper found 8
    /// resolvers capping at 22): both the effective scope and the client
    /// prefix used for matching are truncated to this length.
    CapPrefix(u8),
}

/// Statistics the §7 analyses read. All counters update with saturating
/// arithmetic, so pathological workloads degrade to pinned counters rather
/// than panicking in debug builds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct CacheStats {
    /// Lookup hits.
    pub hits: u64,
    /// Lookup misses.
    pub misses: u64,
    /// Inserts performed.
    pub inserts: u64,
    /// High-water mark of live entries (checked on each insert after
    /// purging expired entries and enforcing the capacity bound).
    pub max_size: usize,
    /// Entries evicted by the global max-entries / max-bytes bound.
    pub evictions: u64,
    /// Entries evicted by the per-name ECS-entry cap.
    pub per_name_evictions: u64,
    /// Expired entries served under the RFC 8767 stale budget.
    pub stale_hits: u64,
}

impl CacheStats {
    /// Hit rate in [0, 1]; 0 when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits.saturating_add(self.misses);
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// JSON object literal. The vendored `serde` derive is annotation-only
    /// (no code generation offline), so emission is hand-rolled here, in the
    /// same style the bench binaries use.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"hits\":{},\"misses\":{},\"inserts\":{},\"max_size\":{},\"evictions\":{},\"per_name_evictions\":{},\"stale_hits\":{}}}",
            self.hits,
            self.misses,
            self.inserts,
            self.max_size,
            self.evictions,
            self.per_name_evictions,
            self.stale_hits
        )
    }
}

/// Resource limits for [`EcsCache`]. The default is fully unbounded with
/// stale retention off — the exact behaviour of the unbounded cache.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize)]
pub struct CacheLimits {
    /// Maximum live entries; `None` = unbounded.
    pub max_entries: Option<usize>,
    /// Approximate maximum resident bytes; `None` = unbounded.
    pub max_bytes: Option<usize>,
    /// Maximum entries per (qname, qtype) list; `None` = unbounded.
    pub per_name_cap: Option<usize>,
    /// RFC 8767 retention: expired entries stay resident this long past
    /// expiry, visible only to [`EcsCache::lookup_stale`]. Zero disables
    /// retention (expired entries purge immediately, as before).
    pub stale_ttl: SimDuration,
}

impl CacheLimits {
    /// True when stale retention is on.
    pub fn serve_stale(&self) -> bool {
        self.stale_ttl > SimDuration::ZERO
    }
}

#[derive(Debug, Clone)]
struct Entry {
    /// Clients inside this prefix may be served from the entry. A /0
    /// prefix (scope 0 or non-ECS answer) serves everyone.
    scope: IpPrefix,
    records: Vec<Record>,
    /// ECS option of the stored response (None for non-ECS answers).
    ecs: Option<EcsOption>,
    /// Response code (NoError for positive entries; NxDomain for RFC 2308
    /// negative entries).
    rcode: Rcode,
    expires: SimTime,
    /// Monotonic recency tick, unique per touch — LRU eviction picks the
    /// minimum, which is therefore deterministic regardless of map order.
    last_used: u64,
    /// Approximate resident footprint, fixed at insert.
    bytes: usize,
}

/// What a cache lookup returns on a hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedAnswer {
    /// The answer records, TTLs adjusted to the remaining lifetime (empty
    /// for negative entries).
    pub records: Vec<Record>,
    /// The stored ECS option, if the response carried one.
    pub ecs: Option<EcsOption>,
    /// The stored response code.
    pub rcode: Rcode,
}

/// Registry-backed handles behind [`CacheStats`]. The registry is the
/// single source of truth; [`EcsCache::stats`] reconstructs the legacy
/// struct from counter loads, so existing readers see identical values.
#[derive(Debug)]
struct CacheMetrics {
    registry: obs::MetricsRegistry,
    hits: obs::Counter,
    misses: obs::Counter,
    inserts: obs::Counter,
    /// High-water mark of live entries.
    max_size: obs::Gauge,
    evictions: obs::Counter,
    per_name_evictions: obs::Counter,
    stale_hits: obs::Counter,
}

impl CacheMetrics {
    fn new() -> Self {
        let registry = obs::MetricsRegistry::new();
        CacheMetrics {
            hits: registry.counter("cache_hits_total"),
            misses: registry.counter("cache_misses_total"),
            inserts: registry.counter("cache_inserts_total"),
            max_size: registry.gauge("cache_max_size"),
            evictions: registry.counter("cache_evictions_total"),
            per_name_evictions: registry.counter("cache_per_name_evictions_total"),
            stale_hits: registry.counter("cache_stale_hits_total"),
            registry,
        }
    }
}

/// The cache proper.
#[derive(Debug)]
pub struct EcsCache {
    entries: HashMap<(Name, RecordType), Vec<Entry>>,
    compliance: CacheCompliance,
    /// When false, responses with scope 0 are not cached at all — the
    /// misconfigured-resolver behaviour from §6.3's last bullet.
    pub cache_zero_scope: bool,
    stats: CacheMetrics,
    live: usize,
    /// Approximate resident bytes across all retained entries.
    bytes: usize,
    limits: CacheLimits,
    /// Monotonic touch counter feeding `Entry::last_used`.
    tick: u64,
}

impl EcsCache {
    /// Creates an empty cache with the given compliance mode.
    pub fn new(compliance: CacheCompliance) -> Self {
        EcsCache {
            entries: HashMap::new(),
            compliance,
            cache_zero_scope: true,
            stats: CacheMetrics::new(),
            live: 0,
            bytes: 0,
            limits: CacheLimits::default(),
            tick: 0,
        }
    }

    /// Creates an empty cache with explicit resource limits.
    pub fn with_limits(compliance: CacheCompliance, limits: CacheLimits) -> Self {
        let mut c = Self::new(compliance);
        c.limits = limits;
        c
    }

    /// The compliance mode.
    pub fn compliance(&self) -> CacheCompliance {
        self.compliance
    }

    /// The resource limits in force.
    pub fn limits(&self) -> &CacheLimits {
        &self.limits
    }

    /// Replaces the resource limits (takes effect on subsequent inserts).
    pub fn set_limits(&mut self, limits: CacheLimits) {
        self.limits = limits;
    }

    /// Current statistics, reconstructed from the metrics registry (which
    /// is the single source of truth behind the legacy struct API — both
    /// read the same values).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.stats.hits.get(),
            misses: self.stats.misses.get(),
            inserts: self.stats.inserts.get(),
            max_size: self.stats.max_size.get() as usize,
            evictions: self.stats.evictions.get(),
            per_name_evictions: self.stats.per_name_evictions.get(),
            stale_hits: self.stats.stale_hits.get(),
        }
    }

    /// The cache's private metrics registry (`cache_*` series).
    pub fn registry(&self) -> &obs::MetricsRegistry {
        &self.stats.registry
    }

    /// Number of retained entries after purging: unexpired entries, plus —
    /// when stale retention is on — expired entries still inside the stale
    /// budget (they occupy memory and count against the capacity bound).
    pub fn len(&mut self, now: SimTime) -> usize {
        self.purge(now);
        self.live
    }

    /// Approximate resident bytes after purging.
    pub fn approx_bytes(&mut self, now: SimTime) -> usize {
        self.purge(now);
        self.bytes
    }

    /// True when empty.
    pub fn is_empty(&mut self, now: SimTime) -> bool {
        self.len(now) == 0
    }

    /// Looks up an answer for `client` (the address whose location the
    /// answer must fit). Returns the cached answer on a hit. Expired
    /// entries never match.
    pub fn lookup(
        &mut self,
        qname: &Name,
        qtype: RecordType,
        client: IpAddr,
        now: SimTime,
    ) -> Option<CachedAnswer> {
        let compliance = self.compliance;
        self.tick += 1;
        let tick = self.tick;
        let found = self
            .entries
            .get_mut(&(qname.clone(), qtype))
            .and_then(|list| {
                list.iter_mut()
                    .filter(|e| e.expires > now)
                    .find(|e| scope_matches(compliance, e.scope, client))
                    .map(|e| {
                        e.last_used = tick;
                        CachedAnswer {
                            records: adjust_ttls(&e.records, e.expires, now),
                            ecs: e.ecs,
                            rcode: e.rcode,
                        }
                    })
            });
        match found {
            Some(hit) => {
                self.stats.hits.inc();
                Some(hit)
            }
            None => {
                self.stats.misses.inc();
                None
            }
        }
    }

    /// RFC 8767 last-resort lookup: an expired-but-retained entry whose
    /// scope matches `client` (under the same compliance rules as `lookup`)
    /// and whose expiry is within the stale budget, record TTLs stamped to
    /// at most `serve_ttl`. Returns `None` when stale retention is off.
    /// Counts a stale hit but never a miss — the caller already took the
    /// miss in `lookup`.
    pub fn lookup_stale(
        &mut self,
        qname: &Name,
        qtype: RecordType,
        client: IpAddr,
        now: SimTime,
        serve_ttl: u32,
    ) -> Option<CachedAnswer> {
        if !self.limits.serve_stale() {
            return None;
        }
        let compliance = self.compliance;
        let budget = self.limits.stale_ttl;
        self.tick += 1;
        let tick = self.tick;
        let found = self
            .entries
            .get_mut(&(qname.clone(), qtype))
            .and_then(|list| {
                list.iter_mut()
                    .filter(|e| e.expires <= now && e.expires + budget > now)
                    .filter(|e| scope_matches(compliance, e.scope, client))
                    // The least-stale matching entry (ties broken by list
                    // position, which is insertion order — deterministic).
                    .max_by_key(|e| e.expires)
                    .map(|e| {
                        e.last_used = tick;
                        CachedAnswer {
                            records: e
                                .records
                                .iter()
                                .map(|r| {
                                    let mut r = r.clone();
                                    r.ttl = r.ttl.min(serve_ttl);
                                    r
                                })
                                .collect(),
                            ecs: e.ecs,
                            rcode: e.rcode,
                        }
                    })
            });
        if found.is_some() {
            self.stats.stale_hits.inc();
        }
        found
    }

    /// Inserts a positive response.
    ///
    /// * `ecs` is the ECS option from the response (None when the
    ///   authoritative ignored or lacked ECS) — its *scope* controls reuse;
    /// * `ttl` is the response TTL in seconds.
    ///
    /// Returns `true` if the response was actually cached.
    pub fn insert(
        &mut self,
        qname: Name,
        qtype: RecordType,
        records: Vec<Record>,
        ecs: Option<EcsOption>,
        ttl: u32,
        now: SimTime,
    ) -> bool {
        self.insert_with_rcode(qname, qtype, records, ecs, Rcode::NoError, ttl, now)
    }

    /// Inserts a response with an explicit rcode — used for RFC 2308
    /// negative caching (NXDOMAIN / NODATA entries with empty records).
    #[allow(clippy::too_many_arguments)]
    pub fn insert_with_rcode(
        &mut self,
        qname: Name,
        qtype: RecordType,
        records: Vec<Record>,
        ecs: Option<EcsOption>,
        rcode: Rcode,
        ttl: u32,
        now: SimTime,
    ) -> bool {
        let scope_prefix = match &ecs {
            None => any_prefix_v4(),
            Some(opt) => {
                let effective = match self.compliance {
                    // RFC: scope may not exceed source; clamp.
                    CacheCompliance::Honor => opt.scope_prefix_len().min(opt.source_prefix_len()),
                    // Scope is ignored at lookup; store it anyway (purely
                    // informational — every lookup matches).
                    CacheCompliance::IgnoreScope => {
                        opt.scope_prefix_len().min(opt.source_prefix_len())
                    }
                    CacheCompliance::CapPrefix(cap) => {
                        opt.scope_prefix_len().min(opt.source_prefix_len()).min(cap)
                    }
                };
                if effective == 0 && !self.cache_zero_scope {
                    return false;
                }
                opt.source_prefix().truncate(effective)
            }
        };
        self.purge(now);
        self.tick += 1;
        let tick = self.tick;
        let entry_bytes = approx_entry_bytes(&qname, &records);
        let list = self.entries.entry((qname, qtype)).or_default();
        // A fresh answer supersedes any entry with the identical scope
        // prefix, stale-retained ones included.
        list.retain(|e| e.scope != scope_prefix);
        list.push(Entry {
            scope: scope_prefix,
            records,
            ecs,
            rcode,
            expires: now + SimDuration::from_secs(ttl as u64),
            last_used: tick,
            bytes: entry_bytes,
        });
        // Per-name cap: the name sheds its own least-recently-used entries,
        // so one name's scope explosion cannot evict the long tail.
        if let Some(cap) = self.limits.per_name_cap {
            while list.len() > cap.max(1) {
                let idx = list
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(i, _)| i)
                    .expect("list is non-empty");
                list.remove(idx);
                self.stats.per_name_evictions.inc();
            }
        }
        self.stats.inserts.inc();
        self.recount();
        self.enforce_bound();
        self.stats.max_size.set_max(self.live as u64);
        true
    }

    /// Removes entries past their retention horizon: expiry, plus the stale
    /// budget when RFC 8767 retention is on.
    pub fn purge(&mut self, now: SimTime) {
        let keep_until = self.limits.stale_ttl;
        self.entries.retain(|_, list| {
            list.retain(|e| e.expires + keep_until > now);
            !list.is_empty()
        });
        self.recount();
    }

    /// Clears everything (stats survive).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.live = 0;
        self.bytes = 0;
    }

    fn recount(&mut self) {
        self.live = self.entries.values().map(|l| l.len()).sum();
        self.bytes = self.entries.values().flatten().map(|e| e.bytes).sum();
    }

    /// Evicts least-recently-used entries until the global bounds hold.
    fn enforce_bound(&mut self) {
        loop {
            let over_entries = self.limits.max_entries.is_some_and(|m| self.live > m);
            let over_bytes = self.limits.max_bytes.is_some_and(|m| self.bytes > m);
            if !(over_entries || over_bytes) || !self.evict_lru() {
                return;
            }
        }
    }

    /// Removes the globally least-recently-used entry. Deterministic: every
    /// touch takes a unique monotonic tick, so the minimum is unique and
    /// independent of `HashMap` iteration order.
    fn evict_lru(&mut self) -> bool {
        let Some(min_tick) = self.entries.values().flatten().map(|e| e.last_used).min() else {
            return false;
        };
        let key = self
            .entries
            .iter()
            .find(|(_, list)| list.iter().any(|e| e.last_used == min_tick))
            .map(|(k, _)| k.clone())
            .expect("min tick came from an existing entry");
        let list = self.entries.get_mut(&key).expect("key just found");
        if let Some(idx) = list.iter().position(|e| e.last_used == min_tick) {
            self.bytes = self.bytes.saturating_sub(list[idx].bytes);
            list.remove(idx);
            self.live = self.live.saturating_sub(1);
            self.stats.evictions.inc();
        }
        if list.is_empty() {
            self.entries.remove(&key);
        }
        true
    }
}

/// Scope admission shared by fresh and stale lookups.
fn scope_matches(compliance: CacheCompliance, scope: IpPrefix, client: IpAddr) -> bool {
    match compliance {
        CacheCompliance::IgnoreScope => true,
        // A zero-length scope means "valid for every client", across
        // address families.
        CacheCompliance::Honor => scope.is_default_route() || scope.contains(client),
        CacheCompliance::CapPrefix(cap) => {
            let widened = scope.truncate(cap);
            widened.is_default_route() || widened.contains(client)
        }
    }
}

/// Rough resident footprint of one entry — fixed bookkeeping plus owned
/// record data. Only feeds the *approximate* byte bound.
fn approx_entry_bytes(qname: &Name, records: &[Record]) -> usize {
    const ENTRY_OVERHEAD: usize = 96;
    const RECORD_OVERHEAD: usize = 64;
    ENTRY_OVERHEAD + qname.wire_len() + records.len() * RECORD_OVERHEAD
}

/// Remaining-TTL adjustment for served answers.
fn adjust_ttls(records: &[Record], expires: SimTime, now: SimTime) -> Vec<Record> {
    let remaining = expires.since(now).as_secs() as u32;
    records
        .iter()
        .map(|r| {
            let mut r = r.clone();
            r.ttl = r.ttl.min(remaining);
            r
        })
        .collect()
}

/// The match-everything prefix used for non-ECS entries.
fn any_prefix_v4() -> IpPrefix {
    IpPrefix::v4(std::net::Ipv4Addr::UNSPECIFIED, 0).expect("0 <= 32")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_wire::Rdata;
    use std::net::Ipv4Addr;

    fn name(s: &str) -> Name {
        Name::from_ascii(s).unwrap()
    }

    fn rec(s: &str, ttl: u32) -> Vec<Record> {
        vec![Record::new(
            name(s),
            ttl,
            Rdata::A(Ipv4Addr::new(203, 0, 113, 1)),
        )]
    }

    fn ip(s: &str) -> IpAddr {
        s.parse().unwrap()
    }

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn scope_24_restricts_to_subnet() {
        let mut c = EcsCache::new(CacheCompliance::Honor);
        let ecs = EcsOption::from_v4(Ipv4Addr::new(192, 0, 2, 0), 24).with_scope(24);
        c.insert(
            name("a.example"),
            RecordType::A,
            rec("a.example", 60),
            Some(ecs),
            60,
            t(0),
        );
        // Same /24: hit.
        assert!(c
            .lookup(&name("a.example"), RecordType::A, ip("192.0.2.200"), t(1))
            .is_some());
        // Different /24: miss.
        assert!(c
            .lookup(&name("a.example"), RecordType::A, ip("192.0.3.1"), t(1))
            .is_none());
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn scope_16_serves_whole_slash16() {
        let mut c = EcsCache::new(CacheCompliance::Honor);
        let ecs = EcsOption::from_v4(Ipv4Addr::new(192, 0, 2, 0), 24).with_scope(16);
        c.insert(
            name("a.example"),
            RecordType::A,
            rec("a.example", 60),
            Some(ecs),
            60,
            t(0),
        );
        assert!(c
            .lookup(&name("a.example"), RecordType::A, ip("192.0.99.1"), t(1))
            .is_some());
        assert!(c
            .lookup(&name("a.example"), RecordType::A, ip("192.1.0.1"), t(1))
            .is_none());
    }

    #[test]
    fn scope_zero_serves_everyone() {
        let mut c = EcsCache::new(CacheCompliance::Honor);
        let ecs = EcsOption::from_v4(Ipv4Addr::new(192, 0, 2, 0), 24).with_scope(0);
        c.insert(
            name("a.example"),
            RecordType::A,
            rec("a.example", 60),
            Some(ecs),
            60,
            t(0),
        );
        assert!(c
            .lookup(&name("a.example"), RecordType::A, ip("8.8.8.8"), t(1))
            .is_some());
    }

    #[test]
    fn non_ecs_answers_serve_everyone() {
        let mut c = EcsCache::new(CacheCompliance::Honor);
        c.insert(
            name("a.example"),
            RecordType::A,
            rec("a.example", 60),
            None,
            60,
            t(0),
        );
        assert!(c
            .lookup(&name("a.example"), RecordType::A, ip("1.1.1.1"), t(1))
            .is_some());
    }

    #[test]
    fn scope_exceeding_source_is_clamped() {
        // RFC 7871: a response whose scope is longer than the query's source
        // must be treated as scope == source for caching.
        let mut c = EcsCache::new(CacheCompliance::Honor);
        let ecs = EcsOption::from_v4(Ipv4Addr::new(192, 0, 0, 0), 16).with_scope(24);
        c.insert(
            name("a.example"),
            RecordType::A,
            rec("a.example", 60),
            Some(ecs),
            60,
            t(0),
        );
        // Everything in the /16 hits, even outside what a /24 scope would allow.
        assert!(c
            .lookup(&name("a.example"), RecordType::A, ip("192.0.77.1"), t(1))
            .is_some());
    }

    #[test]
    fn multiple_scoped_entries_coexist() {
        let mut c = EcsCache::new(CacheCompliance::Honor);
        for third in [1u8, 2, 3] {
            let ecs = EcsOption::from_v4(Ipv4Addr::new(192, 0, third, 0), 24).with_scope(24);
            c.insert(
                name("a.example"),
                RecordType::A,
                rec("a.example", 60),
                Some(ecs),
                60,
                t(0),
            );
        }
        assert_eq!(c.len(t(1)), 3);
        assert!(c
            .lookup(&name("a.example"), RecordType::A, ip("192.0.2.9"), t(1))
            .is_some());
        assert!(c
            .lookup(&name("a.example"), RecordType::A, ip("192.0.9.9"), t(1))
            .is_none());
        assert_eq!(c.stats().max_size, 3);
    }

    #[test]
    fn same_scope_replaces() {
        let mut c = EcsCache::new(CacheCompliance::Honor);
        let ecs = EcsOption::from_v4(Ipv4Addr::new(192, 0, 2, 0), 24).with_scope(24);
        c.insert(
            name("a.example"),
            RecordType::A,
            rec("a.example", 60),
            Some(ecs),
            60,
            t(0),
        );
        c.insert(
            name("a.example"),
            RecordType::A,
            rec("a.example", 60),
            Some(ecs),
            60,
            t(5),
        );
        assert_eq!(c.len(t(6)), 1);
    }

    #[test]
    fn entries_expire_at_ttl() {
        let mut c = EcsCache::new(CacheCompliance::Honor);
        let ecs = EcsOption::from_v4(Ipv4Addr::new(192, 0, 2, 0), 24).with_scope(24);
        c.insert(
            name("a.example"),
            RecordType::A,
            rec("a.example", 20),
            Some(ecs),
            20,
            t(0),
        );
        assert!(c
            .lookup(&name("a.example"), RecordType::A, ip("192.0.2.1"), t(19))
            .is_some());
        assert!(c
            .lookup(&name("a.example"), RecordType::A, ip("192.0.2.1"), t(20))
            .is_none());
        assert_eq!(c.len(t(20)), 0);
    }

    #[test]
    fn served_ttl_decreases() {
        let mut c = EcsCache::new(CacheCompliance::Honor);
        let ecs = EcsOption::from_v4(Ipv4Addr::new(192, 0, 2, 0), 24).with_scope(24);
        c.insert(
            name("a.example"),
            RecordType::A,
            rec("a.example", 60),
            Some(ecs),
            60,
            t(0),
        );
        let answer = c
            .lookup(&name("a.example"), RecordType::A, ip("192.0.2.1"), t(45))
            .unwrap();
        assert_eq!(answer.records[0].ttl, 15);
        assert_eq!(answer.rcode, Rcode::NoError);
    }

    #[test]
    fn ignore_scope_serves_any_client() {
        let mut c = EcsCache::new(CacheCompliance::IgnoreScope);
        let ecs = EcsOption::from_v4(Ipv4Addr::new(192, 0, 2, 0), 24).with_scope(24);
        c.insert(
            name("a.example"),
            RecordType::A,
            rec("a.example", 60),
            Some(ecs),
            60,
            t(0),
        );
        // A client on the other side of the world still hits.
        assert!(c
            .lookup(&name("a.example"), RecordType::A, ip("8.8.8.8"), t(1))
            .is_some());
    }

    #[test]
    fn cap_prefix_widens_match() {
        let mut c = EcsCache::new(CacheCompliance::CapPrefix(22));
        let ecs = EcsOption::from_v4(Ipv4Addr::new(192, 0, 2, 0), 24).with_scope(24);
        c.insert(
            name("a.example"),
            RecordType::A,
            rec("a.example", 60),
            Some(ecs),
            60,
            t(0),
        );
        // 192.0.3.x is outside the /24 but inside the /22 (192.0.0.0/22).
        assert!(c
            .lookup(&name("a.example"), RecordType::A, ip("192.0.3.1"), t(1))
            .is_some());
        // 192.0.4.x is outside the /22.
        assert!(c
            .lookup(&name("a.example"), RecordType::A, ip("192.0.4.1"), t(1))
            .is_none());
    }

    #[test]
    fn zero_scope_not_cached_when_disabled() {
        let mut c = EcsCache::new(CacheCompliance::Honor);
        c.cache_zero_scope = false;
        let ecs = EcsOption::from_v4(Ipv4Addr::new(192, 0, 2, 0), 24).with_scope(0);
        assert!(!c.insert(
            name("a.example"),
            RecordType::A,
            rec("a.example", 60),
            Some(ecs),
            60,
            t(0)
        ));
        assert!(c
            .lookup(&name("a.example"), RecordType::A, ip("192.0.2.1"), t(1))
            .is_none());
        // Non-zero scope still caches.
        let ecs = EcsOption::from_v4(Ipv4Addr::new(192, 0, 2, 0), 24).with_scope(24);
        assert!(c.insert(
            name("a.example"),
            RecordType::A,
            rec("a.example", 60),
            Some(ecs),
            60,
            t(0)
        ));
    }

    #[test]
    fn stats_hit_rate() {
        let mut c = EcsCache::new(CacheCompliance::Honor);
        assert_eq!(c.stats().hit_rate(), 0.0);
        let ecs = EcsOption::from_v4(Ipv4Addr::new(192, 0, 2, 0), 24).with_scope(0);
        c.insert(
            name("a.example"),
            RecordType::A,
            rec("a.example", 60),
            Some(ecs),
            60,
            t(0),
        );
        c.lookup(&name("a.example"), RecordType::A, ip("1.1.1.1"), t(1));
        c.lookup(&name("b.example"), RecordType::A, ip("1.1.1.1"), t(1));
        assert!((c.stats().hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn qtype_distinguishes_entries() {
        let mut c = EcsCache::new(CacheCompliance::Honor);
        c.insert(
            name("a.example"),
            RecordType::A,
            rec("a.example", 60),
            None,
            60,
            t(0),
        );
        assert!(c
            .lookup(&name("a.example"), RecordType::Aaaa, ip("1.1.1.1"), t(1))
            .is_none());
    }

    #[test]
    fn clear_resets_entries_not_stats() {
        let mut c = EcsCache::new(CacheCompliance::Honor);
        c.insert(
            name("a.example"),
            RecordType::A,
            rec("a.example", 60),
            None,
            60,
            t(0),
        );
        c.lookup(&name("a.example"), RecordType::A, ip("1.1.1.1"), t(1));
        c.clear();
        assert_eq!(c.len(t(1)), 0);
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn v6_scopes_work() {
        let mut c = EcsCache::new(CacheCompliance::Honor);
        let ecs = EcsOption::from_v6("2001:db8:1:2::".parse().unwrap(), 56).with_scope(48);
        c.insert(
            name("a.example"),
            RecordType::Aaaa,
            rec("a.example", 60),
            Some(ecs),
            60,
            t(0),
        );
        assert!(c
            .lookup(
                &name("a.example"),
                RecordType::Aaaa,
                ip("2001:db8:1:ffff::1"),
                t(1)
            )
            .is_some());
        assert!(c
            .lookup(
                &name("a.example"),
                RecordType::Aaaa,
                ip("2001:db8:2::1"),
                t(1)
            )
            .is_none());
    }

    #[test]
    fn max_size_high_water_mark() {
        let mut c = EcsCache::new(CacheCompliance::Honor);
        for third in 0..10u8 {
            let ecs = EcsOption::from_v4(Ipv4Addr::new(10, 0, third, 0), 24).with_scope(24);
            // Insert at staggered times with TTL 20 so earlier entries
            // expire as later ones arrive.
            c.insert(
                name("a.example"),
                RecordType::A,
                rec("a.example", 20),
                Some(ecs),
                20,
                t(third as u64 * 10),
            );
        }
        // At most two entries alive at once (20s TTL, 10s spacing).
        assert_eq!(c.stats().max_size, 2);
        assert_eq!(c.stats().inserts, 10);
    }
}

#[cfg(test)]
mod negative_cache_tests {
    use super::*;
    use netsim::SimTime;
    use std::net::Ipv4Addr;

    fn name(s: &str) -> Name {
        Name::from_ascii(s).unwrap()
    }

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn negative_entries_roundtrip() {
        let mut c = EcsCache::new(CacheCompliance::Honor);
        c.insert_with_rcode(
            name("gone.example"),
            RecordType::A,
            Vec::new(),
            None,
            Rcode::NxDomain,
            60,
            t(0),
        );
        let hit = c
            .lookup(
                &name("gone.example"),
                RecordType::A,
                "1.2.3.4".parse().unwrap(),
                t(1),
            )
            .unwrap();
        assert_eq!(hit.rcode, Rcode::NxDomain);
        assert!(hit.records.is_empty());
        // Expires like any entry.
        assert!(c
            .lookup(
                &name("gone.example"),
                RecordType::A,
                "1.2.3.4".parse().unwrap(),
                t(61)
            )
            .is_none());
    }

    #[test]
    fn stale_negative_entries_serve_after_expiry() {
        let mut c = EcsCache::with_limits(
            CacheCompliance::Honor,
            CacheLimits {
                stale_ttl: netsim::SimDuration::from_secs(600),
                ..CacheLimits::default()
            },
        );
        c.insert_with_rcode(
            name("gone.example"),
            RecordType::A,
            Vec::new(),
            None,
            Rcode::NxDomain,
            60,
            t(0),
        );
        let client: IpAddr = "1.2.3.4".parse().unwrap();
        assert!(c
            .lookup(&name("gone.example"), RecordType::A, client, t(120))
            .is_none());
        let stale = c
            .lookup_stale(&name("gone.example"), RecordType::A, client, t(120), 30)
            .unwrap();
        assert_eq!(stale.rcode, Rcode::NxDomain);
    }

    #[test]
    fn scoped_negative_entries_respect_scope() {
        let mut c = EcsCache::new(CacheCompliance::Honor);
        let ecs = EcsOption::from_v4(Ipv4Addr::new(192, 0, 2, 0), 24).with_scope(24);
        c.insert_with_rcode(
            name("gone.example"),
            RecordType::A,
            Vec::new(),
            Some(ecs),
            Rcode::NxDomain,
            60,
            t(0),
        );
        assert!(c
            .lookup(
                &name("gone.example"),
                RecordType::A,
                "192.0.2.9".parse().unwrap(),
                t(1)
            )
            .is_some());
        assert!(c
            .lookup(
                &name("gone.example"),
                RecordType::A,
                "192.0.3.9".parse().unwrap(),
                t(1)
            )
            .is_none());
    }
}

#[cfg(test)]
mod overload_tests {
    use super::*;
    use dns_wire::Rdata;
    use netsim::SimDuration;
    use std::net::Ipv4Addr;

    fn name(s: &str) -> Name {
        Name::from_ascii(s).unwrap()
    }

    fn rec(s: &str, ttl: u32) -> Vec<Record> {
        vec![Record::new(
            name(s),
            ttl,
            Rdata::A(Ipv4Addr::new(203, 0, 113, 1)),
        )]
    }

    fn ip(s: &str) -> IpAddr {
        s.parse().unwrap()
    }

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    fn scoped(third: u8) -> EcsOption {
        EcsOption::from_v4(Ipv4Addr::new(192, 0, third, 0), 24).with_scope(24)
    }

    fn bounded(max_entries: usize) -> EcsCache {
        EcsCache::with_limits(
            CacheCompliance::Honor,
            CacheLimits {
                max_entries: Some(max_entries),
                ..CacheLimits::default()
            },
        )
    }

    #[test]
    fn entry_bound_is_never_exceeded() {
        let mut c = bounded(3);
        for third in 0..20u8 {
            c.insert(
                name("a.example"),
                RecordType::A,
                rec("a.example", 600),
                Some(scoped(third)),
                600,
                t(third as u64),
            );
            assert!(c.len(t(third as u64)) <= 3);
        }
        assert_eq!(c.stats().max_size, 3);
        assert_eq!(c.stats().evictions, 17);
    }

    #[test]
    fn eviction_is_lru_and_touch_refreshes() {
        let mut c = bounded(2);
        c.insert(
            name("a.example"),
            RecordType::A,
            rec("a.example", 600),
            Some(scoped(1)),
            600,
            t(0),
        );
        c.insert(
            name("a.example"),
            RecordType::A,
            rec("a.example", 600),
            Some(scoped(2)),
            600,
            t(1),
        );
        // Touch the /24 for .1 so .2 becomes the LRU victim.
        assert!(c
            .lookup(&name("a.example"), RecordType::A, ip("192.0.1.9"), t(2))
            .is_some());
        c.insert(
            name("a.example"),
            RecordType::A,
            rec("a.example", 600),
            Some(scoped(3)),
            600,
            t(3),
        );
        assert!(c
            .lookup(&name("a.example"), RecordType::A, ip("192.0.1.9"), t(4))
            .is_some());
        assert!(c
            .lookup(&name("a.example"), RecordType::A, ip("192.0.2.9"), t(4))
            .is_none());
        assert!(c
            .lookup(&name("a.example"), RecordType::A, ip("192.0.3.9"), t(4))
            .is_some());
    }

    #[test]
    fn per_name_cap_protects_the_long_tail() {
        let mut c = EcsCache::with_limits(
            CacheCompliance::Honor,
            CacheLimits {
                max_entries: Some(10),
                per_name_cap: Some(2),
                ..CacheLimits::default()
            },
        );
        // An unrelated tail name cached first (and least recently used).
        c.insert(
            name("tail.example"),
            RecordType::A,
            rec("tail.example", 600),
            None,
            600,
            t(0),
        );
        // A popular name explodes across scopes.
        for third in 0..8u8 {
            c.insert(
                name("hot.example"),
                RecordType::A,
                rec("hot.example", 600),
                Some(scoped(third)),
                600,
                t(1 + third as u64),
            );
        }
        // The hot name holds at most 2 entries; the tail entry survived
        // even though it is globally the LRU.
        assert_eq!(c.len(t(9)), 3);
        assert_eq!(c.stats().per_name_evictions, 6);
        assert_eq!(c.stats().evictions, 0);
        assert!(c
            .lookup(&name("tail.example"), RecordType::A, ip("8.8.8.8"), t(9))
            .is_some());
    }

    #[test]
    fn byte_bound_evicts() {
        let mut c = EcsCache::with_limits(
            CacheCompliance::Honor,
            CacheLimits {
                max_bytes: Some(400),
                ..CacheLimits::default()
            },
        );
        for third in 0..6u8 {
            c.insert(
                name("a.example"),
                RecordType::A,
                rec("a.example", 600),
                Some(scoped(third)),
                600,
                t(third as u64),
            );
        }
        assert!(c.approx_bytes(t(6)) <= 400);
        assert!(c.stats().evictions > 0);
    }

    #[test]
    fn stale_lookup_respects_budget_and_scope() {
        let mut c = EcsCache::with_limits(
            CacheCompliance::Honor,
            CacheLimits {
                stale_ttl: SimDuration::from_secs(100),
                ..CacheLimits::default()
            },
        );
        c.insert(
            name("a.example"),
            RecordType::A,
            rec("a.example", 60),
            Some(scoped(2)),
            60,
            t(0),
        );
        // Fresh lookups stop at expiry.
        assert!(c
            .lookup(&name("a.example"), RecordType::A, ip("192.0.2.9"), t(61))
            .is_none());
        // A stale /24 entry serves only matching clients...
        let stale = c
            .lookup_stale(
                &name("a.example"),
                RecordType::A,
                ip("192.0.2.9"),
                t(61),
                30,
            )
            .unwrap();
        assert_eq!(stale.records[0].ttl, 30);
        assert!(c
            .lookup_stale(
                &name("a.example"),
                RecordType::A,
                ip("192.0.3.9"),
                t(61),
                30
            )
            .is_none());
        // ...and only inside the budget (expiry 60 + budget 100 = 160).
        assert!(c
            .lookup_stale(
                &name("a.example"),
                RecordType::A,
                ip("192.0.2.9"),
                t(160),
                30
            )
            .is_none());
        assert_eq!(c.stats().stale_hits, 1);
    }

    #[test]
    fn stale_retention_off_purges_immediately() {
        let mut c = EcsCache::new(CacheCompliance::Honor);
        c.insert(
            name("a.example"),
            RecordType::A,
            rec("a.example", 60),
            None,
            60,
            t(0),
        );
        assert!(c
            .lookup_stale(&name("a.example"), RecordType::A, ip("1.1.1.1"), t(61), 30)
            .is_none());
        assert_eq!(c.len(t(61)), 0);
    }

    #[test]
    fn fresh_insert_supersedes_stale_twin() {
        let mut c = EcsCache::with_limits(
            CacheCompliance::Honor,
            CacheLimits {
                stale_ttl: SimDuration::from_secs(600),
                ..CacheLimits::default()
            },
        );
        c.insert(
            name("a.example"),
            RecordType::A,
            rec("a.example", 60),
            Some(scoped(2)),
            60,
            t(0),
        );
        // Re-resolved after expiry: the stale twin is replaced, not kept.
        c.insert(
            name("a.example"),
            RecordType::A,
            rec("a.example", 60),
            Some(scoped(2)),
            60,
            t(120),
        );
        assert_eq!(c.len(t(120)), 1);
    }

    #[test]
    fn unbounded_default_matches_plain_cache() {
        // Pinned regression: with default limits the bounded code path must
        // reproduce the unbounded cache's observable behaviour exactly.
        let mut plain = EcsCache::new(CacheCompliance::Honor);
        let mut limited = EcsCache::with_limits(CacheCompliance::Honor, CacheLimits::default());
        for c in [&mut plain, &mut limited] {
            for third in 0..10u8 {
                c.insert(
                    name("a.example"),
                    RecordType::A,
                    rec("a.example", 20),
                    Some(scoped(third)),
                    20,
                    t(third as u64 * 10),
                );
                c.lookup(
                    &name("a.example"),
                    RecordType::A,
                    ip("192.0.1.77"),
                    t(third as u64 * 10),
                );
            }
        }
        assert_eq!(plain.stats(), limited.stats());
        assert_eq!(plain.len(t(95)), limited.len(t(95)));
    }

    #[test]
    fn stats_json_is_well_formed() {
        let mut c = bounded(1);
        for third in 0..3u8 {
            c.insert(
                name("a.example"),
                RecordType::A,
                rec("a.example", 600),
                Some(scoped(third)),
                600,
                t(third as u64),
            );
        }
        let json = c.stats().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"evictions\":2"));
        assert!(json.contains("\"inserts\":3"));
    }
}
