//! RFC 7871 conformance scenarios, cross-crate: what the spec stipulates,
//! exercised through the real resolver + authoritative implementations.

use std::net::{IpAddr, Ipv4Addr};

use authoritative::{AuthServer, EcsHandling, ScopePolicy, Zone};
use dns_wire::{EcsOption, Message, Name, Question, RecordClass, RecordType};
use netsim::SimTime;
use resolver::{FaultyUpstream, InjectedFault, Resolver, ResolverConfig, RetryPolicy};

fn name(s: &str) -> Name {
    Name::from_ascii(s).unwrap()
}

fn zone_with(names: &[&str], ttl: u32) -> Zone {
    let mut z = Zone::new(name("conf.example"));
    for (i, n) in names.iter().enumerate() {
        z.add_a(name(n), ttl, Ipv4Addr::new(198, 51, 100, i as u8 + 1))
            .unwrap();
    }
    z
}

const RES: IpAddr = IpAddr::V4(Ipv4Addr::new(9, 9, 9, 9));

fn t(secs: u64) -> SimTime {
    SimTime::from_secs(secs)
}

/// §7.2.1: scope in a response must be usable even when it exceeds the
/// source; resolvers must cache as if scope == source.
#[test]
fn scope_exceeding_source_is_clamped_for_caching() {
    let mut auth = AuthServer::new(
        zone_with(&["a.conf.example"], 60),
        EcsHandling::open(ScopePolicy::SourcePlusK(8)), // deliberately bogus
    );
    let mut r = Resolver::new(ResolverConfig::rfc_compliant(RES));
    let client1: IpAddr = "100.70.1.1".parse().unwrap();
    let q = Message::query(1, Question::a(name("a.conf.example")));
    r.resolve_msg(&q, client1, t(0), &mut auth);
    // The server advertised scope 32 for a 24-bit source. A client in the
    // same /24 must still hit (clamped to /24), a client outside must miss.
    let near: IpAddr = "100.70.1.99".parse().unwrap();
    r.resolve_msg(&q, near, t(1), &mut auth);
    assert_eq!(auth.log().len(), 1, "same /24 must reuse");
    let far: IpAddr = "100.70.2.1".parse().unwrap();
    r.resolve_msg(&q, far, t(2), &mut auth);
    assert_eq!(auth.log().len(), 2, "different /24 must re-query");
}

/// §7.1.2: a query with source prefix 0 means "no information"; the
/// authoritative answers untailored with scope 0 and the resolver may cache
/// for everyone.
#[test]
fn source_zero_is_no_information() {
    let mut auth = AuthServer::new(
        zone_with(&["b.conf.example"], 60),
        EcsHandling::open(ScopePolicy::MatchSource),
    );
    let mut q = Message::query(1, Question::a(name("b.conf.example")));
    q.set_ecs(EcsOption::no_info_v4());
    let resp = auth.handle(&q, RES, t(0));
    let ecs = resp.ecs().unwrap();
    assert_eq!(ecs.source_prefix_len(), 0);
    assert_eq!(ecs.scope_prefix_len(), 0);
}

/// §7.2.2: NS (non-address) queries are answered with zero scope; resolvers
/// should not attach client ECS to them in the first place.
#[test]
fn resolvers_omit_ecs_on_ns_queries() {
    let mut zone = zone_with(&[], 60);
    zone.add(dns_wire::Record::new(
        name("conf.example"),
        3600,
        dns_wire::Rdata::Ns(name("ns1.conf.example")),
    ))
    .unwrap();
    let mut auth = AuthServer::new(zone, EcsHandling::open(ScopePolicy::MatchSource));
    let mut r = Resolver::new(ResolverConfig::rfc_compliant(RES));
    let q = Message::query(
        1,
        Question::new(name("conf.example"), RecordType::Ns, RecordClass::In),
    );
    let client: IpAddr = "100.70.1.1".parse().unwrap();
    let resp = r.resolve_msg(&q, client, t(0), &mut auth);
    assert_eq!(resp.answers.len(), 1);
    assert!(
        auth.log()[0].ecs.is_none(),
        "RFC-compliant resolvers must not send ECS on NS queries"
    );
}

/// RFC 6891 §7: pre-EDNS authoritative servers FORMERR queries with OPT.
/// The resolver must still deliver an answer-less response, not crash, and
/// must not cache the failure as a positive answer.
#[test]
fn formerr_from_pre_edns_server_is_not_cached_as_answer() {
    let mut auth =
        AuthServer::new(zone_with(&["c.conf.example"], 60), EcsHandling::disabled()).without_edns();
    let mut r = Resolver::new(ResolverConfig::rfc_compliant(RES));
    let client: IpAddr = "100.70.1.1".parse().unwrap();
    let q = Message::query(1, Question::a(name("c.conf.example")));
    let resp = r.resolve_msg(&q, client, t(0), &mut auth);
    assert_eq!(resp.rcode, dns_wire::Rcode::FormErr);
    assert!(resp.answers.is_empty());
    // The failure was not cached: the next query goes upstream again.
    r.resolve_msg(&q, client, t(1), &mut auth);
    assert_eq!(auth.log().len(), 2);
}

/// §11.1 (privacy): the RFC-recommended resolver never conveys more than
/// 24 bits of an IPv4 client or 56 of an IPv6 client, whatever the client
/// supplies.
#[test]
fn rfc_resolver_never_leaks_more_than_24_bits() {
    let mut auth = AuthServer::new(
        zone_with(&["d.conf.example", "e.conf.example"], 60),
        EcsHandling::open(ScopePolicy::MatchSource),
    );
    let mut r = Resolver::new(ResolverConfig::rfc_compliant(RES));
    // Even when the incoming query carries a full /32, the non-trusting
    // RFC resolver derives its own /24 from the sender address.
    let mut q = Message::query(1, Question::a(name("d.conf.example")));
    q.set_ecs(EcsOption::from_v4(Ipv4Addr::new(100, 70, 1, 77), 32));
    let sender: IpAddr = "100.80.2.9".parse().unwrap();
    r.resolve_msg(&q, sender, t(0), &mut auth);
    let sent = auth.log()[0].ecs.unwrap();
    assert_eq!(sent.source_prefix_len(), 24);
    assert_eq!(sent.to_v4(), Some(Ipv4Addr::new(100, 80, 2, 0)));

    // IPv6 sender: at most /56.
    let sender6: IpAddr = "2001:db8:1:2:3:4:5:6".parse().unwrap();
    let q = Message::query(2, Question::a(name("e.conf.example")));
    r.resolve_msg(&q, sender6, t(1), &mut auth);
    let sent = auth.log()[1].ecs.unwrap();
    assert_eq!(sent.source_prefix_len(), 56);
}

/// §7.3.1: a cached scoped answer must never be served to a client outside
/// the scope — across many scope/source combinations.
#[test]
fn scope_matrix_is_honored() {
    for (source, scope, inside, outside) in [
        (24u8, 24u8, "100.70.1.200", "100.70.2.1"),
        (24, 16, "100.70.99.1", "100.71.0.1"),
        (24, 8, "100.99.99.1", "101.0.0.1"),
        (16, 16, "100.70.200.1", "100.71.0.1"),
    ] {
        let mut auth = AuthServer::new(
            zone_with(&["m.conf.example"], 600),
            EcsHandling::open(ScopePolicy::Fixed(scope)),
        );
        let mut r = Resolver::new(ResolverConfig {
            prefix_policy: resolver::PrefixPolicy::Truncate { v4: source, v6: 56 },
            ..ResolverConfig::rfc_compliant(RES)
        });
        let q = Message::query(1, Question::a(name("m.conf.example")));
        let first: IpAddr = "100.70.1.1".parse().unwrap();
        r.resolve_msg(&q, first, t(0), &mut auth);
        r.resolve_msg(&q, inside.parse().unwrap(), t(1), &mut auth);
        assert_eq!(
            auth.log().len(),
            1,
            "source {source} scope {scope}: {inside} must hit"
        );
        r.resolve_msg(&q, outside.parse().unwrap(), t(2), &mut auth);
        assert_eq!(
            auth.log().len(),
            2,
            "source {source} scope {scope}: {outside} must miss"
        );
    }
}

/// The paper's recommendation: probing with the resolver's own public
/// address (not loopback) keeps the authoritative's mapping sane during
/// probing.
#[test]
fn own_address_probing_is_expressible_and_routable() {
    let mut auth = AuthServer::new(
        zone_with(&["p.conf.example"], 60),
        EcsHandling::open(ScopePolicy::MatchSource),
    );
    let mut config = ResolverConfig::rfc_compliant(RES);
    config.probing = resolver::ProbingStrategy::IntervalProbe {
        period: netsim::SimDuration::from_secs(1800),
        use_own_address: true,
    };
    let mut r = Resolver::new(config);
    let q = Message::query(1, Question::a(name("p.conf.example")));
    let client: IpAddr = "100.70.1.1".parse().unwrap();
    r.resolve_msg(&q, client, t(0), &mut auth);
    let sent = auth.log()[0].ecs.unwrap();
    assert!(!sent.is_non_routable(), "own-address probe is routable");
    assert_eq!(sent.to_v4(), Some(Ipv4Addr::new(9, 9, 9, 0)));
}

/// §7.1.3: if an ECS query times out, the retry goes out *without* the
/// option, and the server is remembered as non-ECS so later queries stay
/// plain too.
#[test]
fn timed_out_ecs_query_is_retried_without_ecs_and_server_marked() {
    let inner = AuthServer::new(
        zone_with(&["w.conf.example", "w2.conf.example"], 60),
        EcsHandling::open(ScopePolicy::MatchSource),
    );
    let mut up = FaultyUpstream::scripted(inner, vec![InjectedFault::Timeout]);
    let mut r = Resolver::new(ResolverConfig::rfc_compliant(RES));
    let q = Message::query(1, Question::a(name("w.conf.example")));
    let client: IpAddr = "100.70.1.1".parse().unwrap();
    let resp = r.resolve_msg(&q, client, t(0), &mut up);

    assert_eq!(
        resp.answer_addrs().len(),
        1,
        "the retry recovered an answer"
    );
    let s = r.stats();
    assert_eq!(s.upstream_timeouts, 1);
    assert_eq!(s.retries, 1);
    assert_eq!(s.ecs_withdrawals, 1);
    assert!(
        r.probing_state().marked_non_ecs,
        "server remembered as non-ECS"
    );
    // Only the retry reached the authoritative, and it carried no ECS.
    assert_eq!(up.inner().log().len(), 1);
    assert!(up.inner().log()[0].ecs.is_none(), "§7.1.3 retry is plain");

    // The mark outlives the exchange: a fresh name (a guaranteed cache
    // miss — the plain answer above was cached globally) also goes out
    // plain, even for an unrelated client.
    let q2 = Message::query(2, Question::a(name("w2.conf.example")));
    let far: IpAddr = "100.70.2.1".parse().unwrap();
    r.resolve_msg(&q2, far, t(5), &mut up);
    assert_eq!(up.inner().log().len(), 2);
    assert!(
        up.inner().log()[1].ecs.is_none(),
        "mark suppresses later ECS"
    );
}

/// §7.1.3 also allows keeping ECS on retry when the operator judges the
/// timeout unrelated to the option; `withdraw_ecs_on_timeout: false`
/// expresses that posture and must leave the option attached.
#[test]
fn timeout_retry_keeps_ecs_when_withdrawal_is_disabled() {
    let inner = AuthServer::new(
        zone_with(&["x.conf.example"], 60),
        EcsHandling::open(ScopePolicy::MatchSource),
    );
    let mut up = FaultyUpstream::scripted(inner, vec![InjectedFault::Timeout]);
    let mut config = ResolverConfig::rfc_compliant(RES);
    config.retry = RetryPolicy {
        withdraw_ecs_on_timeout: false,
        ..RetryPolicy::default()
    };
    let mut r = Resolver::new(config);
    let q = Message::query(1, Question::a(name("x.conf.example")));
    let client: IpAddr = "100.70.1.1".parse().unwrap();
    let resp = r.resolve_msg(&q, client, t(0), &mut up);

    assert_eq!(resp.answer_addrs().len(), 1);
    assert_eq!(r.stats().retries, 1);
    assert_eq!(r.stats().ecs_withdrawals, 0, "nothing withdrawn");
    assert!(!r.probing_state().marked_non_ecs);
    assert!(up.inner().log()[0].ecs.is_some(), "retry kept the option");
}

/// §7.1.3's FORMERR clause: a server answering an ECS query with FORMERR
/// may be a pre-EDNS(-ECS) implementation; with the downgrade enabled the
/// resolver retries immediately without the option and marks the server.
#[test]
fn formerr_on_ecs_query_downgrades_to_plain_retry_when_enabled() {
    let inner = AuthServer::new(
        zone_with(&["y.conf.example"], 60),
        EcsHandling::open(ScopePolicy::MatchSource),
    );
    let mut up = FaultyUpstream::scripted(inner, vec![InjectedFault::FormErr]);
    let mut config = ResolverConfig::rfc_compliant(RES);
    config.retry = RetryPolicy {
        withdraw_ecs_on_formerr: true,
        ..RetryPolicy::default()
    };
    let mut r = Resolver::new(config);
    let q = Message::query(1, Question::a(name("y.conf.example")));
    let client: IpAddr = "100.70.1.1".parse().unwrap();
    let resp = r.resolve_msg(&q, client, t(0), &mut up);

    assert_eq!(resp.rcode, dns_wire::Rcode::NoError);
    assert_eq!(resp.answer_addrs().len(), 1, "plain retry got the answer");
    let s = r.stats();
    assert_eq!(s.ecs_withdrawals, 1);
    assert_eq!(s.upstream_timeouts, 0, "FORMERR is not a timeout");
    assert!(r.probing_state().marked_non_ecs);
    // The injected FORMERR never reached the zone; the one logged query is
    // the downgraded retry, option-free.
    assert_eq!(up.inner().log().len(), 1);
    assert!(up.inner().log()[0].ecs.is_none());
}
