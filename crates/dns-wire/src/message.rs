//! Complete DNS messages: the header, four sections, and EDNS handling.

use std::net::IpAddr;

use crate::ecs::EcsOption;
use crate::edns::OptRecord;
use crate::error::{WireError, WireResult};
use crate::header::{Flags, Header, Opcode, Rcode};
use crate::name::Name;
use crate::question::Question;
use crate::rdata::Rdata;
use crate::record::{Record, RecordType};
use crate::wire::{WireReader, WireWriter};

/// A DNS message.
///
/// The OPT pseudo-record is held separately in `edns` rather than in the
/// additional section; serialization appends it automatically and parsing
/// extracts it (validating there is at most one with a root owner name).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Transaction ID.
    pub id: u16,
    /// Header flag bits.
    pub flags: Flags,
    /// Operation code.
    pub opcode: Opcode,
    /// Response code (low 4 bits; combined with the EDNS extended rcode via
    /// [`Message::extended_rcode`]).
    pub rcode: Rcode,
    /// Question section.
    pub questions: Vec<Question>,
    /// Answer section.
    pub answers: Vec<Record>,
    /// Authority section.
    pub authorities: Vec<Record>,
    /// Additional section (excluding OPT).
    pub additionals: Vec<Record>,
    /// EDNS OPT pseudo-record, if present.
    pub edns: Option<OptRecord>,
}

impl Message {
    /// A recursive query for one question.
    pub fn query(id: u16, question: Question) -> Self {
        Message {
            id,
            flags: Flags {
                rd: true,
                ..Flags::default()
            },
            opcode: Opcode::Query,
            rcode: Rcode::NoError,
            questions: vec![question],
            answers: Vec::new(),
            authorities: Vec::new(),
            additionals: Vec::new(),
            edns: None,
        }
    }

    /// Builds a response skeleton for a query: copies ID, question, RD; sets
    /// QR. Does not copy EDNS (the responder decides its own OPT).
    pub fn response_to(query: &Message) -> Self {
        Message {
            id: query.id,
            flags: Flags {
                qr: true,
                rd: query.flags.rd,
                ..Flags::default()
            },
            opcode: query.opcode,
            rcode: Rcode::NoError,
            questions: query.questions.clone(),
            answers: Vec::new(),
            authorities: Vec::new(),
            additionals: Vec::new(),
            edns: None,
        }
    }

    /// The first question, if any.
    pub fn question(&self) -> Option<&Question> {
        self.questions.first()
    }

    /// True when this message is a response.
    pub fn is_response(&self) -> bool {
        self.flags.qr
    }

    /// Ensures an OPT record exists, advertising `udp_payload_size`.
    pub fn set_edns(&mut self, udp_payload_size: u16) -> &mut OptRecord {
        let opt = self
            .edns
            .get_or_insert_with(|| OptRecord::new(udp_payload_size));
        opt.udp_payload_size = udp_payload_size;
        opt
    }

    /// The ECS option, if the message carries one.
    pub fn ecs(&self) -> Option<&EcsOption> {
        self.edns.as_ref().and_then(|o| o.ecs())
    }

    /// Sets (replacing) the ECS option, creating the OPT record if needed
    /// with the common 4096-byte payload size.
    pub fn set_ecs(&mut self, ecs: EcsOption) {
        if self.edns.is_none() {
            self.edns = Some(OptRecord::new(4096));
        }
        self.edns.as_mut().expect("just set").set_ecs(ecs);
    }

    /// Removes the ECS option, keeping the OPT record.
    pub fn clear_ecs(&mut self) {
        if let Some(o) = self.edns.as_mut() {
            o.clear_ecs();
        }
    }

    /// The combined 12-bit extended response code (RFC 6891 §6.1.3).
    pub fn extended_rcode(&self) -> u16 {
        let hi = self.edns.as_ref().map(|o| o.extended_rcode).unwrap_or(0) as u16;
        (hi << 4) | self.rcode.to_u8() as u16
    }

    /// All A/AAAA addresses in the answer section, in order.
    pub fn answer_addrs(&self) -> Vec<IpAddr> {
        self.answers
            .iter()
            .filter_map(|r| match &r.rdata {
                Rdata::A(a) => Some(IpAddr::V4(*a)),
                Rdata::Aaaa(a) => Some(IpAddr::V6(*a)),
                _ => None,
            })
            .collect()
    }

    /// Follows the CNAME chain in the answer section starting from the
    /// question name, returning the final target name.
    pub fn final_name(&self) -> Option<Name> {
        let mut cur = self.question()?.name.clone();
        // Bounded by the answer count to tolerate malformed chains.
        for _ in 0..=self.answers.len() {
            let next = self.answers.iter().find_map(|r| {
                if r.name == cur {
                    r.rdata.as_cname().cloned()
                } else {
                    None
                }
            });
            match next {
                Some(n) => cur = n,
                None => return Some(cur),
            }
        }
        Some(cur)
    }

    /// Minimum TTL across answer records (the effective cache lifetime of
    /// the response), or `None` when there are no answers.
    pub fn min_answer_ttl(&self) -> Option<u32> {
        self.answers.iter().map(|r| r.ttl).min()
    }

    /// Serializes the message with name compression.
    pub fn to_bytes(&self) -> WireResult<Vec<u8>> {
        let mut w = WireWriter::new();
        self.write(&mut w)?;
        w.finish()
    }

    /// Serializes into an existing writer.
    pub fn write(&self, w: &mut WireWriter) -> WireResult<()> {
        let header = Header {
            id: self.id,
            flags: self.flags,
            opcode: self.opcode,
            rcode: self.rcode,
            qdcount: self.questions.len() as u16,
            ancount: self.answers.len() as u16,
            nscount: self.authorities.len() as u16,
            arcount: (self.additionals.len() + usize::from(self.edns.is_some())) as u16,
        };
        header.write(w);
        for q in &self.questions {
            q.write(w)?;
        }
        for r in &self.answers {
            r.write(w)?;
        }
        for r in &self.authorities {
            r.write(w)?;
        }
        for r in &self.additionals {
            r.write(w)?;
        }
        if let Some(opt) = &self.edns {
            opt.write(w)?;
        }
        Ok(())
    }

    /// Parses a message from wire bytes.
    pub fn from_bytes(bytes: &[u8]) -> WireResult<Self> {
        let mut r = WireReader::new(bytes);
        let header = Header::read(&mut r)?;
        // Bounded preallocation: a question is at least 5 wire bytes (root
        // name + type + class), so never reserve more slots than the
        // remaining bytes could encode.
        let mut questions = Vec::with_capacity(r.capacity_for(header.qdcount, 5));
        for _ in 0..header.qdcount {
            questions.push(Question::read(&mut r).map_err(|e| match e {
                WireError::Truncated { .. } => WireError::CountMismatch {
                    section: "question",
                },
                other => other,
            })?);
        }
        let answers = read_section(&mut r, header.ancount, "answer")?;
        let authorities = read_section(&mut r, header.nscount, "authority")?;

        // Additional section: intercept OPT records.
        let mut additionals = Vec::new();
        let mut edns: Option<OptRecord> = None;
        for _ in 0..header.arcount {
            let mark = r.clone();
            let name = Name::read(&mut r).map_err(|e| match e {
                WireError::Truncated { .. } => WireError::CountMismatch {
                    section: "additional",
                },
                other => other,
            })?;
            let rtype = RecordType::from_u16(r.read_u16("record type")?);
            if rtype == RecordType::Opt {
                if !name.is_root() {
                    return Err(WireError::OptOwnerNotRoot);
                }
                if edns.is_some() {
                    return Err(WireError::DuplicateOpt);
                }
                edns = Some(OptRecord::read_after_type(&mut r)?);
            } else {
                // Rewind and parse as a normal record.
                r = mark;
                additionals.push(Record::read(&mut r).map_err(|e| match e {
                    WireError::Truncated { .. } => WireError::CountMismatch {
                        section: "additional",
                    },
                    other => other,
                })?);
            }
        }

        Ok(Message {
            id: header.id,
            flags: header.flags,
            opcode: header.opcode,
            rcode: header.rcode,
            questions,
            answers,
            authorities,
            additionals,
            edns,
        })
    }
}

fn read_section(
    r: &mut WireReader<'_>,
    count: u16,
    section: &'static str,
) -> WireResult<Vec<Record>> {
    // A record is at least 11 wire bytes (root owner + type + class + TTL +
    // RDLENGTH); bound the preallocation by what the buffer could hold.
    let mut out = Vec::with_capacity(r.capacity_for(count, 11));
    for _ in 0..count {
        out.push(Record::read(r).map_err(|e| match e {
            WireError::Truncated { .. } => WireError::CountMismatch { section },
            other => other,
        })?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn name(s: &str) -> Name {
        Name::from_ascii(s).unwrap()
    }

    fn sample_query() -> Message {
        let mut m = Message::query(0x1111, Question::a(name("www.example.com")));
        m.set_edns(4096);
        m.set_ecs(EcsOption::from_v4(Ipv4Addr::new(192, 0, 2, 0), 24));
        m
    }

    #[test]
    fn query_roundtrip() {
        let m = sample_query();
        let bytes = m.to_bytes().unwrap();
        let back = Message::from_bytes(&bytes).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.ecs().unwrap().source_prefix_len(), 24);
        assert!(!back.is_response());
    }

    #[test]
    fn response_roundtrip_with_all_sections() {
        let q = sample_query();
        let mut resp = Message::response_to(&q);
        resp.flags.aa = true;
        resp.answers.push(Record::new(
            name("www.example.com"),
            20,
            Rdata::Cname(name("edge.cdn.example")),
        ));
        resp.answers.push(Record::new(
            name("edge.cdn.example"),
            20,
            Rdata::A(Ipv4Addr::new(203, 0, 113, 5)),
        ));
        resp.authorities.push(Record::new(
            name("cdn.example"),
            3600,
            Rdata::Ns(name("ns1.cdn.example")),
        ));
        resp.additionals.push(Record::new(
            name("ns1.cdn.example"),
            3600,
            Rdata::A(Ipv4Addr::new(198, 51, 100, 53)),
        ));
        resp.set_edns(4096);
        resp.set_ecs(EcsOption::from_v4(Ipv4Addr::new(192, 0, 2, 0), 24).with_scope(16));

        let bytes = resp.to_bytes().unwrap();
        let back = Message::from_bytes(&bytes).unwrap();
        assert_eq!(back, resp);
        assert!(back.is_response());
        assert_eq!(back.ecs().unwrap().scope_prefix_len(), 16);
        assert_eq!(
            back.answer_addrs(),
            vec![IpAddr::V4(Ipv4Addr::new(203, 0, 113, 5))]
        );
        assert_eq!(back.final_name().unwrap(), name("edge.cdn.example"));
        assert_eq!(back.min_answer_ttl(), Some(20));
    }

    #[test]
    fn response_to_copies_question_and_rd() {
        let q = sample_query();
        let r = Message::response_to(&q);
        assert_eq!(r.id, q.id);
        assert!(r.flags.qr);
        assert!(r.flags.rd);
        assert_eq!(r.questions, q.questions);
        assert!(r.edns.is_none(), "EDNS must not be copied implicitly");
    }

    #[test]
    fn compression_shrinks_message() {
        let q = sample_query();
        let mut resp = Message::response_to(&q);
        for i in 0..4 {
            resp.answers.push(Record::new(
                name("www.example.com"),
                60,
                Rdata::A(Ipv4Addr::new(203, 0, 113, i)),
            ));
        }
        let bytes = resp.to_bytes().unwrap();
        // Owner names after the first should be 2-byte pointers: the records
        // are 2+2+2+4+2+4 = 16 bytes each with a pointer owner.
        let mut uncompressed = WireWriter::without_compression();
        resp.write(&mut uncompressed).unwrap();
        assert!(bytes.len() < uncompressed.finish().unwrap().len());
        assert_eq!(Message::from_bytes(&bytes).unwrap(), resp);
    }

    #[test]
    fn duplicate_opt_rejected() {
        let mut m = sample_query();
        m.edns = None;
        let mut w = WireWriter::new();
        // Handcraft: header arcount 2 with two OPTs.
        let header = Header {
            id: 1,
            flags: Flags::default(),
            opcode: Opcode::Query,
            rcode: Rcode::NoError,
            qdcount: 0,
            ancount: 0,
            nscount: 0,
            arcount: 2,
        };
        header.write(&mut w);
        OptRecord::new(512).write(&mut w).unwrap();
        OptRecord::new(512).write(&mut w).unwrap();
        let bytes = w.finish().unwrap();
        assert_eq!(
            Message::from_bytes(&bytes).unwrap_err(),
            WireError::DuplicateOpt
        );
    }

    #[test]
    fn opt_with_nonroot_owner_rejected() {
        let mut w = WireWriter::new();
        let header = Header {
            id: 1,
            flags: Flags::default(),
            opcode: Opcode::Query,
            rcode: Rcode::NoError,
            qdcount: 0,
            ancount: 0,
            nscount: 0,
            arcount: 1,
        };
        header.write(&mut w);
        name("x.example").write(&mut w).unwrap();
        w.put_u16(41); // OPT
        w.put_u16(4096);
        w.put_u32(0);
        w.put_u16(0);
        let bytes = w.finish().unwrap();
        assert_eq!(
            Message::from_bytes(&bytes).unwrap_err(),
            WireError::OptOwnerNotRoot
        );
    }

    #[test]
    fn count_mismatch_detected() {
        let m = sample_query();
        let mut bytes = m.to_bytes().unwrap();
        // Claim 2 questions.
        bytes[5] = 2;
        assert!(matches!(
            Message::from_bytes(&bytes),
            Err(WireError::CountMismatch { .. }) | Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn hostile_counts_fail_cleanly_without_huge_allocation() {
        // A 12-byte datagram claiming 65 535 records in every section must
        // fail with a parse error (and, per the bounded-preallocation
        // guard, reserve no section capacity at all on the way).
        let mut bytes = sample_query().to_bytes().unwrap();
        bytes.truncate(12);
        for i in [4, 6, 8, 10] {
            bytes[i] = 0xFF;
            bytes[i + 1] = 0xFF;
        }
        assert!(matches!(
            Message::from_bytes(&bytes),
            Err(WireError::CountMismatch { .. }) | Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn extended_rcode_combines() {
        let mut m = sample_query();
        m.rcode = Rcode::Unknown(0x6);
        m.set_edns(4096).extended_rcode = 0x2;
        assert_eq!(m.extended_rcode(), 0x26);
        let mut m2 = Message::query(1, Question::a(name("a.example")));
        m2.rcode = Rcode::FormErr;
        assert_eq!(m2.extended_rcode(), 1);
    }

    #[test]
    fn final_name_without_cname_is_qname() {
        let q = sample_query();
        let mut resp = Message::response_to(&q);
        resp.answers.push(Record::new(
            name("www.example.com"),
            20,
            Rdata::A(Ipv4Addr::new(1, 2, 3, 4)),
        ));
        assert_eq!(resp.final_name().unwrap(), name("www.example.com"));
    }

    #[test]
    fn clear_ecs_keeps_opt() {
        let mut m = sample_query();
        m.clear_ecs();
        assert!(m.ecs().is_none());
        assert!(m.edns.is_some());
    }

    #[test]
    fn formerr_response_models_pre_edns_server() {
        // The failure mode RFC 7871 probing guards against: an old server
        // answering EDNS queries with FORMERR and no OPT.
        let q = sample_query();
        let mut resp = Message::response_to(&q);
        resp.rcode = Rcode::FormErr;
        let bytes = resp.to_bytes().unwrap();
        let back = Message::from_bytes(&bytes).unwrap();
        assert_eq!(back.rcode, Rcode::FormErr);
        assert!(back.edns.is_none());
        assert!(back.ecs().is_none());
    }
}
