//! CNAME flattening (§8.4, Figure 8).
//!
//! A DNS provider hosts `customer.com`. The apex must carry NS/SOA records,
//! so it cannot be a CNAME onto the CDN (RFC 2181); instead, the provider's
//! authoritative server resolves the CDN name itself on the backend and
//! returns the final A records — "CNAME flattening". The pitfall: if the
//! backend query to the CDN carries no ECS (or the provider is not
//! whitelisted), the CDN maps the *provider's* location, not the client's,
//! and the client lands on a distant edge.

use std::net::IpAddr;

use dns_wire::{Message, Name, Question, Rcode, Rdata, Record};
use netsim::SimTime;

use crate::server::AuthServer;

/// A DNS-provider authoritative implementing CNAME flattening for the apex
/// of a customer zone.
#[derive(Debug)]
pub struct FlatteningServer {
    /// Apex of the hosted zone, e.g. `customer.com`.
    apex: Name,
    /// `www` label target: the CDN name that the non-apex path uses via a
    /// regular CNAME.
    cdn_name: Name,
    /// Address this server uses when querying the CDN backend (what the CDN
    /// sees as the resolver).
    backend_addr: IpAddr,
    /// Whether backend queries forward the client's ECS option. This is the
    /// knob §8.4 turns: `false` reproduces the 650 ms pitfall.
    pub forward_ecs: bool,
    /// TTL for flattened apex answers.
    apex_ttl: u32,
}

impl FlatteningServer {
    /// Creates a flattening server.
    pub fn new(apex: Name, cdn_name: Name, backend_addr: IpAddr) -> Self {
        FlatteningServer {
            apex,
            cdn_name,
            backend_addr,
            forward_ecs: false,
            apex_ttl: 30,
        }
    }

    /// The hosted apex.
    pub fn apex(&self) -> &Name {
        &self.apex
    }

    /// Handles a query. Queries for the apex are flattened against
    /// `cdn_backend` (the CDN's authoritative server); queries for
    /// `www.<apex>` return a CNAME to the CDN name plus the CDN's answer —
    /// the normal, ECS-preserving path, resolved here in one round trip for
    /// simplicity (a real resolver would chase the CNAME itself; latency
    /// accounting in the experiment covers that).
    ///
    /// `src` is the querying resolver; its ECS option (if any) is forwarded
    /// to the CDN only on the www path, or on the apex path when
    /// `forward_ecs` is set.
    pub fn handle(
        &mut self,
        query: &Message,
        src: IpAddr,
        now: SimTime,
        cdn_backend: &mut AuthServer,
    ) -> Message {
        let question = match query.question() {
            Some(q) => q.clone(),
            None => {
                let mut resp = Message::response_to(query);
                resp.rcode = Rcode::FormErr;
                return resp;
            }
        };

        let mut resp = Message::response_to(query);
        resp.flags.aa = true;
        if query.edns.is_some() {
            resp.set_edns(4096);
        }

        let www = self.apex.child("www").expect("valid label");
        if question.name == self.apex && question.qtype.is_address() {
            // Flattening path: backend query to the CDN, from OUR address.
            let mut backend_q = Message::query(
                query.id ^ 0x5555,
                Question::new(self.cdn_name.clone(), question.qtype, question.qclass),
            );
            backend_q.set_edns(4096);
            if self.forward_ecs {
                if let Some(ecs) = query.ecs() {
                    backend_q.set_ecs(*ecs);
                }
            }
            let backend_resp = cdn_backend.handle(&backend_q, self.backend_addr, now);
            for r in &backend_resp.answers {
                match &r.rdata {
                    Rdata::A(a) => resp.answers.push(Record::new(
                        self.apex.clone(),
                        self.apex_ttl.min(r.ttl),
                        Rdata::A(*a),
                    )),
                    Rdata::Aaaa(a) => resp.answers.push(Record::new(
                        self.apex.clone(),
                        self.apex_ttl.min(r.ttl),
                        Rdata::Aaaa(*a),
                    )),
                    _ => {}
                }
            }
            // The flattened answer hides the CDN name entirely; any ECS
            // scope from the backend is NOT propagated (the provider in the
            // paper's case study returned no ECS on the apex).
        } else if question.name == www && question.qtype.is_address() {
            // Normal path: CNAME to the CDN name, then the CDN's tailored
            // answer, preserving the querier's ECS end to end.
            resp.answers.push(Record::new(
                www.clone(),
                300,
                Rdata::Cname(self.cdn_name.clone()),
            ));
            let mut cdn_q = Message::query(
                query.id ^ 0xAAAA,
                Question::new(self.cdn_name.clone(), question.qtype, question.qclass),
            );
            cdn_q.set_edns(4096);
            if let Some(ecs) = query.ecs() {
                cdn_q.set_ecs(*ecs);
            }
            let cdn_resp = cdn_backend.handle(&cdn_q, src, now);
            resp.answers.extend(cdn_resp.answers.iter().cloned());
            if let Some(ecs) = cdn_resp.ecs() {
                resp.set_ecs(*ecs);
            }
        } else if question.name.is_subdomain_of(&self.apex) {
            resp.rcode = Rcode::NxDomain;
        } else {
            resp.rcode = Rcode::Refused;
        }
        resp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cdn::CdnBehavior;
    use crate::geodb::GeoDb;
    use crate::server::EcsHandling;
    use crate::zone::Zone;
    use dns_wire::{EcsOption, IpPrefix};
    use netsim::geo::{city, CITIES};
    use std::net::Ipv4Addr;
    use topology::{CdnFootprint, EdgeServerSpec};

    fn name(s: &str) -> Name {
        Name::from_ascii(s).unwrap()
    }

    fn world_cdn() -> (AuthServer, GeoDb) {
        let footprint = CdnFootprint {
            edges: CITIES
                .iter()
                .enumerate()
                .map(|(i, c)| EdgeServerSpec {
                    addr: IpAddr::V4(Ipv4Addr::new(203, 0, (i / 250) as u8, (i % 250) as u8 + 1)),
                    pos: c.pos,
                    city: c.name.to_string(),
                })
                .collect(),
        };
        let mut db = GeoDb::new();
        // Client subnet in Cleveland; provider backend in Mountain View.
        db.insert(
            IpPrefix::v4("192.0.2.0".parse().unwrap(), 24).unwrap(),
            city("Cleveland").unwrap().pos,
        );
        db.insert(
            IpPrefix::v4("198.18.200.0".parse().unwrap(), 24).unwrap(),
            city("Mountain View").unwrap().pos,
        );
        // Public resolver egress in Dallas.
        db.insert(
            IpPrefix::v4("8.8.8.0".parse().unwrap(), 24).unwrap(),
            city("Dallas").unwrap().pos,
        );
        let zone = Zone::new(name("cdn.net"));
        let server = AuthServer::new(
            zone,
            EcsHandling::open(crate::server::ScopePolicy::MatchSource),
        )
        .with_cdn(CdnBehavior::cdn1(footprint), db.clone());
        (server, db)
    }

    fn flattener() -> FlatteningServer {
        FlatteningServer::new(
            name("customer.com"),
            name("ex.cdn.net"),
            "198.18.200.1".parse().unwrap(),
        )
    }

    fn edge_city(cdn: &AuthServer, resp: &Message) -> String {
        // Recover the city by reverse lookup through the CDN footprint. The
        // server logs answers; easier: geolocate via the log.
        let addr = resp.answer_addrs()[0];
        // Brute force: the test footprint encodes city index in the address.
        let (o2, o3) = match addr {
            IpAddr::V4(v4) => {
                let o = v4.octets();
                (o[2] as usize, o[3] as usize)
            }
            _ => unreachable!(),
        };
        let idx = o2 * 250 + (o3 - 1);
        let _ = cdn;
        CITIES[idx].name.to_string()
    }

    fn client_query(qname: &str) -> Message {
        // Public resolver forwards a Cleveland client's query, stamping ECS.
        let mut q = Message::query(1, Question::a(name(qname)));
        q.set_edns(4096);
        q.set_ecs(EcsOption::from_v4(Ipv4Addr::new(192, 0, 2, 0), 24));
        q
    }

    const RESOLVER: IpAddr = IpAddr::V4(Ipv4Addr::new(8, 8, 8, 8));

    #[test]
    fn apex_without_ecs_forwarding_maps_to_provider_location() {
        let (mut cdn, _) = world_cdn();
        let mut flat = flattener();
        let resp = flat.handle(
            &client_query("customer.com"),
            RESOLVER,
            SimTime::ZERO,
            &mut cdn,
        );
        assert_eq!(resp.rcode, Rcode::NoError);
        assert!(!resp.answers.is_empty());
        // The CDN saw the provider's backend address (Mountain View); the
        // Cleveland client gets a West-coast edge.
        assert_eq!(edge_city(&cdn, &resp), "Mountain View");
        // The flattened answer reveals nothing about the CDN name.
        assert!(resp.answers.iter().all(|r| r.name == name("customer.com")));
    }

    #[test]
    fn www_path_preserves_ecs_and_maps_near_client() {
        let (mut cdn, _) = world_cdn();
        let mut flat = flattener();
        let resp = flat.handle(
            &client_query("www.customer.com"),
            RESOLVER,
            SimTime::ZERO,
            &mut cdn,
        );
        assert_eq!(resp.rcode, Rcode::NoError);
        assert_eq!(resp.answers[0].rtype(), dns_wire::RecordType::Cname);
        assert_eq!(edge_city(&cdn, &resp), "Cleveland");
        assert_eq!(resp.ecs().unwrap().scope_prefix_len(), 24);
    }

    #[test]
    fn apex_with_ecs_forwarding_fixes_mapping() {
        let (mut cdn, _) = world_cdn();
        let mut flat = flattener();
        flat.forward_ecs = true;
        let resp = flat.handle(
            &client_query("customer.com"),
            RESOLVER,
            SimTime::ZERO,
            &mut cdn,
        );
        assert_eq!(edge_city(&cdn, &resp), "Cleveland");
    }

    #[test]
    fn missing_name_nxdomain_and_out_of_zone_refused() {
        let (mut cdn, _) = world_cdn();
        let mut flat = flattener();
        let resp = flat.handle(
            &client_query("gone.customer.com"),
            RESOLVER,
            SimTime::ZERO,
            &mut cdn,
        );
        assert_eq!(resp.rcode, Rcode::NxDomain);
        let resp = flat.handle(
            &client_query("other.org"),
            RESOLVER,
            SimTime::ZERO,
            &mut cdn,
        );
        assert_eq!(resp.rcode, Rcode::Refused);
    }

    #[test]
    fn apex_ttl_caps_cdn_ttl() {
        let (mut cdn, _) = world_cdn();
        let mut flat = flattener();
        let resp = flat.handle(
            &client_query("customer.com"),
            RESOLVER,
            SimTime::ZERO,
            &mut cdn,
        );
        // CDN TTL is 20s, apex cap 30s → 20s survives.
        assert_eq!(resp.answers[0].ttl, 20);
    }
}
