//! §6.2 Table 1: ECS source prefix lengths, via the active-scan pipeline.
//!
//! We instantiate the Scan-dataset egress population with its ground-truth
//! prefix policies, "scan" each resolver through its open forwarders
//! (queries carry no ECS — the resolvers add it), and tabulate what the
//! experimental authoritative nameserver saw, exactly as Table 1 does —
//! including the jammed-last-byte detection.

use analysis::PrefixLengthTable;
use authoritative::{AuthServer, EcsHandling, ScopePolicy, Zone};
use dns_wire::{Message, Name, Question};
use netsim::SimTime;
use resolver::Resolver;
use topology::AddrAllocator;
use workload::{PrefixClass, ScanDatasetGen};

use crate::behavior::resolver_config_for;
use crate::report::Report;

/// Parameters.
#[derive(Debug, Clone)]
pub struct Config {
    /// Divisor on the paper's counts.
    pub scale: usize,
    /// Open forwarders per egress resolver.
    pub forwarders_per_resolver: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            scale: 4,
            forwarders_per_resolver: 3,
            seed: 0,
        }
    }
}

/// Outcome.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// The tabulated Table 1.
    pub table: PrefixLengthTable,
    /// Ground-truth class counts.
    pub truth_counts: Vec<(PrefixClass, usize)>,
}

/// Encodes a forwarder address into the scan hostname, as the paper's scan
/// does (so the authoritative can associate ingress with egress).
pub fn scan_hostname(apex: &Name, fwd: std::net::IpAddr) -> Name {
    let label = format!("x{}", fwd.to_string().replace(['.', ':'], "-"));
    apex.child(&label).expect("valid label")
}

/// Runs the experiment.
pub fn run(config: &Config) -> (Outcome, Report) {
    let population = ScanDatasetGen::scaled(config.scale, config.seed).generate();
    let apex = Name::from_ascii("probe.example").expect("valid");
    // The paper's experimental nameserver answers ECS queries with scope
    // L = S − 4.
    let mut auth = AuthServer::new(
        Zone::new(apex.clone()),
        EcsHandling::open(ScopePolicy::SourceMinusK(4)),
    );

    let mut alloc = AddrAllocator::new();
    for spec in &population {
        let mut resolver = Resolver::new(resolver_config_for(spec, &[]));
        let v6 = matches!(
            spec.prefix,
            PrefixClass::V6Slash56 | PrefixClass::V6Slash48 | PrefixClass::V6Slash128
        );
        for _ in 0..config.forwarders_per_resolver {
            let fwd = if v6 {
                AddrAllocator::host_in(&alloc.alloc_v6_block(), 1)
            } else {
                AddrAllocator::host_in(&alloc.alloc_v4_block(), 1)
            };
            let hostname = scan_hostname(&apex, fwd);
            auth.zone_mut()
                .add_a(
                    hostname.clone(),
                    60,
                    std::net::Ipv4Addr::new(198, 51, 100, 1),
                )
                .expect("in zone");
            // The scan probe: a plain A query (no ECS) from the forwarder.
            let q = Message::query(1, Question::a(hostname));
            resolver.resolve_msg(&q, fwd, SimTime::ZERO, &mut auth);
        }
    }

    let table = PrefixLengthTable::build(auth.log());
    let truth_counts: Vec<(PrefixClass, usize)> = [
        PrefixClass::Slash24,
        PrefixClass::Slash32Jammed,
        PrefixClass::Slash22,
        PrefixClass::Slash25,
        PrefixClass::Slash16,
        PrefixClass::V6Slash56,
        PrefixClass::V6Slash48,
        PrefixClass::V6Slash128,
    ]
    .into_iter()
    .map(|c| (c, population.iter().filter(|r| r.prefix == c).count()))
    .collect();

    let mut report = Report::new("table1", "§6.2 Table 1: source prefix lengths");
    let row_count = |label: &str| table.rows.get(label).copied().unwrap_or(0);
    let truth = |c: PrefixClass| {
        truth_counts
            .iter()
            .find(|(cc, _)| *cc == c)
            .map(|(_, n)| *n)
            .unwrap_or(0)
    };
    report.row(
        "/24 resolvers (scan)",
        format!("1384 (scaled: {})", truth(PrefixClass::Slash24)),
        row_count("24"),
        row_count("24") == truth(PrefixClass::Slash24),
    );
    report.row(
        "/32 jammed-last-byte resolvers",
        format!("130 (scaled: {})", truth(PrefixClass::Slash32Jammed)),
        table.jammed_count(),
        table.jammed_count() == truth(PrefixClass::Slash32Jammed),
    );
    report.row(
        "/22-capped resolvers",
        format!("8 (scaled: {})", truth(PrefixClass::Slash22)),
        row_count("22"),
        row_count("22") == truth(PrefixClass::Slash22),
    );
    report.row(
        "/25 resolvers",
        format!("1 (scaled: {})", truth(PrefixClass::Slash25)),
        row_count("25"),
        row_count("25") == truth(PrefixClass::Slash25),
    );
    report.row(
        "/16 resolvers",
        format!("3 (scaled: {})", truth(PrefixClass::Slash16)),
        row_count("16"),
        row_count("16") == truth(PrefixClass::Slash16),
    );
    let v6_56 = row_count("56 (IPv6)");
    report.row(
        "IPv6 /56 resolvers",
        format!("5 (scaled: {})", truth(PrefixClass::V6Slash56)),
        v6_56,
        v6_56 == truth(PrefixClass::V6Slash56),
    );
    let v6_128 = row_count("128 (IPv6)");
    report.row(
        "IPv6 /128 resolvers",
        format!("2 (scaled: {})", truth(PrefixClass::V6Slash128)),
        v6_128,
        v6_128 == truth(PrefixClass::V6Slash128),
    );
    // The paper's headline: almost half of non-Google v4 resolvers do not
    // truncate at all (the jammed /32s); overall most follow /24.
    let compliant = table.profiles.iter().filter(|p| p.rfc_compliant()).count();
    report.row(
        "majority follows RFC /24",
        "vast majority (Google-dominated)",
        format!("{compliant}/{} compliant", table.resolver_count()),
        compliant * 2 > table.resolver_count(),
    );

    let mut detail = String::from("Table 1 rows (label → resolvers):\n");
    for (label, count) in &table.rows {
        detail.push_str(&format!("  {label:<28} {count}\n"));
    }
    report.detail = detail;
    (
        Outcome {
            table,
            truth_counts,
        },
        report,
    )
}

/// Default-parameter entry point.
pub fn run_default() -> Report {
    run(&Config::default()).1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_recovers_planted_prefix_classes() {
        let (out, report) = run(&Config {
            scale: 20,
            ..Config::default()
        });
        assert!(report.all_hold(), "{report}");
        assert!(out.table.resolver_count() > 0);
        // Jammed resolvers detected exactly.
        let planted = out
            .truth_counts
            .iter()
            .find(|(c, _)| *c == PrefixClass::Slash32Jammed)
            .unwrap()
            .1;
        assert_eq!(out.table.jammed_count(), planted);
    }

    #[test]
    fn scan_hostname_encodes_address() {
        let apex = Name::from_ascii("probe.example").unwrap();
        let n = scan_hostname(&apex, "100.70.1.9".parse().unwrap());
        assert_eq!(n.to_string(), "x100-70-1-9.probe.example.");
    }
}
