//! A corpus of handcrafted malformed packets: each must fail with a clean,
//! specific error — never a panic, never a bogus success.

use dns_wire::{Message, WireError};

/// A minimal valid query for splicing: id 1, one A question for `a.b.`.
fn valid_query() -> Vec<u8> {
    let mut q = Message::query(
        1,
        dns_wire::Question::a(dns_wire::Name::from_ascii("a.b").unwrap()),
    );
    q.set_edns(4096);
    q.to_bytes().unwrap()
}

#[test]
fn corpus_of_truncations() {
    let bytes = valid_query();
    // Every strict prefix must fail cleanly (header alone is 12 bytes; an
    // empty message body with qdcount=1 is a count mismatch).
    for cut in 0..bytes.len() {
        let r = Message::from_bytes(&bytes[..cut]);
        assert!(r.is_err(), "prefix of {cut} bytes must not parse");
    }
    // The full message parses.
    assert!(Message::from_bytes(&bytes).is_ok());
}

#[test]
fn pointer_into_own_label() {
    // A name whose pointer targets the middle of a previous label: the
    // decoder will read whatever bytes are there as a length — it must
    // terminate with an error or a (bounded) name, never hang.
    let mut bytes = vec![
        0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, // header: qd=1
        7, b'e', b'x', b'a', b'm', b'p', b'l', b'e', 0, // "example."
    ];
    bytes.extend_from_slice(&[0, 1, 0, 1]); // qtype/qclass for q1
                                            // Splice a second "record-ish" name pointing into "example"'s bytes.
    bytes[5] = 2; // claim qdcount = 2
    bytes.extend_from_slice(&[0xC0, 14]); // pointer to offset 14 = 'x'
    bytes.extend_from_slice(&[0, 1, 0, 1]);
    // Either parses (if the garbage happens to form labels) or errors;
    // must not panic or loop.
    let _ = Message::from_bytes(&bytes);
}

#[test]
fn pointer_to_self_rejected() {
    let mut bytes = vec![0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0];
    let at = bytes.len();
    bytes.extend_from_slice(&[0xC0, at as u8]); // points at itself
    bytes.extend_from_slice(&[0, 1, 0, 1]);
    let err = Message::from_bytes(&bytes).unwrap_err();
    assert!(
        matches!(err, WireError::BadCompressionPointer { .. }),
        "{err:?}"
    );
}

#[test]
fn oversized_label_length() {
    // Label length 0x3F (63) with only 3 bytes following.
    let mut bytes = vec![0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0];
    bytes.extend_from_slice(&[0x3F, b'a', b'b', b'c']);
    let err = Message::from_bytes(&bytes).unwrap_err();
    assert!(
        matches!(
            err,
            WireError::Truncated { .. } | WireError::CountMismatch { .. }
        ),
        "{err:?}"
    );
}

#[test]
fn reserved_label_bits() {
    for reserved in [0x40u8, 0x80] {
        let mut bytes = vec![0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0];
        bytes.extend_from_slice(&[reserved | 5, 1, 2, 3, 4, 5]);
        bytes.extend_from_slice(&[0, 1, 0, 1]);
        let err = Message::from_bytes(&bytes).unwrap_err();
        assert!(
            matches!(err, WireError::ReservedLabelType(_)),
            "{reserved:#x}: {err:?}"
        );
    }
}

#[test]
fn rdlength_lies() {
    // An answer whose RDLENGTH says 2 but whose A rdata needs 4.
    let mut bytes = vec![0, 1, 0x80, 0, 0, 0, 0, 1, 0, 0, 0, 0]; // qr=1, an=1
    bytes.extend_from_slice(&[1, b'x', 0]); // owner "x."
    bytes.extend_from_slice(&[0, 1, 0, 1]); // TYPE A, IN
    bytes.extend_from_slice(&[0, 0, 0, 60]); // TTL
    bytes.extend_from_slice(&[0, 2, 9, 9]); // RDLENGTH 2, two bytes
    let err = Message::from_bytes(&bytes).unwrap_err();
    assert!(
        matches!(
            err,
            WireError::Truncated { .. } | WireError::CountMismatch { .. }
        ),
        "{err:?}"
    );
}

#[test]
fn rdlength_overruns_message() {
    let mut bytes = vec![0, 1, 0x80, 0, 0, 0, 0, 1, 0, 0, 0, 0];
    bytes.extend_from_slice(&[1, b'x', 0]);
    bytes.extend_from_slice(&[0, 1, 0, 1]);
    bytes.extend_from_slice(&[0, 0, 0, 60]);
    bytes.extend_from_slice(&[0xFF, 0xFF]); // RDLENGTH 65535, no body
    let err = Message::from_bytes(&bytes).unwrap_err();
    assert!(
        matches!(
            err,
            WireError::Truncated { .. } | WireError::CountMismatch { .. }
        ),
        "{err:?}"
    );
}

#[test]
fn ecs_option_with_family_zero() {
    // OPT with an ECS option body of family 0.
    let mut bytes = vec![0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1]; // ar=1
    bytes.push(0); // root owner
    bytes.extend_from_slice(&[0, 41]); // OPT
    bytes.extend_from_slice(&[16, 0]); // payload 4096
    bytes.extend_from_slice(&[0, 0, 0, 0]); // ext-rcode/version/flags
    bytes.extend_from_slice(&[0, 8]); // RDLENGTH 8
    bytes.extend_from_slice(&[0, 8, 0, 4, 0, 0, 0, 0]); // opt 8 len 4, family 0
    let err = Message::from_bytes(&bytes).unwrap_err();
    assert!(matches!(err, WireError::BadEcs(_)), "{err:?}");
}

#[test]
fn ecs_option_with_trailing_bits() {
    // family 1, source 17, address octets 192.0.64: bit 18 is set, which
    // RFC 7871 §6 forbids (bits beyond the source prefix MUST be zero).
    let mut bytes = vec![0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1]; // ar=1
    bytes.push(0); // root owner
    bytes.extend_from_slice(&[0, 41, 16, 0, 0, 0, 0, 0]); // OPT fixed fields
                                                          // RDATA: option code 8, option length 7, family 1, source 17, scope 0,
                                                          // three address octets (ceil(17/8) = 3).
    bytes.extend_from_slice(&[0, 11]); // RDLENGTH = 4 + 7
    bytes.extend_from_slice(&[0, 8, 0, 7]);
    bytes.extend_from_slice(&[0, 1, 17, 0, 192, 0, 64]);
    let err = Message::from_bytes(&bytes).unwrap_err();
    assert!(matches!(err, WireError::BadEcs(_)), "{err:?}");
}

#[test]
fn opt_in_answer_section_is_not_edns() {
    // An OPT-typed record in the ANSWER section parses as an unknown
    // record (only additional-section OPTs are EDNS).
    let mut bytes = vec![0, 1, 0x80, 0, 0, 0, 0, 1, 0, 0, 0, 0];
    bytes.push(0); // root owner
    bytes.extend_from_slice(&[0, 41]); // TYPE OPT
    bytes.extend_from_slice(&[0, 1]); // class
    bytes.extend_from_slice(&[0, 0, 0, 0]); // ttl
    bytes.extend_from_slice(&[0, 0]); // rdlength 0
    let msg = Message::from_bytes(&bytes).unwrap();
    assert!(msg.edns.is_none());
    assert_eq!(msg.answers.len(), 1);
}

#[test]
fn deeply_nested_pointers_bounded() {
    // 200 chained pointers: must hit the chase limit, not recurse forever.
    let mut bytes = vec![0u8; 12];
    bytes[1] = 1; // id
    bytes[5] = 1; // qdcount
    let base = bytes.len();
    bytes.push(0); // root name at `base`
    for i in 0..200usize {
        let target = if i == 0 { base } else { base + 1 + 2 * (i - 1) };
        bytes.push(0xC0 | ((target >> 8) as u8));
        bytes.push((target & 0xFF) as u8);
    }
    // Question name = the last pointer in the chain.
    let qname_at = bytes.len() - 2;
    let mut msg = bytes[..12].to_vec();
    msg.extend_from_slice(&bytes[12..qname_at]);
    msg.extend_from_slice(&[0xC0 | ((qname_at >> 8) as u8), (qname_at & 0xFF) as u8]);
    msg.extend_from_slice(&[0, 1, 0, 1]);
    // Parses-or-errors; the chase bound guarantees termination.
    let _ = Message::from_bytes(&msg);
}

#[test]
fn empty_input_and_single_bytes() {
    assert!(Message::from_bytes(&[]).is_err());
    for b in [0u8, 0x20, 0xC0, 0xFF] {
        assert!(Message::from_bytes(&[b]).is_err());
    }
}
