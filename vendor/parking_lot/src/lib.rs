//! Minimal, API-compatible stand-in for `parking_lot`.
//!
//! Wraps `std::sync::Mutex`/`RwLock` behind parking_lot's panic-free
//! guard-returning API (`lock()`/`read()`/`write()` return guards
//! directly). Poisoning is treated as a bug and unwrapped into the inner
//! guard — matching parking_lot's semantics, which has no poisoning.

#![warn(missing_docs)]

use std::sync;

/// A mutual-exclusion lock whose `lock` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A readers-writer lock whose accessors return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_and_rwlock_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());

        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}
