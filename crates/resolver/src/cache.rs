//! The ECS-aware resolver cache (RFC 7871 §7.3) and its deviant variants.
//!
//! Without ECS a cache entry is keyed by `(qname, qtype)` and serves every
//! client. With ECS, each entry additionally carries the *scope prefix* the
//! authoritative returned, and may only answer clients whose address falls
//! inside it — which is exactly why ECS blows up cache size (§7.1) and
//! depresses hit rate (§7.2).

use std::collections::HashMap;
use std::net::IpAddr;

use dns_wire::{EcsOption, IpPrefix, Name, Rcode, Record, RecordType};
use netsim::SimTime;

/// How the resolver obeys (or disobeys) scope restrictions — the §6.3
/// classification, as implementable behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheCompliance {
    /// Honor scope exactly as RFC 7871 prescribes, clamping the effective
    /// scope to the source prefix length (and never conveying more than the
    /// policy's maximum prefix upstream). The paper's 76 correct resolvers.
    Honor,
    /// Ignore scope entirely: any cached answer serves any client, as if
    /// the resolver did not understand ECS. The paper's 103 resolvers.
    IgnoreScope,
    /// Impose a maximum cacheable prefix length (the paper found 8
    /// resolvers capping at 22): both the effective scope and the client
    /// prefix used for matching are truncated to this length.
    CapPrefix(u8),
}

/// Statistics the §7 analyses read.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookup hits.
    pub hits: u64,
    /// Lookup misses.
    pub misses: u64,
    /// Inserts performed.
    pub inserts: u64,
    /// High-water mark of live entries (checked on each insert after
    /// purging expired entries).
    pub max_size: usize,
}

impl CacheStats {
    /// Hit rate in [0, 1]; 0 when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone)]
struct Entry {
    /// Clients inside this prefix may be served from the entry. A /0
    /// prefix (scope 0 or non-ECS answer) serves everyone.
    scope: IpPrefix,
    records: Vec<Record>,
    /// ECS option of the stored response (None for non-ECS answers).
    ecs: Option<EcsOption>,
    /// Response code (NoError for positive entries; NxDomain for RFC 2308
    /// negative entries).
    rcode: Rcode,
    expires: SimTime,
}

/// What a cache lookup returns on a hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedAnswer {
    /// The answer records, TTLs adjusted to the remaining lifetime (empty
    /// for negative entries).
    pub records: Vec<Record>,
    /// The stored ECS option, if the response carried one.
    pub ecs: Option<EcsOption>,
    /// The stored response code.
    pub rcode: Rcode,
}

/// The cache proper.
#[derive(Debug)]
pub struct EcsCache {
    entries: HashMap<(Name, RecordType), Vec<Entry>>,
    compliance: CacheCompliance,
    /// When false, responses with scope 0 are not cached at all — the
    /// misconfigured-resolver behaviour from §6.3's last bullet.
    pub cache_zero_scope: bool,
    stats: CacheStats,
    live: usize,
}

impl EcsCache {
    /// Creates an empty cache with the given compliance mode.
    pub fn new(compliance: CacheCompliance) -> Self {
        EcsCache {
            entries: HashMap::new(),
            compliance,
            cache_zero_scope: true,
            stats: CacheStats::default(),
            live: 0,
        }
    }

    /// The compliance mode.
    pub fn compliance(&self) -> CacheCompliance {
        self.compliance
    }

    /// Current statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of live (unexpired) entries after purging.
    pub fn len(&mut self, now: SimTime) -> usize {
        self.purge(now);
        self.live
    }

    /// True when empty.
    pub fn is_empty(&mut self, now: SimTime) -> bool {
        self.len(now) == 0
    }

    /// Looks up an answer for `client` (the address whose location the
    /// answer must fit). Returns the cached answer on a hit. Expired
    /// entries never match.
    pub fn lookup(
        &mut self,
        qname: &Name,
        qtype: RecordType,
        client: IpAddr,
        now: SimTime,
    ) -> Option<CachedAnswer> {
        let compliance = self.compliance;
        let found = self.entries.get(&(qname.clone(), qtype)).and_then(|list| {
            list.iter()
                .filter(|e| e.expires > now)
                .find(|e| match compliance {
                    CacheCompliance::IgnoreScope => true,
                    // A zero-length scope means "valid for every client",
                    // across address families.
                    CacheCompliance::Honor => {
                        e.scope.is_default_route() || e.scope.contains(client)
                    }
                    CacheCompliance::CapPrefix(cap) => {
                        let widened = e.scope.truncate(cap);
                        widened.is_default_route() || widened.contains(client)
                    }
                })
                .map(|e| CachedAnswer {
                    records: adjust_ttls(&e.records, e.expires, now),
                    ecs: e.ecs,
                    rcode: e.rcode,
                })
        });
        match found {
            Some(hit) => {
                self.stats.hits += 1;
                Some(hit)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts a positive response.
    ///
    /// * `ecs` is the ECS option from the response (None when the
    ///   authoritative ignored or lacked ECS) — its *scope* controls reuse;
    /// * `ttl` is the response TTL in seconds.
    ///
    /// Returns `true` if the response was actually cached.
    pub fn insert(
        &mut self,
        qname: Name,
        qtype: RecordType,
        records: Vec<Record>,
        ecs: Option<EcsOption>,
        ttl: u32,
        now: SimTime,
    ) -> bool {
        self.insert_with_rcode(qname, qtype, records, ecs, Rcode::NoError, ttl, now)
    }

    /// Inserts a response with an explicit rcode — used for RFC 2308
    /// negative caching (NXDOMAIN / NODATA entries with empty records).
    #[allow(clippy::too_many_arguments)]
    pub fn insert_with_rcode(
        &mut self,
        qname: Name,
        qtype: RecordType,
        records: Vec<Record>,
        ecs: Option<EcsOption>,
        rcode: Rcode,
        ttl: u32,
        now: SimTime,
    ) -> bool {
        let scope_prefix = match &ecs {
            None => any_prefix_v4(),
            Some(opt) => {
                let effective = match self.compliance {
                    // RFC: scope may not exceed source; clamp.
                    CacheCompliance::Honor => opt.scope_prefix_len().min(opt.source_prefix_len()),
                    // Scope is ignored at lookup; store it anyway (purely
                    // informational — every lookup matches).
                    CacheCompliance::IgnoreScope => {
                        opt.scope_prefix_len().min(opt.source_prefix_len())
                    }
                    CacheCompliance::CapPrefix(cap) => {
                        opt.scope_prefix_len().min(opt.source_prefix_len()).min(cap)
                    }
                };
                if effective == 0 && !self.cache_zero_scope {
                    return false;
                }
                opt.source_prefix().truncate(effective)
            }
        };
        self.purge(now);
        let list = self.entries.entry((qname, qtype)).or_default();
        // Replace an existing entry with the identical scope prefix.
        list.retain(|e| e.scope != scope_prefix || e.expires <= now);
        list.push(Entry {
            scope: scope_prefix,
            records,
            ecs,
            rcode,
            expires: now + netsim::SimDuration::from_secs(ttl as u64),
        });
        self.stats.inserts += 1;
        self.recount();
        self.stats.max_size = self.stats.max_size.max(self.live);
        true
    }

    /// Removes expired entries.
    pub fn purge(&mut self, now: SimTime) {
        self.entries.retain(|_, list| {
            list.retain(|e| e.expires > now);
            !list.is_empty()
        });
        self.recount();
    }

    /// Clears everything (stats survive).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.live = 0;
    }

    fn recount(&mut self) {
        self.live = self.entries.values().map(|l| l.len()).sum();
    }
}

/// Remaining-TTL adjustment for served answers.
fn adjust_ttls(records: &[Record], expires: SimTime, now: SimTime) -> Vec<Record> {
    let remaining = expires.since(now).as_secs() as u32;
    records
        .iter()
        .map(|r| {
            let mut r = r.clone();
            r.ttl = r.ttl.min(remaining);
            r
        })
        .collect()
}

/// The match-everything prefix used for non-ECS entries.
fn any_prefix_v4() -> IpPrefix {
    IpPrefix::v4(std::net::Ipv4Addr::UNSPECIFIED, 0).expect("0 <= 32")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_wire::Rdata;
    use std::net::Ipv4Addr;

    fn name(s: &str) -> Name {
        Name::from_ascii(s).unwrap()
    }

    fn rec(s: &str, ttl: u32) -> Vec<Record> {
        vec![Record::new(
            name(s),
            ttl,
            Rdata::A(Ipv4Addr::new(203, 0, 113, 1)),
        )]
    }

    fn ip(s: &str) -> IpAddr {
        s.parse().unwrap()
    }

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn scope_24_restricts_to_subnet() {
        let mut c = EcsCache::new(CacheCompliance::Honor);
        let ecs = EcsOption::from_v4(Ipv4Addr::new(192, 0, 2, 0), 24).with_scope(24);
        c.insert(
            name("a.example"),
            RecordType::A,
            rec("a.example", 60),
            Some(ecs),
            60,
            t(0),
        );
        // Same /24: hit.
        assert!(c
            .lookup(&name("a.example"), RecordType::A, ip("192.0.2.200"), t(1))
            .is_some());
        // Different /24: miss.
        assert!(c
            .lookup(&name("a.example"), RecordType::A, ip("192.0.3.1"), t(1))
            .is_none());
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn scope_16_serves_whole_slash16() {
        let mut c = EcsCache::new(CacheCompliance::Honor);
        let ecs = EcsOption::from_v4(Ipv4Addr::new(192, 0, 2, 0), 24).with_scope(16);
        c.insert(
            name("a.example"),
            RecordType::A,
            rec("a.example", 60),
            Some(ecs),
            60,
            t(0),
        );
        assert!(c
            .lookup(&name("a.example"), RecordType::A, ip("192.0.99.1"), t(1))
            .is_some());
        assert!(c
            .lookup(&name("a.example"), RecordType::A, ip("192.1.0.1"), t(1))
            .is_none());
    }

    #[test]
    fn scope_zero_serves_everyone() {
        let mut c = EcsCache::new(CacheCompliance::Honor);
        let ecs = EcsOption::from_v4(Ipv4Addr::new(192, 0, 2, 0), 24).with_scope(0);
        c.insert(
            name("a.example"),
            RecordType::A,
            rec("a.example", 60),
            Some(ecs),
            60,
            t(0),
        );
        assert!(c
            .lookup(&name("a.example"), RecordType::A, ip("8.8.8.8"), t(1))
            .is_some());
    }

    #[test]
    fn non_ecs_answers_serve_everyone() {
        let mut c = EcsCache::new(CacheCompliance::Honor);
        c.insert(
            name("a.example"),
            RecordType::A,
            rec("a.example", 60),
            None,
            60,
            t(0),
        );
        assert!(c
            .lookup(&name("a.example"), RecordType::A, ip("1.1.1.1"), t(1))
            .is_some());
    }

    #[test]
    fn scope_exceeding_source_is_clamped() {
        // RFC 7871: a response whose scope is longer than the query's source
        // must be treated as scope == source for caching.
        let mut c = EcsCache::new(CacheCompliance::Honor);
        let ecs = EcsOption::from_v4(Ipv4Addr::new(192, 0, 0, 0), 16).with_scope(24);
        c.insert(
            name("a.example"),
            RecordType::A,
            rec("a.example", 60),
            Some(ecs),
            60,
            t(0),
        );
        // Everything in the /16 hits, even outside what a /24 scope would allow.
        assert!(c
            .lookup(&name("a.example"), RecordType::A, ip("192.0.77.1"), t(1))
            .is_some());
    }

    #[test]
    fn multiple_scoped_entries_coexist() {
        let mut c = EcsCache::new(CacheCompliance::Honor);
        for third in [1u8, 2, 3] {
            let ecs = EcsOption::from_v4(Ipv4Addr::new(192, 0, third, 0), 24).with_scope(24);
            c.insert(
                name("a.example"),
                RecordType::A,
                rec("a.example", 60),
                Some(ecs),
                60,
                t(0),
            );
        }
        assert_eq!(c.len(t(1)), 3);
        assert!(c
            .lookup(&name("a.example"), RecordType::A, ip("192.0.2.9"), t(1))
            .is_some());
        assert!(c
            .lookup(&name("a.example"), RecordType::A, ip("192.0.9.9"), t(1))
            .is_none());
        assert_eq!(c.stats().max_size, 3);
    }

    #[test]
    fn same_scope_replaces() {
        let mut c = EcsCache::new(CacheCompliance::Honor);
        let ecs = EcsOption::from_v4(Ipv4Addr::new(192, 0, 2, 0), 24).with_scope(24);
        c.insert(
            name("a.example"),
            RecordType::A,
            rec("a.example", 60),
            Some(ecs),
            60,
            t(0),
        );
        c.insert(
            name("a.example"),
            RecordType::A,
            rec("a.example", 60),
            Some(ecs),
            60,
            t(5),
        );
        assert_eq!(c.len(t(6)), 1);
    }

    #[test]
    fn entries_expire_at_ttl() {
        let mut c = EcsCache::new(CacheCompliance::Honor);
        let ecs = EcsOption::from_v4(Ipv4Addr::new(192, 0, 2, 0), 24).with_scope(24);
        c.insert(
            name("a.example"),
            RecordType::A,
            rec("a.example", 20),
            Some(ecs),
            20,
            t(0),
        );
        assert!(c
            .lookup(&name("a.example"), RecordType::A, ip("192.0.2.1"), t(19))
            .is_some());
        assert!(c
            .lookup(&name("a.example"), RecordType::A, ip("192.0.2.1"), t(20))
            .is_none());
        assert_eq!(c.len(t(20)), 0);
    }

    #[test]
    fn served_ttl_decreases() {
        let mut c = EcsCache::new(CacheCompliance::Honor);
        let ecs = EcsOption::from_v4(Ipv4Addr::new(192, 0, 2, 0), 24).with_scope(24);
        c.insert(
            name("a.example"),
            RecordType::A,
            rec("a.example", 60),
            Some(ecs),
            60,
            t(0),
        );
        let answer = c
            .lookup(&name("a.example"), RecordType::A, ip("192.0.2.1"), t(45))
            .unwrap();
        assert_eq!(answer.records[0].ttl, 15);
        assert_eq!(answer.rcode, Rcode::NoError);
    }

    #[test]
    fn ignore_scope_serves_any_client() {
        let mut c = EcsCache::new(CacheCompliance::IgnoreScope);
        let ecs = EcsOption::from_v4(Ipv4Addr::new(192, 0, 2, 0), 24).with_scope(24);
        c.insert(
            name("a.example"),
            RecordType::A,
            rec("a.example", 60),
            Some(ecs),
            60,
            t(0),
        );
        // A client on the other side of the world still hits.
        assert!(c
            .lookup(&name("a.example"), RecordType::A, ip("8.8.8.8"), t(1))
            .is_some());
    }

    #[test]
    fn cap_prefix_widens_match() {
        let mut c = EcsCache::new(CacheCompliance::CapPrefix(22));
        let ecs = EcsOption::from_v4(Ipv4Addr::new(192, 0, 2, 0), 24).with_scope(24);
        c.insert(
            name("a.example"),
            RecordType::A,
            rec("a.example", 60),
            Some(ecs),
            60,
            t(0),
        );
        // 192.0.3.x is outside the /24 but inside the /22 (192.0.0.0/22).
        assert!(c
            .lookup(&name("a.example"), RecordType::A, ip("192.0.3.1"), t(1))
            .is_some());
        // 192.0.4.x is outside the /22.
        assert!(c
            .lookup(&name("a.example"), RecordType::A, ip("192.0.4.1"), t(1))
            .is_none());
    }

    #[test]
    fn zero_scope_not_cached_when_disabled() {
        let mut c = EcsCache::new(CacheCompliance::Honor);
        c.cache_zero_scope = false;
        let ecs = EcsOption::from_v4(Ipv4Addr::new(192, 0, 2, 0), 24).with_scope(0);
        assert!(!c.insert(
            name("a.example"),
            RecordType::A,
            rec("a.example", 60),
            Some(ecs),
            60,
            t(0)
        ));
        assert!(c
            .lookup(&name("a.example"), RecordType::A, ip("192.0.2.1"), t(1))
            .is_none());
        // Non-zero scope still caches.
        let ecs = EcsOption::from_v4(Ipv4Addr::new(192, 0, 2, 0), 24).with_scope(24);
        assert!(c.insert(
            name("a.example"),
            RecordType::A,
            rec("a.example", 60),
            Some(ecs),
            60,
            t(0)
        ));
    }

    #[test]
    fn stats_hit_rate() {
        let mut c = EcsCache::new(CacheCompliance::Honor);
        assert_eq!(c.stats().hit_rate(), 0.0);
        let ecs = EcsOption::from_v4(Ipv4Addr::new(192, 0, 2, 0), 24).with_scope(0);
        c.insert(
            name("a.example"),
            RecordType::A,
            rec("a.example", 60),
            Some(ecs),
            60,
            t(0),
        );
        c.lookup(&name("a.example"), RecordType::A, ip("1.1.1.1"), t(1));
        c.lookup(&name("b.example"), RecordType::A, ip("1.1.1.1"), t(1));
        assert!((c.stats().hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn qtype_distinguishes_entries() {
        let mut c = EcsCache::new(CacheCompliance::Honor);
        c.insert(
            name("a.example"),
            RecordType::A,
            rec("a.example", 60),
            None,
            60,
            t(0),
        );
        assert!(c
            .lookup(&name("a.example"), RecordType::Aaaa, ip("1.1.1.1"), t(1))
            .is_none());
    }

    #[test]
    fn clear_resets_entries_not_stats() {
        let mut c = EcsCache::new(CacheCompliance::Honor);
        c.insert(
            name("a.example"),
            RecordType::A,
            rec("a.example", 60),
            None,
            60,
            t(0),
        );
        c.lookup(&name("a.example"), RecordType::A, ip("1.1.1.1"), t(1));
        c.clear();
        assert_eq!(c.len(t(1)), 0);
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn v6_scopes_work() {
        let mut c = EcsCache::new(CacheCompliance::Honor);
        let ecs = EcsOption::from_v6("2001:db8:1:2::".parse().unwrap(), 56).with_scope(48);
        c.insert(
            name("a.example"),
            RecordType::Aaaa,
            rec("a.example", 60),
            Some(ecs),
            60,
            t(0),
        );
        assert!(c
            .lookup(
                &name("a.example"),
                RecordType::Aaaa,
                ip("2001:db8:1:ffff::1"),
                t(1)
            )
            .is_some());
        assert!(c
            .lookup(
                &name("a.example"),
                RecordType::Aaaa,
                ip("2001:db8:2::1"),
                t(1)
            )
            .is_none());
    }

    #[test]
    fn max_size_high_water_mark() {
        let mut c = EcsCache::new(CacheCompliance::Honor);
        for third in 0..10u8 {
            let ecs = EcsOption::from_v4(Ipv4Addr::new(10, 0, third, 0), 24).with_scope(24);
            // Insert at staggered times with TTL 20 so earlier entries
            // expire as later ones arrive.
            c.insert(
                name("a.example"),
                RecordType::A,
                rec("a.example", 20),
                Some(ecs),
                20,
                t(third as u64 * 10),
            );
        }
        // At most two entries alive at once (20s TTL, 10s spacing).
        assert_eq!(c.stats().max_size, 2);
        assert_eq!(c.stats().inserts, 10);
    }
}

#[cfg(test)]
mod negative_cache_tests {
    use super::*;
    use netsim::SimTime;
    use std::net::Ipv4Addr;

    fn name(s: &str) -> Name {
        Name::from_ascii(s).unwrap()
    }

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn negative_entries_roundtrip() {
        let mut c = EcsCache::new(CacheCompliance::Honor);
        c.insert_with_rcode(
            name("gone.example"),
            RecordType::A,
            Vec::new(),
            None,
            Rcode::NxDomain,
            60,
            t(0),
        );
        let hit = c
            .lookup(
                &name("gone.example"),
                RecordType::A,
                "1.2.3.4".parse().unwrap(),
                t(1),
            )
            .unwrap();
        assert_eq!(hit.rcode, Rcode::NxDomain);
        assert!(hit.records.is_empty());
        // Expires like any entry.
        assert!(c
            .lookup(
                &name("gone.example"),
                RecordType::A,
                "1.2.3.4".parse().unwrap(),
                t(61)
            )
            .is_none());
    }

    #[test]
    fn scoped_negative_entries_respect_scope() {
        let mut c = EcsCache::new(CacheCompliance::Honor);
        let ecs = EcsOption::from_v4(Ipv4Addr::new(192, 0, 2, 0), 24).with_scope(24);
        c.insert_with_rcode(
            name("gone.example"),
            RecordType::A,
            Vec::new(),
            Some(ecs),
            Rcode::NxDomain,
            60,
            t(0),
        );
        assert!(c
            .lookup(
                &name("gone.example"),
                RecordType::A,
                "192.0.2.9".parse().unwrap(),
                t(1)
            )
            .is_some());
        assert!(c
            .lookup(
                &name("gone.example"),
                RecordType::A,
                "192.0.3.9".parse().unwrap(),
                t(1)
            )
            .is_none());
    }
}
