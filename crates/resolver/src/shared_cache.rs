//! A sharded, thread-safe ECS cache shared by multiple resolver engines.
//!
//! The multi-worker serving path (`dnsd`) runs one [`crate::Resolver`] per
//! worker thread, but cache state must be global: a record inserted by
//! worker 0 has to serve worker 3's next client, or the effective hit rate
//! divides by the worker count. [`SharedEcsCache`] wraps `N` independent
//! [`EcsCache`] shards, each behind its own [`parking_lot::Mutex`], and
//! routes every operation to the shard owning the qname — so two workers
//! only contend when they touch the *same* name's shard at the same
//! instant, not on every query.
//!
//! Sharding is by qname hash alone (not qtype): RFC 7871 scope matching,
//! per-name entry caps, and stale retention all operate on one name's
//! entry list, which therefore must never straddle shards. Global
//! entry/byte bounds are split evenly across shards, turning the global
//! LRU into a per-shard LRU — the standard sharded-cache approximation
//! (each shard evicts its own least-recently-used entries, so a skewed
//! shard may evict slightly early while the global bound still holds).
//!
//! Telemetry: every shard keeps its own `cache_*` registry. [`snapshot`]
//! merges them into one [`obs::MetricsSnapshot`]; fold it exactly once per
//! cache (not once per worker) or counters double-count —
//! [`crate::Resolver::metrics_snapshot`] therefore skips the cache
//! registry when the engine runs against a shared cache.
//!
//! [`snapshot`]: SharedEcsCache::snapshot

use std::hash::{Hash, Hasher};
use std::net::IpAddr;

use dns_wire::{EcsOption, Name, Rcode, Record, RecordType};
use netsim::SimTime;
use obs::LockMonitor;
use parking_lot::{Mutex, MutexGuard};
use rustc_hash::FxHasher;

use crate::cache::{CacheCompliance, CacheLimits, CacheStats, CachedAnswer, EcsCache};
use crate::config::ResolverConfig;

/// `N` [`EcsCache`] shards behind per-shard locks, routed by qname hash.
///
/// All shards share one compliance mode and one limits profile; the
/// constructors take care of splitting global bounds. The API mirrors the
/// single-threaded [`EcsCache`] operations the engine uses, taking `&self`
/// so the cache can sit in an [`std::sync::Arc`] across worker threads.
#[derive(Debug)]
pub struct SharedEcsCache {
    shards: Vec<Mutex<EcsCache>>,
    /// Lock-contention monitor for the hot-path (lookup/insert) shard
    /// acquisitions. `None` (the default) costs nothing; enabled, an
    /// uncontended acquisition costs one counter increment and only the
    /// contended path reads the wall clock.
    contention: Option<LockMonitor>,
}

/// Splits a global bound evenly across `shards`, rounding up so the sum
/// never undercuts the requested bound by more than `shards - 1`.
fn split_bound(bound: Option<usize>, shards: usize) -> Option<usize> {
    bound.map(|b| b.div_ceil(shards).max(1))
}

impl SharedEcsCache {
    /// Creates an unbounded shared cache with `shards` shards (clamped to
    /// at least 1).
    pub fn new(compliance: CacheCompliance, shards: usize) -> Self {
        Self::with_limits(compliance, CacheLimits::default(), true, shards)
    }

    /// Creates a shared cache with explicit limits. `max_entries` and
    /// `max_bytes` are global bounds, split evenly across shards;
    /// `per_name_cap` and `stale_ttl` apply per name and carry over
    /// unchanged (a name lives in exactly one shard).
    pub fn with_limits(
        compliance: CacheCompliance,
        limits: CacheLimits,
        cache_zero_scope: bool,
        shards: usize,
    ) -> Self {
        let shards = shards.max(1);
        let per_shard = CacheLimits {
            max_entries: split_bound(limits.max_entries, shards),
            max_bytes: split_bound(limits.max_bytes, shards),
            per_name_cap: limits.per_name_cap,
            stale_ttl: limits.stale_ttl,
        };
        SharedEcsCache {
            shards: (0..shards)
                .map(|_| {
                    let mut c = EcsCache::with_limits(compliance, per_shard.clone());
                    c.cache_zero_scope = cache_zero_scope;
                    Mutex::new(c)
                })
                .collect(),
            contention: None,
        }
    }

    /// Turns on lock-contention telemetry: hot-path shard acquisitions
    /// record into `lock_cache_shard_*` series of `reg`. Call before the
    /// cache goes behind an `Arc`.
    pub fn enable_contention(&mut self, reg: &obs::MetricsRegistry) {
        self.contention = Some(LockMonitor::new(reg, "lock_cache_shard"));
    }

    /// Acquires shard `idx`, measuring the wait when contention telemetry
    /// is on: `try_lock` first (uncontended fast path), fall back to a
    /// timed blocking acquisition.
    fn lock_shard(&self, idx: usize) -> MutexGuard<'_, EcsCache> {
        let Some(mon) = &self.contention else {
            return self.shards[idx].lock();
        };
        match self.shards[idx].try_lock() {
            Some(guard) => {
                mon.record_uncontended();
                guard
            }
            None => {
                let start = std::time::Instant::now();
                let guard = self.shards[idx].lock();
                mon.record_contended(start.elapsed().as_micros() as u64);
                guard
            }
        }
    }

    /// Creates a shared cache configured exactly as [`crate::Resolver::new`]
    /// would configure its private cache for `config` — so a worker pool
    /// sharing this cache caches the same things a single engine would.
    pub fn for_config(config: &ResolverConfig, shards: usize) -> Self {
        Self::with_limits(
            config.compliance,
            CacheLimits {
                max_entries: config.overload.max_cache_entries,
                max_bytes: config.overload.max_cache_bytes,
                per_name_cap: config.overload.per_name_cap,
                stale_ttl: config.overload.serve_stale_ttl,
            },
            config.cache_zero_scope,
            shards,
        )
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Index of the shard owning `qname`.
    fn shard_index(&self, qname: &Name) -> usize {
        let mut h = FxHasher::default();
        qname.hash(&mut h);
        (h.finish() as usize) % self.shards.len()
    }

    /// [`EcsCache::lookup`] on the owning shard.
    pub fn lookup(
        &self,
        qname: &Name,
        qtype: RecordType,
        client: IpAddr,
        now: SimTime,
    ) -> Option<CachedAnswer> {
        self.lock_shard(self.shard_index(qname))
            .lookup(qname, qtype, client, now)
    }

    /// [`EcsCache::lookup_stale`] on the owning shard.
    pub fn lookup_stale(
        &self,
        qname: &Name,
        qtype: RecordType,
        client: IpAddr,
        now: SimTime,
        serve_ttl: u32,
    ) -> Option<CachedAnswer> {
        self.lock_shard(self.shard_index(qname))
            .lookup_stale(qname, qtype, client, now, serve_ttl)
    }

    /// [`EcsCache::insert`] on the owning shard.
    pub fn insert(
        &self,
        qname: Name,
        qtype: RecordType,
        records: Vec<Record>,
        ecs: Option<EcsOption>,
        ttl: u32,
        now: SimTime,
    ) -> bool {
        let idx = self.shard_index(&qname);
        self.lock_shard(idx)
            .insert(qname, qtype, records, ecs, ttl, now)
    }

    /// [`EcsCache::insert_with_rcode`] on the owning shard.
    #[allow(clippy::too_many_arguments)]
    pub fn insert_with_rcode(
        &self,
        qname: Name,
        qtype: RecordType,
        records: Vec<Record>,
        ecs: Option<EcsOption>,
        rcode: Rcode,
        ttl: u32,
        now: SimTime,
    ) -> bool {
        let idx = self.shard_index(&qname);
        self.lock_shard(idx)
            .insert_with_rcode(qname, qtype, records, ecs, rcode, ttl, now)
    }

    /// Live entries across all shards at `now`.
    pub fn len(&self, now: SimTime) -> usize {
        self.shards.iter().map(|s| s.lock().len(now)).sum()
    }

    /// True when every shard is empty at `now`.
    pub fn is_empty(&self, now: SimTime) -> bool {
        self.len(now) == 0
    }

    /// Approximate resident bytes across all shards at `now`.
    pub fn approx_bytes(&self, now: SimTime) -> usize {
        self.shards.iter().map(|s| s.lock().approx_bytes(now)).sum()
    }

    /// Statistics summed across shards. `max_size` is the sum of per-shard
    /// high-water marks — an upper bound on the true global peak, since the
    /// shards need not have peaked at the same instant.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for shard in &self.shards {
            let s = shard.lock().stats();
            total.hits = total.hits.saturating_add(s.hits);
            total.misses = total.misses.saturating_add(s.misses);
            total.inserts = total.inserts.saturating_add(s.inserts);
            total.max_size = total.max_size.saturating_add(s.max_size);
            total.evictions = total.evictions.saturating_add(s.evictions);
            total.per_name_evictions = total
                .per_name_evictions
                .saturating_add(s.per_name_evictions);
            total.stale_hits = total.stale_hits.saturating_add(s.stale_hits);
        }
        total
    }

    /// One merged snapshot of every shard's `cache_*` registry, plus the
    /// shard-imbalance gauges (`cache_shard_hits_max`/`_min`,
    /// `cache_shard_entries_max`/`_min`, `cache_shards`): a wide max/min
    /// spread means the qname hash is parking the hot names on a few
    /// shards and their locks become the serialization point. Fold this
    /// exactly once per cache when aggregating worker telemetry.
    pub fn snapshot(&self) -> obs::MetricsSnapshot {
        let mut merged = obs::MetricsSnapshot::default();
        let mut hits: Vec<u64> = Vec::with_capacity(self.shards.len());
        let mut entries: Vec<u64> = Vec::with_capacity(self.shards.len());
        for shard in &self.shards {
            let guard = shard.lock();
            merged.merge(&guard.registry().snapshot());
            let s = guard.stats();
            hits.push(s.hits);
            entries.push(s.max_size as u64);
        }
        let spread = obs::MetricsRegistry::new();
        spread.gauge("cache_shards").set(self.shards.len() as u64);
        spread
            .gauge("cache_shard_hits_max")
            .set(hits.iter().copied().max().unwrap_or(0));
        spread
            .gauge("cache_shard_hits_min")
            .set(hits.iter().copied().min().unwrap_or(0));
        spread
            .gauge("cache_shard_entries_max")
            .set(entries.iter().copied().max().unwrap_or(0));
        spread
            .gauge("cache_shard_entries_min")
            .set(entries.iter().copied().min().unwrap_or(0));
        merged.merge(&spread.snapshot());
        merged
    }

    /// Drops entries past their retention horizon in every shard.
    pub fn purge(&self, now: SimTime) {
        for shard in &self.shards {
            shard.lock().purge(now);
        }
    }

    /// Clears every shard (stats survive, as in [`EcsCache::clear`]).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_wire::Rdata;
    use std::net::Ipv4Addr;
    use std::sync::Arc;

    fn name(s: &str) -> Name {
        Name::from_ascii(s).unwrap()
    }

    fn a_record(n: &str, ttl: u32, addr: [u8; 4]) -> Record {
        Record::new(
            name(n),
            ttl,
            Rdata::A(Ipv4Addr::new(addr[0], addr[1], addr[2], addr[3])),
        )
    }

    const CLIENT: IpAddr = IpAddr::V4(Ipv4Addr::new(100, 64, 1, 1));

    #[test]
    fn insert_on_one_handle_serves_lookup_on_another() {
        let cache = Arc::new(SharedEcsCache::new(CacheCompliance::Honor, 8));
        let t0 = SimTime::from_secs(0);
        cache.insert(
            name("www.example.com"),
            RecordType::A,
            vec![a_record("www.example.com", 60, [192, 0, 2, 1])],
            None,
            60,
            t0,
        );
        let other = Arc::clone(&cache);
        let hit = other.lookup(&name("www.example.com"), RecordType::A, CLIENT, t0);
        assert!(hit.is_some());
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().inserts, 1);
    }

    #[test]
    fn names_distribute_across_shards() {
        let cache = SharedEcsCache::new(CacheCompliance::Honor, 4);
        let t0 = SimTime::from_secs(0);
        for i in 0..64 {
            let n = format!("h{i}.example.com");
            cache.insert(
                name(&n),
                RecordType::A,
                vec![a_record(&n, 60, [192, 0, 2, i as u8])],
                None,
                60,
                t0,
            );
        }
        assert_eq!(cache.len(t0), 64);
        // Every shard should have picked up some of the 64 names; a
        // degenerate hash would park them all in one shard.
        let occupied = cache
            .shards
            .iter()
            .filter(|s| !s.lock().is_empty(t0))
            .count();
        assert!(occupied >= 2, "only {occupied} of 4 shards occupied");
    }

    #[test]
    fn same_name_stays_in_one_shard_for_scope_matching() {
        // Two subnets' entries for one qname must land in the same shard
        // so RFC 7871 scope matching sees both.
        let cache = SharedEcsCache::new(CacheCompliance::Honor, 8);
        let t0 = SimTime::from_secs(0);
        for third in [1u8, 2] {
            let ecs =
                EcsOption::new(IpAddr::V4(Ipv4Addr::new(100, 64, third, 0)), 24).with_scope(24);
            cache.insert(
                name("split.example.com"),
                RecordType::A,
                vec![a_record("split.example.com", 60, [192, 0, 2, third])],
                Some(ecs),
                60,
                t0,
            );
        }
        let with_entries = cache
            .shards
            .iter()
            .filter(|s| !s.lock().is_empty(t0))
            .count();
        assert_eq!(with_entries, 1, "one qname must occupy exactly one shard");
        // Each subnet is served its own scoped entry.
        let hit1 = cache
            .lookup(
                &name("split.example.com"),
                RecordType::A,
                IpAddr::V4(Ipv4Addr::new(100, 64, 1, 9)),
                t0,
            )
            .expect("subnet 1 hit");
        let hit2 = cache
            .lookup(
                &name("split.example.com"),
                RecordType::A,
                IpAddr::V4(Ipv4Addr::new(100, 64, 2, 9)),
                t0,
            )
            .expect("subnet 2 hit");
        assert_ne!(hit1.records, hit2.records);
    }

    #[test]
    fn global_bounds_split_across_shards() {
        let cache = SharedEcsCache::with_limits(
            CacheCompliance::Honor,
            CacheLimits {
                max_entries: Some(16),
                ..CacheLimits::default()
            },
            true,
            4,
        );
        for s in &cache.shards {
            assert_eq!(s.lock().limits().max_entries, Some(4));
        }
        // Degenerate splits still leave every shard able to hold an entry.
        let tiny = SharedEcsCache::with_limits(
            CacheCompliance::Honor,
            CacheLimits {
                max_entries: Some(2),
                ..CacheLimits::default()
            },
            true,
            8,
        );
        for s in &tiny.shards {
            assert_eq!(s.lock().limits().max_entries, Some(1));
        }
    }

    #[test]
    fn stats_and_snapshot_aggregate_all_shards() {
        let cache = SharedEcsCache::new(CacheCompliance::Honor, 3);
        let t0 = SimTime::from_secs(0);
        for i in 0..9 {
            let n = format!("m{i}.example.com");
            cache.insert(
                name(&n),
                RecordType::A,
                vec![a_record(&n, 60, [192, 0, 2, i as u8])],
                None,
                60,
                t0,
            );
            cache.lookup(&name(&n), RecordType::A, CLIENT, t0);
        }
        cache.lookup(&name("absent.example.com"), RecordType::A, CLIENT, t0);
        let stats = cache.stats();
        assert_eq!(stats.inserts, 9);
        assert_eq!(stats.hits, 9);
        assert_eq!(stats.misses, 1);
        let snap = cache.snapshot();
        assert_eq!(snap.counter("cache_inserts_total"), Some(9));
        assert_eq!(snap.counter("cache_hits_total"), Some(9));
        assert_eq!(snap.counter("cache_misses_total"), Some(1));
    }

    #[test]
    fn contention_monitor_counts_every_hot_path_acquisition() {
        let reg = obs::MetricsRegistry::new();
        let mut cache = SharedEcsCache::new(CacheCompliance::Honor, 4);
        cache.enable_contention(&reg);
        let t0 = SimTime::from_secs(0);
        cache.insert(
            name("mon.example.com"),
            RecordType::A,
            vec![a_record("mon.example.com", 60, [192, 0, 2, 1])],
            None,
            60,
            t0,
        );
        cache.lookup(&name("mon.example.com"), RecordType::A, CLIENT, t0);
        cache.lookup_stale(&name("mon.example.com"), RecordType::A, CLIENT, t0, 30);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("lock_cache_shard_acquisitions_total"), Some(3));
        // Single-threaded: nothing can contend.
        assert_eq!(snap.counter("lock_cache_shard_contended_total"), Some(0));
    }

    #[test]
    fn snapshot_exposes_shard_imbalance_gauges() {
        let cache = SharedEcsCache::new(CacheCompliance::Honor, 4);
        let t0 = SimTime::from_secs(0);
        for i in 0..16 {
            let n = format!("g{i}.example.com");
            cache.insert(
                name(&n),
                RecordType::A,
                vec![a_record(&n, 60, [192, 0, 2, i as u8])],
                None,
                60,
                t0,
            );
            cache.lookup(&name(&n), RecordType::A, CLIENT, t0);
        }
        let snap = cache.snapshot();
        assert_eq!(snap.gauge("cache_shards"), Some(4));
        let hits_max = snap.gauge("cache_shard_hits_max").unwrap();
        let hits_min = snap.gauge("cache_shard_hits_min").unwrap();
        assert!(hits_max >= hits_min);
        assert!(hits_max >= 1, "some shard served a hit");
        assert!(snap.gauge("cache_shard_entries_max").unwrap() >= 1);
    }

    #[test]
    fn concurrent_workers_share_one_cache() {
        let cache = Arc::new(SharedEcsCache::new(CacheCompliance::Honor, 8));
        let t0 = SimTime::from_secs(0);
        std::thread::scope(|scope| {
            for w in 0..4u8 {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    for i in 0..50u8 {
                        let n = format!("c{}.example.com", i % 25);
                        cache.insert(
                            name(&n),
                            RecordType::A,
                            vec![a_record(&n, 60, [192, 0, w, i])],
                            None,
                            60,
                            t0,
                        );
                        cache.lookup(&name(&n), RecordType::A, CLIENT, t0);
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.inserts, 200, "every insert lands");
        assert_eq!(stats.hits + stats.misses, 200, "every lookup counted");
        assert_eq!(cache.len(t0), 25, "25 distinct names live");
    }
}
