//! Stage-profiler properties:
//!
//! * merging N per-worker profile snapshots of the same recorded spans is
//!   order- and sharding-invariant (the guarantee fold-after-join rests
//!   on: a profile folded from 8 workers equals the same spans recorded
//!   on 1);
//! * the folded-stack export is deterministic under a seeded workload —
//!   same ops, any sharding, byte-identical `stacks.folded`;
//! * self-times reconcile: `to_metrics` totals equal the snapshot's own
//!   accounting regardless of how the work was split.

use obs::{ProfileSnapshot, StageProfiler};
use proptest::collection::vec;
use proptest::prelude::*;

/// Stage vocabulary for generated workloads (interned names must be
/// `&'static str`, so ops index into this table).
const STAGES: [&str; 6] = ["recv", "decode", "resolve", "cache", "upstream", "send"];

/// One recorded call path: up to three stage levels plus a duration.
/// Levels index STAGES; `depth` picks how many apply.
type Op = (u8, u8, u8, u8, u32);

fn path_of(op: &Op) -> Vec<&'static str> {
    let (a, b, c, depth, _) = *op;
    let full = [
        STAGES[a as usize % STAGES.len()],
        STAGES[b as usize % STAGES.len()],
        STAGES[c as usize % STAGES.len()],
    ];
    full[..(1 + depth as usize % 3)].to_vec()
}

/// Replays `ops` into `shards` profilers (op `i` to shard `i % shards`)
/// and folds the snapshots in the given order.
fn record_sharded(
    ops: &[Op],
    shards: usize,
    fold_order: impl Iterator<Item = usize>,
) -> ProfileSnapshot {
    let mut profs: Vec<StageProfiler> = (0..shards).map(|_| StageProfiler::new()).collect();
    for (i, op) in ops.iter().enumerate() {
        profs[i % shards].record(&path_of(op), op.4 as u64);
    }
    let snaps: Vec<ProfileSnapshot> = profs.into_iter().map(|p| p.snapshot()).collect();
    let mut merged = ProfileSnapshot::default();
    for idx in fold_order {
        merged.merge(&snaps[idx]);
    }
    merged
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The same spans, recorded across 1/2/3/8 workers and folded in any
    /// order, always merge to the same profile — and therefore the same
    /// folded stacks and the same totals.
    #[test]
    fn merge_is_order_and_parallelism_invariant(
        ops in vec((any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>(), 0u32..1_000_000), 1..120),
    ) {
        let sequential = record_sharded(&ops, 1, std::iter::once(0));
        for shards in [2usize, 3, 8] {
            let forward = record_sharded(&ops, shards, 0..shards);
            let backward = record_sharded(&ops, shards, (0..shards).rev());
            prop_assert_eq!(forward.to_folded(), sequential.to_folded(), "shards={} forward", shards);
            prop_assert_eq!(backward.to_folded(), sequential.to_folded(), "shards={} backward", shards);
            prop_assert_eq!(forward.total_self_us(), sequential.total_self_us());
            prop_assert_eq!(forward.total_calls(), sequential.total_calls());
        }
    }

    /// Folded output is a deterministic function of the recorded spans:
    /// two independent replays of the same seeded workload are
    /// byte-identical, and every line parses back as `path space value`
    /// with values summing to the snapshot's total self time.
    #[test]
    fn folded_export_is_deterministic_and_well_formed(
        ops in vec((any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>(), 0u32..1_000_000), 1..120),
        shards in 1usize..6,
    ) {
        let a = record_sharded(&ops, shards, 0..shards);
        let b = record_sharded(&ops, shards, 0..shards);
        prop_assert_eq!(a.to_folded(), b.to_folded(), "replay must be byte-identical");

        let folded = a.to_folded();
        let mut sum = 0u64;
        for line in folded.lines() {
            let split = line.rsplit_once(' ');
            prop_assert!(split.is_some(), "bad folded line {:?}", line);
            let (path, value) = split.expect("checked");
            prop_assert!(!path.is_empty() && !path.ends_with(';'), "bad path {:?}", path);
            let parsed = value.parse::<u64>();
            prop_assert!(parsed.is_ok(), "bad value in {:?}", line);
            sum += parsed.expect("checked");
        }
        prop_assert_eq!(sum, a.total_self_us(), "folded self-times must sum to the total");
    }

    /// The metrics export reconciles with the profile by construction:
    /// `prof_self_us_total` and `prof_spans_total` equal the snapshot's
    /// own totals however the recording was sharded.
    #[test]
    fn to_metrics_reconciles_with_totals(
        ops in vec((any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>(), 0u32..1_000_000), 1..80),
        shards in 1usize..6,
    ) {
        let profile = record_sharded(&ops, shards, 0..shards);
        let reg = obs::MetricsRegistry::new();
        profile.to_metrics(&reg);
        let snap = reg.snapshot();
        prop_assert_eq!(snap.counter("prof_self_us_total"), Some(profile.total_self_us()));
        prop_assert_eq!(snap.counter("prof_spans_total"), Some(profile.total_calls()));
        prop_assert_eq!(snap.counter("prof_dropped_paths_total"), Some(profile.dropped));
    }
}
