//! Extension experiment (§8.3 discussion / §9 future work): per-zone
//! adaptive source prefix lengths.
//!
//! The paper observes that blindly sending /24 everywhere leaks more client
//! bits than some CDNs need (CDN-2 maps at /21), while tracking the needed
//! length per CDN "can get complicated very quickly". This experiment
//! implements that tracking ([`resolver::ResolverConfig::adaptive_prefix`])
//! and quantifies the trade: bits leaked per query and mapping quality,
//! with adaptation on and off, against both CDN models.

use std::collections::BTreeMap;
use std::net::{IpAddr, Ipv4Addr};

use analysis::{ConnectTimeSample, MappingQuality};
use authoritative::{AuthServer, CdnBehavior, EcsHandling, GeoDb, ScopePolicy, Zone};
use dns_wire::{IpPrefix, Message, Name, Question};
use netsim::geo::CITIES;
use netsim::{GeoPoint, LatencyModel, SimTime};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use resolver::{Resolver, ResolverConfig};
use topology::asn::jitter_position;

use crate::experiments::fig67::CdnModel;
use crate::experiments::table2::world_footprint;
use crate::report::Report;

/// Parameters.
#[derive(Debug, Clone)]
pub struct Config {
    /// Probes (client subnets) per CDN.
    pub probes: usize,
    /// Queries per probe (adaptation needs repeat traffic).
    pub queries_per_probe: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            probes: 300,
            queries_per_probe: 3,
            seed: 0,
        }
    }
}

/// Per-condition outcome.
#[derive(Debug, Clone)]
pub struct Condition {
    /// Mean source prefix bits conveyed per query.
    pub mean_bits_leaked: f64,
    /// Mapping quality over all answers.
    pub quality: MappingQuality,
}

/// Outcome: (cdn, adaptive?) → condition.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Keyed by (cdn label, adaptive flag).
    pub conditions: BTreeMap<(String, bool), Condition>,
}

fn run_condition(cdn_model: CdnModel, adaptive: bool, config: &Config) -> Condition {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let footprint = world_footprint();
    let latency = LatencyModel::default();

    // Probes on /21-aligned blocks (no geodb collisions at any CDN-used
    // granularity).
    let probes: Vec<(Ipv4Addr, GeoPoint)> = (0..config.probes)
        .map(|i| {
            let c = CITIES[rng.gen_range(0..CITIES.len())];
            (
                Ipv4Addr::new(41, (i / 31) as u8, ((i % 31) * 8) as u8, 7),
                jitter_position(c.pos, 300.0, &mut rng),
            )
        })
        .collect();
    let mut geodb = GeoDb::new();
    let resolver_addr: IpAddr = "9.9.9.9".parse().expect("valid");
    geodb.insert(
        IpPrefix::new(resolver_addr, 24).expect("<=32"),
        CITIES[0].pos,
    );
    for (addr, pos) in &probes {
        for len in 16..=24u8 {
            geodb.insert(IpPrefix::v4(*addr, len).expect("<=32"), *pos);
        }
    }

    let behavior = match cdn_model {
        CdnModel::Cdn1 => CdnBehavior::cdn1(footprint.clone()),
        CdnModel::Cdn2 => CdnBehavior::cdn2(footprint.clone()),
    };
    let apex = Name::from_ascii("cdn.example").expect("valid");
    let qname = apex.child("www").expect("valid");
    let mut server = AuthServer::new(Zone::new(apex), EcsHandling::open(ScopePolicy::MatchSource))
        .with_cdn(behavior, geodb);

    let mut resolver = Resolver::new(ResolverConfig {
        adaptive_prefix: adaptive,
        ..ResolverConfig::rfc_compliant(resolver_addr)
    });

    let mut bits = 0u64;
    let mut queries = 0u64;
    let mut samples = Vec::new();
    for round in 0..config.queries_per_probe {
        for (i, (addr, pos)) in probes.iter().enumerate() {
            // Fresh client per query within the probe's /24.
            let client = IpAddr::V4(Ipv4Addr::new(
                addr.octets()[0],
                addr.octets()[1],
                addr.octets()[2],
                (i % 200) as u8 + 1,
            ));
            let q = Message::query(1, Question::a(qname.clone()));
            // Space queries past the 20 s CDN TTL so every one goes
            // upstream and conveys a prefix.
            let at = SimTime::from_secs((round * config.probes + i) as u64 * 30);
            let resp = resolver.resolve_msg(&q, client, at, &mut server);
            let first = resp.answer_addrs()[0];
            let edge = footprint
                .edges
                .iter()
                .find(|e| e.addr == first)
                .expect("from footprint");
            samples.push(ConnectTimeSample {
                probe: *pos,
                edge_addr: first,
                edge: edge.pos,
            });
        }
    }
    for e in server.log() {
        if let Some(ecs) = &e.ecs {
            bits += ecs.source_prefix_len() as u64;
            queries += 1;
        }
    }
    Condition {
        mean_bits_leaked: bits as f64 / queries.max(1) as f64,
        quality: MappingQuality::from_samples(&samples, &latency),
    }
}

/// Runs the experiment.
pub fn run(config: &Config) -> (Outcome, Report) {
    let mut conditions = BTreeMap::new();
    for (label, model) in [("CDN-1", CdnModel::Cdn1), ("CDN-2", CdnModel::Cdn2)] {
        for adaptive in [false, true] {
            conditions.insert(
                (label.to_string(), adaptive),
                run_condition(model, adaptive, config),
            );
        }
    }

    let mut report = Report::new(
        "adaptive",
        "per-zone adaptive prefix lengths (§9 extension)",
    );
    let c1_off = &conditions[&("CDN-1".to_string(), false)];
    let c1_on = &conditions[&("CDN-1".to_string(), true)];
    let c2_off = &conditions[&("CDN-2".to_string(), false)];
    let c2_on = &conditions[&("CDN-2".to_string(), true)];

    report.row(
        "CDN-2: bits leaked per query (static /24)",
        "24 (RFC blanket policy)",
        format!("{:.2}", c2_off.mean_bits_leaked),
        (c2_off.mean_bits_leaked - 24.0).abs() < 0.01,
    );
    report.row(
        "CDN-2: bits leaked per query (adaptive)",
        "21 would suffice (§8.3)",
        format!("{:.2}", c2_on.mean_bits_leaked),
        c2_on.mean_bits_leaked < 22.0,
    );
    report.row(
        "CDN-2: adaptation keeps mapping quality",
        "no penalty at /21",
        format!(
            "median {:.0} ms vs {:.0} ms",
            c2_on.quality.median_ms, c2_off.quality.median_ms
        ),
        c2_on.quality.median_ms <= c2_off.quality.median_ms * 1.2,
    );
    report.row(
        "CDN-1: adaptation cannot shrink below /24",
        "CDN-1 needs /24",
        format!("{:.2} bits leaked", c1_on.mean_bits_leaked),
        (c1_on.mean_bits_leaked - c1_off.mean_bits_leaked).abs() < 0.5,
    );
    report.row(
        "CDN-1: quality unchanged",
        "flat",
        format!(
            "median {:.0} ms vs {:.0} ms",
            c1_on.quality.median_ms, c1_off.quality.median_ms
        ),
        (c1_on.quality.median_ms - c1_off.quality.median_ms).abs()
            < c1_off.quality.median_ms * 0.2 + 1.0,
    );
    (Outcome { conditions }, report)
}

/// Default-parameter entry point.
pub fn run_default() -> Report {
    run(&Config::default()).1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptation_saves_bits_on_cdn2_without_quality_loss() {
        let (out, report) = run(&Config {
            probes: 120,
            queries_per_probe: 3,
            seed: 1,
        });
        let off = &out.conditions[&("CDN-2".to_string(), false)];
        let on = &out.conditions[&("CDN-2".to_string(), true)];
        assert!(on.mean_bits_leaked < off.mean_bits_leaked - 1.0, "{report}");
        assert!(
            on.quality.median_ms <= off.quality.median_ms * 1.2,
            "{report}"
        );
        // CDN-1: no shrink possible.
        let c1_on = &out.conditions[&("CDN-1".to_string(), true)];
        assert!((c1_on.mean_bits_leaked - 24.0).abs() < 0.5, "{report}");
    }
}
