//! Per-AS token-bucket rate limiting on the SimTime axis.
//!
//! The bucket is a GCRA ("virtual scheduling") limiter: pure integer
//! arithmetic on microseconds, no RNG, no floating point — reserving a
//! token is deterministic and monotone, which is what lets the pipeline
//! *book* a future launch time for a probe instead of polling.

use netsim::SimTime;
use std::collections::HashMap;

/// A token bucket admitting `rate` launches per second with `burst`
/// tokens of depth, implemented as GCRA over microseconds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TokenBucket {
    /// Microseconds per token (the emission interval).
    interval_us: u64,
    /// Bucket depth in tokens (≥ 1).
    burst: u64,
    /// Theoretical arrival time of the next conforming launch, in
    /// microseconds.
    tat_us: u64,
}

impl TokenBucket {
    /// A bucket admitting `rate_per_sec` launches per second (≥ 1) with
    /// `burst` tokens available instantly.
    pub fn new(rate_per_sec: u64, burst: u64) -> Self {
        TokenBucket {
            interval_us: (1_000_000 / rate_per_sec.max(1)).max(1),
            burst: burst.max(1),
            tat_us: 0,
        }
    }

    /// The emission interval (time per token).
    pub fn interval_us(&self) -> u64 {
        self.interval_us
    }

    /// The earliest conforming launch time as of `now`, without booking
    /// anything. Never before `now`.
    pub fn earliest(&self, now: SimTime) -> SimTime {
        let tau = self.interval_us * (self.burst - 1);
        SimTime::from_micros(now.as_micros().max(self.tat_us.saturating_sub(tau)))
    }

    /// Books one token and returns the launch time it is good for:
    /// [`TokenBucket::earliest`], with the bucket state advanced by one
    /// emission interval. Sequential reservations return non-decreasing
    /// launch times.
    pub fn reserve(&mut self, now: SimTime) -> SimTime {
        let at = self.earliest(now);
        self.tat_us = self.tat_us.max(at.as_micros()) + self.interval_us;
        at
    }
}

/// One [`TokenBucket`] per AS, created on first sight with a shared
/// rate/burst configuration. Bounded by the number of distinct ASes in
/// the target population, not by probe count.
#[derive(Debug)]
pub struct AsRateLimiter {
    rate_per_sec: u64,
    burst: u64,
    buckets: HashMap<u32, TokenBucket>,
}

impl AsRateLimiter {
    /// A limiter applying `rate_per_sec`/`burst` independently per AS.
    pub fn new(rate_per_sec: u64, burst: u64) -> Self {
        AsRateLimiter {
            rate_per_sec,
            burst,
            buckets: HashMap::new(),
        }
    }

    /// The earliest conforming launch for `asn`, without booking.
    pub fn earliest(&mut self, asn: u32, now: SimTime) -> SimTime {
        self.bucket(asn).earliest(now)
    }

    /// Books a token for `asn` and returns its launch time.
    pub fn reserve(&mut self, asn: u32, now: SimTime) -> SimTime {
        self.bucket(asn).reserve(now)
    }

    /// Distinct ASes seen so far.
    pub fn tracked(&self) -> usize {
        self.buckets.len()
    }

    fn bucket(&mut self, asn: u32) -> &mut TokenBucket {
        self.buckets
            .entry(asn)
            .or_insert_with(|| TokenBucket::new(self.rate_per_sec, self.burst))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_then_spaced() {
        let mut b = TokenBucket::new(10, 3); // 100 ms interval, 3 deep
        let t0 = SimTime::ZERO;
        assert_eq!(b.reserve(t0), t0);
        assert_eq!(b.reserve(t0), t0);
        assert_eq!(b.reserve(t0), t0, "burst admits 3 instantly");
        assert_eq!(b.reserve(t0), SimTime::from_micros(100_000));
        assert_eq!(b.reserve(t0), SimTime::from_micros(200_000));
    }

    #[test]
    fn idle_time_refills_up_to_burst() {
        let mut b = TokenBucket::new(10, 2);
        for _ in 0..5 {
            b.reserve(SimTime::ZERO);
        }
        // A long idle period refills the bucket, but only to its depth.
        let later = SimTime::from_secs(100);
        assert_eq!(b.reserve(later), later);
        assert_eq!(b.reserve(later), later);
        assert_eq!(
            b.reserve(later),
            later + netsim::SimDuration::from_micros(100_000)
        );
    }

    #[test]
    fn per_as_buckets_are_independent() {
        let mut l = AsRateLimiter::new(1, 1); // 1/s, no burst headroom
        let t0 = SimTime::ZERO;
        assert_eq!(l.reserve(64500, t0), t0);
        assert_eq!(l.reserve(64501, t0), t0, "different AS, fresh bucket");
        assert_eq!(l.reserve(64500, t0), SimTime::from_secs(1));
        assert_eq!(l.tracked(), 2);
    }

    #[test]
    fn earliest_peeks_without_booking() {
        let mut b = TokenBucket::new(1, 1);
        b.reserve(SimTime::ZERO);
        let peek = b.earliest(SimTime::ZERO);
        assert_eq!(peek, SimTime::from_secs(1));
        assert_eq!(b.earliest(SimTime::ZERO), peek, "peek is idempotent");
        assert_eq!(b.reserve(SimTime::ZERO), peek);
    }
}
