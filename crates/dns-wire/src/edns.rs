//! EDNS0 (RFC 6891): the OPT pseudo-record and its options.

use crate::ecs::EcsOption;
use crate::error::WireResult;
use crate::name::Name;
use crate::wire::{WireReader, WireWriter};

/// EDNS option codes we recognize.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OptionCode {
    /// EDNS Client Subnet (RFC 7871).
    ClientSubnet,
    /// EDNS Cookie (RFC 7873).
    Cookie,
    /// Anything else.
    Unknown(u16),
}

impl OptionCode {
    /// Numeric option code.
    pub fn to_u16(self) -> u16 {
        match self {
            OptionCode::ClientSubnet => 8,
            OptionCode::Cookie => 10,
            OptionCode::Unknown(v) => v,
        }
    }

    /// Decodes a numeric option code.
    pub fn from_u16(v: u16) -> Self {
        match v {
            8 => OptionCode::ClientSubnet,
            10 => OptionCode::Cookie,
            other => OptionCode::Unknown(other),
        }
    }
}

/// A single EDNS option.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EdnsOption {
    /// Parsed client-subnet option.
    ClientSubnet(EcsOption),
    /// Any option we keep opaque.
    Other {
        /// Numeric option code.
        code: u16,
        /// Raw option body.
        data: Vec<u8>,
    },
}

impl EdnsOption {
    /// The option's code.
    pub fn code(&self) -> OptionCode {
        match self {
            EdnsOption::ClientSubnet(_) => OptionCode::ClientSubnet,
            EdnsOption::Other { code, .. } => OptionCode::from_u16(*code),
        }
    }

    fn write(&self, w: &mut WireWriter) -> WireResult<()> {
        match self {
            EdnsOption::ClientSubnet(ecs) => {
                let body = ecs.to_wire()?;
                w.put_u16(OptionCode::ClientSubnet.to_u16());
                w.put_u16(body.len() as u16);
                w.put_bytes(&body);
            }
            EdnsOption::Other { code, data } => {
                w.put_u16(*code);
                w.put_u16(data.len() as u16);
                w.put_bytes(data);
            }
        }
        Ok(())
    }

    fn read(r: &mut WireReader<'_>) -> WireResult<Self> {
        let code = r.read_u16("EDNS option code")?;
        let len = r.read_u16("EDNS option length")? as usize;
        let body = r.read_bytes(len, "EDNS option body")?;
        match OptionCode::from_u16(code) {
            OptionCode::ClientSubnet => Ok(EdnsOption::ClientSubnet(EcsOption::from_wire(body)?)),
            _ => Ok(EdnsOption::Other {
                code,
                data: body.to_vec(),
            }),
        }
    }
}

/// The OPT pseudo-record (RFC 6891 §6.1). Exactly zero or one per message;
/// its fixed fields repurpose the class (UDP payload size) and TTL
/// (extended RCODE, version, DO bit).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OptRecord {
    /// Requestor's maximum UDP payload size.
    pub udp_payload_size: u16,
    /// Upper eight bits of the extended response code.
    pub extended_rcode: u8,
    /// EDNS version (0).
    pub version: u8,
    /// DNSSEC OK bit.
    pub dnssec_ok: bool,
    /// Options carried in the RDATA.
    pub options: Vec<EdnsOption>,
}

impl OptRecord {
    /// An empty OPT advertising the given payload size.
    pub fn new(udp_payload_size: u16) -> Self {
        OptRecord {
            udp_payload_size,
            extended_rcode: 0,
            version: 0,
            dnssec_ok: false,
            options: Vec::new(),
        }
    }

    /// Returns the first client-subnet option, if present.
    pub fn ecs(&self) -> Option<&EcsOption> {
        self.options.iter().find_map(|o| match o {
            EdnsOption::ClientSubnet(e) => Some(e),
            _ => None,
        })
    }

    /// Replaces (or inserts) the client-subnet option.
    pub fn set_ecs(&mut self, ecs: EcsOption) {
        self.options
            .retain(|o| !matches!(o, EdnsOption::ClientSubnet(_)));
        self.options.push(EdnsOption::ClientSubnet(ecs));
    }

    /// Removes any client-subnet option.
    pub fn clear_ecs(&mut self) {
        self.options
            .retain(|o| !matches!(o, EdnsOption::ClientSubnet(_)));
    }

    /// Serializes the full pseudo-record (owner name through RDATA).
    pub fn write(&self, w: &mut WireWriter) -> WireResult<()> {
        Name::root().write_uncompressed(w);
        w.put_u16(41); // TYPE OPT
        w.put_u16(self.udp_payload_size);
        w.put_u8(self.extended_rcode);
        w.put_u8(self.version);
        w.put_u16(if self.dnssec_ok { 0x8000 } else { 0 });
        let rdlength_at = w.len();
        w.put_u16(0);
        let start = w.len();
        for opt in &self.options {
            opt.write(w)?;
        }
        let rdlen = w.len() - start;
        w.patch_u16(rdlength_at, rdlen as u16);
        Ok(())
    }

    /// Parses the body of an OPT record. The caller has already consumed the
    /// owner name and TYPE, and checked the owner was root.
    pub fn read_after_type(r: &mut WireReader<'_>) -> WireResult<Self> {
        let udp_payload_size = r.read_u16("OPT class")?;
        let extended_rcode = r.read_u8("OPT extended rcode")?;
        let version = r.read_u8("OPT version")?;
        let flags = r.read_u16("OPT flags")?;
        let rdlen = r.read_u16("OPT rdlength")? as usize;
        let mut sub = r.sub_reader(rdlen, "OPT rdata")?;
        let mut options = Vec::new();
        while sub.remaining() > 0 {
            options.push(EdnsOption::read(&mut sub)?);
        }
        Ok(OptRecord {
            udp_payload_size,
            extended_rcode,
            version,
            dnssec_ok: flags & 0x8000 != 0,
            options,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn roundtrip(opt: &OptRecord) -> OptRecord {
        let mut w = WireWriter::new();
        opt.write(&mut w).unwrap();
        let bytes = w.finish().unwrap();
        let mut r = WireReader::new(&bytes);
        // Consume owner (root) + TYPE.
        let owner = Name::read(&mut r).unwrap();
        assert!(owner.is_root());
        assert_eq!(r.read_u16("type").unwrap(), 41);
        OptRecord::read_after_type(&mut r).unwrap()
    }

    #[test]
    fn empty_opt_roundtrip() {
        let opt = OptRecord::new(4096);
        assert_eq!(roundtrip(&opt), opt);
    }

    #[test]
    fn opt_with_ecs_roundtrip() {
        let mut opt = OptRecord::new(1232);
        opt.set_ecs(EcsOption::from_v4(Ipv4Addr::new(198, 51, 100, 7), 24));
        let back = roundtrip(&opt);
        assert_eq!(back.ecs().unwrap().source_prefix_len(), 24);
    }

    #[test]
    fn opt_with_unknown_option_roundtrip() {
        let mut opt = OptRecord::new(4096);
        opt.options.push(EdnsOption::Other {
            code: 10,
            data: vec![1, 2, 3, 4, 5, 6, 7, 8],
        });
        assert_eq!(roundtrip(&opt), opt);
        assert_eq!(opt.options[0].code(), OptionCode::Cookie);
    }

    #[test]
    fn set_ecs_replaces() {
        let mut opt = OptRecord::new(4096);
        opt.set_ecs(EcsOption::from_v4(Ipv4Addr::new(1, 2, 3, 0), 24));
        opt.set_ecs(EcsOption::from_v4(Ipv4Addr::new(9, 9, 9, 0), 24));
        assert_eq!(opt.options.len(), 1);
        assert_eq!(opt.ecs().unwrap().to_v4(), Some(Ipv4Addr::new(9, 9, 9, 0)));
        opt.clear_ecs();
        assert!(opt.ecs().is_none());
    }

    #[test]
    fn dnssec_ok_bit() {
        let mut opt = OptRecord::new(4096);
        opt.dnssec_ok = true;
        let back = roundtrip(&opt);
        assert!(back.dnssec_ok);
    }

    #[test]
    fn option_code_mapping() {
        assert_eq!(OptionCode::from_u16(8), OptionCode::ClientSubnet);
        assert_eq!(OptionCode::from_u16(10), OptionCode::Cookie);
        assert_eq!(OptionCode::from_u16(77), OptionCode::Unknown(77));
        assert_eq!(OptionCode::Unknown(77).to_u16(), 77);
    }
}
