//! §8.4 Figure 8: the CNAME-flattening penalty, end to end.
//!
//! The case study: `customer.com` is hosted at a DNS provider whose
//! authoritative server flattens the apex onto a CDN *without forwarding
//! ECS*, so the CDN maps the client by the provider's backend location.
//! The client (behind an ECS-enabled public resolver) therefore first
//! lands on a distant edge E1, which answers with an HTTP redirect to
//! `www.customer.com`; the www path preserves ECS and lands on a nearby
//! edge E2. We account every message leg with the geographic latency model
//! and compare the apex's total time-to-content against direct www access.
//!
//! Paper: 125 ms TCP handshake to E1 and 650 ms total elapsed before the
//! client even starts the correct download, vs a 45 ms handshake to E2.

use std::net::IpAddr;

use authoritative::{
    AuthServer, CdnBehavior, EcsHandling, FlatteningServer, GeoDb, ScopePolicy, Zone,
};
use dns_wire::{EcsOption, IpPrefix, Message, Name, Question};
use netsim::geo::city;
use netsim::{GeoPoint, LatencyModel, SimTime};

use crate::experiments::table2::world_footprint;
use crate::report::Report;

/// Parameters.
#[derive(Debug, Clone)]
pub struct Config {
    /// Client city (paper: a Cleveland lab machine).
    pub client_city: &'static str,
    /// Public resolver city.
    pub resolver_city: &'static str,
    /// DNS provider backend city (where flattened queries appear to be
    /// from).
    pub provider_city: &'static str,
    /// Whether the provider forwards ECS on the backend (the fix).
    pub forward_ecs: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            client_city: "Cleveland",
            resolver_city: "Toronto",
            provider_city: "Mountain View",
            forward_ecs: false,
        }
    }
}

/// Outcome.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// TCP handshake time to the apex-resolved edge E1 (ms).
    pub apex_handshake_ms: f64,
    /// Total elapsed from first DNS step until the client has completed
    /// the redirect dance and the correct handshake (ms).
    pub apex_total_ms: f64,
    /// TCP handshake time to the www-resolved edge E2 (ms).
    pub www_handshake_ms: f64,
    /// E1 deployment city.
    pub e1_city: String,
    /// E2 deployment city.
    pub e2_city: String,
}

/// Runs the experiment.
pub fn run(config: &Config) -> (Outcome, Report) {
    let footprint = world_footprint();
    let latency = LatencyModel::default();

    let client_pos = city(config.client_city).expect("known").pos;
    let resolver_pos = city(config.resolver_city).expect("known").pos;
    let provider_pos = city(config.provider_city).expect("known").pos;

    let client_addr: IpAddr = "100.80.1.7".parse().expect("valid");
    let resolver_addr: IpAddr = "8.8.8.8".parse().expect("valid");
    let provider_backend: IpAddr = "198.18.200.1".parse().expect("valid");

    let mut geodb = GeoDb::new();
    geodb.insert(IpPrefix::new(client_addr, 24).expect("<=32"), client_pos);
    geodb.insert(
        IpPrefix::new(resolver_addr, 24).expect("<=32"),
        resolver_pos,
    );
    geodb.insert(
        IpPrefix::new(provider_backend, 24).expect("<=32"),
        provider_pos,
    );

    let cdn_apex = Name::from_ascii("cdn.net").expect("valid");
    let mut cdn = AuthServer::new(
        Zone::new(cdn_apex.clone()),
        EcsHandling::open(ScopePolicy::MatchSource),
    )
    .with_cdn(CdnBehavior::cdn1(footprint.clone()), geodb);

    let mut provider = FlatteningServer::new(
        Name::from_ascii("customer.com").expect("valid"),
        cdn_apex.child("ex").expect("valid"),
        provider_backend,
    );
    provider.forward_ecs = config.forward_ecs;

    let edge_pos = |addr: IpAddr| -> (GeoPoint, String) {
        let e = footprint
            .edges
            .iter()
            .find(|e| e.addr == addr)
            .expect("edge in footprint");
        (e.pos, e.city.clone())
    };

    // The public resolver stamps the client's /24 (it is ECS-whitelisted
    // with the CDN, and the provider zone accepts ECS too).
    let client_ecs = EcsOption::new(client_addr, 24);

    // --- Apex access (steps 1–8 of Figure 8) ---
    // Steps 1-2: client → resolver → provider authoritative (apex query,
    // flattened on the backend: steps 3-4 are provider ↔ CDN).
    let mut apex_q = Message::query(
        1,
        Question::a(Name::from_ascii("customer.com").expect("ok")),
    );
    apex_q.set_ecs(client_ecs);
    let apex_resp = provider.handle(&apex_q, resolver_addr, SimTime::ZERO, &mut cdn);
    let e1 = apex_resp.answer_addrs()[0];
    let (e1_pos, e1_city) = edge_pos(e1);

    // DNS latency: client→resolver→provider (+provider→CDN backend)→back.
    let dns_apex_ms = latency.rtt_ms(&client_pos, &resolver_pos)
        + latency.rtt_ms(&resolver_pos, &provider_pos)
        + latency.rtt_ms(&provider_pos, &provider_pos) // backend CDN auth colocated w/ provider POP
        ;
    // Steps 7-8: TCP handshake to E1 (1 RTT) + HTTP request/redirect (1 RTT).
    let apex_handshake_ms = latency.rtt_ms(&client_pos, &e1_pos);
    let redirect_ms = latency.rtt_ms(&client_pos, &e1_pos);

    // --- Steps 9–14: resolve www.customer.com (ECS preserved) ---
    let mut www_q = Message::query(
        2,
        Question::a(Name::from_ascii("www.customer.com").expect("ok")),
    );
    www_q.set_ecs(client_ecs);
    let www_resp = provider.handle(&www_q, resolver_addr, SimTime::ZERO, &mut cdn);
    let e2 = www_resp.answer_addrs()[0];
    let (e2_pos, e2_city) = edge_pos(e2);
    let dns_www_ms =
        latency.rtt_ms(&client_pos, &resolver_pos) + latency.rtt_ms(&resolver_pos, &provider_pos);
    let www_handshake_ms = latency.rtt_ms(&client_pos, &e2_pos);

    let apex_total_ms =
        dns_apex_ms + apex_handshake_ms + redirect_ms + dns_www_ms + www_handshake_ms;

    let outcome = Outcome {
        apex_handshake_ms,
        apex_total_ms,
        www_handshake_ms,
        e1_city: e1_city.clone(),
        e2_city: e2_city.clone(),
    };

    let mut report = Report::new("fig8", "CNAME flattening penalty");
    report.row(
        "E1 handshake (flattened apex)",
        "125 ms",
        format!("{:.0} ms ({})", apex_handshake_ms, e1_city),
        if config.forward_ecs {
            apex_handshake_ms <= www_handshake_ms + 1.0
        } else {
            apex_handshake_ms > www_handshake_ms * 2.0
        },
    );
    report.row(
        "E2 handshake (www, ECS preserved)",
        "45 ms",
        format!("{:.0} ms ({})", www_handshake_ms, e2_city),
        www_handshake_ms < 60.0,
    );
    report.row(
        "apex total incl. redirect dance",
        "650 ms",
        format!("{apex_total_ms:.0} ms"),
        if config.forward_ecs {
            true
        } else {
            apex_total_ms > www_handshake_ms * 4.0
        },
    );
    report.row(
        "E1 maps to the provider's location, not the client's",
        "yes (absence of ECS on backend)",
        format!("E1 in {e1_city}, E2 in {e2_city}"),
        if config.forward_ecs {
            e1_city == e2_city
        } else {
            e1_city != e2_city
        },
    );
    (outcome, report)
}

/// Default-parameter entry point.
pub fn run_default() -> Report {
    run(&Config::default()).1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flattening_without_ecs_is_expensive() {
        let (out, report) = run(&Config::default());
        assert!(
            out.apex_handshake_ms > out.www_handshake_ms * 2.0,
            "E1 {} vs E2 {}\n{report}",
            out.apex_handshake_ms,
            out.www_handshake_ms
        );
        assert!(out.apex_total_ms > 100.0);
        assert_ne!(out.e1_city, out.e2_city);
        assert!(report.all_hold(), "{report}");
    }

    #[test]
    fn forwarding_ecs_fixes_the_apex() {
        let (out, report) = run(&Config {
            forward_ecs: true,
            ..Config::default()
        });
        assert_eq!(out.e1_city, out.e2_city, "{report}");
        assert!((out.apex_handshake_ms - out.www_handshake_ms).abs() < 1.0);
    }
}
