//! Schema validation for exported telemetry, used by the `obs-validate`
//! binary in CI: a metrics JSON snapshot must carry its three sections and
//! every required series; a JSON-lines trace must parse line-by-line with
//! the span envelope intact and only known event names.

use crate::json::{parse, Value};
use crate::trace::EventKind;

/// The series a scanner metrics snapshot must carry (the `obs-validate
/// metrics --require-scanner` profile): every probe-outcome counter in the
/// reconciliation identity, the in-flight gauge, and the probe-latency
/// histogram.
pub const SCANNER_REQUIRED_SERIES: &[&str] = &[
    "scanner_probes_total",
    "scanner_attempts_total",
    "scanner_answered_total",
    "scanner_refused_total",
    "scanner_retries_total",
    "scanner_retry_exhausted_total",
    "scanner_shed_rate_limit_total",
    "scanner_shed_breaker_total",
    "scanner_breaker_opens_total",
    "scanner_rate_deferrals_total",
    "scanner_in_flight",
    "scanner_probe_latency_us",
];

/// The series a streaming cache-replay run must carry (the `obs-validate
/// metrics --require-stream` profile): every counter in the replay
/// reconciliation identity plus the per-shard peak-occupancy histograms
/// and the live-entry high-water gauge, as folded by
/// `CacheSimulator::run_streaming_instrumented`.
pub const STREAM_REQUIRED_SERIES: &[&str] = &[
    "cache_sim_lookups_total",
    "cache_sim_hits_ecs_total",
    "cache_sim_hits_plain_total",
    "cache_sim_evictions_ecs_total",
    "cache_sim_evictions_plain_total",
    "cache_sim_peak_ecs_entries",
    "cache_sim_peak_plain_entries",
    "cache_sim_peak_live_ecs",
];

/// The series a profiled run must carry (the `obs-validate metrics
/// --require-prof` profile): the stage-profiler roll-ups exported by
/// [`crate::ProfileSnapshot::to_metrics`] plus the lock-contention
/// series the dnsd serving path records around the shared cache and the
/// flight table.
pub const PROF_REQUIRED_SERIES: &[&str] = &[
    "prof_spans_total",
    "prof_self_us_total",
    "prof_dropped_paths_total",
    "lock_cache_shard_acquisitions_total",
    "lock_cache_shard_contended_total",
    "lock_cache_shard_wait_us",
    "lock_flight_acquisitions_total",
    "lock_flight_contended_total",
    "lock_flight_wait_us",
];

/// Checks a [`crate::MetricsSnapshot::to_json`] document: the three
/// sections must be objects, and every name in `required` must appear in
/// one of them.
pub fn validate_metrics_json(text: &str, required: &[&str]) -> Result<(), String> {
    let doc = parse(text).map_err(|e| format!("metrics snapshot is not valid JSON: {e}"))?;
    let obj = doc
        .as_object()
        .ok_or_else(|| "metrics snapshot: top level must be an object".to_string())?;
    let mut sections = Vec::new();
    for key in ["counters", "gauges", "histograms"] {
        match obj.get(key) {
            Some(Value::Obj(map)) => sections.push(map),
            Some(_) => return Err(format!("metrics snapshot: {key:?} must be an object")),
            None => return Err(format!("metrics snapshot: missing section {key:?}")),
        }
    }
    for name in required {
        if !sections.iter().any(|map| map.contains_key(*name)) {
            return Err(format!(
                "metrics snapshot: missing required series {name:?}"
            ));
        }
    }
    Ok(())
}

/// Checks a JSON-lines trace: at least one line; every non-empty line is
/// an object carrying numeric `trace >= 1`, `span >= 1`, `parent`,
/// `at_us`, and an `event` string from the known taxonomy, with
/// `parent != span`. Returns the number of events on success.
pub fn validate_trace(text: &str) -> Result<usize, String> {
    let mut events = 0usize;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let n = i + 1;
        let doc = parse(line).map_err(|e| format!("trace line {n}: not valid JSON: {e}"))?;
        let obj = doc
            .as_object()
            .ok_or_else(|| format!("trace line {n}: not an object"))?;
        let num = |key: &str| -> Result<f64, String> {
            obj.get(key)
                .and_then(Value::as_num)
                .ok_or_else(|| format!("trace line {n}: missing numeric {key:?}"))
        };
        let trace = num("trace")?;
        let span = num("span")?;
        let parent = num("parent")?;
        num("at_us")?;
        if trace < 1.0 {
            return Err(format!("trace line {n}: trace id must be >= 1"));
        }
        if span < 1.0 {
            return Err(format!("trace line {n}: span id must be >= 1"));
        }
        if parent == span {
            return Err(format!("trace line {n}: span cannot parent itself"));
        }
        let event = obj
            .get("event")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("trace line {n}: missing event name"))?;
        if !EventKind::NAMES.contains(&event) {
            return Err(format!("trace line {n}: unknown event {event:?}"));
        }
        events += 1;
    }
    if events == 0 {
        return Err("trace: no events".to_string());
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;
    use crate::trace::{MemorySink, Tracer};
    use std::sync::Arc;

    #[test]
    fn accepts_real_snapshot_and_flags_missing_series() {
        let reg = MetricsRegistry::new();
        reg.counter("resolver_client_queries_total").add(3);
        reg.histogram("resolver_query_latency_us").record(1500);
        let json = reg.snapshot().to_json();
        validate_metrics_json(
            &json,
            &["resolver_client_queries_total", "resolver_query_latency_us"],
        )
        .expect("valid snapshot");
        let err = validate_metrics_json(&json, &["resolver_retries_total"]).unwrap_err();
        assert!(err.contains("resolver_retries_total"), "{err}");
    }

    #[test]
    fn scanner_profile_names_every_scanner_series() {
        let reg = MetricsRegistry::new();
        for name in SCANNER_REQUIRED_SERIES {
            assert!(name.starts_with("scanner_"), "{name}");
            match *name {
                "scanner_in_flight" => {
                    reg.gauge(name).set(0);
                }
                "scanner_probe_latency_us" => {
                    reg.histogram(name).record(1);
                }
                _ => reg.counter(name).inc(),
            }
        }
        validate_metrics_json(&reg.snapshot().to_json(), SCANNER_REQUIRED_SERIES)
            .expect("scanner profile snapshot");
        // A snapshot without the scanner series fails the profile.
        let empty = MetricsRegistry::new().snapshot().to_json();
        assert!(validate_metrics_json(&empty, SCANNER_REQUIRED_SERIES).is_err());
    }

    #[test]
    fn stream_profile_names_every_stream_series() {
        let reg = MetricsRegistry::new();
        for name in STREAM_REQUIRED_SERIES {
            assert!(name.starts_with("cache_sim_"), "{name}");
            match *name {
                "cache_sim_peak_live_ecs" => {
                    reg.gauge(name).set(1);
                }
                "cache_sim_peak_ecs_entries" | "cache_sim_peak_plain_entries" => {
                    reg.histogram(name).record(1);
                }
                _ => reg.counter(name).inc(),
            }
        }
        validate_metrics_json(&reg.snapshot().to_json(), STREAM_REQUIRED_SERIES)
            .expect("stream profile snapshot");
        let empty = MetricsRegistry::new().snapshot().to_json();
        assert!(validate_metrics_json(&empty, STREAM_REQUIRED_SERIES).is_err());
    }

    #[test]
    fn prof_profile_names_every_prof_series() {
        let reg = MetricsRegistry::new();
        for name in PROF_REQUIRED_SERIES {
            assert!(
                name.starts_with("prof_") || name.starts_with("lock_"),
                "{name}"
            );
            if name.ends_with("_wait_us") {
                reg.histogram(name).record(1);
            } else {
                reg.counter(name).inc();
            }
        }
        validate_metrics_json(&reg.snapshot().to_json(), PROF_REQUIRED_SERIES)
            .expect("prof profile snapshot");
        let empty = MetricsRegistry::new().snapshot().to_json();
        assert!(validate_metrics_json(&empty, PROF_REQUIRED_SERIES).is_err());
    }

    #[test]
    fn rejects_malformed_snapshots() {
        assert!(validate_metrics_json("[]", &[]).is_err());
        assert!(validate_metrics_json("{\"counters\": {}}", &[]).is_err());
        assert!(validate_metrics_json("{nope", &[]).is_err());
    }

    #[test]
    fn accepts_real_trace_and_counts_events() {
        let sink = Arc::new(MemorySink::new());
        let t = Tracer::new(sink.clone());
        let root = t.start(0, &crate::EventKind::CacheProbe { outcome: "miss" });
        t.event(
            root,
            7,
            &crate::EventKind::Answered {
                rcode: "NOERROR".to_string(),
                latency_us: 7,
            },
        );
        let text = sink.lines().join("\n");
        assert_eq!(validate_trace(&text), Ok(2));
    }

    #[test]
    fn rejects_broken_traces() {
        assert!(validate_trace("").is_err(), "empty");
        assert!(validate_trace("{\"trace\":1}").is_err(), "missing fields");
        let bad_event = "{\"trace\":1,\"span\":1,\"parent\":0,\"at_us\":0,\"event\":\"nonsense\"}";
        assert!(validate_trace(bad_event).is_err(), "unknown event");
        let zero_trace = "{\"trace\":0,\"span\":1,\"parent\":0,\"at_us\":0,\"event\":\"shed\"}";
        assert!(validate_trace(zero_trace).is_err(), "disabled trace id");
        let self_parent = "{\"trace\":1,\"span\":2,\"parent\":2,\"at_us\":0,\"event\":\"shed\"}";
        assert!(validate_trace(self_parent).is_err(), "self-parent");
    }
}
