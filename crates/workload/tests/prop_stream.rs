//! Properties of the streaming workload generator (the tentpole safety
//! net): streaming ≡ materialized record-for-record at any chunk size,
//! per-shard substreams form an exact partition of the full stream, and
//! the same seed yields byte-identical chunks while different seeds
//! diverge.
//!
//! CI can deepen the sweep with `PROPTEST_CASES`; the in-tree default
//! keeps `cargo test` fast.

use proptest::prelude::*;
use workload::stream::{StreamRecord, TraceStreamSource, WorkloadModel};
use workload::{AllNamesStreamGen, CdnStreamGen};

fn arb_cdn() -> impl Strategy<Value = CdnStreamGen> {
    (1usize..12, 1usize..8, 4usize..80, 1u64..3000, any::<u64>()).prop_map(
        |(resolvers, subnets, hostnames, queries, seed)| CdnStreamGen {
            resolvers,
            subnets_per_resolver: subnets,
            hostnames,
            queries,
            duration: netsim::SimDuration::from_secs(600),
            ttl: 20,
            seed,
        },
    )
}

fn arb_all_names() -> impl Strategy<Value = AllNamesStreamGen> {
    (
        1u64..40,
        0u64..10,
        1u32..6,
        2usize..40,
        1u64..3000,
        any::<u64>(),
    )
        .prop_map(|(v4, v6, cps, slds, queries, seed)| AllNamesStreamGen {
            v4_subnets: v4,
            v6_subnets: v6,
            clients_per_subnet: cps,
            slds,
            hostnames_per_sld: 3,
            queries,
            seed,
            ..AllNamesStreamGen::default()
        })
}

fn collect<M: WorkloadModel>(source: &TraceStreamSource<M>) -> Vec<StreamRecord> {
    let mut out = Vec::new();
    let mut stream = source.open();
    let mut buf = Vec::new();
    while stream.next_chunk_into(&mut buf) {
        out.extend_from_slice(&buf);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn streaming_equals_materialized_at_any_chunk_size(
        gen in arb_cdn(),
        chunk in 1usize..5000,
    ) {
        let source = TraceStreamSource::new(gen.build()).with_chunk_size(chunk);
        let records = collect(&source);
        prop_assert_eq!(records.len() as u64, gen.queries);
        let set = source.materialize();
        prop_assert_eq!(set.len(), records.len());
        let model = source.model();
        for (rec, mat) in records.iter().zip(&set.records) {
            prop_assert_eq!(mat.at_micros, rec.at_micros);
            prop_assert_eq!(
                mat.resolver,
                model.resolver_addrs()[rec.resolver_id as usize]
            );
            prop_assert_eq!(&mat.qname, &model.names().name(rec.name_id));
            prop_assert_eq!(mat.qtype, rec.qtype);
            prop_assert_eq!(mat.ecs_source, rec.ecs_source);
            prop_assert_eq!(mat.response_scope, rec.response_scope);
            prop_assert_eq!(mat.ttl, rec.ttl);
            prop_assert_eq!(mat.client, rec.client);
        }
    }

    #[test]
    fn chunk_size_never_changes_the_record_sequence(
        gen in arb_all_names(),
        chunk_a in 1usize..4000,
        chunk_b in 1usize..4000,
    ) {
        let a = collect(&TraceStreamSource::new(gen.build()).with_chunk_size(chunk_a));
        let b = collect(&TraceStreamSource::new(gen.build()).with_chunk_size(chunk_b));
        prop_assert_eq!(a, b);
    }

    #[test]
    fn shards_partition_the_full_stream(
        gen in arb_cdn(),
        num_shards in 1usize..9,
        chunk in 1usize..2000,
    ) {
        let source = TraceStreamSource::new(gen.build()).with_chunk_size(chunk);
        let full = collect(&source);
        let mut merged: Vec<StreamRecord> = Vec::new();
        for shard in 0..num_shards {
            let mut stream = source.open_shard(shard, num_shards);
            let mut buf = Vec::new();
            while stream.next_chunk_into(&mut buf) {
                for r in &buf {
                    // Membership: the shard only sees its own resolvers.
                    prop_assert_eq!(r.resolver_id as usize % num_shards, shard);
                }
                merged.extend_from_slice(&buf);
            }
        }
        // Disjoint + complete: reassembling by index gives the stream.
        merged.sort_by_key(|r| r.index);
        prop_assert_eq!(merged, full);
    }

    #[test]
    fn same_seed_is_byte_identical_and_different_seeds_diverge(
        gen in arb_cdn(),
    ) {
        let a = collect(&gen.source());
        let b = collect(&gen.source());
        prop_assert_eq!(&a, &b);
        // A seed flip changes content (some tiny universes could collide
        // on timestamps alone, so only require divergence when there is
        // room for any: >1 resolver or >1 name).
        let other = CdnStreamGen { seed: gen.seed.wrapping_add(1), ..gen.clone() };
        let c = collect(&other.source());
        prop_assert_eq!(c.len(), a.len());
        if gen.queries >= 32 {
            prop_assert_ne!(&a, &c);
        }
    }

    #[test]
    fn timestamps_are_monotone_within_every_shard(
        gen in arb_all_names(),
        num_shards in 1usize..5,
    ) {
        let source = gen.source();
        for shard in 0..num_shards {
            let mut stream = source.open_shard(shard, num_shards);
            let mut buf = Vec::new();
            let mut last = 0u64;
            while stream.next_chunk_into(&mut buf) {
                for r in &buf {
                    prop_assert!(r.at_micros >= last);
                    prop_assert!(r.at_micros < gen.duration.as_micros());
                    last = r.at_micros;
                }
            }
        }
    }
}
