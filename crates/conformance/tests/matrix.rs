//! The full §6 conformance matrix as a test suite: every probing, prefix,
//! and compliance cell must land in its configured class, and the stock
//! RFC-compliant engine must land in the compliant row/class of every
//! table. A behavioural FORMERR-withdrawal test exercises the scenario
//! DSL's `formerr_on_ecs` stance end to end.

use std::net::{IpAddr, Ipv4Addr};

use conformance::harness::{
    run_compliance_matrix, run_prefix_matrix, run_probing_matrix, subject_addr,
};
use conformance::run_matrix;
use conformance::scenario::{host, Scenario};
use dns_wire::{Message, Question, Rcode};
use netsim::SimTime;
use resolver::{Resolver, ResolverConfig};

fn assert_all_pass(cells: &[conformance::report::CellResult]) {
    let failures: Vec<String> = cells
        .iter()
        .filter(|c| !c.pass())
        .map(|c| {
            format!(
                "{}/{}: expected {}, observed {}",
                c.section, c.cell, c.expected, c.observed
            )
        })
        .collect();
    assert!(
        failures.is_empty(),
        "failing cells:\n{}",
        failures.join("\n")
    );
}

#[test]
fn probing_matrix_every_cell_lands_in_its_class() {
    let cells = run_probing_matrix();
    assert_all_pass(&cells);
    // All five paper classes plus NoEcs are present.
    for want in [
        "always",
        "hostname-probe",
        "interval-loopback",
        "on-miss",
        "mixed",
        "no-ecs",
        "interval-loopback-narrow-window",
    ] {
        assert!(
            cells.iter().any(|c| c.cell == want),
            "missing probing cell {want}"
        );
    }
}

#[test]
fn prefix_matrix_every_cell_lands_in_its_row() {
    let cells = run_prefix_matrix();
    assert_all_pass(&cells);
    assert!(cells.len() >= 4, "need at least four §6.2 behaviours");
    // The stock engine's row is the RFC-compliant /24 truncation.
    let stock = cells.iter().find(|c| c.cell == "truncate-24").unwrap();
    assert!(stock.observed.contains("rfc-compliant"));
    // The jammed-/32 detector fires only for the jammed subject.
    let jammed: Vec<_> = cells
        .iter()
        .filter(|c| c.observed.contains("jammed"))
        .collect();
    assert_eq!(jammed.len(), 1);
    assert_eq!(jammed[0].cell, "jammed-32");
}

#[test]
fn compliance_matrix_every_cell_lands_in_its_class() {
    let cells = run_compliance_matrix();
    assert_all_pass(&cells);
    for want in [
        "correct",
        "correct-flattening-cname",
        "ignores-scope",
        "accepts-long",
        "cap22",
        "private-misconfig",
        "zero-ttl-uncacheable",
    ] {
        assert!(
            cells.iter().any(|c| c.cell == want),
            "missing compliance cell {want}"
        );
    }
}

#[test]
fn stock_engine_is_compliant_in_every_section() {
    // The default engine appears exactly once per table, always in the
    // compliant cell: Always-probing is fine, /24 truncation is the
    // recommended prefix, Correct is the §6.3 target class.
    let report = run_matrix();
    assert!(report.passed(), "failures: {:?}", report.failures());
    let json = report.to_json();
    assert!(json.contains("\"cells\""));
    assert!(json.contains("6.2-prefix"));
}

#[test]
fn formerr_on_ecs_scenario_triggers_withdrawal() {
    // An ECS-intolerant authoritative FORMERRs the first (ECS-bearing)
    // query; with the §7.1.3 downgrade enabled the engine re-asks without
    // the option and still answers the client.
    let scenario = Scenario::formerr_on_ecs();
    let mut up = scenario.build();
    let mut config = ResolverConfig::rfc_compliant(subject_addr());
    config.retry.withdraw_ecs_on_formerr = true;
    let mut r = Resolver::new(config);

    let client = IpAddr::V4(Ipv4Addr::new(100, 70, 3, 3));
    let q = Message::query(7, Question::a(host("www", &scenario)));
    let resp = r.resolve_msg(&q, client, SimTime::ZERO, &mut up);

    assert_eq!(resp.rcode, Rcode::NoError);
    assert_eq!(resp.answer_addrs().len(), 1);
    assert!(r.probing_state().marked_non_ecs);
    // Captured stream: the rejected ECS query, then the plain retry.
    let log = up.captured_log();
    assert_eq!(log.len(), 2);
    assert!(log[0].ecs.is_some(), "first attempt carried ECS");
    assert!(log[1].ecs.is_none(), "retry withdrew the option");

    // Without the downgrade, the stock engine surfaces the FORMERR.
    let mut up = scenario.build();
    let mut r = Resolver::new(ResolverConfig::rfc_compliant(subject_addr()));
    let resp = r.resolve_msg(&q, client, SimTime::ZERO, &mut up);
    assert_ne!(resp.rcode, Rcode::NoError);
}
