//! Autonomous systems: the unit of resolver ownership in the paper.
//!
//! The CDN dataset's 4147 ECS-enabled resolver addresses belong to 83 ASes,
//! with a single Chinese "dominant AS" holding 3067 of them; the Scan
//! dataset's non-Google egress resolvers span 45 ASes, 19 of them Chinese
//! ISPs. We model ASes as named entities with a home country and a set of
//! cities where they have presence.

use netsim::geo::{City, GeoPoint, CITIES};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Identifies an autonomous system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AsId(pub u32);

/// An autonomous system with geographic presence.
#[derive(Debug, Clone)]
pub struct AutonomousSystem {
    /// AS number.
    pub id: AsId,
    /// Country of registration.
    pub country: &'static str,
    /// Cities where the AS operates infrastructure.
    pub cities: Vec<&'static City>,
}

impl AutonomousSystem {
    /// Picks one of the AS's cities.
    pub fn pick_city<R: Rng>(&self, rng: &mut R) -> &'static City {
        self.cities.choose(rng).expect("AS has at least one city")
    }

    /// A position near one of the AS's cities (within ~50 km), so co-located
    /// entities don't all share identical coordinates.
    pub fn pick_position<R: Rng>(&self, rng: &mut R) -> GeoPoint {
        let c = self.pick_city(rng);
        jitter_position(c.pos, 50.0, rng)
    }
}

/// Returns a point uniformly within roughly `radius_km` of `center`.
pub fn jitter_position<R: Rng>(center: GeoPoint, radius_km: f64, rng: &mut R) -> GeoPoint {
    // ~111 km per degree latitude; longitude shrinks with cos(lat).
    let dlat = (rng.gen::<f64>() - 0.5) * 2.0 * radius_km / 111.0;
    let coslat = center.lat.to_radians().cos().abs().max(0.05);
    let dlon = (rng.gen::<f64>() - 0.5) * 2.0 * radius_km / (111.0 * coslat);
    GeoPoint::new(center.lat + dlat, center.lon + dlon)
}

/// Builds a world AS population:
///
/// * one dominant Chinese AS (mirroring the paper's dominant AS);
/// * `chinese_ases - 1` further Chinese ASes (the paper: 19 Chinese ASes
///   among scan-dataset egress ASes);
/// * `other_ases` spread across the remaining countries in the city table.
pub fn generate_ases<R: Rng>(
    chinese_ases: usize,
    other_ases: usize,
    rng: &mut R,
) -> Vec<AutonomousSystem> {
    let chinese_cities: Vec<&'static City> = CITIES.iter().filter(|c| c.country == "CN").collect();
    let non_chinese: Vec<&'static City> = CITIES.iter().filter(|c| c.country != "CN").collect();

    let mut out = Vec::with_capacity(chinese_ases + other_ases);
    let mut next_id = 64_500u32; // private-use ASN range

    for i in 0..chinese_ases {
        let cities = if i == 0 {
            // The dominant AS is present in all major Chinese cities.
            chinese_cities.clone()
        } else {
            let mut cs = chinese_cities.clone();
            cs.shuffle(rng);
            cs.truncate(1 + rng.gen_range(0..2));
            cs
        };
        out.push(AutonomousSystem {
            id: AsId(next_id),
            country: "CN",
            cities,
        });
        next_id += 1;
    }

    for _ in 0..other_ases {
        let home = *non_chinese.choose(rng).expect("non-empty city table");
        // An AS concentrates in its home city, with a chance of one more
        // domestic point of presence.
        let mut cities = vec![home];
        if rng.gen_bool(0.3) {
            let extra: Vec<&'static City> = non_chinese
                .iter()
                .filter(|c| c.country == home.country && c.name != home.name)
                .copied()
                .collect();
            if let Some(e) = extra.choose(rng) {
                cities.push(*e);
            }
        }
        out.push(AutonomousSystem {
            id: AsId(next_id),
            country: home.country,
            cities,
        });
        next_id += 1;
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn generates_requested_counts() {
        let mut rng = SmallRng::seed_from_u64(1);
        let ases = generate_ases(19, 64, &mut rng);
        assert_eq!(ases.len(), 83); // the CDN dataset's AS count
        assert_eq!(ases.iter().filter(|a| a.country == "CN").count(), 19);
    }

    #[test]
    fn dominant_as_is_first_and_chinese() {
        let mut rng = SmallRng::seed_from_u64(2);
        let ases = generate_ases(5, 10, &mut rng);
        assert_eq!(ases[0].country, "CN");
        assert!(
            ases[0].cities.len() >= 3,
            "dominant AS covers Chinese cities"
        );
    }

    #[test]
    fn as_ids_are_unique() {
        let mut rng = SmallRng::seed_from_u64(3);
        let ases = generate_ases(10, 40, &mut rng);
        let mut ids: Vec<_> = ases.iter().map(|a| a.id).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 50);
    }

    #[test]
    fn positions_are_near_home_cities() {
        let mut rng = SmallRng::seed_from_u64(4);
        let ases = generate_ases(2, 5, &mut rng);
        for a in &ases {
            let pos = a.pick_position(&mut rng);
            let close = a.cities.iter().any(|c| c.pos.distance_km(&pos) < 120.0);
            assert!(
                close,
                "AS{} position {pos} far from all home cities",
                a.id.0
            );
        }
    }

    #[test]
    fn jitter_stays_within_radius() {
        let mut rng = SmallRng::seed_from_u64(5);
        let center = GeoPoint::new(39.9, 116.4);
        for _ in 0..200 {
            let p = jitter_position(center, 50.0, &mut rng);
            // Allow slack for the lat/lon box vs circle difference.
            assert!(center.distance_km(&p) < 80.0);
        }
    }

    #[test]
    fn determinism_with_seed() {
        let a: Vec<_> = {
            let mut rng = SmallRng::seed_from_u64(6);
            generate_ases(4, 7, &mut rng).iter().map(|a| a.id).collect()
        };
        let b: Vec<_> = {
            let mut rng = SmallRng::seed_from_u64(6);
            generate_ases(4, 7, &mut rng).iter().map(|a| a.id).collect()
        };
        assert_eq!(a, b);
    }
}
