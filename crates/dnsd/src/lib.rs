#![warn(missing_docs)]

//! UDP front-end for the study's DNS machinery.
//!
//! Everything else in this workspace runs inside the deterministic
//! simulator; this crate puts the same [`authoritative::AuthServer`] behind
//! a real `std::net::UdpSocket`, so the implementation can be exercised
//! with any stock DNS client — and ships a minimal `dig`-style client that
//! can attach ECS options to its queries.
//!
//! Binaries:
//!
//! * `ecs-dnsd` — serve a demo CDN zone (world-spread edges, ECS open,
//!   proximity mapping) on a UDP port;
//! * `ecs-dig` — query any DNS server with an optional ECS option and
//!   print the answer, including the returned scope.
//!
//! ```no_run
//! use dnsd::{UdpAuthServer, DigClient};
//! use authoritative::{AuthServer, EcsHandling, ScopePolicy, Zone};
//! use dns_wire::Name;
//!
//! let zone = Zone::new(Name::from_ascii("example.com").unwrap());
//! let auth = AuthServer::new(zone, EcsHandling::open(ScopePolicy::MatchSource));
//! let server = UdpAuthServer::bind("127.0.0.1:0", auth).unwrap();
//! let addr = server.local_addr().unwrap();
//! let handle = server.spawn();
//! // ... query `addr` with DigClient ...
//! handle.shutdown();
//! ```

pub mod batch;
pub mod client;
pub mod metrics_http;
pub mod resolver_server;
pub mod server;
pub mod tcp;
pub mod testutil;
pub mod upstream;

pub use batch::{RecvBatch, SendBatch, DEFAULT_BATCH, MAX_DATAGRAM};
pub use client::{DigClient, DigError};
pub use metrics_http::{spawn_metrics_endpoint, MetricsHandle};
pub use resolver_server::{ResolverServerHandle, UdpResolverServer};
pub use server::{ServerFaults, ServerHandle, UdpAuthServer};
pub use tcp::{tcp_exchange, TcpAuthServer, TcpServerHandle};
pub use upstream::SocketUpstream;
