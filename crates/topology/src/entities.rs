//! Descriptions of the actors in a DNS resolution path.
//!
//! Terminology follows the paper (§3): *ingress* resolvers (here,
//! forwarders) take queries from end hosts; *egress* resolvers talk to
//! authoritative nameservers; *hidden* resolvers sit in between and were
//! believed unobservable before ECS exposed them.

use dns_wire::IpPrefix;
use netsim::GeoPoint;
use serde::{Deserialize, Serialize};
use std::net::IpAddr;

use crate::asn::AsId;

/// An end host (stub client) behind a forwarder or talking directly to a
/// resolution service.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClientSpec {
    /// The client's own address.
    pub addr: IpAddr,
    /// The client's /24 (IPv4) or /48 (IPv6) subnet.
    pub subnet: IpPrefix,
    /// Geographic location.
    pub pos: GeoPoint,
    /// Home AS.
    pub asn: AsId,
}

/// An open ingress resolver (forwarder). Most are home routers that simply
/// relay queries to a recursive resolver.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ForwarderSpec {
    /// The forwarder's address.
    pub addr: IpAddr,
    /// Location (typically colocated with its clients).
    pub pos: GeoPoint,
    /// Home AS.
    pub asn: AsId,
    /// Index of the chain this forwarder uses (into [`crate::World::chains`]).
    pub chain: usize,
}

/// A hidden resolver: an intermediary between forwarders and egress
/// resolvers. Many real deployments put these far from the clients —
/// the §8.2 pitfall.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HiddenResolverSpec {
    /// Address (what egress resolvers see as the query source).
    pub addr: IpAddr,
    /// Location.
    pub pos: GeoPoint,
    /// Home AS.
    pub asn: AsId,
}

/// An egress (recursive) resolver: the party that queries authoritative
/// nameservers, adds ECS options, and maintains the cache under study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EgressResolverSpec {
    /// Address seen by authoritative nameservers.
    pub addr: IpAddr,
    /// Location.
    pub pos: GeoPoint,
    /// Home AS.
    pub asn: AsId,
    /// True when the resolver belongs to the major public (anycast) DNS
    /// service — "MP resolver" in the paper's §8.2 terminology.
    pub public_service: bool,
}

/// A resolution path from forwarder to egress. The paper observes paths
/// with zero or more hidden hops; we model zero or one, which captures the
/// phenomena studied (§8.2 footnote: resolvers report hidden resolvers at
/// /24 granularity, one level deep).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChainSpec {
    /// Index into [`crate::World::hidden_resolvers`], if the path includes a
    /// hidden hop.
    pub hidden: Option<usize>,
    /// Index into [`crate::World::egress_resolvers`].
    pub egress: usize,
}

/// An anycast public DNS resolution service: front-ends that accept client
/// queries and stamp the client's subnet into ECS, plus the egress resolver
/// pool behind them. Models the "major public DNS service" / All-Names
/// resolver service of §4.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PublicServiceSpec {
    /// Front-end addresses/locations (one per region).
    pub frontends: Vec<(IpAddr, GeoPoint)>,
    /// Indices of the service's egress resolvers in
    /// [`crate::World::egress_resolvers`].
    pub egress_indices: Vec<usize>,
}

/// One CDN edge server (or edge cluster virtual IP).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EdgeServerSpec {
    /// Virtual IP returned in DNS answers.
    pub addr: IpAddr,
    /// Location.
    pub pos: GeoPoint,
    /// Human-readable deployment city.
    pub city: String,
}

/// A CDN's serving footprint: edge servers spread across the world.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CdnFootprint {
    /// All deployed edges.
    pub edges: Vec<EdgeServerSpec>,
}

impl CdnFootprint {
    /// The edge nearest to `pos`, by great-circle distance. Returns the
    /// index into `edges`.
    pub fn nearest_edge(&self, pos: &GeoPoint) -> Option<usize> {
        self.edges
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                a.pos
                    .distance_km(pos)
                    .partial_cmp(&b.pos.distance_km(pos))
                    .expect("distances are finite")
            })
            .map(|(i, _)| i)
    }

    /// Deterministically maps an opaque key (e.g. a hashed DNS name or an
    /// unroutable prefix) to an arbitrary edge. This reproduces the §8.1
    /// behaviour where unroutable ECS prefixes get answers uncorrelated
    /// with the querier's location.
    pub fn arbitrary_edge(&self, key: u64) -> Option<usize> {
        if self.edges.is_empty() {
            None
        } else {
            Some((key % self.edges.len() as u64) as usize)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::geo::city;
    use std::net::Ipv4Addr;

    fn edge(name: &str, a: u8) -> EdgeServerSpec {
        let c = city(name).unwrap();
        EdgeServerSpec {
            addr: IpAddr::V4(Ipv4Addr::new(203, 0, 113, a)),
            pos: c.pos,
            city: name.to_string(),
        }
    }

    #[test]
    fn nearest_edge_picks_geographically() {
        let cdn = CdnFootprint {
            edges: vec![edge("Chicago", 1), edge("Zurich", 2), edge("Tokyo", 3)],
        };
        // Cleveland is nearest Chicago.
        let idx = cdn.nearest_edge(&city("Cleveland").unwrap().pos).unwrap();
        assert_eq!(cdn.edges[idx].city, "Chicago");
        // Milan is nearest Zurich.
        let idx = cdn.nearest_edge(&city("Milan").unwrap().pos).unwrap();
        assert_eq!(cdn.edges[idx].city, "Zurich");
        // Seoul is nearest Tokyo.
        let idx = cdn.nearest_edge(&city("Seoul").unwrap().pos).unwrap();
        assert_eq!(cdn.edges[idx].city, "Tokyo");
    }

    #[test]
    fn nearest_edge_empty_is_none() {
        let cdn = CdnFootprint::default();
        assert_eq!(cdn.nearest_edge(&city("Paris").unwrap().pos), None);
        assert_eq!(cdn.arbitrary_edge(7), None);
    }

    #[test]
    fn arbitrary_edge_is_deterministic_and_in_range() {
        let cdn = CdnFootprint {
            edges: vec![edge("Chicago", 1), edge("Zurich", 2), edge("Tokyo", 3)],
        };
        for key in 0..100u64 {
            let a = cdn.arbitrary_edge(key).unwrap();
            let b = cdn.arbitrary_edge(key).unwrap();
            assert_eq!(a, b);
            assert!(a < 3);
        }
        // Different keys reach different edges.
        let distinct: std::collections::HashSet<_> = (0..100u64)
            .map(|k| cdn.arbitrary_edge(k).unwrap())
            .collect();
        assert_eq!(distinct.len(), 3);
    }
}
