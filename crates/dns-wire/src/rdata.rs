//! Typed RDATA for the record types the study uses.

use std::net::{Ipv4Addr, Ipv6Addr};

use crate::error::{WireError, WireResult};
use crate::name::Name;
use crate::record::RecordType;
use crate::wire::{WireReader, WireWriter};

/// SOA record fields (RFC 1035 §3.3.13).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SoaData {
    /// Primary nameserver.
    pub mname: Name,
    /// Responsible mailbox.
    pub rname: Name,
    /// Zone serial.
    pub serial: u32,
    /// Refresh interval.
    pub refresh: u32,
    /// Retry interval.
    pub retry: u32,
    /// Expire limit.
    pub expire: u32,
    /// Negative-caching TTL (RFC 2308).
    pub minimum: u32,
}

/// Typed record data. The variant determines the record TYPE.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rdata {
    /// IPv4 address.
    A(Ipv4Addr),
    /// IPv6 address.
    Aaaa(Ipv6Addr),
    /// Alias target.
    Cname(Name),
    /// Delegation nameserver.
    Ns(Name),
    /// Reverse pointer target.
    Ptr(Name),
    /// Text record: one or more character strings of up to 255 bytes each.
    Txt(Vec<Vec<u8>>),
    /// Start of authority.
    Soa(SoaData),
    /// Any type we do not interpret, kept as raw bytes.
    Unknown {
        /// Numeric record type.
        rtype: u16,
        /// Raw RDATA bytes.
        data: Vec<u8>,
    },
}

impl Rdata {
    /// The TYPE implied by this RDATA.
    pub fn rtype(&self) -> RecordType {
        match self {
            Rdata::A(_) => RecordType::A,
            Rdata::Aaaa(_) => RecordType::Aaaa,
            Rdata::Cname(_) => RecordType::Cname,
            Rdata::Ns(_) => RecordType::Ns,
            Rdata::Ptr(_) => RecordType::Ptr,
            Rdata::Txt(_) => RecordType::Txt,
            Rdata::Soa(_) => RecordType::Soa,
            Rdata::Unknown { rtype, .. } => RecordType::from_u16(*rtype),
        }
    }

    /// Serializes the RDATA body (without the RDLENGTH prefix).
    ///
    /// Names inside well-known types (CNAME, NS, PTR, SOA) are eligible for
    /// compression per RFC 1035/3597; unknown types are written verbatim.
    pub fn write(&self, w: &mut WireWriter) -> WireResult<()> {
        match self {
            Rdata::A(a) => w.put_bytes(&a.octets()),
            Rdata::Aaaa(a) => w.put_bytes(&a.octets()),
            Rdata::Cname(n) | Rdata::Ns(n) | Rdata::Ptr(n) => n.write(w)?,
            Rdata::Txt(strings) => {
                for s in strings {
                    if s.len() > 255 {
                        return Err(WireError::LabelTooLong(s.len()));
                    }
                    w.put_u8(s.len() as u8);
                    w.put_bytes(s);
                }
            }
            Rdata::Soa(soa) => {
                soa.mname.write(w)?;
                soa.rname.write(w)?;
                w.put_u32(soa.serial);
                w.put_u32(soa.refresh);
                w.put_u32(soa.retry);
                w.put_u32(soa.expire);
                w.put_u32(soa.minimum);
            }
            Rdata::Unknown { data, .. } => w.put_bytes(data),
        }
        Ok(())
    }

    /// Parses RDATA of the given type from a bounded reader. `rdlen` is the
    /// declared RDLENGTH, needed for types with no internal structure.
    pub fn read(rtype: RecordType, r: &mut WireReader<'_>, rdlen: usize) -> WireResult<Self> {
        match rtype {
            RecordType::A => {
                let b = r.read_bytes(4, "A rdata")?;
                Ok(Rdata::A(Ipv4Addr::new(b[0], b[1], b[2], b[3])))
            }
            RecordType::Aaaa => {
                let b = r.read_bytes(16, "AAAA rdata")?;
                let mut o = [0u8; 16];
                o.copy_from_slice(b);
                Ok(Rdata::Aaaa(Ipv6Addr::from(o)))
            }
            RecordType::Cname => Ok(Rdata::Cname(Name::read(r)?)),
            RecordType::Ns => Ok(Rdata::Ns(Name::read(r)?)),
            RecordType::Ptr => Ok(Rdata::Ptr(Name::read(r)?)),
            RecordType::Txt => {
                let mut strings = Vec::new();
                let mut left = rdlen;
                while left > 0 {
                    let n = r.read_u8("TXT string length")? as usize;
                    let s = r.read_bytes(n, "TXT string")?;
                    strings.push(s.to_vec());
                    left = left.checked_sub(1 + n).ok_or(WireError::Truncated {
                        context: "TXT rdata",
                    })?;
                }
                Ok(Rdata::Txt(strings))
            }
            RecordType::Soa => Ok(Rdata::Soa(SoaData {
                mname: Name::read(r)?,
                rname: Name::read(r)?,
                serial: r.read_u32("SOA serial")?,
                refresh: r.read_u32("SOA refresh")?,
                retry: r.read_u32("SOA retry")?,
                expire: r.read_u32("SOA expire")?,
                minimum: r.read_u32("SOA minimum")?,
            })),
            other => Ok(Rdata::Unknown {
                rtype: other.to_u16(),
                data: r.read_bytes(rdlen, "unknown rdata")?.to_vec(),
            }),
        }
    }

    /// Extracts the IPv4 address, if this is an A record.
    pub fn as_a(&self) -> Option<Ipv4Addr> {
        match self {
            Rdata::A(a) => Some(*a),
            _ => None,
        }
    }

    /// Extracts the IPv6 address, if this is an AAAA record.
    pub fn as_aaaa(&self) -> Option<Ipv6Addr> {
        match self {
            Rdata::Aaaa(a) => Some(*a),
            _ => None,
        }
    }

    /// Extracts the alias target, if this is a CNAME.
    pub fn as_cname(&self) -> Option<&Name> {
        match self {
            Rdata::Cname(n) => Some(n),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(rdata: Rdata) -> Rdata {
        let mut w = WireWriter::new();
        rdata.write(&mut w).unwrap();
        let bytes = w.finish().unwrap();
        let mut r = WireReader::new(&bytes);
        Rdata::read(rdata.rtype(), &mut r, bytes.len()).unwrap()
    }

    #[test]
    fn a_roundtrip() {
        let rd = Rdata::A(Ipv4Addr::new(203, 0, 113, 9));
        assert_eq!(roundtrip(rd.clone()), rd);
        assert_eq!(rd.as_a(), Some(Ipv4Addr::new(203, 0, 113, 9)));
        assert_eq!(rd.as_aaaa(), None);
    }

    #[test]
    fn aaaa_roundtrip() {
        let rd = Rdata::Aaaa("2001:db8::42".parse().unwrap());
        assert_eq!(roundtrip(rd.clone()), rd);
        assert!(rd.as_aaaa().is_some());
    }

    #[test]
    fn cname_ns_ptr_roundtrip() {
        for rd in [
            Rdata::Cname(Name::from_ascii("target.example.net").unwrap()),
            Rdata::Ns(Name::from_ascii("ns1.example.net").unwrap()),
            Rdata::Ptr(Name::from_ascii("host.example.net").unwrap()),
        ] {
            assert_eq!(roundtrip(rd.clone()), rd);
        }
    }

    #[test]
    fn txt_roundtrip_multi_string() {
        let rd = Rdata::Txt(vec![b"hello".to_vec(), b"world".to_vec(), vec![]]);
        assert_eq!(roundtrip(rd.clone()), rd);
    }

    #[test]
    fn txt_string_too_long_rejected() {
        let rd = Rdata::Txt(vec![vec![0u8; 256]]);
        let mut w = WireWriter::new();
        assert!(rd.write(&mut w).is_err());
    }

    #[test]
    fn soa_roundtrip() {
        let rd = Rdata::Soa(SoaData {
            mname: Name::from_ascii("ns1.example.com").unwrap(),
            rname: Name::from_ascii("hostmaster.example.com").unwrap(),
            serial: 2024010101,
            refresh: 7200,
            retry: 3600,
            expire: 1209600,
            minimum: 300,
        });
        assert_eq!(roundtrip(rd.clone()), rd);
    }

    #[test]
    fn unknown_type_preserved() {
        let rd = Rdata::Unknown {
            rtype: 99,
            data: vec![0xDE, 0xAD],
        };
        assert_eq!(roundtrip(rd.clone()), rd);
        assert_eq!(rd.rtype(), RecordType::Unknown(99));
    }

    #[test]
    fn truncated_a_rejected() {
        let bytes = [1, 2, 3];
        let mut r = WireReader::new(&bytes);
        assert!(Rdata::read(RecordType::A, &mut r, 3).is_err());
    }
}
