//! Telemetry capture for experiment runs.
//!
//! An experiment that supports telemetry returns a [`Telemetry`]: the
//! merged metrics snapshot of every resolver/cache/simulator registry the
//! run touched, plus the JSON-lines trace of every resolution recorded by
//! the shared [`obs::Tracer`]. [`Telemetry::write`] lays the artifacts out
//! as `<id>_metrics.prom`, `<id>_metrics.json`, and `<id>_trace.jsonl` —
//! the files the CI telemetry-validation step feeds to `obs-validate`.

use std::path::{Path, PathBuf};

use obs::MetricsSnapshot;

/// Captured telemetry of one experiment run.
#[derive(Debug, Clone)]
pub struct Telemetry {
    /// Merged metrics of every registry the run touched.
    pub snapshot: MetricsSnapshot,
    /// JSON-lines structured trace of the run's resolutions.
    pub trace_jsonl: String,
}

impl Telemetry {
    /// `(p50, p99, max)` of a latency histogram series, when recorded.
    pub fn latency_quantiles(&self, series: &str) -> Option<(u64, u64, u64)> {
        let h = self.snapshot.histogram(series)?;
        if h.count == 0 {
            return None;
        }
        Some((h.quantile(0.5), h.quantile(0.99), h.max))
    }

    /// Writes the three artifact files under `dir`, returning their paths
    /// (Prometheus text, JSON snapshot, JSON-lines trace, in that order).
    pub fn write(&self, dir: &Path, id: &str) -> std::io::Result<Vec<PathBuf>> {
        std::fs::create_dir_all(dir)?;
        let prom = dir.join(format!("{id}_metrics.prom"));
        std::fs::write(&prom, self.snapshot.to_prometheus())?;
        let json = dir.join(format!("{id}_metrics.json"));
        std::fs::write(&json, self.snapshot.to_json())?;
        let trace = dir.join(format!("{id}_trace.jsonl"));
        std::fs::write(&trace, &self.trace_jsonl)?;
        Ok(vec![prom, json, trace])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_three_artifacts() {
        let reg = obs::MetricsRegistry::new();
        reg.counter("x_total").add(2);
        let t = Telemetry {
            snapshot: reg.snapshot(),
            trace_jsonl: "{\"trace\":1,\"span\":1,\"parent\":0,\"at_us\":0,\"event\":\"shed\"}\n"
                .to_string(),
        };
        let dir = std::env::temp_dir().join("ecs_study_telemetry_test");
        let paths = t.write(&dir, "demo").unwrap();
        assert_eq!(paths.len(), 3);
        let prom = std::fs::read_to_string(&paths[0]).unwrap();
        assert!(prom.contains("x_total 2"));
        let json = std::fs::read_to_string(&paths[1]).unwrap();
        assert!(obs::validate::validate_metrics_json(&json, &["x_total"]).is_ok());
        let trace = std::fs::read_to_string(&paths[2]).unwrap();
        assert_eq!(obs::validate::validate_trace(&trace), Ok(1));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
