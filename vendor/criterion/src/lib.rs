//! Minimal, API-compatible stand-in for `criterion`.
//!
//! Implements the group/bench/iter surface this workspace's benches use,
//! measuring wall-clock time with a fixed warm-up and a few timed samples,
//! and printing `name: median time/iter (throughput)` lines. No plots, no
//! statistics beyond min/median, no HTML reports — but `cargo bench`
//! output remains comparable run-to-run on the same machine.
//!
//! Respects the benchmark-name filter argument `cargo bench -- <filter>`
//! and ignores harness flags (`--bench`, `--quiet`, ...).

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Number of timed samples per benchmark (upstream default is 100;
/// the stub trades precision for suite runtime).
const DEFAULT_SAMPLES: usize = 12;
/// Minimum measured duration per sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(25);

/// Top-level benchmark driver.
pub struct Criterion {
    filter: Option<String>,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench` invokes the target with harness flags plus an
        // optional name filter; the first non-flag argument is the filter.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            filter,
            sample_size: DEFAULT_SAMPLES,
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            throughput: None,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.to_string();
        run_bench(&name, self.filter.as_deref(), self.sample_size, None, f);
        self
    }
}

/// Throughput annotation: reported as a rate next to the timing.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.clamp(2, 100));
        self
    }

    /// Sets the throughput used to report a rate.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.name, id);
        run_bench(
            &name,
            self.criterion.filter.as_deref(),
            self.sample_size
                .unwrap_or(self.criterion.sample_size)
                .min(20),
            self.throughput,
            f,
        );
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finishes the group (upstream writes reports here; the stub prints
    /// a separator).
    pub fn finish(self) {
        println!();
    }
}

/// A `function-name/parameter` benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    samples_ns: Vec<f64>,
    sample_count: usize,
}

impl Bencher {
    /// Times the routine: warm-up, then `sample_count` timed samples of
    /// however many iterations fit the per-sample target.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up and per-iteration cost estimate.
        let mut iters_per_sample = 1u64;
        let warmup_start = Instant::now();
        loop {
            black_box(routine());
            if warmup_start.elapsed() >= Duration::from_millis(10) {
                break;
            }
            iters_per_sample += 1;
        }
        let per_iter = warmup_start.elapsed().as_secs_f64() / iters_per_sample as f64;
        let target = SAMPLE_TARGET.as_secs_f64();
        let batch = ((target / per_iter.max(1e-9)).ceil() as u64).max(1);

        self.samples_ns.clear();
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let ns = start.elapsed().as_secs_f64() * 1e9 / batch as f64;
            self.samples_ns.push(ns);
        }
    }
}

fn run_bench<F>(
    name: &str,
    filter: Option<&str>,
    sample_count: usize,
    throughput: Option<Throughput>,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    if let Some(pat) = filter {
        if !name.contains(pat) {
            return;
        }
    }
    let mut bencher = Bencher {
        samples_ns: Vec::new(),
        sample_count,
    };
    f(&mut bencher);
    if bencher.samples_ns.is_empty() {
        println!("{name:<60} (no measurement)");
        return;
    }
    bencher
        .samples_ns
        .sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median = bencher.samples_ns[bencher.samples_ns.len() / 2];
    let min = bencher.samples_ns[0];
    let rate = throughput.map(|t| match t {
        Throughput::Bytes(n) => format!("  {:>10}/s", human_bytes(n as f64 / (median / 1e9))),
        Throughput::Elements(n) => {
            format!("  {:>12.0} elem/s", n as f64 / (median / 1e9))
        }
    });
    println!(
        "{name:<60} median {:>12}  min {:>12}{}",
        human_time(median),
        human_time(min),
        rate.unwrap_or_default()
    );
}

fn human_time(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn human_bytes(bytes_per_sec: f64) -> String {
    if bytes_per_sec < 1024.0 {
        format!("{bytes_per_sec:.0} B")
    } else if bytes_per_sec < 1024.0 * 1024.0 {
        format!("{:.1} KiB", bytes_per_sec / 1024.0)
    } else if bytes_per_sec < 1024.0 * 1024.0 * 1024.0 {
        format!("{:.1} MiB", bytes_per_sec / (1024.0 * 1024.0))
    } else {
        format!("{:.2} GiB", bytes_per_sec / (1024.0 * 1024.0 * 1024.0))
    }
}

/// Declares a function running the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_are_sane() {
        assert_eq!(human_time(12.0), "12.0 ns");
        assert_eq!(human_time(1500.0), "1.50 µs");
        assert!(human_bytes(2048.0).contains("KiB"));
    }

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher {
            samples_ns: Vec::new(),
            sample_count: 3,
        };
        let mut acc = 0u64;
        b.iter(|| {
            acc = acc.wrapping_add(black_box(1));
        });
        assert_eq!(b.samples_ns.len(), 3);
        assert!(b.samples_ns.iter().all(|&ns| ns >= 0.0));
    }
}
