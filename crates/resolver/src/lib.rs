#![warn(missing_docs)]

//! ECS-aware recursive resolver.
//!
//! This crate implements the party the paper studies: the egress resolver
//! that decides *whether* to attach an ECS option (probing strategy, §6.1),
//! *what* prefix to put in it (prefix policy, §6.2 / Table 1), and *how* to
//! cache the scoped answers (compliance mode, §6.3) — including every
//! deviant behaviour the measurements uncovered, so the study's classifiers
//! can be exercised against ground truth:
//!
//! | paper finding | here |
//! |---|---|
//! | 3382 resolvers send ECS on 100% of A/AAAA queries | [`ProbingStrategy::Always`] |
//! | 258 probe via specific hostnames, ignoring the cache | [`ProbingStrategy::HostnameProbe`] |
//! | 32 probe at 30-minute multiples with a loopback prefix | [`ProbingStrategy::IntervalProbe`] |
//! | 88 send ECS for specific hostnames on cache miss | [`ProbingStrategy::OnMiss`] |
//! | per-zone whitelists (OpenDNS style) | [`ProbingStrategy::ZoneWhitelist`] |
//! | /24 truncation per RFC | [`PrefixPolicy::Truncate`] |
//! | /32 with "jammed" last byte (3084 resolvers) | [`PrefixPolicy::JammedFull`] |
//! | /25 prefixes that leak an extra bit | `PrefixPolicy::Truncate(25)` |
//! | /22 cap on both prefix and scope (8 resolvers) | [`CacheCompliance::CapPrefix`] |
//! | scope ignored entirely (103 resolvers) | [`CacheCompliance::IgnoreScope`] |
//! | >24-bit client prefixes accepted & cached (15) | [`ResolverConfig::accept_client_ecs`] + `PrefixPolicy::PassThrough` |
//! | PowerDNS private-prefix misconfiguration | [`PrefixPolicy::PrivateLeak`] + `cache_zero_scope = false` |
//!
//! The resolver exposes a synchronous engine ([`engine::Resolver`]) driven
//! by any [`engine::Upstream`] (directly by an
//! [`authoritative::AuthServer`], or by a zone-routing table), plus
//! event-driven actors ([`actors`]) for full packet-level simulation of
//! forwarder → hidden resolver → egress chains and anycast front-ends.
//!
//! ```
//! use authoritative::{AuthServer, EcsHandling, ScopePolicy, Zone};
//! use dns_wire::{Message, Name, Question};
//! use netsim::SimTime;
//! use resolver::{Resolver, ResolverConfig};
//!
//! // An ECS-enabled authoritative server with one record.
//! let mut zone = Zone::new(Name::from_ascii("example.com").unwrap());
//! zone.add_a(
//!     Name::from_ascii("www.example.com").unwrap(),
//!     60,
//!     std::net::Ipv4Addr::new(198, 51, 100, 1),
//! ).unwrap();
//! let mut auth = AuthServer::new(zone, EcsHandling::open(ScopePolicy::MatchSource));
//!
//! // An RFC-compliant resolver answering two clients in one /24.
//! let mut r = Resolver::new(ResolverConfig::rfc_compliant("9.9.9.9".parse().unwrap()));
//! let q = Message::query(1, Question::a(Name::from_ascii("www.example.com").unwrap()));
//! r.resolve_msg(&q, "100.70.1.1".parse().unwrap(), SimTime::from_secs(0), &mut auth);
//! r.resolve_msg(&q, "100.70.1.2".parse().unwrap(), SimTime::from_secs(1), &mut auth);
//! // Scope-24 caching: the second client was served from cache.
//! assert_eq!(r.stats().upstream_queries, 1);
//! assert_eq!(r.cache_stats().hits, 1);
//! ```

pub mod actors;
pub mod cache;
pub mod config;
pub mod engine;
pub mod faulty;
pub mod flight;
pub mod prefix_policy;
pub mod probing;
pub mod shared_cache;
pub mod transport;

pub use cache::{CacheCompliance, CacheLimits, CacheStats, EcsCache};
pub use config::{OverloadConfig, ResolverConfig, RetryPolicy};
pub use engine::{
    FlightKey, PendingQuery, Resolver, ResolverStats, Step, Upstream, UpstreamError, ZoneRouter,
};
pub use faulty::{FaultyUpstream, InjectedFault, InjectionStats};
pub use flight::{Admission, Flight, FlightTable, OwnerToken};
pub use prefix_policy::PrefixPolicy;
pub use probing::{ProbingState, ProbingStrategy};
pub use shared_cache::SharedEcsCache;
pub use transport::{
    Transport, TransportFault, TransportFaults, TransportPolicy, TransportStats, TransportUpstream,
};
