//! Loopback load generator for the multi-worker `dnsd` serving path.
//!
//! Stands up the full real-socket stack — a [`dnsd::UdpAuthServer`]
//! authoritative behind a [`dnsd::UdpResolverServer`] worker pool — and
//! drives a seeded query mix at it through batched UDP with a bounded
//! in-flight window, once per worker count (1/2/4/8 by default). After a
//! warm-up pass populates the shared cache, the measured run is the
//! steady-state serving path: batched recv → engine cache hit → batched
//! send. Writes `BENCH_dnsd.json` to the current directory.
//!
//! Run from the workspace root:
//!
//! ```text
//! cargo run --release -p bench --bin bench_dnsd
//! cargo run --release -p bench --bin bench_dnsd -- --queries 2000 --out /tmp/smoke.json
//! ```
//!
//! Flags: `--queries N` per worker-count row (default 200000), `--window
//! W` bounded in-flight datagrams (default 64), `--out PATH` for the JSON
//! report. The query mix is seeded (name choice and ECS attachment from a
//! fixed-seed RNG), so every row and every run drives the same sequence.
//!
//! Diagnosis flags: `--profile [stacks.folded]` turns on the per-worker
//! stage profiler and shard/flight lock contention monitors — rows gain
//! the `lock_*` contention columns and the folded flamegraph stacks of
//! every row merge into the given path. `--shards N` overrides the shared
//! cache's shard count (default follows the worker count, floor 4).
//! `--history PATH` appends one JSONL line per row with run metadata
//! (unix time, host parallelism) for the `bench_check` regression gate's
//! trend data.

use std::net::{Ipv4Addr, SocketAddr, UdpSocket};
use std::time::{Duration, Instant};

use authoritative::{AuthServer, EcsHandling, ScopePolicy, Zone};
use dns_wire::{EcsOption, Message, Name, Question};
use dnsd::{RecvBatch, SendBatch, UdpAuthServer, UdpResolverServer};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use resolver::ResolverConfig;

/// Distinct names in the zone (and the mix).
const NAMES: usize = 256;
/// Client /24s attached as ECS on part of the mix.
const ECS_SUBNETS: [Ipv4Addr; 4] = [
    Ipv4Addr::new(192, 0, 2, 0),
    Ipv4Addr::new(198, 51, 100, 0),
    Ipv4Addr::new(203, 0, 113, 0),
    Ipv4Addr::new(192, 0, 2, 128), // same /24 as the first: shares its entry
];
/// Fraction of queries carrying ECS, in percent.
const ECS_PCT: u32 = 25;

struct Args {
    queries: usize,
    window: usize,
    out: String,
    /// `Some(path)` turns on profiling + contention monitors; the merged
    /// folded stacks of every row land at `path`.
    profile: Option<String>,
    /// Explicit shared-cache shard count (None = server default).
    shards: Option<usize>,
    /// JSONL history file to append one line per row to.
    history: Option<String>,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        queries: 200_000,
        window: 64,
        out: "BENCH_dnsd.json".to_string(),
        profile: None,
        shards: None,
        history: None,
    };
    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        if arg == "--profile" {
            // An optional path may follow; a flag or nothing means the
            // default output name.
            let path = match args.peek() {
                Some(a) if !a.starts_with("--") => args.next().expect("peeked"),
                _ => "stacks.folded".to_string(),
            };
            parsed.profile = Some(path);
            continue;
        }
        let mut take = |what: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{what} needs a value"))
        };
        match arg.as_str() {
            "--queries" => parsed.queries = take("--queries").parse().expect("integer"),
            "--window" => parsed.window = take("--window").parse().expect("integer"),
            "--out" => parsed.out = take("--out"),
            "--shards" => parsed.shards = Some(take("--shards").parse().expect("integer")),
            "--history" => parsed.history = Some(take("--history")),
            other => panic!("unknown flag {other:?}"),
        }
    }
    parsed.queries = parsed.queries.max(1);
    parsed.window = parsed.window.clamp(1, 1024);
    parsed
}

fn bench_zone() -> AuthServer {
    let mut zone = Zone::new(Name::from_ascii("bench.example").expect("valid"));
    for i in 0..NAMES {
        zone.add_a(
            Name::from_ascii(&format!("www{i}.bench.example")).expect("valid"),
            3600, // long TTL: nothing expires mid-run
            Ipv4Addr::new(198, 51, 100, (i % 250) as u8 + 1),
        )
        .expect("unique names");
    }
    AuthServer::new(zone, EcsHandling::open(ScopePolicy::MatchSource))
}

/// Pre-serialized query templates: one per (name, ECS variant). The
/// loadgen patches the 2-byte wire ID per send instead of re-encoding.
fn templates() -> Vec<Vec<u8>> {
    let mut out = Vec::with_capacity(NAMES * (1 + ECS_SUBNETS.len()));
    for i in 0..NAMES {
        let name = Name::from_ascii(&format!("www{i}.bench.example")).expect("valid");
        let plain = Message::query(0, Question::a(name.clone()));
        out.push(plain.to_bytes().expect("encodes"));
        for subnet in ECS_SUBNETS {
            let mut q = Message::query(0, Question::a(name.clone()));
            q.set_ecs(EcsOption::from_v4(subnet, 24));
            out.push(q.to_bytes().expect("encodes"));
        }
    }
    out
}

/// Resolves every template once so the measured run hits a warm shared
/// cache. Sequential, with per-query retry: warm-up correctness matters,
/// warm-up speed does not.
fn warm(client: &UdpSocket, server: SocketAddr, templates: &[Vec<u8>]) {
    let mut buf = [0u8; 4096];
    for (i, t) in templates.iter().enumerate() {
        let mut q = t.clone();
        let id = (i % usize::from(u16::MAX)) as u16;
        q[0..2].copy_from_slice(&id.to_be_bytes());
        for attempt in 0..10 {
            client.send_to(&q, server).expect("send");
            match client.recv_from(&mut buf) {
                Ok(_) => break,
                Err(_) if attempt < 9 => continue,
                Err(e) => panic!("warm-up query {i} never answered: {e}"),
            }
        }
    }
}

struct RunOutcome {
    seconds: f64,
    completed: usize,
    lost: usize,
    snapshot: obs::MetricsSnapshot,
    profile: obs::ProfileSnapshot,
}

/// Contention columns pulled from one row's metrics snapshot. All-zero
/// unless the row ran with `--profile` (the monitors are off otherwise —
/// measuring the lock-wait tax costs a try_lock on every acquisition).
struct Contention {
    shard_acq: u64,
    shard_contended: u64,
    shard_wait_us: u64,
    flight_acq: u64,
    flight_contended: u64,
    flight_wait_us: u64,
    flight_depth_max: u64,
    /// Mean datagrams per recvmmsg/sendmmsg crossing — the batching
    /// efficiency the worker count is buying (or destroying).
    recv_batch_avg: f64,
    send_batch_avg: f64,
}

impl Contention {
    fn from_snapshot(s: &obs::MetricsSnapshot) -> Self {
        let hist_sum = |name: &str| s.histogram(name).map(|h| h.sum).unwrap_or(0);
        let hist_avg = |name: &str| {
            s.histogram(name)
                .filter(|h| h.count > 0)
                .map(|h| h.sum as f64 / h.count as f64)
                .unwrap_or(0.0)
        };
        Contention {
            shard_acq: s
                .counter("lock_cache_shard_acquisitions_total")
                .unwrap_or(0),
            shard_contended: s.counter("lock_cache_shard_contended_total").unwrap_or(0),
            shard_wait_us: hist_sum("lock_cache_shard_wait_us"),
            flight_acq: s.counter("lock_flight_acquisitions_total").unwrap_or(0),
            flight_contended: s.counter("lock_flight_contended_total").unwrap_or(0),
            flight_wait_us: hist_sum("lock_flight_wait_us"),
            flight_depth_max: s.gauge("flight_in_flight_depth").unwrap_or(0),
            recv_batch_avg: hist_avg("dnsd_recv_batch_size"),
            send_batch_avg: hist_avg("dnsd_send_batch_size"),
        }
    }
}

/// One measured row: a fresh resolver pool at `workers`, warmed, then
/// `queries` seeded queries at a bounded in-flight `window`.
fn run_row(
    auth_addr: SocketAddr,
    workers: usize,
    queries: usize,
    window: usize,
    templates: &[Vec<u8>],
    shards: Option<usize>,
    profile: bool,
) -> RunOutcome {
    let config = ResolverConfig::rfc_compliant(std::net::IpAddr::V4(Ipv4Addr::LOCALHOST));
    let mut server = UdpResolverServer::bind("127.0.0.1:0", auth_addr, config)
        .expect("bind resolver")
        .with_workers(workers);
    if let Some(shards) = shards {
        server = server.with_cache_shards(shards);
    }
    if profile {
        server = server.with_profiling();
    }
    let handle = server.spawn().expect("spawn resolver pool");
    let server = handle.local_addr();

    let client = UdpSocket::bind("127.0.0.1:0").expect("bind client");
    client
        .set_read_timeout(Some(Duration::from_millis(500)))
        .expect("timeout");
    warm(&client, server, templates);
    client
        .set_read_timeout(Some(Duration::from_millis(100)))
        .expect("timeout");

    // The seeded mix: uniform name choice, ECS_PCT% of queries carrying
    // one of the fixed /24s. Templates are picked, IDs patched in place.
    let mut rng = SmallRng::seed_from_u64(0x0EC5 ^ workers as u64);
    let mut rx = RecvBatch::new(window);
    let mut tx = SendBatch::new();
    let mut sent = 0usize;
    let mut completed = 0usize;
    let mut dry_timeouts = 0u32;
    let started = Instant::now();
    while completed < queries {
        let in_flight = sent - completed;
        if sent < queries && in_flight < window {
            let burst = (window - in_flight).min(queries - sent);
            for _ in 0..burst {
                let name = rng.gen_range(0..NAMES);
                let variant = if rng.gen_range(0..100) < ECS_PCT {
                    1 + rng.gen_range(0..ECS_SUBNETS.len())
                } else {
                    0
                };
                let mut q = templates[name * (1 + ECS_SUBNETS.len()) + variant].clone();
                q[0..2].copy_from_slice(&(sent as u16).to_be_bytes());
                tx.push(q, server);
                sent += 1;
            }
            tx.flush(&client).expect("client send");
        }
        match rx.recv(&client).expect("client recv") {
            0 => {
                // 100 ms with nothing back: either the tail was lost or
                // the server stalled. Give the window a few grace periods,
                // then write the outstanding tail off as lost.
                dry_timeouts += 1;
                if dry_timeouts >= 5 {
                    break;
                }
            }
            n => {
                dry_timeouts = 0;
                completed += n;
            }
        }
    }
    let seconds = started.elapsed().as_secs_f64();
    let (snapshot, profile) = handle.shutdown_profiled();
    RunOutcome {
        seconds,
        completed,
        lost: sent - completed,
        snapshot,
        profile,
    }
}

fn main() {
    let args = parse_args();
    let worker_counts = [1usize, 2, 4, 8];
    let templates = templates();

    // One authoritative serves every row: only the warm-up touches it.
    let auth = UdpAuthServer::bind("127.0.0.1:0", bench_zone()).expect("bind auth");
    let auth_addr = auth.local_addr().expect("bound");
    let auth_handle = auth.spawn();

    let mut rows = Vec::new();
    let mut merged_profile = obs::ProfileSnapshot::default();
    for &workers in &worker_counts {
        eprintln!(
            "bench_dnsd: {} queries at {workers} worker(s), window {}{}{} ...",
            args.queries,
            args.window,
            args.shards
                .map(|s| format!(", {s} shards"))
                .unwrap_or_default(),
            if args.profile.is_some() {
                ", profiled"
            } else {
                ""
            }
        );
        let o = run_row(
            auth_addr,
            workers,
            args.queries,
            args.window,
            &templates,
            args.shards,
            args.profile.is_some(),
        );
        let qps = o.completed as f64 / o.seconds;
        let c = Contention::from_snapshot(&o.snapshot);
        if args.profile.is_some() {
            eprintln!(
                "bench_dnsd:   {:>9.0} qps ({} completed, {} lost, {:.3}s; shard locks {}/{} contended, {} us waited)",
                qps, o.completed, o.lost, o.seconds, c.shard_contended, c.shard_acq, c.shard_wait_us
            );
        } else {
            eprintln!(
                "bench_dnsd:   {:>9.0} qps ({} completed, {} lost, {:.3}s)",
                qps, o.completed, o.lost, o.seconds
            );
        }
        merged_profile.merge(&o.profile);
        rows.push((workers, o, qps));
    }
    auth_handle.shutdown();

    let (best_workers, _, best_qps) = rows
        .iter()
        .max_by(|a, b| a.2.total_cmp(&b.2))
        .map(|(w, o, q)| (*w, o, *q))
        .expect("rows nonempty");
    // Scaling sanity on the 1→4 leg: adding workers must never drop a row
    // more than 15% below the single-worker baseline (monotone-or-flat;
    // genuine speedups only appear with more cores than this box may
    // have, but contention regressions show up anywhere).
    let base_qps = rows
        .iter()
        .find(|(w, _, _)| *w == 1)
        .map(|(_, _, q)| *q)
        .expect("workers=1 row");
    let monotone_or_flat = rows
        .iter()
        .filter(|(w, _, _)| *w <= 4)
        .all(|(_, _, q)| *q >= base_qps * 0.85);

    let mut json = String::from("{\n");
    json.push_str("  \"benchmark\": \"dnsd_multiworker_loopback\",\n");
    json.push_str(&format!(
        "  \"config\": {{\"queries_per_row\": {}, \"names\": {NAMES}, \"ecs_pct\": {ECS_PCT}, \"window\": {}, \"seeded\": true, \"profiled\": {}, \"shards\": {}}},\n",
        args.queries,
        args.window,
        args.profile.is_some(),
        args.shards
            .map(|s| s.to_string())
            .unwrap_or_else(|| "null".to_string()),
    ));
    json.push_str("  \"rows\": [\n");
    let last = rows.len() - 1;
    for (i, (workers, o, qps)) in rows.iter().enumerate() {
        let hits = o.snapshot.counter("cache_hits_total").unwrap_or(0);
        let coalesced = o
            .snapshot
            .counter("resolver_coalesced_queries_total")
            .unwrap_or(0);
        let upstream = o
            .snapshot
            .counter("resolver_upstream_queries_total")
            .unwrap_or(0);
        let c = Contention::from_snapshot(&o.snapshot);
        json.push_str(&format!(
            "    {{\"workers\": {workers}, \"seconds\": {:.4}, \"qps\": {:.0}, \"completed\": {}, \"lost\": {}, \"cache_hits\": {hits}, \"coalesced\": {coalesced}, \"upstream_queries\": {upstream}, \"lock_shard_acq\": {}, \"lock_shard_contended\": {}, \"lock_shard_wait_us\": {}, \"lock_flight_acq\": {}, \"lock_flight_contended\": {}, \"lock_flight_wait_us\": {}, \"flight_depth_max\": {}, \"recv_batch_avg\": {:.2}, \"send_batch_avg\": {:.2}}}{}\n",
            o.seconds,
            qps,
            o.completed,
            o.lost,
            c.shard_acq,
            c.shard_contended,
            c.shard_wait_us,
            c.flight_acq,
            c.flight_contended,
            c.flight_wait_us,
            c.flight_depth_max,
            c.recv_batch_avg,
            c.send_batch_avg,
            if i < last { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"best_workers\": {best_workers},\n"));
    json.push_str(&format!("  \"best_qps\": {best_qps:.0},\n"));
    json.push_str(&format!(
        "  \"monotone_or_flat_1_to_4\": {monotone_or_flat}\n"
    ));
    json.push_str("}\n");

    std::fs::write(&args.out, &json).expect("write report");
    println!("{json}");
    eprintln!("wrote {}", args.out);

    if let Some(path) = &args.profile {
        // Merged across every row: the shape (which stages dominate) is
        // the diagnosis artifact; per-row splits live in the lock columns.
        std::fs::write(path, merged_profile.to_folded()).expect("write folded stacks");
        eprintln!(
            "wrote {path} ({} stacks, {} us self time, {} spans)",
            merged_profile.stacks.len(),
            merged_profile.total_self_us(),
            merged_profile.total_calls()
        );
        // And the merged metrics (prof_*/lock_* series included) so
        // `obs-validate metrics --require-prof` can gate the export.
        let mut merged_metrics = obs::MetricsSnapshot::default();
        for (_, o, _) in &rows {
            merged_metrics.merge(&o.snapshot);
        }
        let metrics_path = format!("{path}.metrics.json");
        std::fs::write(&metrics_path, merged_metrics.to_json()).expect("write metrics json");
        eprintln!("wrote {metrics_path}");
    }
    if let Some(path) = &args.history {
        for (workers, o, qps) in &rows {
            let c = Contention::from_snapshot(&o.snapshot);
            let line = bench::regression::history_line(
                "bench_dnsd",
                &[
                    ("workers", workers.to_string()),
                    ("queries", args.queries.to_string()),
                    ("window", args.window.to_string()),
                    (
                        "shards",
                        args.shards
                            .map(|s| s.to_string())
                            .unwrap_or_else(|| "null".to_string()),
                    ),
                    ("profiled", args.profile.is_some().to_string()),
                    ("qps", format!("{qps:.0}")),
                    ("lost", o.lost.to_string()),
                    ("lock_shard_contended", c.shard_contended.to_string()),
                    ("lock_shard_wait_us", c.shard_wait_us.to_string()),
                    ("lock_flight_contended", c.flight_contended.to_string()),
                ],
            );
            bench::regression::append_history(path, &line).expect("append history");
        }
        eprintln!("appended {} rows to {path}", rows.len());
    }
}
