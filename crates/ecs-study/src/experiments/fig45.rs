//! §8.2 Figures 4–5: forwarder→hidden vs forwarder→recursive distances.
//!
//! We generate a world whose resolution chains include hidden resolvers
//! (some deliberately misplaced, as observed in the wild — the "Santiago
//! behind Italy" case), then, for every (forwarder, hidden, recursive)
//! combination, compare the two distances the way the paper's hexbin
//! scatter plots do. Figure 4 covers chains ending at the major public
//! (MP) service; Figure 5 covers the rest.
//!
//! Paper: 8% of MP combinations (7.8% non-MP) have the hidden resolver
//! *farther* from the forwarder than the recursive — ECS actively hurts
//! mapping there; distances can differ by thousands of km.

use analysis::{DistanceCombo, HiddenAnalysis};
use topology::{World, WorldConfig};

use crate::report::Report;

/// Parameters.
#[derive(Debug, Clone)]
pub struct Config {
    /// World generation parameters.
    pub world: WorldConfig,
    /// Restrict to MP chains (Figure 4) or non-MP (Figure 5).
    pub public_service_only: bool,
}

impl Config {
    /// Figure 4 defaults.
    pub fn fig4() -> Self {
        Config {
            world: WorldConfig {
                forwarders: 3000,
                hidden_resolvers: 120,
                misplaced_hidden_fraction: 0.08,
                hidden_chain_fraction: 0.9,
                ..WorldConfig::default()
            },
            public_service_only: true,
        }
    }

    /// Figure 5 defaults.
    pub fn fig5() -> Self {
        Config {
            public_service_only: false,
            ..Config::fig4()
        }
    }
}

/// Outcome.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// The analysis report.
    pub report: analysis::HiddenResolverReport,
    /// Number of combinations analysed.
    pub combos: usize,
}

/// Extracts the (forwarder, hidden, recursive) combinations from a world.
pub fn combos_from_world(world: &World, public_only: Option<bool>) -> Vec<DistanceCombo> {
    let mut out = Vec::new();
    for fwd in &world.forwarders {
        let chain = &world.chains[fwd.chain];
        let Some(hidden_idx) = chain.hidden else {
            continue;
        };
        let egress = &world.egress_resolvers[chain.egress];
        if let Some(want_public) = public_only {
            if egress.public_service != want_public {
                continue;
            }
        }
        out.push(DistanceCombo {
            forwarder: fwd.pos,
            hidden: world.hidden_resolvers[hidden_idx].pos,
            recursive: egress.pos,
            via_public_service: egress.public_service,
        });
    }
    out
}

/// Runs the experiment.
pub fn run(config: &Config) -> (Outcome, Report) {
    let world = World::generate(&config.world);
    let combos = combos_from_world(&world, Some(config.public_service_only));
    let analysis_report = HiddenAnalysis::default().analyze(&combos);

    let (id, title, paper_harmful) = if config.public_service_only {
        ("fig4", "hidden-resolver distances (MP resolvers)", 0.08)
    } else {
        (
            "fig5",
            "hidden-resolver distances (non-MP resolvers)",
            0.078,
        )
    };
    let mut report = Report::new(id, title);
    let harmful = analysis_report.harmful_fraction();
    report.row(
        "combinations analysed",
        if config.public_service_only {
            "725K"
        } else {
            "217K"
        },
        combos.len(),
        combos.len() > 100,
    );
    report.row(
        "hidden farther than recursive (ECS hurts)",
        format!("{:.1}%", paper_harmful * 100.0),
        format!("{:.1}%", harmful * 100.0),
        (0.02..0.25).contains(&harmful),
    );
    report.row(
        "ECS helps in the majority of combinations",
        "72.7–90.7%",
        format!(
            "{:.1}%",
            analysis_report.above_diagonal as f64 / analysis_report.total().max(1) as f64 * 100.0
        ),
        analysis_report.above_diagonal * 2 > analysis_report.total(),
    );
    // The worst cases are thousands of km apart.
    let worst_gap = analysis_report
        .points
        .iter()
        .map(|(fh, fr)| fh - fr)
        .fold(0.0f64, f64::max);
    report.row(
        "worst hidden-resolver detour",
        "~12,000 km (Santiago→Italy)",
        format!("{worst_gap:.0} km"),
        worst_gap > 3000.0,
    );
    let mut detail = format!(
        "below diagonal: {}  on: {}  above: {}\nF-H median {:.0} km, F-R median {:.0} km\n",
        analysis_report.below_diagonal,
        analysis_report.on_diagonal,
        analysis_report.above_diagonal,
        analysis_report.f_h_cdf.quantile(0.5),
        analysis_report.f_r_cdf.quantile(0.5),
    );
    // Coarse textual hexbin (6×6), densest cell = '#', mirroring the
    // paper's scatter plots: x = F-H distance, y = F-R distance.
    let bins = analysis::stats::Bins2d::new(&analysis_report.points, 6, 6);
    let max_count = bins.counts.iter().copied().max().unwrap_or(1).max(1);
    detail.push_str("F-R ↑ (each cell ~ combos; scale .:+*#)\n");
    for y in (0..bins.ny).rev() {
        let mut row = String::from("  ");
        for x in 0..bins.nx {
            let c = bins.counts[y * bins.nx + x];
            row.push(match (c * 4) / max_count {
                0 if c == 0 => ' ',
                0 => '.',
                1 => ':',
                2 => '+',
                3 => '*',
                _ => '#',
            });
        }
        detail.push_str(&row);
        detail.push('\n');
    }
    detail.push_str("  → F-H\n");
    report.detail = detail;
    (
        Outcome {
            combos: combos.len(),
            report: analysis_report,
        },
        report,
    )
}

/// Figure-4 entry point.
pub fn run_default_mp() -> Report {
    run(&Config::fig4()).1
}

/// Figure-5 entry point.
pub fn run_default_nonmp() -> Report {
    run(&Config::fig5()).1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harmful_fraction_tracks_misplacement() {
        let (out, report) = run(&Config::fig4());
        assert!(out.combos > 500, "{}", out.combos);
        let harmful = out.report.harmful_fraction();
        // Configured at 8% misplaced; measured should be in the vicinity
        // (nearby hidden resolvers can also happen to be farther).
        assert!(
            (0.02..0.30).contains(&harmful),
            "harmful {harmful}\n{report}"
        );
    }

    #[test]
    fn mp_and_nonmp_split_covers_all_hidden_chains() {
        let world = World::generate(&Config::fig4().world);
        let mp = combos_from_world(&world, Some(true)).len();
        let nonmp = combos_from_world(&world, Some(false)).len();
        let all = combos_from_world(&world, None).len();
        assert_eq!(mp + nonmp, all);
        assert!(mp > 0 && nonmp > 0);
    }
}
