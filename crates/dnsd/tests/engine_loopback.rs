//! Loopback end-to-end: the resolution engine's retry and TCP-fallback
//! policy driving real sockets.
//!
//! The same `Resolver` that runs in the deterministic simulator is wired to
//! a live `UdpAuthServer`/`TcpAuthServer` pair through `SocketUpstream`,
//! with server-side fault injection (`ServerFaults`) standing in for a
//! lossy network. When the environment offers no loopback sockets, each
//! test prints a visible `SKIP` line via `dnsd::testutil` — and fails
//! outright when `ECS_REQUIRE_LOOPBACK` is set (CI sets it).

use std::net::IpAddr;
use std::time::Duration;

use authoritative::{AuthServer, EcsHandling, ScopePolicy, Zone};
use dns_wire::{Message, Name, Question};
use dnsd::{ServerFaults, SocketUpstream, TcpAuthServer, UdpAuthServer};
use netsim::SimTime;
use resolver::{Resolver, ResolverConfig, Transport, TransportPolicy};

fn name(s: &str) -> Name {
    Name::from_ascii(s).unwrap()
}

fn demo_auth() -> AuthServer {
    let mut zone = Zone::new(name("demo.example"));
    zone.add_a(
        name("www.demo.example"),
        60,
        std::net::Ipv4Addr::new(198, 51, 100, 7),
    )
    .unwrap();
    AuthServer::new(zone, EcsHandling::open(ScopePolicy::MatchSource))
}

const RES: &str = "9.9.9.9";
const CLIENT: &str = "192.0.2.77";

fn client_query() -> Message {
    Message::query(21, Question::a(name("www.demo.example")))
}

#[test]
fn truncated_udp_falls_back_to_real_tcp() {
    if !dnsd::testutil::require_loopback("truncated_udp_falls_back_to_real_tcp") {
        return;
    }
    let udp = UdpAuthServer::bind("127.0.0.1:0", demo_auth())
        .expect("loopback available")
        .with_faults(ServerFaults {
            truncate_udp: true,
            ..ServerFaults::default()
        });
    let addr = udp.local_addr().unwrap();
    // Same port, same zone state, TCP transport (the port spaces are
    // disjoint, so binding usually succeeds; skip if this host disagrees).
    let Some(tcp) = dnsd::testutil::require_socket(
        "truncated_udp_falls_back_to_real_tcp",
        "binding TCP on the UDP port",
        TcpAuthServer::bind(addr, udp.auth()),
    ) else {
        return;
    };
    let udp_handle = udp.spawn();
    let tcp_handle = tcp.spawn();

    let mut up = SocketUpstream::new(addr)
        .unwrap()
        .with_timeout(Duration::from_secs(2));
    let res_addr: IpAddr = RES.parse().unwrap();
    let mut r = Resolver::new(ResolverConfig::rfc_compliant(res_addr));
    let resp = r.resolve_msg(
        &client_query(),
        CLIENT.parse().unwrap(),
        SimTime::ZERO,
        &mut up,
    );

    assert_eq!(resp.answer_addrs().len(), 1, "TCP recovered the answer");
    assert!(!resp.flags.tc);
    assert_eq!(r.stats().tcp_fallbacks, 1);
    assert_eq!(r.stats().servfail_responses, 0);
    // Both transports hit the same authoritative: one truncated UDP
    // exchange, one full TCP exchange.
    assert_eq!(udp_handle.auth.lock().log().len(), 2);

    udp_handle.shutdown();
    tcp_handle.shutdown();
}

#[test]
fn dropped_queries_are_retried_with_ecs_withdrawn() {
    if !dnsd::testutil::require_loopback("dropped_queries_are_retried_with_ecs_withdrawn") {
        return;
    }
    let udp = UdpAuthServer::bind("127.0.0.1:0", demo_auth())
        .expect("loopback available")
        .with_faults(ServerFaults {
            drop_first: 2,
            ..ServerFaults::default()
        });
    let addr = udp.local_addr().unwrap();
    let handle = udp.spawn();

    // Short socket timeout so two swallowed attempts cost well under a
    // second of wall clock; the engine's RetryPolicy (4 attempts) retries.
    let mut up = SocketUpstream::new(addr)
        .unwrap()
        .with_timeout(Duration::from_millis(200));
    let res_addr: IpAddr = RES.parse().unwrap();
    let mut r = Resolver::new(ResolverConfig::rfc_compliant(res_addr));
    let resp = r.resolve_msg(
        &client_query(),
        CLIENT.parse().unwrap(),
        SimTime::ZERO,
        &mut up,
    );

    assert_eq!(resp.answer_addrs().len(), 1, "third attempt succeeded");
    let s = r.stats();
    assert_eq!(s.retries, 2);
    assert_eq!(s.upstream_timeouts, 2);
    assert_eq!(s.ecs_withdrawals, 1, "withdrawn once, then already absent");
    assert!(r.probing_state().marked_non_ecs);
    // Swallowed queries never reached the handler; the one answered query
    // arrived without ECS (RFC 7871 §7.1.3 retry).
    let log = handle.auth.lock().log().to_vec();
    assert_eq!(log.len(), 1);
    assert!(log[0].ecs.is_none());

    handle.shutdown();
}

#[test]
fn tcp_primary_policy_never_touches_udp() {
    if !dnsd::testutil::require_loopback("tcp_primary_policy_never_touches_udp") {
        return;
    }
    // A UDP server that swallows *everything*: if the TCP-pinned policy
    // ever sent a datagram, the test would time out into retries.
    let udp = UdpAuthServer::bind("127.0.0.1:0", demo_auth())
        .expect("loopback available")
        .with_faults(ServerFaults {
            drop_first: u32::MAX,
            ..ServerFaults::default()
        });
    let udp_addr = udp.local_addr().unwrap();
    // The TCP listener on its own port, serving the same shared zone.
    let Some(tcp) = dnsd::testutil::require_socket(
        "tcp_primary_policy_never_touches_udp",
        "binding a separate TCP listener",
        TcpAuthServer::bind("127.0.0.1:0", udp.auth()),
    ) else {
        return;
    };
    let tcp_addr = tcp.local_addr().unwrap();
    let udp_handle = udp.spawn();
    let tcp_handle = tcp.spawn();

    let mut up = SocketUpstream::new(udp_addr)
        .unwrap()
        .with_timeout(Duration::from_secs(2))
        .with_tcp_server(tcp_addr);
    let res_addr: IpAddr = RES.parse().unwrap();
    let mut r = Resolver::new(ResolverConfig {
        transport: TransportPolicy::prefer(Transport::Tcp),
        ..ResolverConfig::rfc_compliant(res_addr)
    });
    let resp = r.resolve_msg(
        &client_query(),
        CLIENT.parse().unwrap(),
        SimTime::ZERO,
        &mut up,
    );

    assert_eq!(resp.answer_addrs().len(), 1, "served entirely over TCP");
    let s = r.stats();
    assert_eq!(
        s.upstream_timeouts, 0,
        "the hostile UDP path was never used"
    );
    assert_eq!(s.retries, 0);
    assert_eq!(s.transport_fallbacks, 0, "first rung worked; no edge taken");
    // Exactly one exchange reached the shared authoritative — through the
    // TCP listener.
    assert_eq!(udp_handle.auth.lock().log().len(), 1);

    udp_handle.shutdown();
    tcp_handle.shutdown();
}

#[test]
fn udp_truncation_climbs_the_ladder_to_the_tcp_listener() {
    if !dnsd::testutil::require_loopback("udp_truncation_climbs_the_ladder_to_the_tcp_listener") {
        return;
    }
    let udp = UdpAuthServer::bind("127.0.0.1:0", demo_auth())
        .expect("loopback available")
        .with_faults(ServerFaults {
            truncate_udp: true,
            ..ServerFaults::default()
        });
    let udp_addr = udp.local_addr().unwrap();
    let Some(tcp) = dnsd::testutil::require_socket(
        "udp_truncation_climbs_the_ladder_to_the_tcp_listener",
        "binding a separate TCP listener",
        TcpAuthServer::bind("127.0.0.1:0", udp.auth()),
    ) else {
        return;
    };
    let tcp_addr = tcp.local_addr().unwrap();
    let udp_handle = udp.spawn();
    let tcp_handle = tcp.spawn();

    let mut up = SocketUpstream::new(udp_addr)
        .unwrap()
        .with_timeout(Duration::from_secs(2))
        .with_tcp_server(tcp_addr);
    let res_addr: IpAddr = RES.parse().unwrap();
    // An explicit UDP → TCP ladder: the TC reply takes the counted ladder
    // edge instead of the legacy inline re-query.
    let mut r = Resolver::new(ResolverConfig {
        transport: TransportPolicy::with_ladder([Transport::Udp, Transport::Tcp]),
        ..ResolverConfig::rfc_compliant(res_addr)
    });
    let resp = r.resolve_msg(
        &client_query(),
        CLIENT.parse().unwrap(),
        SimTime::ZERO,
        &mut up,
    );

    assert_eq!(
        resp.answer_addrs().len(),
        1,
        "TCP rung recovered the answer"
    );
    assert!(!resp.flags.tc);
    let s = r.stats();
    assert_eq!(s.tcp_fallbacks, 1, "the RFC 7766 trigger fired");
    assert_eq!(s.transport_fallbacks, 1, "…and climbed the ladder");
    assert_eq!(s.servfail_responses, 0);
    // One truncated UDP exchange plus one full TCP exchange.
    assert_eq!(udp_handle.auth.lock().log().len(), 2);

    udp_handle.shutdown();
    tcp_handle.shutdown();
}

#[test]
fn unreachable_server_ends_in_servfail_not_hang() {
    if !dnsd::testutil::require_loopback("unreachable_server_ends_in_servfail_not_hang") {
        return;
    }
    // Bind-then-drop for a (very likely) dead port.
    let sock = std::net::UdpSocket::bind("127.0.0.1:0").expect("loopback available");
    let dead = sock.local_addr().unwrap();
    drop(sock);

    let mut up = SocketUpstream::new(dead)
        .unwrap()
        .with_timeout(Duration::from_millis(50));
    let res_addr: IpAddr = RES.parse().unwrap();
    let mut r = Resolver::new(ResolverConfig::rfc_compliant(res_addr));
    let resp = r.resolve_msg(
        &client_query(),
        CLIENT.parse().unwrap(),
        SimTime::ZERO,
        &mut up,
    );
    // Four 50 ms attempts later: a clean SERVFAIL, never silence.
    assert_eq!(resp.rcode, dns_wire::Rcode::ServFail);
    assert_eq!(r.stats().servfail_responses, 1);
    assert_eq!(r.stats().upstream_timeouts as usize, 4);
}
